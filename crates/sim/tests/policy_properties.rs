//! Property tests for the engine's batching policies and replication
//! handling: for any workload, every policy must drain every job, honour
//! batch-size bounds, and keep the metric identities.

use gridsec_core::{Grid, Job, Site, Time};
use gridsec_sim::scheduler::EarliestCompletion;
use gridsec_sim::{simulate, BatchPolicy, SimConfig};
use proptest::prelude::*;

fn arb_workload() -> impl Strategy<Value = Vec<Job>> {
    prop::collection::vec(
        (1.0f64..2_000.0, 0.0f64..20_000.0, 0.0f64..=1.0, 1u32..=4),
        1..60,
    )
    .prop_map(|specs| {
        specs
            .into_iter()
            .enumerate()
            .map(|(i, (work, arrival, sd, width))| {
                Job::builder(i as u64)
                    .work(work)
                    .arrival(Time::new(arrival))
                    .security_demand(sd)
                    .width(width)
                    .build()
                    .unwrap()
            })
            .collect()
    })
}

fn grid() -> Grid {
    Grid::new(vec![
        Site::builder(0)
            .nodes(4)
            .speed(1.0)
            .security_level(0.5)
            .build()
            .unwrap(),
        Site::builder(1)
            .nodes(4)
            .speed(2.0)
            .security_level(0.9)
            .build()
            .unwrap(),
    ])
    .unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn every_policy_drains_every_job(
        jobs in arb_workload(),
        trigger in 1usize..10,
        seed in 0u64..500,
    ) {
        let g = grid();
        for policy in [
            BatchPolicy::Periodic,
            BatchPolicy::CountTriggered(trigger),
            BatchPolicy::Hybrid(trigger),
        ] {
            let config = SimConfig::default()
                .with_interval(Time::new(500.0))
                .with_batch_policy(policy)
                .with_seed(seed);
            let out = simulate(&jobs, &g, &mut EarliestCompletion, &config).unwrap();
            prop_assert_eq!(out.metrics.n_jobs, jobs.len());
            prop_assert!(out.metrics.n_fail <= out.metrics.n_risk);
            prop_assert!(out.metrics.slowdown_ratio >= 1.0 - 1e-9);
        }
    }

    #[test]
    fn count_trigger_bounds_arrival_batches(
        jobs in arb_workload(),
        trigger in 1usize..6,
        seed in 0u64..200,
    ) {
        let g = grid();
        let config = SimConfig::default()
            .with_interval(Time::new(1_000.0))
            .with_batch_policy(BatchPolicy::CountTriggered(trigger))
            .with_seed(seed);
        let out = simulate(&jobs, &g, &mut EarliestCompletion, &config).unwrap();
        // Arrivals can only accumulate to the trigger before a batch
        // fires; retried (failed) jobs may add at most a handful on top.
        prop_assert!(
            out.max_batch_size <= trigger + out.metrics.n_fail.max(1),
            "batch {} vs trigger {} (+{} failures)",
            out.max_batch_size,
            trigger,
            out.metrics.n_fail
        );
    }

    #[test]
    fn timeline_attempt_count_matches_failures(
        jobs in arb_workload(),
        seed in 0u64..200,
    ) {
        let g = grid();
        let config = SimConfig::default()
            .with_interval(Time::new(500.0))
            .with_seed(seed)
            .with_timeline();
        let out = simulate(&jobs, &g, &mut EarliestCompletion, &config).unwrap();
        let tl = out.timeline.expect("requested");
        let failed_spans = tl.spans().iter().filter(|s| s.failed).count();
        // Without replication, attempts = jobs + failed attempts, and
        // every failed attempt is a recorded failure of some job.
        prop_assert_eq!(tl.len(), jobs.len() + failed_spans);
        prop_assert!(failed_spans >= out.metrics.n_fail);
    }

    #[test]
    fn seeds_fully_determine_output(
        jobs in arb_workload(),
        seed in 0u64..200,
    ) {
        let g = grid();
        let config = SimConfig::default()
            .with_interval(Time::new(750.0))
            .with_seed(seed);
        let mut a = simulate(&jobs, &g, &mut EarliestCompletion, &config).unwrap();
        let mut b = simulate(&jobs, &g, &mut EarliestCompletion, &config).unwrap();
        // Wall-clock scheduler time is the only legitimately
        // non-deterministic field.
        a.scheduler_seconds = 0.0;
        b.scheduler_seconds = 0.0;
        prop_assert_eq!(a, b);
    }
}
