//! Analytic validation of the simulator against queueing theory.
//!
//! A single 1-node site fed Poisson arrivals with exponential service and
//! an immediate dispatcher is (nearly) an M/M/1 queue — the only deviation
//! is the batching delay, which we make negligible by using a tiny batch
//! period. M/M/1 predicts the mean *sojourn* (response) time
//! `W = 1 / (μ − λ)`; the simulated mean response must land close to it.
//!
//! This is a strong end-to-end correctness check: it exercises arrivals,
//! batching, reservation, dispatch and the metrics pipeline against an
//! exact closed-form result that was never used in the implementation.

use gridsec_core::rng::{stream, Stream};
use gridsec_core::{Grid, Job, Site, Time};
use gridsec_sim::scheduler::EarliestCompletion;
use gridsec_sim::{simulate, SimConfig};
use rand::Rng;

/// Generates `n` jobs with Poisson(λ) arrivals and Exp(μ) service.
fn mm1_workload(n: usize, lambda: f64, mu: f64, seed: u64) -> Vec<Job> {
    let mut rng = stream(seed, Stream::Workload);
    let mut t = 0.0;
    (0..n)
        .map(|i| {
            let ua: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
            t += -ua.ln() / lambda;
            let us: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
            let service = (-us.ln() / mu).max(1e-6);
            Job::builder(i as u64)
                .arrival(Time::new(t))
                .work(service)
                .security_demand(0.0) // always safe: no failure noise
                .build()
                .unwrap()
        })
        .collect()
}

fn run_mm1(lambda: f64, mu: f64, n: usize, seed: u64) -> f64 {
    let grid = Grid::new(vec![Site::builder(0)
        .nodes(1)
        .speed(1.0)
        .security_level(1.0)
        .build()
        .unwrap()])
    .unwrap();
    let jobs = mm1_workload(n, lambda, mu, seed);
    // Batch period ≪ mean inter-arrival so batching delay is negligible
    // relative to W.
    let config = SimConfig::default()
        .with_interval(Time::new(0.01 / lambda))
        .with_seed(seed);
    let out = simulate(&jobs, &grid, &mut EarliestCompletion, &config).unwrap();
    assert_eq!(out.metrics.n_jobs, n);
    out.metrics.avg_response
}

#[test]
fn mm1_mean_response_matches_theory_at_moderate_load() {
    // ρ = 0.5: W = 1 / (μ − λ) = 1 / (2 − 1) = 1.
    let lambda = 1.0;
    let mu = 2.0;
    let analytic = 1.0 / (mu - lambda);
    // Average over several seeds to tame M/M/1's heavy response variance.
    let runs = 6;
    let mean: f64 = (0..runs)
        .map(|s| run_mm1(lambda, mu, 20_000, 1_000 + s))
        .sum::<f64>()
        / runs as f64;
    let rel_err = (mean - analytic).abs() / analytic;
    assert!(
        rel_err < 0.10,
        "simulated W = {mean:.4}, analytic W = {analytic:.4}, rel err {rel_err:.3}"
    );
}

#[test]
fn mm1_mean_response_matches_theory_at_high_load() {
    // ρ = 0.8: W = 1 / (2 − 1.6) = 2.5. Longer queues, harder test.
    let lambda = 1.6;
    let mu = 2.0;
    let analytic = 1.0 / (mu - lambda);
    let runs = 6;
    let mean: f64 = (0..runs)
        .map(|s| run_mm1(lambda, mu, 40_000, 2_000 + s))
        .sum::<f64>()
        / runs as f64;
    let rel_err = (mean - analytic).abs() / analytic;
    assert!(
        rel_err < 0.15,
        "simulated W = {mean:.4}, analytic W = {analytic:.4}, rel err {rel_err:.3}"
    );
}

#[test]
fn utilization_matches_rho() {
    // M/M/1 utilisation is ρ = λ/μ; measured over the makespan horizon it
    // converges to ρ for long runs.
    let lambda = 1.0;
    let mu = 2.0;
    let grid = Grid::new(vec![Site::builder(0).nodes(1).build().unwrap()]).unwrap();
    let jobs = mm1_workload(30_000, lambda, mu, 77);
    let config = SimConfig::default().with_interval(Time::new(0.01));
    let out = simulate(&jobs, &grid, &mut EarliestCompletion, &config).unwrap();
    let rho = lambda / mu;
    let measured = out.metrics.overall_utilization / 100.0;
    assert!(
        (measured - rho).abs() < 0.03,
        "utilisation {measured:.3} vs ρ = {rho}"
    );
}
