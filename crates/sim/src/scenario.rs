//! The chaos scenario engine: spec-driven, seeded fault injection.
//!
//! A [`Scenario`] is a declarative event program — arrival phases
//! (Poisson, heavy-tailed Pareto, diurnal), site failures/rejoins
//! (explicit outages and seeded fault storms), and trust re-ratings
//! (explicit re-rates and jittered storms). [`Scenario::compile`] samples
//! it into an [`InjectionStream`]: a deterministic, totally ordered list
//! of timestamped injections that can be replayed
//!
//! * through the engine, via [`ScenarioRunner`] (a [`RoundDriver`] plus
//!   the shared [`BoundaryClock`]), and
//! * through the `gridsec-serve` daemon, where the same injections travel
//!   as NDJSON frames (`submit`, `fail_site`, `rejoin_site`,
//!   `reconfigure`).
//!
//! Same spec + same seed ⇒ the same stream, bit for bit, at every thread
//! count — and because both front ends drive the identical round/boundary
//! state machine, the committed timelines agree bit for bit too (the
//! chaos equivalence suite in `crates/serve` pins engine ≡ daemon under
//! churn).
//!
//! Graceful degradation is part of the contract: jobs stranded on a site
//! that fails mid-execution are requeued (never lost), jobs fitting no
//! online site stay pending until a wide-enough site rejoins, and
//! [`ScenarioOutcome::fully_accounted`] checks the books — every
//! generated job is scheduled, still pending, or typed-rejected.

use crate::config::SimConfig;
use crate::round::{BoundaryClock, CommittedAssignment, RoundDriver};
use crate::scheduler::{BatchJob, BatchScheduler};
use crate::shard::ShardPlan;
use gridsec_core::rng::{stream, Stream};
use gridsec_core::{Error, Grid, Job, JobId, Result, Site, SiteId, Time};
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// How one arrival phase spaces its jobs.
#[derive(Debug, Clone, Serialize, Deserialize)]
#[serde(tag = "kind", rename_all = "snake_case")]
pub enum ArrivalProcess {
    /// Homogeneous Poisson arrivals at `rate` jobs/second.
    Poisson {
        /// Mean arrival rate (jobs/s), > 0.
        rate: f64,
    },
    /// Heavy-tailed Pareto inter-arrival gaps with mean `1 / rate`.
    /// Small `alpha` (close to 1) means wilder bursts; `alpha` must
    /// exceed 1 for the mean to exist.
    Pareto {
        /// Mean arrival rate (jobs/s), > 0.
        rate: f64,
        /// Tail index, > 1.
        alpha: f64,
    },
    /// Diurnal (cosine-modulated) Poisson via thinning: the rate swings
    /// between `base_rate` and `peak_rate` over each `period` seconds.
    Diurnal {
        /// Trough arrival rate (jobs/s), ≥ 0.
        base_rate: f64,
        /// Peak arrival rate (jobs/s), ≥ `base_rate`, > 0.
        peak_rate: f64,
        /// Length of one day in scenario seconds, > 0.
        period: f64,
    },
}

fn one() -> u32 {
    1
}
fn default_sd_min() -> f64 {
    0.6
}
fn default_sd_max() -> f64 {
    0.9
}

/// One tenant's arrival phase: a window, an arrival process, and the
/// job-shape distributions. An adversarial tenant is simply a phase with
/// a hostile rate (and a width range that lands on one shard).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ArrivalPhase {
    /// Display label for the tenant driving this phase.
    #[serde(default)]
    pub tenant: String,
    /// Window start (seconds).
    pub start: f64,
    /// Window end (seconds), ≥ `start`.
    pub end: f64,
    /// The inter-arrival process.
    pub process: ArrivalProcess,
    /// Minimum job width (nodes), ≥ 1.
    #[serde(default = "one")]
    pub width_min: u32,
    /// Maximum job width (nodes), ≥ `width_min`.
    #[serde(default = "one")]
    pub width_max: u32,
    /// Minimum work (reference seconds), > 0.
    pub work_min: f64,
    /// Maximum work (reference seconds), ≥ `work_min`.
    pub work_max: f64,
    /// Minimum security demand (paper default 0.6).
    #[serde(default = "default_sd_min")]
    pub sd_min: f64,
    /// Maximum security demand (paper default 0.9).
    #[serde(default = "default_sd_max")]
    pub sd_max: f64,
}

/// A site-churn element.
#[derive(Debug, Clone, Serialize, Deserialize)]
#[serde(tag = "kind", rename_all = "snake_case")]
pub enum FaultSpec {
    /// One explicit outage: `site` fails at `at` and rejoins at `until`
    /// (omit `until` for a permanent loss).
    SiteDown {
        /// Grid site index.
        site: usize,
        /// Failure instant (seconds).
        at: f64,
        /// Rejoin instant (seconds), > `at`; `null`/absent = never.
        #[serde(default)]
        until: Option<f64>,
    },
    /// A seeded storm: failures arrive Poisson at `rate` within the
    /// window, each picking a random eligible site and holding it down
    /// for an exponential repair time with mean `mttr` seconds. Storms
    /// never take the last online site down.
    FaultStorm {
        /// Window start (seconds).
        start: f64,
        /// Window end (seconds), ≥ `start`.
        end: f64,
        /// Failure rate (failures/s), > 0.
        rate: f64,
        /// Mean time to repair (seconds), > 0.
        mttr: f64,
        /// Candidate sites (defaults to the whole grid).
        #[serde(default)]
        sites: Option<Vec<usize>>,
    },
}

/// A trust-dynamics element.
#[derive(Debug, Clone, Serialize, Deserialize)]
#[serde(tag = "kind", rename_all = "snake_case")]
pub enum TrustSpec {
    /// One explicit re-rating: the full per-site security-level vector
    /// applied at `at`.
    ReRate {
        /// Instant (seconds).
        at: f64,
        /// New per-site security levels, one per grid site, each in [0, 1].
        levels: Vec<f64>,
    },
    /// A re-rating storm: at Poisson instants within the window, every
    /// site's level takes a uniform step in `[-jitter, +jitter]`
    /// (clamped to [0, 1]) from its current value — a seeded random walk
    /// over the trust state.
    TrustStorm {
        /// Window start (seconds).
        start: f64,
        /// Window end (seconds), ≥ `start`.
        end: f64,
        /// Re-rating rate (events/s), > 0.
        rate: f64,
        /// Maximum per-event step, in (0, 1].
        jitter: f64,
    },
}

/// A declarative chaos scenario. Compile it against a grid with
/// [`Scenario::compile`] to obtain the deterministic injection stream.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Scenario {
    /// Master seed: every sampled quantity derives from it through
    /// dedicated named streams, so the compiled stream is a pure function
    /// of (spec, grid).
    pub seed: u64,
    /// Arrival phases (tenants). May be empty for pure-churn scenarios.
    #[serde(default)]
    pub arrivals: Vec<ArrivalPhase>,
    /// Site-churn program.
    #[serde(default)]
    pub faults: Vec<FaultSpec>,
    /// Trust-dynamics program.
    #[serde(default)]
    pub trust: Vec<TrustSpec>,
    /// Optional cap on generated jobs (keeps hostile rates bounded in
    /// smoke runs); the earliest arrivals win.
    #[serde(default)]
    pub max_jobs: Option<usize>,
}

/// One timestamped injection.
#[derive(Debug, Clone, PartialEq)]
pub struct Injection {
    /// When the injection applies (virtual seconds).
    pub at: Time,
    /// What happens.
    pub kind: InjectionKind,
}

/// The injection alphabet shared by the engine and the daemon.
#[derive(Debug, Clone, PartialEq)]
pub enum InjectionKind {
    /// A job arrives (its `arrival` equals the injection instant).
    Arrive(Job),
    /// A site fails; in-flight work on it is stranded and requeued.
    SiteFail(SiteId),
    /// A failed site rejoins with all nodes free.
    SiteRejoin(SiteId),
    /// The full per-site security-level vector is re-rated.
    SetTrust(Vec<f64>),
}

impl InjectionKind {
    /// Tie-break rank at equal timestamps: trust before rejoin before
    /// fail before arrival — a fixed, documented order both replay paths
    /// share.
    fn rank(&self) -> u8 {
        match self {
            InjectionKind::SetTrust(_) => 0,
            InjectionKind::SiteRejoin(_) => 1,
            InjectionKind::SiteFail(_) => 2,
            InjectionKind::Arrive(_) => 3,
        }
    }
}

/// A compiled scenario: injections in replay order (non-decreasing time;
/// ties broken by [`InjectionKind::rank`] then compile order).
#[derive(Debug, Clone, PartialEq)]
pub struct InjectionStream {
    /// The ordered injections.
    pub events: Vec<Injection>,
}

impl InjectionStream {
    /// Number of injections.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the stream is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of job arrivals in the stream.
    pub fn n_jobs(&self) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e.kind, InjectionKind::Arrive(_)))
            .count()
    }

    /// The shard-local view of this stream under `plan`: arrivals are
    /// assigned round-robin over their eligible shards by job id (the
    /// same rule the load generator uses for explicit routing), site
    /// events are translated to shard-local site ids (foreign-shard
    /// events dropped), and trust vectors are sliced to the shard's
    /// sites. Jobs fitting no site anywhere are dropped — the daemon
    /// rejects them before any shard sees them.
    pub fn slice_for_shard(&self, plan: &ShardPlan, grid: &Grid, shard: usize) -> InjectionStream {
        let mut events = Vec::new();
        for inj in &self.events {
            let kind = match &inj.kind {
                InjectionKind::Arrive(job) => {
                    let eligible = plan.eligible_shards(grid, job);
                    if eligible.is_empty() {
                        continue;
                    }
                    if eligible[job.id.0 as usize % eligible.len()] != shard {
                        continue;
                    }
                    InjectionKind::Arrive(job.clone())
                }
                InjectionKind::SiteFail(site) => match plan.to_local(*site) {
                    Some((k, local)) if k == shard => InjectionKind::SiteFail(local),
                    _ => continue,
                },
                InjectionKind::SiteRejoin(site) => match plan.to_local(*site) {
                    Some((k, local)) if k == shard => InjectionKind::SiteRejoin(local),
                    _ => continue,
                },
                InjectionKind::SetTrust(levels) => InjectionKind::SetTrust(
                    plan.sites_of(shard).iter().map(|s| levels[s.0]).collect(),
                ),
            };
            events.push(Injection { at: inj.at, kind });
        }
        InjectionStream { events }
    }
}

fn exp_gap<R: Rng + ?Sized>(rate: f64, rng: &mut R) -> f64 {
    let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    -u.ln() / rate
}

fn uniform_f64<R: Rng + ?Sized>(lo: f64, hi: f64, rng: &mut R) -> f64 {
    if hi > lo {
        rng.gen_range(lo..=hi)
    } else {
        lo
    }
}

fn uniform_u32<R: Rng + ?Sized>(lo: u32, hi: u32, rng: &mut R) -> u32 {
    if hi > lo {
        rng.gen_range(lo..=hi)
    } else {
        lo
    }
}

impl ArrivalPhase {
    fn validate(&self, index: usize) -> Result<()> {
        let bad = |m: String| Err(Error::invalid("scenario.arrivals", m));
        if !(self.start.is_finite() && self.end.is_finite() && self.start >= 0.0) {
            return bad(format!(
                "phase {index}: window must be finite and non-negative"
            ));
        }
        if self.end < self.start {
            return bad(format!("phase {index}: end < start"));
        }
        if self.width_min < 1 || self.width_max < self.width_min {
            return bad(format!("phase {index}: bad width range"));
        }
        if !(self.work_min > 0.0 && self.work_max >= self.work_min) {
            return bad(format!("phase {index}: bad work range"));
        }
        if !(0.0..=1.0).contains(&self.sd_min)
            || !(0.0..=1.0).contains(&self.sd_max)
            || self.sd_max < self.sd_min
        {
            return bad(format!("phase {index}: bad security-demand range"));
        }
        match self.process {
            ArrivalProcess::Poisson { rate } => {
                if !(rate.is_finite() && rate > 0.0) {
                    return bad(format!("phase {index}: rate must be positive"));
                }
            }
            ArrivalProcess::Pareto { rate, alpha } => {
                if !(rate.is_finite() && rate > 0.0) {
                    return bad(format!("phase {index}: rate must be positive"));
                }
                if !(alpha.is_finite() && alpha > 1.0) {
                    return bad(format!("phase {index}: pareto alpha must exceed 1"));
                }
            }
            ArrivalProcess::Diurnal {
                base_rate,
                peak_rate,
                period,
            } => {
                if !(base_rate >= 0.0 && peak_rate >= base_rate && peak_rate > 0.0) {
                    return bad(format!("phase {index}: need 0 <= base_rate <= peak_rate"));
                }
                if !(period.is_finite() && period > 0.0) {
                    return bad(format!("phase {index}: period must be positive"));
                }
            }
        }
        Ok(())
    }

    /// Samples the next gap after `t` (relative to the window start).
    fn next_after<R: Rng + ?Sized>(&self, t: f64, rng: &mut R) -> f64 {
        match self.process {
            ArrivalProcess::Poisson { rate } => t + exp_gap(rate, rng),
            ArrivalProcess::Pareto { rate, alpha } => {
                // Scale so the mean gap is 1/rate: E[X] = alpha·xm/(alpha-1).
                let xm = (alpha - 1.0) / (alpha * rate);
                let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
                t + xm * u.powf(-1.0 / alpha)
            }
            ArrivalProcess::Diurnal {
                base_rate,
                peak_rate,
                period,
            } => {
                // Lewis–Shedler thinning against the peak rate.
                let mut t = t;
                loop {
                    t += exp_gap(peak_rate, rng);
                    let phase = 2.0 * std::f64::consts::PI * t / period;
                    let local = base_rate + (peak_rate - base_rate) * 0.5 * (1.0 - phase.cos());
                    let accept: f64 = rng.gen();
                    if accept <= local / peak_rate {
                        return t;
                    }
                }
            }
        }
    }
}

impl Scenario {
    /// Parses a scenario from JSON text.
    pub fn from_json(text: &str) -> Result<Scenario> {
        serde_json::from_str(text)
            .map_err(|e| Error::invalid("scenario", format!("invalid JSON scenario: {e}")))
    }

    /// Serialises the scenario as pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("scenario serialises")
    }

    /// Compiles the scenario against `grid` into its deterministic
    /// injection stream. Compilation validates every element, samples
    /// all randomness up front from named sub-streams of `seed`, drops
    /// fault events that would double-fail a site or take the last
    /// online site down, and assigns job ids in arrival order.
    pub fn compile(&self, grid: &Grid) -> Result<InjectionStream> {
        let n_sites = grid.len();
        // --- arrivals ---
        struct Raw {
            at: f64,
            phase: usize,
            seq: usize,
            width: u32,
            work: f64,
            sd: f64,
        }
        let mut raw: Vec<Raw> = Vec::new();
        for (pi, phase) in self.arrivals.iter().enumerate() {
            phase.validate(pi)?;
            let mut rng = stream(self.seed, Stream::Custom(0xC4A0_0000 + pi as u64));
            let mut t = phase.start;
            let mut seq = 0usize;
            loop {
                t = phase.next_after(t, &mut rng);
                if t > phase.end {
                    break;
                }
                let width = uniform_u32(phase.width_min, phase.width_max, &mut rng);
                let work = uniform_f64(phase.work_min, phase.work_max, &mut rng);
                let sd = uniform_f64(phase.sd_min, phase.sd_max, &mut rng);
                raw.push(Raw {
                    at: t,
                    phase: pi,
                    seq,
                    width,
                    work,
                    sd,
                });
                seq += 1;
                if let Some(cap) = self.max_jobs {
                    // Per-phase guard against hostile rates; the global
                    // cap is applied after the merge below.
                    if seq >= cap {
                        break;
                    }
                }
            }
        }
        raw.sort_by(|a, b| {
            a.at.total_cmp(&b.at)
                .then(a.phase.cmp(&b.phase))
                .then(a.seq.cmp(&b.seq))
        });
        if let Some(cap) = self.max_jobs {
            raw.truncate(cap);
        }
        let mut events: Vec<(Time, u8, usize, InjectionKind)> = Vec::new();
        let mut seq = 0usize;
        for (id, r) in raw.iter().enumerate() {
            let job = Job::builder(id as u64)
                .arrival(Time::new(r.at))
                .width(r.width)
                .work(r.work)
                .security_demand(r.sd)
                .build()?;
            let kind = InjectionKind::Arrive(job);
            events.push((Time::new(r.at), kind.rank(), seq, kind));
            seq += 1;
        }
        // --- faults: sample intervals, then sweep-sanitize ---
        struct Outage {
            site: usize,
            at: f64,
            until: Option<f64>,
        }
        let mut outages: Vec<Outage> = Vec::new();
        for (fi, fault) in self.faults.iter().enumerate() {
            match fault {
                FaultSpec::SiteDown { site, at, until } => {
                    if *site >= n_sites {
                        return Err(Error::UnknownSite(*site));
                    }
                    if !(at.is_finite() && *at >= 0.0) {
                        return Err(Error::invalid("scenario.faults", "bad outage instant"));
                    }
                    if let Some(u) = until {
                        if !(u.is_finite() && u > at) {
                            return Err(Error::invalid(
                                "scenario.faults",
                                "outage must end after it starts",
                            ));
                        }
                    }
                    outages.push(Outage {
                        site: *site,
                        at: *at,
                        until: *until,
                    });
                }
                FaultSpec::FaultStorm {
                    start,
                    end,
                    rate,
                    mttr,
                    sites,
                } => {
                    if !(start.is_finite() && end.is_finite() && *start >= 0.0 && end >= start) {
                        return Err(Error::invalid("scenario.faults", "bad storm window"));
                    }
                    if !(*rate > 0.0 && *mttr > 0.0) {
                        return Err(Error::invalid(
                            "scenario.faults",
                            "storm rate and mttr must be positive",
                        ));
                    }
                    let candidates: Vec<usize> = match sites {
                        Some(list) => {
                            for &s in list {
                                if s >= n_sites {
                                    return Err(Error::UnknownSite(s));
                                }
                            }
                            list.clone()
                        }
                        None => (0..n_sites).collect(),
                    };
                    if candidates.is_empty() {
                        return Err(Error::invalid("scenario.faults", "storm has no sites"));
                    }
                    let mut rng = stream(self.seed, Stream::Custom(0xC4A0_1000 + fi as u64));
                    let mut t = *start;
                    loop {
                        t += exp_gap(*rate, &mut rng);
                        if t > *end {
                            break;
                        }
                        let site = candidates[rng.gen_range(0..candidates.len())];
                        let repair = exp_gap(1.0 / *mttr, &mut rng);
                        outages.push(Outage {
                            site,
                            at: t,
                            until: Some(t + repair),
                        });
                    }
                }
            }
        }
        // Sweep in time order (rejoins before fails at ties): drop
        // outages that would double-fail a site or empty the grid.
        enum Edge {
            Fail(usize),
            Rejoin(usize),
        }
        let mut edges: Vec<(f64, u8, usize, Edge)> = Vec::new();
        for (oi, o) in outages.iter().enumerate() {
            edges.push((o.at, 1, oi, Edge::Fail(oi)));
            if let Some(u) = o.until {
                edges.push((u, 0, oi, Edge::Rejoin(oi)));
            }
        }
        edges.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)).then(a.2.cmp(&b.2)));
        let mut offline = vec![false; n_sites];
        let mut offline_count = 0usize;
        let mut dropped = vec![false; outages.len()];
        for (t, _, _, edge) in edges {
            match edge {
                Edge::Fail(oi) => {
                    let site = outages[oi].site;
                    // Double-fail, or this would take the last online
                    // site down — drop the whole outage.
                    if offline[site] || offline_count + 1 == n_sites {
                        dropped[oi] = true;
                        continue;
                    }
                    offline[site] = true;
                    offline_count += 1;
                    events.push((
                        Time::new(t),
                        InjectionKind::SiteFail(SiteId(site)).rank(),
                        seq,
                        InjectionKind::SiteFail(SiteId(site)),
                    ));
                    seq += 1;
                }
                Edge::Rejoin(oi) => {
                    if dropped[oi] {
                        continue;
                    }
                    let site = outages[oi].site;
                    offline[site] = false;
                    offline_count -= 1;
                    events.push((
                        Time::new(t),
                        InjectionKind::SiteRejoin(SiteId(site)).rank(),
                        seq,
                        InjectionKind::SiteRejoin(SiteId(site)),
                    ));
                    seq += 1;
                }
            }
        }
        // --- trust: merge explicit re-rates with storm instants, then
        // walk the level state chronologically ---
        enum TrustEvent {
            Set(Vec<f64>),
            Step(Vec<f64>),
        }
        let mut trust_events: Vec<(f64, usize, TrustEvent)> = Vec::new();
        for (ti, t) in self.trust.iter().enumerate() {
            match t {
                TrustSpec::ReRate { at, levels } => {
                    if !(at.is_finite() && *at >= 0.0) {
                        return Err(Error::invalid("scenario.trust", "bad re-rate instant"));
                    }
                    if levels.len() != n_sites {
                        return Err(Error::invalid(
                            "scenario.trust",
                            format!("{} levels for {} sites", levels.len(), n_sites),
                        ));
                    }
                    if levels.iter().any(|l| !(0.0..=1.0).contains(l)) {
                        return Err(Error::invalid(
                            "scenario.trust",
                            "security levels must lie in [0, 1]",
                        ));
                    }
                    trust_events.push((*at, ti, TrustEvent::Set(levels.clone())));
                }
                TrustSpec::TrustStorm {
                    start,
                    end,
                    rate,
                    jitter,
                } => {
                    if !(start.is_finite() && end.is_finite() && *start >= 0.0 && end >= start) {
                        return Err(Error::invalid("scenario.trust", "bad storm window"));
                    }
                    if rate.is_nan() || *rate <= 0.0 {
                        return Err(Error::invalid(
                            "scenario.trust",
                            "storm rate must be positive",
                        ));
                    }
                    if !(*jitter > 0.0 && *jitter <= 1.0) {
                        return Err(Error::invalid(
                            "scenario.trust",
                            "storm jitter must lie in (0, 1]",
                        ));
                    }
                    let mut rng = stream(self.seed, Stream::Custom(0xC4A0_2000 + ti as u64));
                    let mut t = *start;
                    loop {
                        t += exp_gap(*rate, &mut rng);
                        if t > *end {
                            break;
                        }
                        let deltas: Vec<f64> = (0..n_sites)
                            .map(|_| rng.gen_range(-*jitter..=*jitter))
                            .collect();
                        trust_events.push((t, ti, TrustEvent::Step(deltas)));
                    }
                }
            }
        }
        trust_events.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        let mut levels: Vec<f64> = grid.sites().map(|s| s.security_level).collect();
        for (t, _, ev) in trust_events {
            match ev {
                TrustEvent::Set(new) => levels = new,
                TrustEvent::Step(deltas) => {
                    for (l, d) in levels.iter_mut().zip(&deltas) {
                        *l = (*l + d).clamp(0.0, 1.0);
                    }
                }
            }
            let kind = InjectionKind::SetTrust(levels.clone());
            events.push((Time::new(t), kind.rank(), seq, kind));
            seq += 1;
        }
        // --- the total replay order ---
        events.sort_by(|a, b| a.0.cmp(&b.0).then(a.1.cmp(&b.1)).then(a.2.cmp(&b.2)));
        Ok(InjectionStream {
            events: events
                .into_iter()
                .map(|(at, _, _, kind)| Injection { at, kind })
                .collect(),
        })
    }
}

/// What a scenario replay produced, with the books balanced.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ScenarioOutcome {
    /// Every committed assignment in commit order — the timeline the
    /// determinism and equivalence suites compare bit for bit. Stranded
    /// commits stay in the log; their jobs re-appear later with a fresh
    /// commit.
    pub timeline: Vec<CommittedAssignment>,
    /// Arrivals in the stream (accepted + typed-rejected).
    pub jobs_generated: usize,
    /// Arrivals accepted into the queue.
    pub jobs_submitted: usize,
    /// Jobs with at least one live (non-stranded) commit.
    pub jobs_scheduled: usize,
    /// Stranded commits requeued by site failures.
    pub jobs_requeued: usize,
    /// Jobs still pending at the end (e.g. their only wide-enough site
    /// never rejoined).
    pub pending: usize,
    /// Non-empty scheduling rounds run.
    pub rounds: usize,
    /// Site failures applied.
    pub sites_failed: usize,
    /// Site rejoins applied.
    pub sites_rejoined: usize,
    /// Jobs rejected with a typed no-feasible-site error.
    pub rejected: Vec<JobId>,
    /// Per-round scheduler nanoseconds (latency distribution).
    pub round_nanos: Vec<u64>,
    /// Latest committed completion instant.
    pub max_completion: Time,
}

impl ScenarioOutcome {
    /// The zero-lost-jobs ledger: every generated job is scheduled (with
    /// a live commit), still pending, or typed-rejected.
    pub fn fully_accounted(&self) -> bool {
        self.jobs_generated == self.jobs_scheduled + self.pending + self.rejected.len()
            && self.jobs_submitted == self.jobs_scheduled + self.pending
    }
}

/// Replays an [`InjectionStream`] through the engine: a [`RoundDriver`]
/// driven by the shared [`BoundaryClock`], applying exactly the
/// daemon-session semantics for every injection (fire due boundaries
/// strictly before the instant, apply, re-arm or count-trigger).
pub struct ScenarioRunner {
    rounds: RoundDriver,
    scheduler: Box<dyn BatchScheduler + Send>,
    clock: BoundaryClock,
    timeline: Vec<CommittedAssignment>,
    /// Live commit counts per job (decremented when a commit is
    /// stranded; a job leaves the map at zero).
    live: HashMap<JobId, u32>,
    jobs_generated: usize,
    jobs_submitted: usize,
    jobs_requeued: usize,
    sites_failed: usize,
    sites_rejoined: usize,
    rejected: Vec<JobId>,
    round_nanos: Vec<u64>,
    max_completion: Time,
}

impl ScenarioRunner {
    /// A fresh runner. Only the batching/security subset of `config` is
    /// used, exactly as in the serving session.
    pub fn new(
        grid: Grid,
        scheduler: Box<dyn BatchScheduler + Send>,
        config: &SimConfig,
    ) -> Result<ScenarioRunner> {
        config.validate()?;
        Ok(ScenarioRunner {
            rounds: RoundDriver::new(
                grid,
                config.batch_policy,
                config.security,
                config.max_replicas,
            ),
            scheduler,
            clock: BoundaryClock::new(config.schedule_interval),
            timeline: Vec::new(),
            live: HashMap::new(),
            jobs_generated: 0,
            jobs_submitted: 0,
            jobs_requeued: 0,
            sites_failed: 0,
            sites_rejoined: 0,
            rejected: Vec::new(),
            round_nanos: Vec::new(),
            max_completion: Time::ZERO,
        })
    }

    /// Applies one injection.
    pub fn apply(&mut self, inj: &Injection) -> Result<()> {
        if inj.at < self.clock.now() {
            return Err(Error::invalid(
                "scenario",
                format!(
                    "injection at {} but the clock is already at {}",
                    inj.at,
                    self.clock.now()
                ),
            ));
        }
        match &inj.kind {
            InjectionKind::Arrive(job) => {
                self.jobs_generated += 1;
                if !self.rounds.grid().sites().any(|s| s.fits_width(job.width)) {
                    self.rejected.push(job.id);
                    return Ok(());
                }
                self.advance_strictly_before(inj.at)?;
                self.clock.advance_to(inj.at);
                self.jobs_submitted += 1;
                self.rounds.enqueue(BatchJob {
                    job: job.clone(),
                    secure_only: false,
                });
                if self.rounds.count_trigger_reached() {
                    self.clock.note_trigger();
                } else {
                    self.clock.ensure_armed();
                }
            }
            InjectionKind::SiteFail(site) => {
                self.advance_strictly_before(inj.at)?;
                self.clock.advance_to(inj.at);
                let stranded = self.rounds.fail_site(*site, inj.at)?;
                for id in &stranded {
                    if let Some(n) = self.live.get_mut(id) {
                        *n -= 1;
                        if *n == 0 {
                            self.live.remove(id);
                        }
                    }
                }
                self.jobs_requeued += stranded.len();
                self.sites_failed += 1;
                self.scheduler.on_reconfigure();
                self.after_churn();
            }
            InjectionKind::SiteRejoin(site) => {
                self.advance_strictly_before(inj.at)?;
                self.clock.advance_to(inj.at);
                self.rounds.rejoin_site(*site, inj.at)?;
                self.sites_rejoined += 1;
                self.scheduler.on_reconfigure();
                self.after_churn();
            }
            InjectionKind::SetTrust(levels) => {
                self.advance_strictly_before(inj.at)?;
                self.clock.advance_to(inj.at);
                self.set_trust(levels)?;
            }
        }
        Ok(())
    }

    /// Replays the whole stream and settles the queue.
    pub fn run(mut self, stream: &InjectionStream) -> Result<ScenarioOutcome> {
        for inj in &stream.events {
            self.apply(inj)?;
        }
        self.finish()
    }

    /// Fires every queued boundary and closes the books. Jobs that fit
    /// no online site remain pending (accounted, not lost).
    pub fn finish(mut self) -> Result<ScenarioOutcome> {
        while let Some(b) = self.clock.pop_any() {
            self.fire(b)?;
        }
        if self.rounds.pending_len() > 0 {
            let at = self.clock.next_periodic_instant();
            self.fire(at)?;
        }
        Ok(ScenarioOutcome {
            timeline: self.timeline,
            jobs_generated: self.jobs_generated,
            jobs_submitted: self.jobs_submitted,
            jobs_scheduled: self.live.len(),
            jobs_requeued: self.jobs_requeued,
            pending: self.rounds.pending_len(),
            rounds: self.rounds.n_rounds(),
            sites_failed: self.sites_failed,
            sites_rejoined: self.sites_rejoined,
            rejected: self.rejected,
            round_nanos: self.round_nanos,
            max_completion: self.max_completion,
        })
    }

    /// The session's trust reconfiguration, verbatim.
    fn set_trust(&mut self, levels: &[f64]) -> Result<()> {
        if levels.len() != self.rounds.grid().len() {
            return Err(Error::invalid(
                "reconfigure",
                format!(
                    "{} security levels for {} sites",
                    levels.len(),
                    self.rounds.grid().len()
                ),
            ));
        }
        let mut sites: Vec<Site> = Vec::with_capacity(levels.len());
        for (site, &sl) in self.rounds.grid().sites().zip(levels) {
            if !(0.0..=1.0).contains(&sl) {
                return Err(Error::invalid(
                    "reconfigure",
                    format!("security level {sl} for site {} not in [0, 1]", site.id),
                ));
            }
            let mut s = site.clone();
            s.security_level = sl;
            sites.push(s);
        }
        self.rounds.set_grid(Grid::new(sites)?)?;
        self.scheduler.on_reconfigure();
        Ok(())
    }

    /// After churn mutated the queue or the usable-site set: mirror the
    /// enqueue policy so requeued/deferred work is guaranteed a boundary.
    fn after_churn(&mut self) {
        if self.rounds.count_trigger_reached() {
            self.clock.note_trigger();
        } else if self.rounds.pending_len() > 0 {
            self.clock.ensure_armed();
        }
    }

    fn advance_strictly_before(&mut self, t: Time) -> Result<()> {
        while let Some(b) = self.clock.pop_strictly_before(t) {
            self.fire(b)?;
        }
        Ok(())
    }

    fn fire(&mut self, b: Time) -> Result<()> {
        self.clock.fired(b);
        let Some(outcome) = self.rounds.run_round(self.scheduler.as_mut(), b)? else {
            return Ok(());
        };
        self.round_nanos.push(outcome.scheduler_nanos as u64);
        let by_id: HashMap<JobId, &Job> =
            outcome.batch.iter().map(|x| (x.job.id, &x.job)).collect();
        for a in &outcome.schedule.assignments {
            let job = *by_id
                .get(&a.job)
                .expect("validated schedule covers only batch jobs");
            let c = self.rounds.commit_assignment(job, a.site, b);
            self.max_completion = self.max_completion.max(c.end);
            *self.live.entry(c.job).or_insert(0) += 1;
            self.timeline.push(c);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::BatchPolicy;
    use crate::scheduler::EarliestCompletion;

    fn grid(nodes: &[u32]) -> Grid {
        Grid::new(
            nodes
                .iter()
                .enumerate()
                .map(|(i, &n)| {
                    Site::builder(i)
                        .nodes(n)
                        .speed(1.0 + i as f64)
                        .security_level(0.9)
                        .build()
                        .unwrap()
                })
                .collect(),
        )
        .unwrap()
    }

    fn poisson_phase(rate: f64, start: f64, end: f64) -> ArrivalPhase {
        ArrivalPhase {
            tenant: "t".into(),
            start,
            end,
            process: ArrivalProcess::Poisson { rate },
            width_min: 1,
            width_max: 2,
            work_min: 5.0,
            work_max: 50.0,
            sd_min: 0.6,
            sd_max: 0.9,
        }
    }

    fn config() -> SimConfig {
        SimConfig::default()
            .with_interval(Time::new(10.0))
            .with_batch_policy(BatchPolicy::Periodic)
    }

    #[test]
    fn compile_is_deterministic_and_ordered() {
        let g = grid(&[2, 4, 2]);
        let sc = Scenario {
            seed: 42,
            arrivals: vec![
                poisson_phase(0.5, 0.0, 100.0),
                poisson_phase(0.2, 20.0, 80.0),
            ],
            faults: vec![FaultSpec::FaultStorm {
                start: 0.0,
                end: 100.0,
                rate: 0.05,
                mttr: 20.0,
                sites: None,
            }],
            trust: vec![TrustSpec::TrustStorm {
                start: 0.0,
                end: 100.0,
                rate: 0.1,
                jitter: 0.2,
            }],
            max_jobs: None,
        };
        let a = sc.compile(&g).unwrap();
        let b = sc.compile(&g).unwrap();
        assert_eq!(a, b);
        assert!(!a.is_empty());
        assert!(
            a.events.windows(2).all(|w| w[0].at <= w[1].at),
            "stream must be time-ordered"
        );
        // Job ids are assigned in arrival order.
        let ids: Vec<u64> = a
            .events
            .iter()
            .filter_map(|e| match &e.kind {
                InjectionKind::Arrive(j) => Some(j.id.0),
                _ => None,
            })
            .collect();
        assert!(ids.windows(2).all(|w| w[0] + 1 == w[1]));
        // A different seed produces a different stream.
        let other = Scenario {
            seed: 43,
            ..sc.clone()
        }
        .compile(&g)
        .unwrap();
        assert_ne!(a, other);
    }

    #[test]
    fn storms_never_take_the_last_site_down() {
        let g = grid(&[2, 2]);
        let sc = Scenario {
            seed: 7,
            arrivals: vec![],
            faults: vec![FaultSpec::FaultStorm {
                start: 0.0,
                end: 500.0,
                rate: 0.5,
                mttr: 100.0,
                sites: None,
            }],
            trust: vec![],
            max_jobs: None,
        };
        let s = sc.compile(&g).unwrap();
        let mut offline = 0i64;
        for e in &s.events {
            match e.kind {
                InjectionKind::SiteFail(_) => offline += 1,
                InjectionKind::SiteRejoin(_) => offline -= 1,
                _ => {}
            }
            assert!(offline < 2, "both sites offline at {}", e.at);
            assert!(offline >= 0);
        }
    }

    #[test]
    fn trust_storm_levels_stay_in_range_and_walk() {
        let g = grid(&[2, 2, 2]);
        let sc = Scenario {
            seed: 9,
            arrivals: vec![],
            faults: vec![],
            trust: vec![
                TrustSpec::ReRate {
                    at: 5.0,
                    levels: vec![0.5, 0.5, 0.5],
                },
                TrustSpec::TrustStorm {
                    start: 0.0,
                    end: 200.0,
                    rate: 0.2,
                    jitter: 0.3,
                },
            ],
            max_jobs: None,
        };
        let s = sc.compile(&g).unwrap();
        let mut n = 0;
        for e in &s.events {
            if let InjectionKind::SetTrust(levels) = &e.kind {
                assert_eq!(levels.len(), 3);
                assert!(levels.iter().all(|l| (0.0..=1.0).contains(l)));
                n += 1;
            }
        }
        assert!(n > 1);
    }

    #[test]
    fn runner_accounts_for_every_job_under_churn() {
        let g = grid(&[2, 4]);
        let sc = Scenario {
            seed: 11,
            arrivals: vec![poisson_phase(0.5, 0.0, 200.0)],
            faults: vec![
                FaultSpec::SiteDown {
                    site: 1,
                    at: 30.0,
                    until: Some(90.0),
                },
                FaultSpec::SiteDown {
                    site: 0,
                    at: 120.0,
                    until: Some(150.0),
                },
            ],
            trust: vec![TrustSpec::ReRate {
                at: 60.0,
                levels: vec![0.4, 0.8],
            }],
            max_jobs: Some(100),
        };
        let stream = sc.compile(&g).unwrap();
        let out = ScenarioRunner::new(g, Box::new(EarliestCompletion), &config())
            .unwrap()
            .run(&stream)
            .unwrap();
        assert!(out.fully_accounted(), "{out:?}");
        assert_eq!(out.sites_failed, 2);
        assert_eq!(out.sites_rejoined, 2);
        assert_eq!(out.jobs_generated, stream.n_jobs());
        assert_eq!(out.pending, 0);
        assert!(out.rounds > 0);
    }

    #[test]
    fn stranded_jobs_are_requeued_and_rescheduled() {
        // One long job lands on the fast site at the first boundary;
        // that site then dies mid-execution.
        let g = grid(&[2, 2]);
        let sc = Scenario {
            seed: 1,
            arrivals: vec![ArrivalPhase {
                tenant: "victim".into(),
                start: 0.0,
                end: 4.0,
                process: ArrivalProcess::Poisson { rate: 0.5 },
                width_min: 1,
                width_max: 1,
                work_min: 500.0,
                work_max: 500.0,
                sd_min: 0.6,
                sd_max: 0.6,
            }],
            faults: vec![FaultSpec::SiteDown {
                site: 1,
                at: 20.0,
                until: Some(40.0),
            }],
            trust: vec![],
            max_jobs: Some(4),
        };
        let stream = sc.compile(&g).unwrap();
        let n_jobs = stream.n_jobs();
        assert!(n_jobs > 0);
        let out = ScenarioRunner::new(g, Box::new(EarliestCompletion), &config())
            .unwrap()
            .run(&stream)
            .unwrap();
        assert!(out.jobs_requeued > 0, "{out:?}");
        assert!(out.fully_accounted(), "{out:?}");
        assert_eq!(out.jobs_scheduled, out.jobs_submitted);
        // The timeline holds both the stranded commit and the re-commit.
        assert!(out.timeline.len() > n_jobs - out.rejected.len());
    }

    #[test]
    fn replay_is_bit_identical_for_the_same_seed() {
        let g = grid(&[2, 4, 2]);
        let sc = Scenario {
            seed: 33,
            arrivals: vec![poisson_phase(0.8, 0.0, 120.0)],
            faults: vec![FaultSpec::FaultStorm {
                start: 0.0,
                end: 120.0,
                rate: 0.05,
                mttr: 15.0,
                sites: None,
            }],
            trust: vec![TrustSpec::TrustStorm {
                start: 0.0,
                end: 120.0,
                rate: 0.1,
                jitter: 0.25,
            }],
            max_jobs: Some(150),
        };
        let run = || {
            let stream = sc.compile(&g).unwrap();
            ScenarioRunner::new(g.clone(), Box::new(EarliestCompletion), &config())
                .unwrap()
                .run(&stream)
                .unwrap()
        };
        let a = run();
        let b = run();
        assert_eq!(a.timeline, b.timeline);
        // Everything but the wall-clock latency samples is reproducible.
        assert_eq!(a.jobs_scheduled, b.jobs_scheduled);
        assert_eq!(a.rejected, b.rejected);
        assert_eq!(a.max_completion, b.max_completion);
    }

    #[test]
    fn slice_for_shard_partitions_the_stream() {
        let g = grid(&[2, 2, 4, 4]);
        let plan = ShardPlan::contiguous(&g, 2).unwrap();
        let sc = Scenario {
            seed: 5,
            arrivals: vec![poisson_phase(0.5, 0.0, 100.0)],
            faults: vec![FaultSpec::SiteDown {
                site: 3,
                at: 20.0,
                until: Some(50.0),
            }],
            trust: vec![TrustSpec::ReRate {
                at: 10.0,
                levels: vec![0.1, 0.2, 0.3, 0.4],
            }],
            max_jobs: Some(50),
        };
        let s = sc.compile(&g).unwrap();
        let s0 = s.slice_for_shard(&plan, &g, 0);
        let s1 = s.slice_for_shard(&plan, &g, 1);
        assert_eq!(s0.n_jobs() + s1.n_jobs(), s.n_jobs());
        // The outage on global site 3 lands only in shard 1, as local id 1.
        assert!(s0
            .events
            .iter()
            .all(|e| !matches!(e.kind, InjectionKind::SiteFail(_))));
        assert!(s1
            .events
            .iter()
            .any(|e| matches!(e.kind, InjectionKind::SiteFail(SiteId(1)))));
        // Trust vectors are sliced per shard.
        let t1: Vec<_> = s1
            .events
            .iter()
            .filter_map(|e| match &e.kind {
                InjectionKind::SetTrust(l) => Some(l.clone()),
                _ => None,
            })
            .collect();
        assert_eq!(t1, vec![vec![0.3, 0.4]]);
    }

    #[test]
    fn scenario_json_roundtrips() {
        let sc = Scenario {
            seed: 99,
            arrivals: vec![poisson_phase(1.0, 0.0, 10.0)],
            faults: vec![FaultSpec::SiteDown {
                site: 0,
                at: 5.0,
                until: None,
            }],
            trust: vec![],
            max_jobs: Some(10),
        };
        let back = Scenario::from_json(&sc.to_json()).unwrap();
        assert_eq!(back.seed, 99);
        assert_eq!(back.arrivals.len(), 1);
        assert!(Scenario::from_json("{").is_err());
    }

    #[test]
    fn invalid_specs_are_rejected() {
        let g = grid(&[2, 2]);
        let mut bad_phase = poisson_phase(0.0, 0.0, 10.0);
        assert!(Scenario {
            seed: 0,
            arrivals: vec![bad_phase.clone()],
            faults: vec![],
            trust: vec![],
            max_jobs: None,
        }
        .compile(&g)
        .is_err());
        bad_phase.process = ArrivalProcess::Pareto {
            rate: 1.0,
            alpha: 0.9,
        };
        assert!(Scenario {
            seed: 0,
            arrivals: vec![bad_phase],
            faults: vec![],
            trust: vec![],
            max_jobs: None,
        }
        .compile(&g)
        .is_err());
        assert!(Scenario {
            seed: 0,
            arrivals: vec![],
            faults: vec![FaultSpec::SiteDown {
                site: 9,
                at: 0.0,
                until: None,
            }],
            trust: vec![],
            max_jobs: None,
        }
        .compile(&g)
        .is_err());
        assert!(Scenario {
            seed: 0,
            arrivals: vec![],
            faults: vec![],
            trust: vec![TrustSpec::ReRate {
                at: 0.0,
                levels: vec![0.5],
            }],
            max_jobs: None,
        }
        .compile(&g)
        .is_err());
    }

    #[test]
    fn pareto_and_diurnal_phases_generate_in_window() {
        let g = grid(&[4]);
        for process in [
            ArrivalProcess::Pareto {
                rate: 0.5,
                alpha: 1.5,
            },
            ArrivalProcess::Diurnal {
                base_rate: 0.05,
                peak_rate: 1.0,
                period: 50.0,
            },
        ] {
            let mut phase = poisson_phase(1.0, 10.0, 200.0);
            phase.process = process;
            let sc = Scenario {
                seed: 3,
                arrivals: vec![phase],
                faults: vec![],
                trust: vec![],
                max_jobs: None,
            };
            let s = sc.compile(&g).unwrap();
            assert!(s.n_jobs() > 0);
            for e in &s.events {
                if let InjectionKind::Arrive(j) = &e.kind {
                    assert!(j.arrival.seconds() > 10.0 && j.arrival.seconds() <= 200.0);
                    assert_eq!(e.at, j.arrival);
                }
            }
        }
    }
}
