//! The reusable batch/round core: pending-queue accumulation under a
//! [`BatchPolicy`], scheduler invocation over a [`GridView`], and
//! replication-aware schedule validation.
//!
//! Both front ends drive the same `RoundDriver`:
//!
//! * the discrete-event [`Simulator`](crate::Simulator), where rounds fire
//!   at simulated batch boundaries and dispatch outcomes (including
//!   failures) feed back into the availability model, and
//! * the `gridsec-serve` daemon, where rounds fire on submitted traffic
//!   and committed assignments are the served schedule.
//!
//! Keeping the queue, the trigger logic and the validation in one place
//! guarantees the daemon schedules exactly like the simulator for the same
//! job stream and policy — the golden cross-check test in `crates/serve`
//! pins that equivalence bit for bit.

use crate::config::BatchPolicy;
use crate::scheduler::{BatchJob, BatchScheduler, GridView};
use gridsec_core::etc::NodeAvailability;
use gridsec_core::{BatchSchedule, Error, Grid, JobId, Result, SecurityModel, SiteId, Time};
use std::collections::HashMap;

/// Everything one scheduling round produced.
#[derive(Debug, Clone)]
pub struct RoundOutcome {
    /// The batch handed to the scheduler (taken from the pending queue).
    pub batch: Vec<BatchJob>,
    /// The validated schedule, in dispatch order.
    pub schedule: BatchSchedule,
    /// Wall-clock nanoseconds spent inside the scheduler for this round.
    pub scheduler_nanos: u128,
}

/// One assignment as committed against the availability model — the
/// daemon's unit of served schedule (mirrors the simulator's dispatch
/// arithmetic exactly).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CommittedAssignment {
    /// The job placed.
    pub job: JobId,
    /// The site it was placed on.
    pub site: SiteId,
    /// Nodes occupied.
    pub width: u32,
    /// Start of execution (earliest fit at or after the round instant).
    pub start: Time,
    /// End of execution (`start + work / speed`).
    pub end: Time,
}

/// The batch/round state machine shared by the engine and the daemon.
#[derive(Debug)]
pub struct RoundDriver {
    grid: Grid,
    avail: Vec<NodeAvailability>,
    pending: Vec<BatchJob>,
    policy: BatchPolicy,
    model: SecurityModel,
    max_replicas: u32,
    n_rounds: usize,
    batch_sizes: Vec<usize>,
    scheduler_nanos: u128,
}

impl RoundDriver {
    /// A fresh driver over `grid`: empty queue, all nodes free at t = 0.
    pub fn new(
        grid: Grid,
        policy: BatchPolicy,
        model: SecurityModel,
        max_replicas: u32,
    ) -> RoundDriver {
        let avail = grid
            .sites()
            .map(|s| NodeAvailability::new(s.nodes, Time::ZERO))
            .collect();
        RoundDriver {
            grid,
            avail,
            pending: Vec::new(),
            policy,
            model,
            max_replicas,
            n_rounds: 0,
            batch_sizes: Vec::new(),
            scheduler_nanos: 0,
        }
    }

    /// Adds a job to the pending queue.
    pub fn enqueue(&mut self, job: BatchJob) {
        self.pending.push(job);
    }

    /// Whether the policy's count trigger is reached (always false for the
    /// purely periodic policy).
    pub fn count_trigger_reached(&self) -> bool {
        match self.policy {
            BatchPolicy::Periodic => false,
            BatchPolicy::CountTriggered(k) | BatchPolicy::Hybrid(k) => self.pending.len() >= k,
        }
    }

    /// The batching policy in force.
    pub fn policy(&self) -> BatchPolicy {
        self.policy
    }

    /// Jobs currently queued.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// The (current) grid.
    pub fn grid(&self) -> &Grid {
        &self.grid
    }

    /// Replaces the grid (security-level walks, trust reconfiguration).
    /// Site count must not change — availability state is carried over.
    ///
    /// The driver does not own the scheduler (rounds borrow one per
    /// call), so callers that *do* own one must follow this with
    /// [`BatchScheduler::on_reconfigure`](crate::BatchScheduler::on_reconfigure)
    /// to invalidate snapshot-compiled scheduler state; the next
    /// [`RoundDriver::run_round`] then hands the scheduler a `GridView`
    /// of the new snapshot, from which kernel-based schedulers re-lower
    /// their fitness program.
    pub fn set_grid(&mut self, grid: Grid) -> Result<()> {
        if grid.len() != self.grid.len() {
            return Err(Error::invalid(
                "grid",
                format!(
                    "cannot reconfigure from {} to {} sites mid-run",
                    self.grid.len(),
                    grid.len()
                ),
            ));
        }
        self.grid = grid;
        Ok(())
    }

    /// Per-site availability (the reservation model).
    pub fn avail(&self) -> &[NodeAvailability] {
        &self.avail
    }

    /// Mutable availability — the engine's dispatch commits attempts here.
    pub fn avail_mut(&mut self) -> &mut [NodeAvailability] {
        &mut self.avail
    }

    /// Number of non-empty rounds run so far.
    pub fn n_rounds(&self) -> usize {
        self.n_rounds
    }

    /// Sizes of every non-empty batch scheduled so far.
    pub fn batch_sizes(&self) -> &[usize] {
        &self.batch_sizes
    }

    /// Total wall-clock nanoseconds spent inside the scheduler.
    pub fn scheduler_nanos(&self) -> u128 {
        self.scheduler_nanos
    }

    /// Runs one scheduling round at instant `now`: takes the pending
    /// queue as the batch, invokes the scheduler over the current grid
    /// view, and validates the result (replication-aware). Returns
    /// `Ok(None)` when nothing is pending.
    ///
    /// The returned schedule is **not** committed to the availability
    /// model; the engine commits per dispatch (failures shorten
    /// occupancy), the daemon commits via
    /// [`RoundDriver::commit_assignment`].
    pub fn run_round<S: BatchScheduler + ?Sized>(
        &mut self,
        scheduler: &mut S,
        now: Time,
    ) -> Result<Option<RoundOutcome>> {
        if self.pending.is_empty() {
            return Ok(None);
        }
        let batch = std::mem::take(&mut self.pending);
        self.n_rounds += 1;
        self.batch_sizes.push(batch.len());
        let view = GridView {
            grid: &self.grid,
            avail: &self.avail,
            now,
            model: self.model,
        };
        let t0 = std::time::Instant::now();
        let schedule = scheduler.schedule(&batch, &view);
        let scheduler_nanos = t0.elapsed().as_nanos();
        self.scheduler_nanos += scheduler_nanos;
        self.validate_schedule(&schedule, &batch)?;
        Ok(Some(RoundOutcome {
            batch,
            schedule,
            scheduler_nanos,
        }))
    }

    /// Replication-aware validation: every batch job covered at least
    /// once, at most `max_replicas` times, on distinct fitting sites.
    fn validate_schedule(&self, schedule: &BatchSchedule, batch: &[BatchJob]) -> Result<()> {
        // One job→sites index instead of per-assignment map churn; the
        // replica checks below run off the indexed site lists.
        let index = schedule.index();
        let in_batch: HashMap<JobId, u32> = batch.iter().map(|b| (b.job.id, b.job.width)).collect();
        for a in &schedule.assignments {
            let width = *in_batch.get(&a.job).ok_or(Error::UnknownJob(a.job.0))?;
            let site = self.grid.get(a.site).ok_or(Error::UnknownSite(a.site.0))?;
            if !site.fits_width(width) {
                return Err(Error::WidthExceedsSite {
                    job: a.job.0,
                    width,
                    site_nodes: site.nodes,
                });
            }
        }
        for b in batch {
            let sites = index.sites_of(b.job.id);
            if sites.len() as u32 > self.max_replicas {
                return Err(Error::invalid(
                    "schedule",
                    format!(
                        "job {} assigned {} times (max_replicas = {})",
                        b.job.id,
                        sites.len(),
                        self.max_replicas
                    ),
                ));
            }
            for (i, s) in sites.iter().enumerate() {
                if sites[..i].contains(s) {
                    return Err(Error::invalid(
                        "schedule",
                        format!("job {} replicated twice on site {}", b.job.id, s),
                    ));
                }
            }
        }
        if index.n_jobs() != batch.len() {
            return Err(Error::IncompleteSchedule {
                expected: batch.len(),
                assigned: index.n_jobs(),
            });
        }
        Ok(())
    }

    /// Commits one assignment as a *successful* execution: the job
    /// occupies `width` nodes from its earliest fit (at or after `now`)
    /// for its full execution time. This is exactly the simulator's
    /// dispatch arithmetic in the no-failure case, so a daemon committing
    /// every assignment of every round reproduces the engine's
    /// availability trajectory bit for bit.
    pub fn commit_assignment(
        &mut self,
        job: &gridsec_core::Job,
        site_id: SiteId,
        now: Time,
    ) -> CommittedAssignment {
        let site = self.grid.site(site_id).clone();
        let start = self.avail[site_id.0]
            .earliest_start(job.width, now.max(job.arrival))
            .expect("validated width");
        let end = start + job.exec_time(site.speed);
        self.avail[site_id.0].commit(job.width, end);
        CommittedAssignment {
            job: job.id,
            site: site_id,
            width: job.width,
            start,
            end,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::EarliestCompletion;
    use gridsec_core::{Job, Site};

    fn grid2() -> Grid {
        Grid::new(vec![
            Site::builder(0)
                .nodes(2)
                .speed(1.0)
                .security_level(1.0)
                .build()
                .unwrap(),
            Site::builder(1)
                .nodes(2)
                .speed(2.0)
                .security_level(1.0)
                .build()
                .unwrap(),
        ])
        .unwrap()
    }

    fn bj(id: u64, work: f64) -> BatchJob {
        BatchJob {
            job: Job::builder(id)
                .work(work)
                .security_demand(0.5)
                .build()
                .unwrap(),
            secure_only: false,
        }
    }

    #[test]
    fn empty_queue_round_is_a_noop() {
        let mut d = RoundDriver::new(grid2(), BatchPolicy::Periodic, Default::default(), 1);
        let out = d.run_round(&mut EarliestCompletion, Time::ZERO).unwrap();
        assert!(out.is_none());
        assert_eq!(d.n_rounds(), 0);
    }

    #[test]
    fn round_drains_queue_and_counts() {
        let mut d = RoundDriver::new(grid2(), BatchPolicy::Periodic, Default::default(), 1);
        d.enqueue(bj(0, 10.0));
        d.enqueue(bj(1, 20.0));
        let out = d
            .run_round(&mut EarliestCompletion, Time::new(5.0))
            .unwrap()
            .unwrap();
        assert_eq!(out.batch.len(), 2);
        assert_eq!(out.schedule.len(), 2);
        assert_eq!(d.pending_len(), 0);
        assert_eq!(d.n_rounds(), 1);
        assert_eq!(d.batch_sizes(), &[2]);
    }

    #[test]
    fn count_trigger_matches_policy() {
        let mut d = RoundDriver::new(grid2(), BatchPolicy::Hybrid(2), Default::default(), 1);
        d.enqueue(bj(0, 10.0));
        assert!(!d.count_trigger_reached());
        d.enqueue(bj(1, 10.0));
        assert!(d.count_trigger_reached());
        let periodic = RoundDriver::new(grid2(), BatchPolicy::Periodic, Default::default(), 1);
        assert!(!periodic.count_trigger_reached());
    }

    #[test]
    fn commit_follows_engine_arithmetic() {
        let mut d = RoundDriver::new(grid2(), BatchPolicy::Periodic, Default::default(), 1);
        let job = Job::builder(0)
            .work(100.0)
            .arrival(Time::new(3.0))
            .build()
            .unwrap();
        // Site 1 has speed 2 → exec 50, start at max(now, arrival) = 10.
        let c = d.commit_assignment(&job, SiteId(1), Time::new(10.0));
        assert_eq!(c.start, Time::new(10.0));
        assert_eq!(c.end, Time::new(60.0));
        // The second commit on the same site queues behind the first
        // (width 1 on a 2-node site runs in parallel; occupy both nodes).
        let wide = Job::builder(1).width(2).work(10.0).build().unwrap();
        let c2 = d.commit_assignment(&wide, SiteId(1), Time::new(10.0));
        assert_eq!(c2.start, Time::new(60.0));
    }

    #[test]
    fn validation_rejects_unknown_jobs() {
        struct Rogue;
        impl BatchScheduler for Rogue {
            fn name(&self) -> String {
                "Rogue".into()
            }
            fn schedule(&mut self, _batch: &[BatchJob], _view: &GridView<'_>) -> BatchSchedule {
                BatchSchedule::from_pairs([(JobId(999), SiteId(0))])
            }
        }
        let mut d = RoundDriver::new(grid2(), BatchPolicy::Periodic, Default::default(), 1);
        d.enqueue(bj(0, 10.0));
        assert!(d.run_round(&mut Rogue, Time::ZERO).is_err());
    }

    #[test]
    fn set_grid_keeps_site_count() {
        let mut d = RoundDriver::new(grid2(), BatchPolicy::Periodic, Default::default(), 1);
        assert!(d.set_grid(grid2()).is_ok());
        let one = Grid::new(vec![Site::builder(0).nodes(1).build().unwrap()]).unwrap();
        assert!(d.set_grid(one).is_err());
    }
}
