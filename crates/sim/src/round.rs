//! The reusable batch/round core: pending-queue accumulation under a
//! [`BatchPolicy`], scheduler invocation over a [`GridView`], and
//! replication-aware schedule validation.
//!
//! Both front ends drive the same `RoundDriver`:
//!
//! * the discrete-event [`Simulator`](crate::Simulator), where rounds fire
//!   at simulated batch boundaries and dispatch outcomes (including
//!   failures) feed back into the availability model, and
//! * the `gridsec-serve` daemon, where rounds fire on submitted traffic
//!   and committed assignments are the served schedule.
//!
//! Keeping the queue, the trigger logic and the validation in one place
//! guarantees the daemon schedules exactly like the simulator for the same
//! job stream and policy — the golden cross-check test in `crates/serve`
//! pins that equivalence bit for bit.

use crate::config::BatchPolicy;
use crate::scheduler::{BatchJob, BatchScheduler, GridView};
use gridsec_core::etc::NodeAvailability;
use gridsec_core::{BatchSchedule, Error, Grid, Job, JobId, Result, SecurityModel, SiteId, Time};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

/// The batch-boundary clock shared by the serving session and the
/// scenario runner: a virtual `now`, a queue of pending boundaries (which
/// may hold stale duplicates, exactly like the engine's event queue), and
/// the engine's `boundary_scheduled` mirror — at most one *armed*
/// periodic boundary at a time.
///
/// Both front ends drive the same sequence for every input event:
/// pop-and-fire every due boundary strictly before the event instant,
/// advance `now`, apply the event, then re-arm (or count-trigger). Keeping
/// that state machine in one place is what makes the daemon and the
/// scenario engine replay a chaos injection stream bit-identically — the
/// chaos equivalence suite in `crates/serve` pins it.
#[derive(Debug, Clone)]
pub struct BoundaryClock {
    interval: Time,
    now: Time,
    boundaries: BinaryHeap<Reverse<Time>>,
    armed: Option<Time>,
}

impl BoundaryClock {
    /// A clock at t = 0 with the given scheduling interval.
    pub fn new(interval: Time) -> BoundaryClock {
        BoundaryClock {
            interval,
            now: Time::ZERO,
            boundaries: BinaryHeap::new(),
            armed: None,
        }
    }

    /// The current virtual instant.
    pub fn now(&self) -> Time {
        self.now
    }

    /// Moves the clock forward to `t` (never backwards).
    pub fn advance_to(&mut self, t: Time) {
        if t > self.now {
            self.now = t;
        }
    }

    /// The earliest queued boundary, if any (the daemon's wall-clock
    /// deadline).
    pub fn next_boundary(&self) -> Option<Time> {
        self.boundaries.peek().map(|r| r.0)
    }

    /// Pops the earliest boundary strictly before `t` — the engine fires
    /// these before the arrival event at `t` (boundaries *at* `t` sort
    /// after arrivals at equal timestamps). Callers loop until `None`,
    /// firing each popped boundary.
    pub fn pop_strictly_before(&mut self, t: Time) -> Option<Time> {
        match self.boundaries.peek() {
            Some(&Reverse(b)) if b < t => {
                self.boundaries.pop();
                Some(b)
            }
            _ => None,
        }
    }

    /// Pops the earliest boundary at or before `t` (wall-clock mode's
    /// inclusive timer path).
    pub fn pop_at_or_before(&mut self, t: Time) -> Option<Time> {
        match self.boundaries.peek() {
            Some(&Reverse(b)) if b <= t => {
                self.boundaries.pop();
                Some(b)
            }
            _ => None,
        }
    }

    /// Pops the earliest queued boundary unconditionally (drain path).
    pub fn pop_any(&mut self) -> Option<Time> {
        self.boundaries.pop().map(|Reverse(b)| b)
    }

    /// Records that the boundary at `b` fired: the clock advances to `b`
    /// and the armed flag clears — even when the boundary that fired was
    /// count-triggered, so stale periodic boundaries still fire as no-ops,
    /// as in the engine.
    pub fn fired(&mut self, b: Time) {
        self.advance_to(b);
        self.armed = None;
    }

    /// Queues a count-triggered boundary at the current instant (once per
    /// triggering enqueue, like the engine's event pushes).
    pub fn note_trigger(&mut self) {
        self.boundaries.push(Reverse(self.now));
    }

    /// The engine's `ensure_boundary`: arm a boundary at the next interval
    /// multiple strictly after `now`, unless one is already armed.
    pub fn ensure_armed(&mut self) {
        if self.armed.is_some() {
            return;
        }
        let at = self.next_periodic_instant();
        self.armed = Some(at);
        self.boundaries.push(Reverse(at));
    }

    /// The next multiple of the scheduling interval strictly after `now`.
    pub fn next_periodic_instant(&self) -> Time {
        let period = self.interval.seconds();
        let k = (self.now.seconds() / period).floor() + 1.0;
        Time::new(k * period)
    }
}

/// A commit still (possibly) executing — tracked so that a site failure
/// can identify the jobs stranded on it and requeue them.
#[derive(Debug, Clone)]
struct Inflight {
    job: Job,
    site: SiteId,
    end: Time,
}

/// Everything one scheduling round produced.
#[derive(Debug, Clone)]
pub struct RoundOutcome {
    /// The batch handed to the scheduler (taken from the pending queue).
    pub batch: Vec<BatchJob>,
    /// The validated schedule, in dispatch order.
    pub schedule: BatchSchedule,
    /// Wall-clock nanoseconds spent inside the scheduler for this round.
    pub scheduler_nanos: u128,
}

/// One assignment as committed against the availability model — the
/// daemon's unit of served schedule (mirrors the simulator's dispatch
/// arithmetic exactly).
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct CommittedAssignment {
    /// The job placed.
    pub job: JobId,
    /// The site it was placed on.
    pub site: SiteId,
    /// Nodes occupied.
    pub width: u32,
    /// Start of execution (earliest fit at or after the round instant).
    pub start: Time,
    /// End of execution (`start + work / speed`).
    pub end: Time,
}

/// The batch/round state machine shared by the engine and the daemon.
#[derive(Debug)]
pub struct RoundDriver {
    grid: Grid,
    avail: Vec<NodeAvailability>,
    pending: Vec<BatchJob>,
    policy: BatchPolicy,
    model: SecurityModel,
    max_replicas: u32,
    n_rounds: usize,
    batch_sizes: Vec<usize>,
    /// When set, [`RoundDriver::batch_sizes`] keeps only the most
    /// recent this-many rounds (long-lived serving sessions cap it;
    /// the engine's finite replays keep the unbounded default).
    stats_window: Option<usize>,
    scheduler_nanos: u128,
    /// Per-site offline mask (site churn). Offline sites are excluded
    /// from the scheduler's view; jobs fitting no online site stay
    /// pending rather than being lost.
    offline: Vec<bool>,
    /// Commits whose execution window may still be open, in commit order
    /// (pruned lazily). Only front ends that commit through
    /// [`RoundDriver::commit_assignment`] populate this — the
    /// discrete-event engine tracks execution in its own event queue.
    inflight: Vec<Inflight>,
}

impl RoundDriver {
    /// A fresh driver over `grid`: empty queue, all nodes free at t = 0.
    pub fn new(
        grid: Grid,
        policy: BatchPolicy,
        model: SecurityModel,
        max_replicas: u32,
    ) -> RoundDriver {
        let avail = grid
            .sites()
            .map(|s| NodeAvailability::new(s.nodes, Time::ZERO))
            .collect();
        let n_sites = grid.len();
        RoundDriver {
            grid,
            avail,
            pending: Vec::new(),
            policy,
            model,
            max_replicas,
            n_rounds: 0,
            batch_sizes: Vec::new(),
            stats_window: None,
            scheduler_nanos: 0,
            offline: vec![false; n_sites],
            inflight: Vec::new(),
        }
    }

    /// Adds a job to the pending queue.
    pub fn enqueue(&mut self, job: BatchJob) {
        self.pending.push(job);
    }

    /// Whether the policy's count trigger is reached (always false for the
    /// purely periodic policy).
    pub fn count_trigger_reached(&self) -> bool {
        match self.policy {
            BatchPolicy::Periodic => false,
            BatchPolicy::CountTriggered(k) | BatchPolicy::Hybrid(k) => self.pending.len() >= k,
        }
    }

    /// The batching policy in force.
    pub fn policy(&self) -> BatchPolicy {
        self.policy
    }

    /// Jobs currently queued.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// The pending queue in submission order (state export for
    /// resharding — pending jobs transfer to the shard that now owns
    /// a site they fit).
    pub fn pending_jobs(&self) -> &[BatchJob] {
        &self.pending
    }

    /// Tracked in-flight commits as `(job, site, end)` clones, in commit
    /// order. These are the reservations [`RoundDriver::fail_site`] can
    /// requeue; a resharding barrier exports them so the shard that
    /// inherits the site keeps the same zero-lost-jobs guarantee.
    pub fn inflight_commits(&self) -> Vec<(Job, SiteId, Time)> {
        self.inflight
            .iter()
            .map(|f| (f.job.clone(), f.site, f.end))
            .collect()
    }

    /// Re-adopts an in-flight commit exported from another driver. Only
    /// the tracking entry is restored — the reservation itself lives in
    /// the site's transferred availability state, so this must not touch
    /// `avail`.
    pub fn adopt_inflight(&mut self, job: Job, site: SiteId, end: Time) {
        self.inflight.push(Inflight { job, site, end });
    }

    /// Restores one site's state from an exported snapshot: the node
    /// free-time multiset plus its offline flag. `free` must have one
    /// entry per node of the site.
    pub fn restore_site_state(
        &mut self,
        site: SiteId,
        free: Vec<Time>,
        offline: bool,
    ) -> Result<()> {
        if site.0 >= self.grid.len() {
            return Err(Error::UnknownSite(site.0));
        }
        let nodes = self.grid.site(site).nodes as usize;
        if free.len() != nodes {
            return Err(Error::invalid(
                "restore",
                format!(
                    "site {} has {nodes} nodes but the snapshot carries {} free times",
                    site.0,
                    free.len()
                ),
            ));
        }
        self.avail[site.0] = NodeAvailability::from_times(free);
        self.offline[site.0] = offline;
        Ok(())
    }

    /// The (current) grid.
    pub fn grid(&self) -> &Grid {
        &self.grid
    }

    /// Replaces the grid (security-level walks, trust reconfiguration).
    /// Site count must not change — availability state is carried over.
    ///
    /// The driver does not own the scheduler (rounds borrow one per
    /// call), so callers that *do* own one must follow this with
    /// [`BatchScheduler::on_reconfigure`](crate::BatchScheduler::on_reconfigure)
    /// to invalidate snapshot-compiled scheduler state; the next
    /// [`RoundDriver::run_round`] then hands the scheduler a `GridView`
    /// of the new snapshot, from which kernel-based schedulers re-lower
    /// their fitness program.
    pub fn set_grid(&mut self, grid: Grid) -> Result<()> {
        if grid.len() != self.grid.len() {
            return Err(Error::invalid(
                "grid",
                format!(
                    "cannot reconfigure from {} to {} sites mid-run",
                    self.grid.len(),
                    grid.len()
                ),
            ));
        }
        self.grid = grid;
        Ok(())
    }

    /// Per-site availability (the reservation model).
    pub fn avail(&self) -> &[NodeAvailability] {
        &self.avail
    }

    /// Mutable availability — the engine's dispatch commits attempts here.
    pub fn avail_mut(&mut self) -> &mut [NodeAvailability] {
        &mut self.avail
    }

    /// Per-site offline mask (true = failed / out of rotation).
    pub fn offline_mask(&self) -> &[bool] {
        &self.offline
    }

    /// Whether the given site is currently online.
    pub fn is_online(&self, site: SiteId) -> bool {
        site.0 < self.offline.len() && !self.offline[site.0]
    }

    /// Whether any site is currently offline (the masked scheduling path
    /// is active).
    pub fn any_offline(&self) -> bool {
        self.offline.iter().any(|&o| o)
    }

    /// Takes the site offline at instant `at` and requeues every job
    /// whose tracked commit was still executing on it (`end > at`) —
    /// stranded work is never silently lost. Returns the requeued job
    /// ids in original commit order.
    ///
    /// Requeued jobs re-enter the pending queue as ordinary
    /// (non-`secure_only`) batch jobs; the commit-tracking front ends
    /// (daemon, scenario runner) only submit such jobs. Callers that own
    /// a scheduler should follow with
    /// [`BatchScheduler::on_reconfigure`](crate::BatchScheduler::on_reconfigure)
    /// — the usable-site set changed under any compiled snapshot.
    pub fn fail_site(&mut self, site: SiteId, at: Time) -> Result<Vec<JobId>> {
        if site.0 >= self.grid.len() {
            return Err(Error::UnknownSite(site.0));
        }
        if self.offline[site.0] {
            return Err(Error::invalid(
                "fail_site",
                format!("site {} is already offline", site.0),
            ));
        }
        self.offline[site.0] = true;
        let mut stranded = Vec::new();
        let mut kept = Vec::with_capacity(self.inflight.len());
        for f in self.inflight.drain(..) {
            if f.end <= at {
                continue; // completed before the failure — prune
            }
            if f.site == site {
                stranded.push(f.job.id);
                self.pending.push(BatchJob {
                    job: f.job,
                    secure_only: false,
                });
            } else {
                kept.push(f);
            }
        }
        self.inflight = kept;
        Ok(stranded)
    }

    /// Brings a failed site back at instant `at`: the site rejoins the
    /// rotation with all nodes free at `at` (its pre-failure reservations
    /// died with it).
    pub fn rejoin_site(&mut self, site: SiteId, at: Time) -> Result<()> {
        if site.0 >= self.grid.len() {
            return Err(Error::UnknownSite(site.0));
        }
        if !self.offline[site.0] {
            return Err(Error::invalid(
                "rejoin_site",
                format!("site {} is not offline", site.0),
            ));
        }
        self.offline[site.0] = false;
        self.avail[site.0] = NodeAvailability::new(self.grid.site(site).nodes, at);
        Ok(())
    }

    /// Number of non-empty rounds run so far.
    pub fn n_rounds(&self) -> usize {
        self.n_rounds
    }

    /// Sizes of non-empty batches scheduled so far — every one by
    /// default, the most recent window when
    /// [`RoundDriver::set_stats_window`] capped it.
    pub fn batch_sizes(&self) -> &[usize] {
        &self.batch_sizes
    }

    /// Caps (or uncaps, with `None`) the retained batch-size history.
    /// `n_rounds` and cumulative counters are unaffected.
    pub fn set_stats_window(&mut self, window: Option<usize>) {
        self.stats_window = window;
        self.trim_stats();
    }

    /// Records a round's batch size, enforcing the window.
    fn note_round(&mut self, batch_len: usize) {
        self.n_rounds += 1;
        self.batch_sizes.push(batch_len);
        self.trim_stats();
    }

    fn trim_stats(&mut self) {
        if let Some(w) = self.stats_window {
            let len = self.batch_sizes.len();
            if len > w {
                self.batch_sizes.drain(..len - w);
            }
        }
    }

    /// Total wall-clock nanoseconds spent inside the scheduler.
    pub fn scheduler_nanos(&self) -> u128 {
        self.scheduler_nanos
    }

    /// Runs one scheduling round at instant `now`: takes the pending
    /// queue as the batch, invokes the scheduler over the current grid
    /// view, and validates the result (replication-aware). Returns
    /// `Ok(None)` when nothing is pending.
    ///
    /// The returned schedule is **not** committed to the availability
    /// model; the engine commits per dispatch (failures shorten
    /// occupancy), the daemon commits via
    /// [`RoundDriver::commit_assignment`].
    pub fn run_round<S: BatchScheduler + ?Sized>(
        &mut self,
        scheduler: &mut S,
        now: Time,
    ) -> Result<Option<RoundOutcome>> {
        if self.pending.is_empty() {
            return Ok(None);
        }
        self.inflight.retain(|f| f.end > now);
        if !self.any_offline() {
            let batch = std::mem::take(&mut self.pending);
            self.note_round(batch.len());
            let view = GridView {
                grid: &self.grid,
                avail: &self.avail,
                now,
                model: self.model,
            };
            let _round = gridsec_obs::span!("round", batch = batch.len());
            let t0 = std::time::Instant::now();
            let schedule = scheduler.schedule(&batch, &view);
            let scheduler_nanos = t0.elapsed().as_nanos();
            self.scheduler_nanos += scheduler_nanos;
            self.validate_schedule(&schedule, &batch)?;
            return Ok(Some(RoundOutcome {
                batch,
                schedule,
                scheduler_nanos,
            }));
        }
        self.run_round_masked(scheduler, now)
    }

    /// The churn path: schedules over a dense sub-view of the online
    /// sites only. Jobs fitting no online site are deferred — they stay
    /// pending (accounted, never lost) until a wide-enough site rejoins.
    fn run_round_masked<S: BatchScheduler + ?Sized>(
        &mut self,
        scheduler: &mut S,
        now: Time,
    ) -> Result<Option<RoundOutcome>> {
        let taken = std::mem::take(&mut self.pending);
        let mut batch = Vec::with_capacity(taken.len());
        let mut deferred = Vec::new();
        for bj in taken {
            let fits_online = self
                .grid
                .sites()
                .any(|s| !self.offline[s.id.0] && s.fits_width(bj.job.width));
            if fits_online {
                batch.push(bj);
            } else {
                deferred.push(bj);
            }
        }
        self.pending = deferred;
        if batch.is_empty() {
            return Ok(None);
        }
        self.note_round(batch.len());
        // Dense re-indexed view of the online sites: schedulers (and the
        // STGA fitness kernel, which re-lowers from the view every round)
        // see an ordinary smaller grid.
        let mut to_global = Vec::new();
        let mut sites = Vec::new();
        let mut avail = Vec::new();
        for s in self.grid.sites() {
            if self.offline[s.id.0] {
                continue;
            }
            let mut local = s.clone();
            local.id = SiteId(sites.len());
            to_global.push(s.id);
            sites.push(local);
            avail.push(self.avail[s.id.0].clone());
        }
        let masked_grid = Grid::new(sites)?;
        let view = GridView {
            grid: &masked_grid,
            avail: &avail,
            now,
            model: self.model,
        };
        let _round = gridsec_obs::span!("round", batch = batch.len());
        let t0 = std::time::Instant::now();
        let mut schedule = scheduler.schedule(&batch, &view);
        let scheduler_nanos = t0.elapsed().as_nanos();
        self.scheduler_nanos += scheduler_nanos;
        // Translate the masked view's site ids back to grid ids before
        // validating against the full grid.
        for a in &mut schedule.assignments {
            a.site = *to_global
                .get(a.site.0)
                .ok_or(Error::UnknownSite(a.site.0))?;
        }
        self.validate_schedule(&schedule, &batch)?;
        Ok(Some(RoundOutcome {
            batch,
            schedule,
            scheduler_nanos,
        }))
    }

    /// Replication-aware validation: every batch job covered at least
    /// once, at most `max_replicas` times, on distinct fitting sites.
    fn validate_schedule(&self, schedule: &BatchSchedule, batch: &[BatchJob]) -> Result<()> {
        // One job→sites index instead of per-assignment map churn; the
        // replica checks below run off the indexed site lists.
        let index = schedule.index();
        let in_batch: HashMap<JobId, u32> = batch.iter().map(|b| (b.job.id, b.job.width)).collect();
        for a in &schedule.assignments {
            let width = *in_batch.get(&a.job).ok_or(Error::UnknownJob(a.job.0))?;
            let site = self.grid.get(a.site).ok_or(Error::UnknownSite(a.site.0))?;
            if !site.fits_width(width) {
                return Err(Error::WidthExceedsSite {
                    job: a.job.0,
                    width,
                    site_nodes: site.nodes,
                });
            }
        }
        for b in batch {
            let sites = index.sites_of(b.job.id);
            if sites.len() as u32 > self.max_replicas {
                return Err(Error::invalid(
                    "schedule",
                    format!(
                        "job {} assigned {} times (max_replicas = {})",
                        b.job.id,
                        sites.len(),
                        self.max_replicas
                    ),
                ));
            }
            for (i, s) in sites.iter().enumerate() {
                if sites[..i].contains(s) {
                    return Err(Error::invalid(
                        "schedule",
                        format!("job {} replicated twice on site {}", b.job.id, s),
                    ));
                }
            }
        }
        if index.n_jobs() != batch.len() {
            return Err(Error::IncompleteSchedule {
                expected: batch.len(),
                assigned: index.n_jobs(),
            });
        }
        Ok(())
    }

    /// Commits one assignment as a *successful* execution: the job
    /// occupies `width` nodes from its earliest fit (at or after `now`)
    /// for its full execution time. This is exactly the simulator's
    /// dispatch arithmetic in the no-failure case, so a daemon committing
    /// every assignment of every round reproduces the engine's
    /// availability trajectory bit for bit.
    pub fn commit_assignment(
        &mut self,
        job: &gridsec_core::Job,
        site_id: SiteId,
        now: Time,
    ) -> CommittedAssignment {
        let site = self.grid.site(site_id).clone();
        let start = self.avail[site_id.0]
            .earliest_start(job.width, now.max(job.arrival))
            .expect("validated width");
        let end = start + job.exec_time(site.speed);
        self.avail[site_id.0].commit(job.width, end);
        self.inflight.push(Inflight {
            job: job.clone(),
            site: site_id,
            end,
        });
        CommittedAssignment {
            job: job.id,
            site: site_id,
            width: job.width,
            start,
            end,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::EarliestCompletion;
    use gridsec_core::{Job, Site};

    fn grid2() -> Grid {
        Grid::new(vec![
            Site::builder(0)
                .nodes(2)
                .speed(1.0)
                .security_level(1.0)
                .build()
                .unwrap(),
            Site::builder(1)
                .nodes(2)
                .speed(2.0)
                .security_level(1.0)
                .build()
                .unwrap(),
        ])
        .unwrap()
    }

    fn bj(id: u64, work: f64) -> BatchJob {
        BatchJob {
            job: Job::builder(id)
                .work(work)
                .security_demand(0.5)
                .build()
                .unwrap(),
            secure_only: false,
        }
    }

    #[test]
    fn empty_queue_round_is_a_noop() {
        let mut d = RoundDriver::new(grid2(), BatchPolicy::Periodic, Default::default(), 1);
        let out = d.run_round(&mut EarliestCompletion, Time::ZERO).unwrap();
        assert!(out.is_none());
        assert_eq!(d.n_rounds(), 0);
    }

    #[test]
    fn round_drains_queue_and_counts() {
        let mut d = RoundDriver::new(grid2(), BatchPolicy::Periodic, Default::default(), 1);
        d.enqueue(bj(0, 10.0));
        d.enqueue(bj(1, 20.0));
        let out = d
            .run_round(&mut EarliestCompletion, Time::new(5.0))
            .unwrap()
            .unwrap();
        assert_eq!(out.batch.len(), 2);
        assert_eq!(out.schedule.len(), 2);
        assert_eq!(d.pending_len(), 0);
        assert_eq!(d.n_rounds(), 1);
        assert_eq!(d.batch_sizes(), &[2]);
    }

    #[test]
    fn count_trigger_matches_policy() {
        let mut d = RoundDriver::new(grid2(), BatchPolicy::Hybrid(2), Default::default(), 1);
        d.enqueue(bj(0, 10.0));
        assert!(!d.count_trigger_reached());
        d.enqueue(bj(1, 10.0));
        assert!(d.count_trigger_reached());
        let periodic = RoundDriver::new(grid2(), BatchPolicy::Periodic, Default::default(), 1);
        assert!(!periodic.count_trigger_reached());
    }

    #[test]
    fn commit_follows_engine_arithmetic() {
        let mut d = RoundDriver::new(grid2(), BatchPolicy::Periodic, Default::default(), 1);
        let job = Job::builder(0)
            .work(100.0)
            .arrival(Time::new(3.0))
            .build()
            .unwrap();
        // Site 1 has speed 2 → exec 50, start at max(now, arrival) = 10.
        let c = d.commit_assignment(&job, SiteId(1), Time::new(10.0));
        assert_eq!(c.start, Time::new(10.0));
        assert_eq!(c.end, Time::new(60.0));
        // The second commit on the same site queues behind the first
        // (width 1 on a 2-node site runs in parallel; occupy both nodes).
        let wide = Job::builder(1).width(2).work(10.0).build().unwrap();
        let c2 = d.commit_assignment(&wide, SiteId(1), Time::new(10.0));
        assert_eq!(c2.start, Time::new(60.0));
    }

    #[test]
    fn validation_rejects_unknown_jobs() {
        struct Rogue;
        impl BatchScheduler for Rogue {
            fn name(&self) -> String {
                "Rogue".into()
            }
            fn schedule(&mut self, _batch: &[BatchJob], _view: &GridView<'_>) -> BatchSchedule {
                BatchSchedule::from_pairs([(JobId(999), SiteId(0))])
            }
        }
        let mut d = RoundDriver::new(grid2(), BatchPolicy::Periodic, Default::default(), 1);
        d.enqueue(bj(0, 10.0));
        assert!(d.run_round(&mut Rogue, Time::ZERO).is_err());
    }

    #[test]
    fn set_grid_keeps_site_count() {
        let mut d = RoundDriver::new(grid2(), BatchPolicy::Periodic, Default::default(), 1);
        assert!(d.set_grid(grid2()).is_ok());
        let one = Grid::new(vec![Site::builder(0).nodes(1).build().unwrap()]).unwrap();
        assert!(d.set_grid(one).is_err());
    }

    #[test]
    fn failing_a_site_requeues_inflight_work() {
        let mut d = RoundDriver::new(grid2(), BatchPolicy::Periodic, Default::default(), 1);
        let job = Job::builder(0).work(100.0).build().unwrap();
        // Speed 1 on site 0 → runs [0, 100).
        let c = d.commit_assignment(&job, SiteId(0), Time::ZERO);
        assert_eq!(c.end, Time::new(100.0));
        let stranded = d.fail_site(SiteId(0), Time::new(50.0)).unwrap();
        assert_eq!(stranded, vec![JobId(0)]);
        assert_eq!(d.pending_len(), 1);
        assert!(!d.is_online(SiteId(0)));
        // Double-fail and out-of-range sites are rejected.
        assert!(d.fail_site(SiteId(0), Time::new(51.0)).is_err());
        assert!(d.fail_site(SiteId(9), Time::new(51.0)).is_err());
    }

    #[test]
    fn completed_work_is_not_requeued_on_failure() {
        let mut d = RoundDriver::new(grid2(), BatchPolicy::Periodic, Default::default(), 1);
        let job = Job::builder(0).work(10.0).build().unwrap();
        d.commit_assignment(&job, SiteId(0), Time::ZERO); // ends at 10
        let stranded = d.fail_site(SiteId(0), Time::new(20.0)).unwrap();
        assert!(stranded.is_empty());
        assert_eq!(d.pending_len(), 0);
    }

    #[test]
    fn rejoin_resets_availability_at_the_rejoin_instant() {
        let mut d = RoundDriver::new(grid2(), BatchPolicy::Periodic, Default::default(), 1);
        let job = Job::builder(0).work(1000.0).build().unwrap();
        d.commit_assignment(&job, SiteId(0), Time::ZERO);
        d.fail_site(SiteId(0), Time::new(5.0)).unwrap();
        assert!(d.rejoin_site(SiteId(1), Time::new(6.0)).is_err()); // not offline
        d.rejoin_site(SiteId(0), Time::new(30.0)).unwrap();
        assert!(d.is_online(SiteId(0)));
        // The dead reservation is gone: both nodes free at the rejoin.
        assert_eq!(
            d.avail()[0].earliest_start(2, Time::new(30.0)),
            Some(Time::new(30.0))
        );
    }

    #[test]
    fn masked_round_schedules_only_online_sites_and_defers_misfits() {
        // Site 0 has 2 nodes, site 1 (faster) has 2 nodes.
        let mut d = RoundDriver::new(grid2(), BatchPolicy::Periodic, Default::default(), 1);
        d.fail_site(SiteId(1), Time::ZERO).unwrap();
        d.enqueue(bj(0, 10.0));
        let out = d
            .run_round(&mut EarliestCompletion, Time::ZERO)
            .unwrap()
            .unwrap();
        // The only assignment lands on the surviving site, in grid ids.
        assert_eq!(out.schedule.assignments[0].site, SiteId(0));
        assert_eq!(d.batch_sizes(), &[1]);
        // With every site down, nothing is schedulable: the round is a
        // no-op and the queue is preserved.
        let mut d2 = RoundDriver::new(grid2(), BatchPolicy::Periodic, Default::default(), 1);
        d2.fail_site(SiteId(0), Time::ZERO).unwrap();
        d2.fail_site(SiteId(1), Time::ZERO).unwrap();
        d2.enqueue(bj(7, 10.0));
        let out2 = d2.run_round(&mut EarliestCompletion, Time::ZERO).unwrap();
        assert!(out2.is_none());
        assert_eq!(d2.pending_len(), 1);
        assert_eq!(d2.n_rounds(), 0);
    }

    #[test]
    fn jobs_fitting_no_online_site_stay_pending() {
        // Grid: site 0 with 1 node, site 1 with 2 nodes.
        let g = Grid::new(vec![
            Site::builder(0).nodes(1).build().unwrap(),
            Site::builder(1).nodes(2).build().unwrap(),
        ])
        .unwrap();
        let mut d = RoundDriver::new(g, BatchPolicy::Periodic, Default::default(), 1);
        d.fail_site(SiteId(1), Time::ZERO).unwrap();
        let mut wide = bj(0, 10.0);
        wide.job.width = 2; // only fits the downed site
        d.enqueue(wide);
        d.enqueue(bj(1, 5.0)); // fits the online site
        let out = d
            .run_round(&mut EarliestCompletion, Time::ZERO)
            .unwrap()
            .unwrap();
        assert_eq!(out.batch.len(), 1);
        assert_eq!(out.batch[0].job.id, JobId(1));
        assert_eq!(d.pending_len(), 1); // the wide job is deferred, not lost
        d.rejoin_site(SiteId(1), Time::new(1.0)).unwrap();
        let out2 = d
            .run_round(&mut EarliestCompletion, Time::new(1.0))
            .unwrap()
            .unwrap();
        assert_eq!(out2.batch[0].job.id, JobId(0));
        assert_eq!(d.pending_len(), 0);
    }

    #[test]
    fn boundary_clock_mirrors_session_semantics() {
        let mut c = BoundaryClock::new(Time::new(10.0));
        assert_eq!(c.now(), Time::ZERO);
        assert_eq!(c.next_periodic_instant(), Time::new(10.0));
        c.ensure_armed();
        c.ensure_armed(); // idempotent while armed
        assert_eq!(c.next_boundary(), Some(Time::new(10.0)));
        // Strictly-before pop leaves a boundary at the probe instant.
        assert!(c.pop_strictly_before(Time::new(10.0)).is_none());
        assert_eq!(c.pop_at_or_before(Time::new(10.0)), Some(Time::new(10.0)));
        c.fired(Time::new(10.0));
        assert_eq!(c.now(), Time::new(10.0));
        // After firing, re-arming queues the next multiple.
        c.ensure_armed();
        assert_eq!(c.next_boundary(), Some(Time::new(20.0)));
        assert_eq!(c.pop_any(), Some(Time::new(20.0)));
        assert_eq!(c.pop_any(), None);
        // Count triggers queue at `now` even when armed.
        c.note_trigger();
        assert_eq!(c.next_boundary(), Some(Time::new(10.0)));
    }
}
