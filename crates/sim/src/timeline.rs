//! Per-attempt execution timeline — Gantt-chart data for a run.
//!
//! Enabled with [`SimConfig::with_timeline`](crate::SimConfig): the engine
//! records one [`AttemptSpan`] per dispatch, and [`Timeline`] offers query
//! and rendering helpers (per-site lanes, busy intervals, an ASCII Gantt
//! sketch for terminals).

use gridsec_core::{JobId, SiteId, Time};
use serde::{Deserialize, Serialize};

/// One dispatched attempt: where a job (replica) ran and how it ended.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AttemptSpan {
    /// The job.
    pub job: JobId,
    /// The hosting site.
    pub site: SiteId,
    /// Node width occupied.
    pub width: u32,
    /// Start of execution.
    pub start: Time,
    /// End of node occupation (completion, or the failure instant).
    pub end: Time,
    /// Whether this attempt failed.
    pub failed: bool,
}

/// The recorded timeline of a run.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Timeline {
    spans: Vec<AttemptSpan>,
}

impl Timeline {
    /// An empty timeline.
    pub fn new() -> Timeline {
        Timeline::default()
    }

    /// Records one attempt (engine-internal).
    pub fn push(&mut self, span: AttemptSpan) {
        self.spans.push(span);
    }

    /// All spans in dispatch order.
    pub fn spans(&self) -> &[AttemptSpan] {
        &self.spans
    }

    /// Number of recorded attempts.
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// Spans that ran on `site`, in dispatch order.
    pub fn site_lane(&self, site: SiteId) -> Vec<&AttemptSpan> {
        self.spans.iter().filter(|s| s.site == site).collect()
    }

    /// All attempts of one job (several when it failed or was replicated).
    pub fn job_history(&self, job: JobId) -> Vec<&AttemptSpan> {
        self.spans.iter().filter(|s| s.job == job).collect()
    }

    /// The latest end time (0 when empty).
    pub fn horizon(&self) -> Time {
        self.spans.iter().map(|s| s.end).max().unwrap_or(Time::ZERO)
    }

    /// Node-seconds consumed on `site` (failed attempts included).
    pub fn busy_node_seconds(&self, site: SiteId) -> f64 {
        self.site_lane(site)
            .iter()
            .map(|s| f64::from(s.width) * (s.end - s.start).seconds())
            .sum()
    }

    /// A crude ASCII Gantt chart: one row per site, `cols` character
    /// columns spanning `[0, horizon]`; `#` = busy nodes (any), `!` = a
    /// failure ends in that column, `.` = idle.
    pub fn ascii_gantt(&self, n_sites: usize, cols: usize) -> String {
        let horizon = self.horizon().seconds().max(f64::MIN_POSITIVE);
        let cols = cols.max(1);
        let mut out = String::new();
        for site in 0..n_sites {
            let mut row = vec!['.'; cols];
            for span in self.site_lane(SiteId(site)) {
                let a = ((span.start.seconds() / horizon) * cols as f64) as usize;
                let b = ((span.end.seconds() / horizon) * cols as f64).ceil() as usize;
                for c in row.iter_mut().take(b.min(cols)).skip(a.min(cols - 1)) {
                    *c = '#';
                }
                if span.failed {
                    let fb = ((span.end.seconds() / horizon) * cols as f64) as usize;
                    row[fb.min(cols - 1)] = '!';
                }
            }
            out.push_str(&format!("S{:<3} ", site + 1));
            out.extend(row);
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(job: u64, site: usize, start: f64, end: f64, failed: bool) -> AttemptSpan {
        AttemptSpan {
            job: JobId(job),
            site: SiteId(site),
            width: 2,
            start: Time::new(start),
            end: Time::new(end),
            failed,
        }
    }

    fn sample() -> Timeline {
        let mut t = Timeline::new();
        t.push(span(0, 0, 0.0, 10.0, false));
        t.push(span(1, 0, 10.0, 15.0, true));
        t.push(span(1, 1, 20.0, 30.0, false));
        t
    }

    #[test]
    fn lanes_and_history() {
        let t = sample();
        assert_eq!(t.len(), 3);
        assert_eq!(t.site_lane(SiteId(0)).len(), 2);
        assert_eq!(t.site_lane(SiteId(1)).len(), 1);
        let h = t.job_history(JobId(1));
        assert_eq!(h.len(), 2);
        assert!(h[0].failed && !h[1].failed);
    }

    #[test]
    fn horizon_and_busy() {
        let t = sample();
        assert_eq!(t.horizon(), Time::new(30.0));
        // Site 0: (10 + 5) s × width 2 = 30 node-seconds.
        assert_eq!(t.busy_node_seconds(SiteId(0)), 30.0);
        assert_eq!(t.busy_node_seconds(SiteId(1)), 20.0);
        assert_eq!(t.busy_node_seconds(SiteId(9)), 0.0);
    }

    #[test]
    fn gantt_renders_rows() {
        let t = sample();
        let g = t.ascii_gantt(2, 30);
        let lines: Vec<&str> = g.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains('#'));
        assert!(lines[0].contains('!')); // the failure marker
        assert!(lines[1].contains('#'));
        assert!(lines[1].starts_with("S2"));
    }

    #[test]
    fn empty_timeline_is_harmless() {
        let t = Timeline::new();
        assert!(t.is_empty());
        assert_eq!(t.horizon(), Time::ZERO);
        let g = t.ascii_gantt(3, 10);
        assert_eq!(g.lines().count(), 3);
    }
}
