//! The simulator's event queue.
//!
//! A binary heap of time-stamped events with deterministic tie-breaking:
//! events at the same instant are processed in *kind priority* order
//! (attempt completions first, then arrivals, then batch boundaries — so a
//! job that fails at a boundary instant can be rescheduled in that very
//! batch), and FIFO within the same kind (sequence numbers).

use gridsec_core::{JobId, SiteId, Time};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// What happens at an event instant.
#[derive(Debug, Clone, PartialEq)]
pub enum EventKind {
    /// A running attempt of `job` on `site` ends.
    AttemptEnd {
        /// The job whose attempt ends.
        job: JobId,
        /// Where the attempt ran.
        site: SiteId,
        /// Whether the attempt failed (sampled at dispatch).
        failed: bool,
    },
    /// A job arrives in the system and joins the pending queue.
    Arrival {
        /// The arriving job.
        job: JobId,
    },
    /// A batch boundary: run the scheduler over the pending queue.
    BatchBoundary,
    /// A security-level random-walk step (only with
    /// [`SlDynamics`](crate::config::SlDynamics)).
    SlWalk,
}

impl EventKind {
    /// Tie-break priority at equal timestamps (lower runs first).
    fn priority(&self) -> u8 {
        match self {
            EventKind::AttemptEnd { .. } => 0,
            EventKind::Arrival { .. } => 1,
            EventKind::SlWalk => 2,
            EventKind::BatchBoundary => 3,
        }
    }
}

/// A time-stamped event.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// When the event fires.
    pub at: Time,
    /// What it is.
    pub kind: EventKind,
    seq: u64,
}

impl Eq for Event {}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest event is popped
        // first, then kind priority, then FIFO sequence.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.kind.priority().cmp(&self.kind.priority()))
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Deterministic priority queue of [`Event`]s.
#[derive(Debug, Default)]
pub struct EventQueue {
    heap: BinaryHeap<Event>,
    next_seq: u64,
}

impl EventQueue {
    /// An empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Pushes an event.
    pub fn push(&mut self, at: Time, kind: EventKind) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Event { at, kind, seq });
    }

    /// Pops the earliest event.
    pub fn pop(&mut self) -> Option<Event> {
        self.heap.pop()
    }

    /// Peeks at the earliest event's timestamp.
    pub fn peek_time(&self) -> Option<Time> {
        self.heap.peek().map(|e| e.at)
    }

    /// Number of queued events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(Time::new(5.0), EventKind::BatchBoundary);
        q.push(Time::new(1.0), EventKind::Arrival { job: JobId(0) });
        q.push(
            Time::new(3.0),
            EventKind::AttemptEnd {
                job: JobId(1),
                site: SiteId(0),
                failed: false,
            },
        );
        assert_eq!(q.pop().unwrap().at, Time::new(1.0));
        assert_eq!(q.pop().unwrap().at, Time::new(3.0));
        assert_eq!(q.pop().unwrap().at, Time::new(5.0));
        assert!(q.pop().is_none());
    }

    #[test]
    fn same_instant_kind_priority() {
        let mut q = EventQueue::new();
        let t = Time::new(10.0);
        q.push(t, EventKind::BatchBoundary);
        q.push(t, EventKind::Arrival { job: JobId(7) });
        q.push(
            t,
            EventKind::AttemptEnd {
                job: JobId(3),
                site: SiteId(0),
                failed: true,
            },
        );
        assert!(matches!(
            q.pop().unwrap().kind,
            EventKind::AttemptEnd { .. }
        ));
        assert!(matches!(q.pop().unwrap().kind, EventKind::Arrival { .. }));
        assert!(matches!(q.pop().unwrap().kind, EventKind::BatchBoundary));
    }

    #[test]
    fn fifo_within_kind() {
        let mut q = EventQueue::new();
        let t = Time::new(1.0);
        q.push(t, EventKind::Arrival { job: JobId(1) });
        q.push(t, EventKind::Arrival { job: JobId(2) });
        q.push(t, EventKind::Arrival { job: JobId(3) });
        let ids: Vec<u64> = (0..3)
            .map(|_| match q.pop().unwrap().kind {
                EventKind::Arrival { job } => job.0,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(ids, vec![1, 2, 3]);
    }

    #[test]
    fn len_and_peek() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.push(Time::new(2.0), EventKind::BatchBoundary);
        assert_eq!(q.len(), 1);
        assert_eq!(q.peek_time(), Some(Time::new(2.0)));
    }
}
