//! The discrete-event simulation engine (the paper's Fig. 1 loop).
//!
//! Beyond the paper's base model the engine supports:
//!
//! * count-triggered and hybrid batch policies ([`BatchPolicy`]);
//! * noisy execution-time estimates ([`EstimateModel`]) — the scheduler
//!   sees estimated work, execution consumes the true work (the paper's
//!   §5 future-work scenario);
//! * a random walk on site security levels
//!   ([`SlDynamics`](crate::config::SlDynamics)), emulating an IDS
//!   re-rating sites over time;
//! * **job replication**: a schedule may assign one job to several sites
//!   (up to `max_replicas`); the first successful replica completes the
//!   job, and the job only counts as failed when *every* replica fails
//!   (the DFTS-style fault-tolerance of Abawajy, the paper's ref. \[1\]).

use crate::config::{BatchPolicy, EstimateModel, SimConfig};
use crate::event::{EventKind, EventQueue};
use crate::report::SimOutput;
use crate::round::RoundDriver;
use crate::scheduler::{BatchJob, BatchScheduler};
use crate::timeline::{AttemptSpan, Timeline};
use gridsec_core::metrics::{JobOutcome, MetricsCollector};
use gridsec_core::rng::{stream, Stream};
use gridsec_core::{Error, FailureDetection, Grid, Job, JobId, Result, SiteId, Time};
use rand::Rng;
use rand_chacha::ChaCha8Rng;
use std::collections::HashMap;

/// Per-job bookkeeping across (possibly several) attempts and replicas.
#[derive(Debug, Clone)]
struct JobState {
    job: Job,
    estimated_work: f64,
    first_start: Option<Time>,
    failures: u32,
    risk_taken: bool,
    /// Attempts currently in flight.
    outstanding: u32,
    /// Whether a successful attempt has already completed the job.
    done: bool,
}

/// The simulator: owns all mutable state of one run.
///
/// Most callers use the [`simulate`] convenience function; the struct form
/// exists for step-wise tests and custom instrumentation.
pub struct Simulator<'a, S: BatchScheduler + ?Sized> {
    /// The batch/round core (grid, availability, pending queue, batch
    /// accounting) shared with the serving daemon.
    rounds: RoundDriver,
    scheduler: &'a mut S,
    config: SimConfig,
    events: EventQueue,
    states: HashMap<JobId, JobState>,
    metrics: MetricsCollector,
    failure_rng: ChaCha8Rng,
    walk_rng: ChaCha8Rng,
    boundary_scheduled: Option<Time>,
    now: Time,
    total_jobs: usize,
    replica_dispatches: usize,
    timeline: Option<Timeline>,
}

impl<'a, S: BatchScheduler + ?Sized> Simulator<'a, S> {
    /// Prepares a run over `workload` (jobs in any order; arrival times
    /// drive the event queue).
    pub fn new(
        workload: &[Job],
        grid: &Grid,
        scheduler: &'a mut S,
        config: &SimConfig,
    ) -> Result<Self> {
        config.validate()?;
        // Every job must fit somewhere, or the run can never drain.
        for job in workload {
            if !grid.sites().any(|s| s.fits_width(job.width)) {
                return Err(Error::NoFeasibleSite(job.id.0));
            }
        }
        let mut events = EventQueue::new();
        let mut estimate_rng = stream(config.seed, Stream::Custom(0xE57));
        let mut states = HashMap::with_capacity(workload.len());
        for job in workload {
            events.push(job.arrival, EventKind::Arrival { job: job.id });
            let estimated_work = estimate_work(job.work, config.estimates, &mut estimate_rng);
            let prev = states.insert(
                job.id,
                JobState {
                    job: job.clone(),
                    estimated_work,
                    first_start: None,
                    failures: 0,
                    risk_taken: false,
                    outstanding: 0,
                    done: false,
                },
            );
            if prev.is_some() {
                return Err(Error::invalid(
                    "workload",
                    format!("duplicate job id {}", job.id),
                ));
            }
        }
        if let Some(d) = &config.sl_dynamics {
            events.push(d.period, EventKind::SlWalk);
        }
        let metrics = MetricsCollector::new(
            grid.sites().map(|s| s.nodes).collect(),
            grid.sites().map(|s| s.speed).collect(),
        );
        Ok(Simulator {
            rounds: RoundDriver::new(
                grid.clone(),
                config.batch_policy,
                config.security,
                config.max_replicas,
            ),
            scheduler,
            config: config.clone(),
            events,
            states,
            metrics,
            failure_rng: stream(config.seed, Stream::Failure),
            walk_rng: stream(config.seed, Stream::Custom(0x51D9)),
            boundary_scheduled: None,
            now: Time::ZERO,
            total_jobs: workload.len(),
            replica_dispatches: 0,
            timeline: if config.record_timeline {
                Some(Timeline::new())
            } else {
                None
            },
        })
    }

    /// Runs the simulation to completion and returns the output.
    pub fn run(mut self) -> Result<SimOutput> {
        while let Some(event) = self.events.pop() {
            self.now = event.at;
            if self.now > self.config.max_horizon {
                return Err(Error::invalid(
                    "max_horizon",
                    format!("simulation exceeded horizon at t = {}", self.now),
                ));
            }
            match event.kind {
                EventKind::Arrival { job } => self.on_arrival(job),
                EventKind::AttemptEnd { job, site, failed } => {
                    self.on_attempt_end(job, site, failed)
                }
                EventKind::BatchBoundary => self.on_boundary()?,
                EventKind::SlWalk => self.on_sl_walk(),
            }
        }
        let completed = self.metrics.completed();
        if completed != self.total_jobs {
            return Err(Error::IncompleteSchedule {
                expected: self.total_jobs,
                assigned: completed,
            });
        }
        let batch_sizes = self.rounds.batch_sizes();
        Ok(SimOutput {
            scheduler_name: self.scheduler.name(),
            metrics: self.metrics.report(None),
            n_batches: self.rounds.n_rounds(),
            mean_batch_size: if batch_sizes.is_empty() {
                0.0
            } else {
                batch_sizes.iter().sum::<usize>() as f64 / batch_sizes.len() as f64
            },
            max_batch_size: batch_sizes.iter().copied().max().unwrap_or(0),
            scheduler_seconds: self.rounds.scheduler_nanos() as f64 / 1e9,
            replica_dispatches: self.replica_dispatches,
            timeline: self.timeline,
            seed: self.config.seed,
        })
    }

    /// A job the scheduler should see: true job with estimated work.
    fn scheduler_view_of(&self, id: JobId, secure_only: bool) -> BatchJob {
        let state = &self.states[&id];
        let mut job = state.job.clone();
        job.work = state.estimated_work;
        BatchJob { job, secure_only }
    }

    fn on_arrival(&mut self, id: JobId) {
        let bj = self.scheduler_view_of(id, false);
        self.rounds.enqueue(bj);
        self.after_enqueue();
    }

    fn on_attempt_end(&mut self, id: JobId, site: SiteId, failed: bool) {
        let state = self.states.get_mut(&id).expect("known job");
        state.outstanding -= 1;
        if failed {
            if !state.done && state.outstanding == 0 {
                // Every replica failed: the job counts as failed (the
                // paper's N_fail is "failed and rescheduled jobs" — a
                // failed replica whose sibling succeeds does not count)
                // and is rescheduled under the secure-only constraint
                // (fail-stop rule).
                state.failures += 1;
                let bj = self.scheduler_view_of(id, true);
                self.rounds.enqueue(bj);
                self.after_enqueue();
            }
        } else if !state.done {
            state.done = true;
            let state = &self.states[&id];
            self.metrics.record_outcome(JobOutcome {
                id,
                arrival: state.job.arrival,
                first_start: state.first_start.expect("started"),
                completion: self.now,
                final_site: site,
                risk_taken: state.risk_taken,
                failures: state.failures,
            });
        }
        // Late replicas of an already-done job just release their nodes.
    }

    fn on_boundary(&mut self) -> Result<()> {
        self.boundary_scheduled = None;
        let Some(outcome) = self.rounds.run_round(&mut *self.scheduler, self.now)? else {
            return Ok(());
        };
        for a in &outcome.schedule.assignments {
            self.dispatch(a.job, a.site);
        }
        Ok(())
    }

    /// Starts one attempt of `job` on `site`, sampling failure per Eq. (1)
    /// against the site's *current* security level.
    fn dispatch(&mut self, id: JobId, site_id: SiteId) {
        let site = self.rounds.grid().site(site_id).clone();
        let state = self.states.get_mut(&id).expect("known job");
        let job = state.job.clone();
        if state.outstanding > 0 {
            self.replica_dispatches += 1;
        }
        let start = self.rounds.avail()[site_id.0]
            .earliest_start(job.width, self.now.max(job.arrival))
            .expect("validated width");
        let exec = job.exec_time(site.speed);
        // Always draw both variates so the failure stream stays aligned
        // across configurations (comparability between runs).
        let u: f64 = self.failure_rng.gen();
        let frac: f64 = self.failure_rng.gen();
        let risky = job.security_demand > site.security_level;
        let p = self
            .config
            .security
            .fail_probability(job.security_demand, site.security_level);
        let failed = risky && u < p;
        let occupied = if failed {
            match self.config.failure_detection {
                FailureDetection::AtEnd => exec,
                FailureDetection::UniformFraction => exec * frac.max(f64::MIN_POSITIVE),
            }
        } else {
            exec
        };
        let end = start + occupied;
        self.rounds.avail_mut()[site_id.0].commit(job.width, end);
        self.metrics.record_busy(site_id, job.width, occupied);
        if state.first_start.is_none() {
            state.first_start = Some(start);
        }
        state.risk_taken |= risky;
        state.outstanding += 1;
        if let Some(tl) = &mut self.timeline {
            tl.push(AttemptSpan {
                job: id,
                site: site_id,
                width: job.width,
                start,
                end,
                failed,
            });
        }
        self.events.push(
            end,
            EventKind::AttemptEnd {
                job: id,
                site: site_id,
                failed,
            },
        );
    }

    /// Random-walks every site's security level (SlWalk event).
    fn on_sl_walk(&mut self) {
        let d = self
            .config
            .sl_dynamics
            .expect("SlWalk only scheduled with dynamics");
        let sites: Vec<SiteId> = self.rounds.grid().site_ids().collect();
        let mut walked = Vec::with_capacity(sites.len());
        for id in sites {
            let site = self.rounds.grid().site(id);
            let delta = if d.step > 0.0 {
                self.walk_rng.gen_range(-d.step..=d.step)
            } else {
                0.0
            };
            let sl = (site.security_level + delta).clamp(d.min, d.max);
            let mut new_site = site.clone();
            new_site.security_level = sl;
            walked.push(new_site);
        }
        self.rounds
            .set_grid(Grid::new(walked).expect("walked grid stays valid"))
            .expect("walked grid keeps its site count");
        // Keep walking while the run is still active.
        if self.metrics.completed() < self.total_jobs {
            self.events.push(self.now + d.period, EventKind::SlWalk);
        }
    }

    /// Reacts to a newly pending job according to the batch policy.
    fn after_enqueue(&mut self) {
        match self.config.batch_policy {
            BatchPolicy::Periodic => self.ensure_boundary(),
            BatchPolicy::CountTriggered(_) | BatchPolicy::Hybrid(_) => {
                if self.rounds.count_trigger_reached() {
                    self.events.push(self.now, EventKind::BatchBoundary);
                } else {
                    self.ensure_boundary();
                }
            }
        }
    }

    /// Makes sure a batch boundary is queued at the next multiple of the
    /// scheduling interval strictly after `now`.
    fn ensure_boundary(&mut self) {
        if self.boundary_scheduled.is_some() {
            return;
        }
        let period = self.config.schedule_interval.seconds();
        let k = (self.now.seconds() / period).floor() + 1.0;
        let at = Time::new(k * period);
        self.boundary_scheduled = Some(at);
        self.events.push(at, EventKind::BatchBoundary);
    }
}

/// Derives the estimated work the scheduler sees for one job.
fn estimate_work<R: Rng + ?Sized>(true_work: f64, model: EstimateModel, rng: &mut R) -> f64 {
    match model {
        EstimateModel::Exact => true_work,
        EstimateModel::Multiplicative { err } => {
            let hi = (1.0 + err).ln();
            let f = rng.gen_range(-hi..=hi).exp();
            true_work * f
        }
        EstimateModel::Constant { work } => work,
    }
}

/// Runs one complete simulation: `workload` over `grid` under `scheduler`.
pub fn simulate<S: BatchScheduler + ?Sized>(
    workload: &[Job],
    grid: &Grid,
    scheduler: &mut S,
    config: &SimConfig,
) -> Result<SimOutput> {
    Simulator::new(workload, grid, scheduler, config)?.run()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::{EarliestCompletion, GridView};
    use gridsec_core::{BatchSchedule, Site};

    fn safe_grid() -> Grid {
        Grid::new(vec![
            Site::builder(0)
                .nodes(2)
                .speed(1.0)
                .security_level(1.0)
                .build()
                .unwrap(),
            Site::builder(1)
                .nodes(2)
                .speed(2.0)
                .security_level(1.0)
                .build()
                .unwrap(),
        ])
        .unwrap()
    }

    fn cfg() -> SimConfig {
        SimConfig::default().with_interval(Time::new(10.0))
    }

    #[test]
    fn single_job_completes_with_correct_times() {
        let grid = safe_grid();
        let jobs = vec![Job::builder(0)
            .arrival(Time::new(3.0))
            .work(100.0)
            .security_demand(0.8)
            .build()
            .unwrap()];
        let out = simulate(&jobs, &grid, &mut EarliestCompletion, &cfg()).unwrap();
        assert_eq!(out.metrics.n_jobs, 1);
        assert_eq!(out.metrics.n_fail, 0);
        assert_eq!(out.metrics.n_risk, 0);
        // Arrives at 3, first boundary at 10, fastest site speed 2 → done 60.
        assert_eq!(out.metrics.makespan, Time::new(60.0));
        assert_eq!(out.metrics.avg_response, 57.0);
        assert_eq!(out.metrics.avg_wait, 7.0);
        assert_eq!(out.n_batches, 1);
    }

    #[test]
    fn batching_groups_arrivals() {
        let grid = safe_grid();
        let jobs: Vec<Job> = (0..4)
            .map(|i| {
                Job::builder(i)
                    .arrival(Time::new(1.0 + i as f64))
                    .work(10.0)
                    .security_demand(0.5)
                    .build()
                    .unwrap()
            })
            .collect();
        let out = simulate(&jobs, &grid, &mut EarliestCompletion, &cfg()).unwrap();
        // All four arrive before the first boundary at t = 10.
        assert_eq!(out.n_batches, 1);
        assert_eq!(out.max_batch_size, 4);
        assert_eq!(out.metrics.n_jobs, 4);
    }

    #[test]
    fn count_triggered_batches_fire_immediately() {
        let grid = safe_grid();
        let jobs: Vec<Job> = (0..4)
            .map(|i| {
                Job::builder(i)
                    .arrival(Time::new(1.0 + i as f64))
                    .work(10.0)
                    .security_demand(0.5)
                    .build()
                    .unwrap()
            })
            .collect();
        let config = cfg().with_batch_policy(BatchPolicy::CountTriggered(2));
        let out = simulate(&jobs, &grid, &mut EarliestCompletion, &config).unwrap();
        // Two-by-two instead of one big periodic batch.
        assert_eq!(out.n_batches, 2);
        assert_eq!(out.max_batch_size, 2);
        // First pair scheduled at its second arrival (t = 2), so the first
        // job starts before the periodic boundary at 10 would have fired.
        assert!(out.metrics.avg_wait < 7.0);
    }

    #[test]
    fn hybrid_policy_bounds_batch_size() {
        let grid = safe_grid();
        let jobs: Vec<Job> = (0..9)
            .map(|i| {
                Job::builder(i)
                    .arrival(Time::new(1.0 + 0.1 * i as f64))
                    .work(5.0)
                    .security_demand(0.5)
                    .build()
                    .unwrap()
            })
            .collect();
        let config = cfg().with_batch_policy(BatchPolicy::Hybrid(4));
        let out = simulate(&jobs, &grid, &mut EarliestCompletion, &config).unwrap();
        assert!(out.max_batch_size <= 4);
        assert!(out.n_batches >= 3);
    }

    #[test]
    fn always_unsafe_site_forces_failures_then_recovery() {
        // One fast unsafe site + one slow safe site. MCT picks the unsafe
        // fast site first; on failure the job must finish on the safe one.
        let grid = Grid::new(vec![
            Site::builder(0)
                .nodes(1)
                .speed(10.0)
                .security_level(0.0)
                .build()
                .unwrap(),
            Site::builder(1)
                .nodes(1)
                .speed(1.0)
                .security_level(1.0)
                .build()
                .unwrap(),
        ])
        .unwrap();
        // λ huge → P(fail) ≈ 1 on the unsafe site.
        let config = SimConfig::default()
            .with_interval(Time::new(10.0))
            .with_lambda(1e6)
            .unwrap();
        let jobs = vec![Job::builder(0)
            .work(50.0)
            .security_demand(0.9)
            .build()
            .unwrap()];
        let out = simulate(&jobs, &grid, &mut EarliestCompletion, &config).unwrap();
        assert_eq!(out.metrics.n_jobs, 1);
        assert_eq!(out.metrics.n_fail, 1);
        assert_eq!(out.metrics.n_risk, 1);
        // More than one batch: the retry needs a second boundary.
        assert!(out.n_batches >= 2);
    }

    #[test]
    fn nfail_never_exceeds_nrisk() {
        let grid = Grid::new(vec![
            Site::builder(0)
                .nodes(4)
                .speed(1.0)
                .security_level(0.55)
                .build()
                .unwrap(),
            Site::builder(1)
                .nodes(4)
                .speed(1.0)
                .security_level(0.95)
                .build()
                .unwrap(),
        ])
        .unwrap();
        let jobs: Vec<Job> = (0..50)
            .map(|i| {
                Job::builder(i)
                    .arrival(Time::new(i as f64))
                    .work(20.0)
                    .security_demand(0.6 + 0.3 * ((i % 10) as f64) / 10.0)
                    .build()
                    .unwrap()
            })
            .collect();
        let out = simulate(&jobs, &grid, &mut EarliestCompletion, &cfg()).unwrap();
        assert_eq!(out.metrics.n_jobs, 50);
        assert!(out.metrics.n_fail <= out.metrics.n_risk);
        assert!(out.metrics.slowdown_ratio >= 1.0);
    }

    #[test]
    fn deterministic_given_seed() {
        let grid = safe_grid();
        let jobs: Vec<Job> = (0..20)
            .map(|i| {
                Job::builder(i)
                    .arrival(Time::new(i as f64 * 2.0))
                    .work(30.0)
                    .security_demand(0.7)
                    .build()
                    .unwrap()
            })
            .collect();
        let a = simulate(&jobs, &grid, &mut EarliestCompletion, &cfg()).unwrap();
        let b = simulate(&jobs, &grid, &mut EarliestCompletion, &cfg()).unwrap();
        assert_eq!(a.metrics, b.metrics);
        assert_eq!(a.n_batches, b.n_batches);
    }

    #[test]
    fn duplicate_job_ids_rejected() {
        let grid = safe_grid();
        let jobs = vec![
            Job::builder(0).build().unwrap(),
            Job::builder(0).build().unwrap(),
        ];
        assert!(simulate(&jobs, &grid, &mut EarliestCompletion, &cfg()).is_err());
    }

    #[test]
    fn oversized_job_rejected_up_front() {
        let grid = safe_grid();
        let jobs = vec![Job::builder(0).width(64).build().unwrap()];
        assert!(matches!(
            simulate(&jobs, &grid, &mut EarliestCompletion, &cfg()),
            Err(Error::NoFeasibleSite(0))
        ));
    }

    #[test]
    fn empty_workload_is_fine() {
        let grid = safe_grid();
        let out = simulate(&[], &grid, &mut EarliestCompletion, &cfg()).unwrap();
        assert_eq!(out.metrics.n_jobs, 0);
        assert_eq!(out.n_batches, 0);
    }

    #[test]
    fn horizon_guard_trips() {
        let grid = safe_grid();
        let jobs = vec![Job::builder(0).work(1e9).build().unwrap()];
        let mut config = cfg();
        config.max_horizon = Time::new(100.0);
        assert!(simulate(&jobs, &grid, &mut EarliestCompletion, &config).is_err());
    }

    #[test]
    fn utilization_accounts_failed_attempts() {
        let grid = Grid::new(vec![
            Site::builder(0)
                .nodes(1)
                .speed(1.0)
                .security_level(0.0)
                .build()
                .unwrap(),
            Site::builder(1)
                .nodes(1)
                .speed(0.1)
                .security_level(1.0)
                .build()
                .unwrap(),
        ])
        .unwrap();
        let config = SimConfig::default()
            .with_interval(Time::new(10.0))
            .with_lambda(1e6)
            .unwrap()
            .with_failure_detection(FailureDetection::AtEnd);
        let jobs = vec![Job::builder(0)
            .work(50.0)
            .security_demand(0.9)
            .build()
            .unwrap()];
        let out = simulate(&jobs, &grid, &mut EarliestCompletion, &config).unwrap();
        // The failed attempt burned 50 s on site 0.
        assert!(out.metrics.site_utilization[0] > 0.0);
    }

    #[test]
    fn estimates_change_scheduler_view_but_not_execution() {
        let grid = safe_grid();
        let jobs: Vec<Job> = (0..10)
            .map(|i| {
                Job::builder(i)
                    .arrival(Time::new(i as f64))
                    .work(40.0)
                    .security_demand(0.5)
                    .build()
                    .unwrap()
            })
            .collect();
        // A constant estimate misleads MCT, but execution still uses the
        // true 40 s work, so all jobs complete and total busy time is
        // unchanged.
        let exact = simulate(&jobs, &grid, &mut EarliestCompletion, &cfg()).unwrap();
        let config = cfg().with_estimates(EstimateModel::Constant { work: 1.0 });
        let blind = simulate(&jobs, &grid, &mut EarliestCompletion, &config).unwrap();
        assert_eq!(blind.metrics.n_jobs, 10);
        // True work executed in both cases → identical overall busy time
        // (utilisation × makespan × nodes), though schedules may differ.
        assert_eq!(exact.metrics.n_jobs, blind.metrics.n_jobs);
    }

    #[test]
    fn multiplicative_estimates_complete_everything() {
        let grid = safe_grid();
        let jobs: Vec<Job> = (0..25)
            .map(|i| {
                Job::builder(i)
                    .arrival(Time::new(i as f64 * 3.0))
                    .work(20.0 + i as f64)
                    .security_demand(0.6)
                    .build()
                    .unwrap()
            })
            .collect();
        let config = cfg().with_estimates(EstimateModel::Multiplicative { err: 2.0 });
        let out = simulate(&jobs, &grid, &mut EarliestCompletion, &config).unwrap();
        assert_eq!(out.metrics.n_jobs, 25);
    }

    #[test]
    fn sl_walk_changes_realised_risk() {
        // Start fully safe; the walk drags SL down until failures appear.
        let grid = Grid::new(vec![Site::builder(0)
            .nodes(2)
            .speed(1.0)
            .security_level(0.65)
            .build()
            .unwrap()])
        .unwrap();
        let jobs: Vec<Job> = (0..60)
            .map(|i| {
                Job::builder(i)
                    .arrival(Time::new(i as f64 * 20.0))
                    .work(30.0)
                    .security_demand(0.6)
                    .build()
                    .unwrap()
            })
            .collect();
        let static_out = simulate(&jobs, &grid, &mut EarliestCompletion, &cfg()).unwrap();
        assert_eq!(static_out.metrics.n_risk, 0);
        let config = cfg().with_sl_dynamics(crate::config::SlDynamics {
            period: Time::new(40.0),
            step: 0.2,
            min: 0.1,
            max: 0.7,
        });
        let walked = simulate(&jobs, &grid, &mut EarliestCompletion, &config).unwrap();
        assert_eq!(walked.metrics.n_jobs, 60);
        // With SL wandering in [0.1, 0.7] below the demand 0.6 at times,
        // some jobs must take risk.
        assert!(walked.metrics.n_risk > 0);
    }

    /// A scheduler that replicates every job on both sites (for the
    /// replication path tests).
    struct ReplicateAll;

    impl BatchScheduler for ReplicateAll {
        fn name(&self) -> String {
            "ReplicateAll".into()
        }

        fn schedule(&mut self, batch: &[BatchJob], view: &GridView<'_>) -> BatchSchedule {
            let mut s = BatchSchedule::new();
            for bj in batch {
                for site in view.grid.sites() {
                    if site.fits_width(bj.job.width) {
                        s.push(bj.job.id, site.id);
                    }
                }
            }
            s
        }
    }

    #[test]
    fn replication_rejected_when_disabled() {
        let grid = safe_grid();
        let jobs = vec![Job::builder(0).work(10.0).build().unwrap()];
        let err = simulate(&jobs, &grid, &mut ReplicateAll, &cfg());
        assert!(err.is_err());
    }

    #[test]
    fn replication_first_success_wins() {
        let grid = safe_grid();
        let jobs = vec![Job::builder(0)
            .work(100.0)
            .security_demand(0.5)
            .build()
            .unwrap()];
        let config = cfg().with_max_replicas(2);
        let out = simulate(&jobs, &grid, &mut ReplicateAll, &config).unwrap();
        assert_eq!(out.metrics.n_jobs, 1);
        // The faster replica (speed 2 → 50 s, started at boundary 10)
        // completes the job at 60.
        assert_eq!(out.metrics.makespan, Time::new(60.0));
        // Both replicas consumed resources.
        assert!(out.metrics.site_utilization.iter().all(|&u| u > 0.0));
    }

    #[test]
    fn replication_survives_unsafe_replica() {
        // Site 0 always fails (SL 0, huge λ); site 1 always succeeds.
        let grid = Grid::new(vec![
            Site::builder(0)
                .nodes(1)
                .speed(10.0)
                .security_level(0.0)
                .build()
                .unwrap(),
            Site::builder(1)
                .nodes(1)
                .speed(1.0)
                .security_level(1.0)
                .build()
                .unwrap(),
        ])
        .unwrap();
        let config = SimConfig::default()
            .with_interval(Time::new(10.0))
            .with_lambda(1e6)
            .unwrap()
            .with_max_replicas(2);
        let jobs = vec![Job::builder(0)
            .work(50.0)
            .security_demand(0.9)
            .build()
            .unwrap()];
        let out = simulate(&jobs, &grid, &mut ReplicateAll, &config).unwrap();
        assert_eq!(out.metrics.n_jobs, 1);
        // The job is *not* counted as failed-and-rescheduled: the safe
        // replica completed it in one round.
        assert_eq!(out.n_batches, 1);
        assert_eq!(out.metrics.makespan, Time::new(60.0));
    }

    #[test]
    fn timeline_records_attempts_and_failures() {
        let grid = Grid::new(vec![
            Site::builder(0)
                .nodes(1)
                .speed(10.0)
                .security_level(0.0)
                .build()
                .unwrap(),
            Site::builder(1)
                .nodes(1)
                .speed(1.0)
                .security_level(1.0)
                .build()
                .unwrap(),
        ])
        .unwrap();
        let config = SimConfig::default()
            .with_interval(Time::new(10.0))
            .with_lambda(1e6)
            .unwrap()
            .with_timeline();
        let jobs = vec![Job::builder(0)
            .work(50.0)
            .security_demand(0.9)
            .build()
            .unwrap()];
        let out = simulate(&jobs, &grid, &mut EarliestCompletion, &config).unwrap();
        let tl = out.timeline.expect("timeline recorded");
        // One failed attempt on the unsafe site, one success on the safe.
        assert_eq!(tl.len(), 2);
        let history = tl.job_history(JobId(0));
        assert!(history[0].failed);
        assert!(!history[1].failed);
        assert_eq!(history[1].site, SiteId(1));
        // Without the flag, no timeline.
        let config = SimConfig::default()
            .with_interval(Time::new(10.0))
            .with_lambda(1e6)
            .unwrap();
        let out = simulate(&jobs, &grid, &mut EarliestCompletion, &config).unwrap();
        assert!(out.timeline.is_none());
    }

    #[test]
    fn duplicate_replica_site_rejected() {
        struct DoubleSameSite;
        impl BatchScheduler for DoubleSameSite {
            fn name(&self) -> String {
                "DoubleSameSite".into()
            }
            fn schedule(&mut self, batch: &[BatchJob], _view: &GridView<'_>) -> BatchSchedule {
                let mut s = BatchSchedule::new();
                for bj in batch {
                    s.push(bj.job.id, SiteId(0));
                    s.push(bj.job.id, SiteId(0));
                }
                s
            }
        }
        let grid = safe_grid();
        let jobs = vec![Job::builder(0).work(10.0).build().unwrap()];
        let config = cfg().with_max_replicas(3);
        assert!(simulate(&jobs, &grid, &mut DoubleSameSite, &config).is_err());
    }
}
