//! Simulation output: paper metrics plus engine-level accounting.

use crate::timeline::Timeline;
use gridsec_core::metrics::Report;
use serde::{Deserialize, Serialize};

/// Everything one simulation run produces.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimOutput {
    /// `BatchScheduler::name()` of the scheduler that produced this run.
    pub scheduler_name: String,
    /// The paper's §4.1 metric set.
    pub metrics: Report,
    /// Number of non-empty batches scheduled.
    pub n_batches: usize,
    /// Mean batch size over non-empty batches.
    pub mean_batch_size: f64,
    /// Largest batch encountered.
    pub max_batch_size: usize,
    /// Wall-clock seconds spent *inside the scheduler* over the whole run —
    /// the paper's "fastness"/online-usability measure for the STGA.
    pub scheduler_seconds: f64,
    /// Number of extra replica dispatches (0 unless replication is on).
    #[serde(default)]
    pub replica_dispatches: usize,
    /// Per-attempt Gantt data (only with
    /// [`SimConfig::with_timeline`](crate::SimConfig)).
    #[serde(default)]
    pub timeline: Option<Timeline>,
    /// Experiment seed (for reproduction).
    pub seed: u64,
}

impl SimOutput {
    /// One-line human-readable summary.
    pub fn summary(&self) -> String {
        format!(
            "{:<22} makespan={:>12.1}s resp={:>10.1}s slowdown={:>8.2} Nrisk={:>5} Nfail={:>5} util={:>5.1}% sched={:.3}s",
            self.scheduler_name,
            self.metrics.makespan.seconds(),
            self.metrics.avg_response,
            self.metrics.slowdown_ratio,
            self.metrics.n_risk,
            self.metrics.n_fail,
            self.metrics.overall_utilization,
            self.scheduler_seconds,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridsec_core::Time;

    #[test]
    fn summary_contains_key_numbers() {
        let out = SimOutput {
            scheduler_name: "Min-Min Secure".into(),
            metrics: Report {
                n_jobs: 10,
                makespan: Time::new(1234.0),
                avg_response: 55.5,
                avg_service: 40.0,
                avg_wait: 15.5,
                slowdown_ratio: 1.39,
                n_risk: 3,
                n_fail: 1,
                site_utilization: vec![50.0],
                overall_utilization: 50.0,
                utilization_fairness: 1.0,
            },
            n_batches: 2,
            mean_batch_size: 5.0,
            max_batch_size: 7,
            scheduler_seconds: 0.001,
            replica_dispatches: 0,
            timeline: None,
            seed: 42,
        };
        let s = out.summary();
        assert!(s.contains("Min-Min Secure"));
        assert!(s.contains("1234.0"));
        assert!(s.contains("Nfail=    1"));
    }
}
