//! Simulator configuration.

use gridsec_core::{Error, FailureDetection, Result, SecurityModel, Time};
use serde::{Deserialize, Serialize};

/// When the engine runs the scheduler over the pending queue.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub enum BatchPolicy {
    /// Strictly periodic boundaries every `schedule_interval` (the
    /// paper's Fig. 1 model; default).
    #[default]
    Periodic,
    /// Schedule as soon as the pending queue reaches this many jobs
    /// (count-triggered batching; no periodic boundary except a final
    /// flush at the next interval).
    CountTriggered(usize),
    /// Periodic boundaries, but also fire early whenever the pending
    /// queue reaches this many jobs (bounds both latency and batch size).
    Hybrid(usize),
}

/// How far off the scheduler's execution-time estimates are from reality
/// (the paper's §5 future-work question: scheduling when durations are
/// *unknown a priori*). The engine shows the scheduler jobs whose `work`
/// is the estimate; execution uses the true value.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum EstimateModel {
    /// Estimates are exact (default behaviour when `None`).
    Exact,
    /// Estimate = true work × factor, factor log-uniform in
    /// `[1/(1+err), 1+err]` — symmetric multiplicative noise.
    Multiplicative {
        /// Maximum relative error `err > 0` (e.g. 1.0 → up to 2× off).
        err: f64,
    },
    /// The scheduler only knows each job's *class mean* — everything is
    /// estimated as the given constant (total-ignorance baseline).
    Constant {
        /// The constant estimate in reference seconds.
        work: f64,
    },
}

/// Random-walk dynamics of site security levels, emulating an IDS that
/// re-rates sites as its alert picture evolves.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SlDynamics {
    /// How often the levels move.
    pub period: Time,
    /// Maximum per-step change (uniform in `[-step, +step]`).
    pub step: f64,
    /// Levels are clamped to `[min, max]`.
    pub min: f64,
    /// Upper clamp.
    pub max: f64,
}

impl SlDynamics {
    /// Validates the dynamics.
    pub fn validate(&self) -> Result<()> {
        if self.period <= Time::ZERO {
            return Err(Error::invalid("sl_dynamics.period", "must be positive"));
        }
        if !(self.step.is_finite() && self.step >= 0.0) {
            return Err(Error::invalid("sl_dynamics.step", "must be ≥ 0"));
        }
        if !(0.0..=1.0).contains(&self.min)
            || !(0.0..=1.0).contains(&self.max)
            || self.min > self.max
        {
            return Err(Error::invalid(
                "sl_dynamics.bounds",
                "need 0 ≤ min ≤ max ≤ 1",
            ));
        }
        Ok(())
    }
}

/// Configuration of one simulation run.
///
/// Defaults mirror the paper's Table 1 where the paper is explicit, and
/// DESIGN.md §3 where it is not (λ, failure timing, batch period).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    /// Period of the batch-scheduling loop (Fig. 1). Jobs that arrived (or
    /// failed) since the previous boundary are scheduled together.
    pub schedule_interval: Time,
    /// When batches fire (periodic by default).
    pub batch_policy: BatchPolicy,
    /// The failure law (Eq. 1) coefficient λ wrapped in a model.
    pub security: SecurityModel,
    /// When during execution a sampled failure manifests.
    pub failure_detection: FailureDetection,
    /// Execution-time estimate quality shown to the scheduler.
    pub estimates: EstimateModel,
    /// Optional random-walk dynamics of site security levels.
    pub sl_dynamics: Option<SlDynamics>,
    /// Maximum simultaneous replicas the engine accepts per job in one
    /// batch schedule (1 = replication disabled, the paper's model).
    pub max_replicas: u32,
    /// Record the per-attempt timeline (every dispatch with its site,
    /// start, end and outcome) in the output — Gantt-chart data. Off by
    /// default: a 16 000-job NAS run generates ~25 000 attempt records.
    pub record_timeline: bool,
    /// Experiment seed; drives failure sampling, estimates and SL walks.
    pub seed: u64,
    /// Safety valve: abort if the simulated clock passes this horizon
    /// without draining all jobs (guards against schedulers that never
    /// place a job). `Time::INFINITY` disables the check.
    pub max_horizon: Time,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            schedule_interval: Time::new(1_000.0),
            batch_policy: BatchPolicy::default(),
            security: SecurityModel::default(),
            failure_detection: FailureDetection::default(),
            estimates: EstimateModel::Exact,
            sl_dynamics: None,
            max_replicas: 1,
            record_timeline: false,
            seed: 0xB5EC_u64,
            max_horizon: Time::INFINITY,
        }
    }
}

impl SimConfig {
    /// Validates the configuration.
    pub fn validate(&self) -> Result<()> {
        if self.schedule_interval <= Time::ZERO {
            return Err(Error::invalid(
                "schedule_interval",
                "batch period must be positive",
            ));
        }
        if self.max_horizon <= Time::ZERO {
            return Err(Error::invalid("max_horizon", "horizon must be positive"));
        }
        match self.batch_policy {
            BatchPolicy::CountTriggered(0) | BatchPolicy::Hybrid(0) => {
                return Err(Error::invalid("batch_policy", "count trigger must be ≥ 1"));
            }
            _ => {}
        }
        match self.estimates {
            EstimateModel::Multiplicative { err } if !(err.is_finite() && err > 0.0) => {
                return Err(Error::invalid("estimates.err", "must be positive"));
            }
            EstimateModel::Constant { work } if !(work.is_finite() && work > 0.0) => {
                return Err(Error::invalid("estimates.work", "must be positive"));
            }
            _ => {}
        }
        if let Some(d) = &self.sl_dynamics {
            d.validate()?;
        }
        if self.max_replicas == 0 {
            return Err(Error::invalid("max_replicas", "must be ≥ 1"));
        }
        Ok(())
    }

    /// Builder-style: sets the batch period.
    pub fn with_interval(mut self, t: Time) -> Self {
        self.schedule_interval = t;
        self
    }

    /// Builder-style: sets the batching policy.
    pub fn with_batch_policy(mut self, p: BatchPolicy) -> Self {
        self.batch_policy = p;
        self
    }

    /// Builder-style: sets the failure-model λ.
    pub fn with_lambda(mut self, lambda: f64) -> Result<Self> {
        self.security = SecurityModel::new(lambda)?;
        Ok(self)
    }

    /// Builder-style: sets the experiment seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builder-style: sets the failure-detection mode.
    pub fn with_failure_detection(mut self, fd: FailureDetection) -> Self {
        self.failure_detection = fd;
        self
    }

    /// Builder-style: sets the estimate model.
    pub fn with_estimates(mut self, e: EstimateModel) -> Self {
        self.estimates = e;
        self
    }

    /// Builder-style: enables SL dynamics.
    pub fn with_sl_dynamics(mut self, d: SlDynamics) -> Self {
        self.sl_dynamics = Some(d);
        self
    }

    /// Builder-style: allows up to `k` replicas per job.
    pub fn with_max_replicas(mut self, k: u32) -> Self {
        self.max_replicas = k;
        self
    }

    /// Builder-style: records the per-attempt timeline.
    pub fn with_timeline(mut self) -> Self {
        self.record_timeline = true;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        assert!(SimConfig::default().validate().is_ok());
    }

    #[test]
    fn zero_interval_rejected() {
        let c = SimConfig::default().with_interval(Time::ZERO);
        assert!(c.validate().is_err());
    }

    #[test]
    fn builder_chain() {
        let c = SimConfig::default()
            .with_interval(Time::new(50.0))
            .with_lambda(1.5)
            .unwrap()
            .with_seed(99)
            .with_failure_detection(FailureDetection::AtEnd)
            .with_batch_policy(BatchPolicy::Hybrid(16))
            .with_estimates(EstimateModel::Multiplicative { err: 0.5 })
            .with_max_replicas(2);
        assert_eq!(c.schedule_interval, Time::new(50.0));
        assert_eq!(c.security.lambda(), 1.5);
        assert_eq!(c.seed, 99);
        assert_eq!(c.failure_detection, FailureDetection::AtEnd);
        assert_eq!(c.batch_policy, BatchPolicy::Hybrid(16));
        assert_eq!(c.max_replicas, 2);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn bad_lambda_propagates() {
        assert!(SimConfig::default().with_lambda(-1.0).is_err());
    }

    #[test]
    fn bad_policy_rejected() {
        let c = SimConfig::default().with_batch_policy(BatchPolicy::CountTriggered(0));
        assert!(c.validate().is_err());
        let c = SimConfig::default().with_batch_policy(BatchPolicy::Hybrid(0));
        assert!(c.validate().is_err());
    }

    #[test]
    fn bad_estimates_rejected() {
        let c = SimConfig::default().with_estimates(EstimateModel::Multiplicative { err: 0.0 });
        assert!(c.validate().is_err());
        let c = SimConfig::default().with_estimates(EstimateModel::Constant { work: -5.0 });
        assert!(c.validate().is_err());
    }

    #[test]
    fn bad_dynamics_rejected() {
        let c = SimConfig::default().with_sl_dynamics(SlDynamics {
            period: Time::ZERO,
            step: 0.1,
            min: 0.0,
            max: 1.0,
        });
        assert!(c.validate().is_err());
        let c = SimConfig::default().with_sl_dynamics(SlDynamics {
            period: Time::new(100.0),
            step: 0.1,
            min: 0.8,
            max: 0.4,
        });
        assert!(c.validate().is_err());
    }

    #[test]
    fn zero_replicas_rejected() {
        let c = SimConfig::default().with_max_replicas(0);
        assert!(c.validate().is_err());
    }
}
