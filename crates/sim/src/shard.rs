//! Grid sharding: site-disjoint partitions of a [`Grid`] for multi-tenant
//! serving.
//!
//! The paper's online batch loop is inherently per-grid: jobs target
//! sites, and site-disjoint partitions never interact through node
//! availability or the STGA history table. A [`ShardPlan`] splits a grid
//! into site-disjoint shards; each shard can then run its own
//! [`RoundDriver`](crate::RoundDriver) (own availability model, own
//! scheduler state) on its own thread, and scheduling a job on shard `k`
//! is *provably* independent of every other shard — the
//! `sharding_equivalence` suite in `crates/serve` pins an N-shard run
//! bit-identical to N independent single-shard runs.
//!
//! Site ids: the global grid uses dense ids `0..n_sites`. Each shard sees
//! a re-indexed *subgrid* with dense local ids `0..shard_len`; the plan
//! translates between the two ([`ShardPlan::to_global`] /
//! [`ShardPlan::to_local`]) so schedules can always be reported in global
//! site ids.

use gridsec_core::{Error, Grid, Job, Result, SiteId};

/// How a job maps onto shards when no explicit shard is given (routing
/// derived from the job's eligible sites — the sites it fits on by
/// width).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Routing {
    /// Every eligible site lies in this one shard: route there.
    Unique(usize),
    /// Eligible sites span several shards (listed in ascending order) —
    /// the caller must pick one explicitly.
    Spanning(Vec<usize>),
    /// No site fits the job at all.
    NoFit,
}

/// A site-disjoint partition of a grid into `n_shards` shards, each shard
/// holding at least one site. [`ShardPlan::contiguous`] produces
/// contiguous runs; [`ShardPlan::from_shards`] accepts any partition
/// (non-contiguous shards arise when sites migrate between shards).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardPlan {
    /// Global site ids per shard, ascending within each shard.
    shards: Vec<Vec<SiteId>>,
    /// Global site index → (shard, local site index).
    site_map: Vec<(usize, usize)>,
}

impl ShardPlan {
    /// Splits `grid` into `n_shards` contiguous near-equal runs of sites
    /// (the first `n_sites % n_shards` shards get one extra site).
    pub fn contiguous(grid: &Grid, n_shards: usize) -> Result<ShardPlan> {
        let n_sites = grid.len();
        if n_shards == 0 {
            return Err(Error::invalid("shards", "need at least one shard"));
        }
        if n_shards > n_sites {
            return Err(Error::invalid(
                "shards",
                format!("cannot split {n_sites} sites into {n_shards} site-disjoint shards"),
            ));
        }
        let base = n_sites / n_shards;
        let extra = n_sites % n_shards;
        let mut shards = Vec::with_capacity(n_shards);
        let mut site_map = vec![(0usize, 0usize); n_sites];
        let mut next = 0usize;
        for shard in 0..n_shards {
            let len = base + usize::from(shard < extra);
            let mut sites = Vec::with_capacity(len);
            for local in 0..len {
                site_map[next] = (shard, local);
                sites.push(SiteId(next));
                next += 1;
            }
            shards.push(sites);
        }
        Ok(ShardPlan { shards, site_map })
    }

    /// Builds a plan from an explicit partition: every site of `grid`
    /// must appear in exactly one shard, every shard must be non-empty.
    /// Shards need not be contiguous runs — this is the constructor
    /// resharding uses for split / merge / migrate-site plans. Each
    /// shard's site list is sorted ascending, so local ids stay ordered
    /// by global id within a shard.
    pub fn from_shards(grid: &Grid, mut shards: Vec<Vec<SiteId>>) -> Result<ShardPlan> {
        let n_sites = grid.len();
        if shards.is_empty() {
            return Err(Error::invalid("shards", "need at least one shard"));
        }
        let mut site_map = vec![None; n_sites];
        for (shard, sites) in shards.iter_mut().enumerate() {
            if sites.is_empty() {
                return Err(Error::invalid(
                    "shards",
                    format!("shard {shard} is empty — every shard needs at least one site"),
                ));
            }
            sites.sort_unstable_by_key(|s| s.0);
            for (local, &site) in sites.iter().enumerate() {
                if site.0 >= n_sites {
                    return Err(Error::invalid(
                        "shards",
                        format!("site {} out of range (grid has {n_sites} sites)", site.0),
                    ));
                }
                if site_map[site.0].is_some() {
                    return Err(Error::invalid(
                        "shards",
                        format!("site {} appears in more than one shard", site.0),
                    ));
                }
                site_map[site.0] = Some((shard, local));
            }
        }
        let site_map = site_map
            .into_iter()
            .enumerate()
            .map(|(site, entry)| {
                entry.ok_or_else(|| {
                    Error::invalid("shards", format!("site {site} missing from every shard"))
                })
            })
            .collect::<Result<Vec<_>>>()?;
        Ok(ShardPlan { shards, site_map })
    }

    /// Number of shards.
    pub fn n_shards(&self) -> usize {
        self.shards.len()
    }

    /// Number of sites across all shards (= the grid's site count).
    pub fn n_sites(&self) -> usize {
        self.site_map.len()
    }

    /// Global site ids of one shard, ascending.
    ///
    /// # Panics
    /// Panics if `shard` is out of range.
    pub fn sites_of(&self, shard: usize) -> &[SiteId] {
        &self.shards[shard]
    }

    /// The shard owning a global site, if the site exists.
    pub fn shard_of(&self, site: SiteId) -> Option<usize> {
        self.site_map.get(site.0).map(|&(shard, _)| shard)
    }

    /// Translates a shard-local site id back to the global id.
    ///
    /// # Panics
    /// Panics if `shard` or `local` is out of range.
    pub fn to_global(&self, shard: usize, local: SiteId) -> SiteId {
        self.shards[shard][local.0]
    }

    /// Translates a global site id to `(shard, local id)`.
    pub fn to_local(&self, site: SiteId) -> Option<(usize, SiteId)> {
        self.site_map
            .get(site.0)
            .map(|&(shard, local)| (shard, SiteId(local)))
    }

    /// Builds the shard's subgrid: its sites re-indexed to dense local
    /// ids, every other attribute (nodes, speed, security level)
    /// unchanged.
    pub fn subgrid(&self, grid: &Grid, shard: usize) -> Result<Grid> {
        if shard >= self.n_shards() {
            return Err(Error::invalid(
                "shard",
                format!("shard {shard} out of range ({} shards)", self.n_shards()),
            ));
        }
        if grid.len() != self.n_sites() {
            return Err(Error::invalid(
                "shard",
                format!(
                    "plan covers {} sites but the grid has {}",
                    self.n_sites(),
                    grid.len()
                ),
            ));
        }
        let sites = self.shards[shard]
            .iter()
            .enumerate()
            .map(|(local, &global)| {
                let mut s = grid.site(global).clone();
                s.id = SiteId(local);
                s
            })
            .collect();
        Grid::new(sites)
    }

    /// Shards holding at least one site the job fits on (by width),
    /// ascending. Empty when no site fits.
    pub fn eligible_shards(&self, grid: &Grid, job: &Job) -> Vec<usize> {
        let mut out = Vec::new();
        for (shard, sites) in self.shards.iter().enumerate() {
            if sites.iter().any(|&s| grid.site(s).fits_width(job.width)) {
                out.push(shard);
            }
        }
        out
    }

    /// Derived routing: where the job goes when the submitter names no
    /// shard. Unambiguous only when every eligible site sits in one shard.
    pub fn route(&self, grid: &Grid, job: &Job) -> Routing {
        let eligible = self.eligible_shards(grid, job);
        match eligible.len() {
            0 => Routing::NoFit,
            1 => Routing::Unique(eligible[0]),
            _ => Routing::Spanning(eligible),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridsec_core::Site;

    fn grid(nodes: &[u32]) -> Grid {
        Grid::new(
            nodes
                .iter()
                .enumerate()
                .map(|(i, &n)| Site::builder(i).nodes(n).build().unwrap())
                .collect(),
        )
        .unwrap()
    }

    #[test]
    fn contiguous_split_covers_all_sites_disjointly() {
        let g = grid(&[2, 2, 2, 2, 2, 2, 2]);
        let plan = ShardPlan::contiguous(&g, 3).unwrap();
        assert_eq!(plan.n_shards(), 3);
        // 7 = 3 + 2 + 2.
        assert_eq!(plan.sites_of(0), &[SiteId(0), SiteId(1), SiteId(2)]);
        assert_eq!(plan.sites_of(1), &[SiteId(3), SiteId(4)]);
        assert_eq!(plan.sites_of(2), &[SiteId(5), SiteId(6)]);
        for k in 0..7 {
            let (shard, local) = plan.to_local(SiteId(k)).unwrap();
            assert_eq!(plan.to_global(shard, local), SiteId(k));
            assert_eq!(plan.shard_of(SiteId(k)), Some(shard));
        }
        assert_eq!(plan.shard_of(SiteId(7)), None);
    }

    #[test]
    fn degenerate_and_invalid_splits() {
        let g = grid(&[2, 2]);
        let one = ShardPlan::contiguous(&g, 1).unwrap();
        assert_eq!(one.sites_of(0).len(), 2);
        assert!(ShardPlan::contiguous(&g, 0).is_err());
        assert!(ShardPlan::contiguous(&g, 3).is_err());
    }

    #[test]
    fn subgrid_reindexes_and_keeps_attributes() {
        let g = Grid::new(vec![
            Site::builder(0)
                .nodes(4)
                .speed(1.0)
                .security_level(0.9)
                .build()
                .unwrap(),
            Site::builder(1)
                .nodes(8)
                .speed(2.0)
                .security_level(0.5)
                .build()
                .unwrap(),
            Site::builder(2)
                .nodes(2)
                .speed(4.0)
                .security_level(0.7)
                .build()
                .unwrap(),
        ])
        .unwrap();
        let plan = ShardPlan::contiguous(&g, 2).unwrap();
        let sub = plan.subgrid(&g, 1).unwrap();
        assert_eq!(sub.len(), 1);
        let s = sub.site(SiteId(0));
        assert_eq!(s.nodes, 2);
        assert_eq!(s.speed, 4.0);
        assert_eq!(s.security_level, 0.7);
        assert!(plan.subgrid(&g, 2).is_err());
        let smaller = grid(&[1, 1]);
        assert!(plan.subgrid(&smaller, 0).is_err());
    }

    #[test]
    fn from_shards_accepts_non_contiguous_partitions() {
        let g = grid(&[2, 2, 2, 2]);
        // Migrate-site shape: interleaved shards.
        let plan = ShardPlan::from_shards(
            &g,
            vec![vec![SiteId(2), SiteId(0)], vec![SiteId(3), SiteId(1)]],
        )
        .unwrap();
        assert_eq!(plan.n_shards(), 2);
        // Site lists sort ascending within each shard.
        assert_eq!(plan.sites_of(0), &[SiteId(0), SiteId(2)]);
        assert_eq!(plan.sites_of(1), &[SiteId(1), SiteId(3)]);
        assert_eq!(plan.to_local(SiteId(2)), Some((0, SiteId(1))));
        assert_eq!(plan.to_global(1, SiteId(0)), SiteId(1));
        let sub = plan.subgrid(&g, 0).unwrap();
        assert_eq!(sub.len(), 2);
    }

    #[test]
    fn from_shards_rejects_bad_partitions() {
        let g = grid(&[2, 2, 2]);
        // Empty plan, empty shard, duplicate site, out-of-range site,
        // missing site: all typed errors.
        assert!(ShardPlan::from_shards(&g, vec![]).is_err());
        assert!(
            ShardPlan::from_shards(&g, vec![vec![SiteId(0), SiteId(1), SiteId(2)], vec![]])
                .is_err()
        );
        assert!(ShardPlan::from_shards(
            &g,
            vec![vec![SiteId(0), SiteId(1)], vec![SiteId(1), SiteId(2)]]
        )
        .is_err());
        assert!(ShardPlan::from_shards(&g, vec![vec![SiteId(0), SiteId(1), SiteId(3)]]).is_err());
        assert!(ShardPlan::from_shards(&g, vec![vec![SiteId(0), SiteId(2)]]).is_err());
    }

    #[test]
    fn routing_by_eligible_sites() {
        // Shard 0: 2-node sites; shard 1: one 8-node site.
        let g = grid(&[2, 2, 8]);
        let plan = ShardPlan::contiguous(&g, 2).unwrap();
        assert_eq!(plan.sites_of(1), &[SiteId(2)]);
        let narrow = Job::builder(0).width(1).build().unwrap();
        assert_eq!(
            plan.route(&g, &narrow),
            Routing::Spanning(vec![0, 1]),
            "a narrow job fits everywhere"
        );
        let wide = Job::builder(1).width(4).build().unwrap();
        assert_eq!(plan.route(&g, &wide), Routing::Unique(1));
        let huge = Job::builder(2).width(64).build().unwrap();
        assert_eq!(plan.route(&g, &huge), Routing::NoFit);
        assert_eq!(plan.eligible_shards(&g, &narrow), vec![0, 1]);
        assert_eq!(plan.eligible_shards(&g, &huge), Vec::<usize>::new());
    }
}
