//! # gridsec-sim
//!
//! Discrete-event simulator for the paper's on-line batch scheduling system
//! (Fig. 1): jobs arrive continuously, accumulate in a queue, and at
//! periodic *batch boundaries* a pluggable [`BatchScheduler`] maps the
//! accumulated batch onto the Grid. Dispatched jobs occupy site nodes for
//! their execution time; jobs sent to sites whose security level is below
//! the job's demand may **fail** (Eq. 1), in which case they restart from
//! scratch and are re-scheduled with a *secure-only* constraint.
//!
//! The simulator and the scheduling heuristics share the
//! [`NodeAvailability`](gridsec_core::etc::NodeAvailability) reservation
//! model, so heuristic completion-time estimates agree exactly with
//! simulated execution (in the absence of failures).
//!
//! ```
//! use gridsec_core::{Grid, Job, Site, Time};
//! use gridsec_sim::{simulate, SimConfig};
//! use gridsec_sim::scheduler::EarliestCompletion;
//!
//! let grid = Grid::new(vec![
//!     Site::builder(0).nodes(2).security_level(0.95).build().unwrap(),
//! ]).unwrap();
//! let jobs = vec![Job::builder(0).work(100.0).security_demand(0.7).build().unwrap()];
//! let out = simulate(&jobs, &grid, &mut EarliestCompletion::default(), &SimConfig::default()).unwrap();
//! assert_eq!(out.metrics.n_jobs, 1);
//! assert_eq!(out.metrics.n_fail, 0);
//! ```

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod config;
pub mod engine;
pub mod event;
pub mod replicate;
pub mod report;
pub mod round;
pub mod scenario;
pub mod scheduler;
pub mod shard;
pub mod timeline;

pub use config::{BatchPolicy, EstimateModel, SimConfig, SlDynamics};
pub use engine::{simulate, Simulator};
pub use replicate::Replicated;
pub use report::SimOutput;
pub use round::{BoundaryClock, CommittedAssignment, RoundDriver, RoundOutcome};
pub use scenario::{
    ArrivalPhase, ArrivalProcess, FaultSpec, Injection, InjectionKind, InjectionStream, Scenario,
    ScenarioOutcome, ScenarioRunner, TrustSpec,
};
pub use scheduler::{BatchJob, BatchScheduler, GridView};
pub use shard::{Routing, ShardPlan};
pub use timeline::{AttemptSpan, Timeline};
