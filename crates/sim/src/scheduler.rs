//! The scheduler interface: what the engine shows a scheduler and what it
//! expects back.

use gridsec_core::etc::{completion_time, EtcMatrix, NodeAvailability};
use gridsec_core::{BatchSchedule, Grid, Job, SecurityModel, SiteId, Time};

/// One job as presented to a scheduler: the job itself plus the
/// *secure-only* constraint carried by jobs that already failed once (the
/// paper's fail-stop rule: a failed job "will not … take any risk again").
#[derive(Debug, Clone, PartialEq)]
pub struct BatchJob {
    /// The job to place.
    pub job: Job,
    /// If true, the scheduler must place the job on a site with
    /// `SL ≥ SD` when one exists (risk mode is overridden to secure).
    pub secure_only: bool,
}

/// Read-only view of the Grid's state at a batch boundary.
///
/// Exposes the same [`NodeAvailability`] reservation model the engine uses
/// for dispatch, so a scheduler's completion-time estimates are exact
/// (modulo later failures).
pub struct GridView<'a> {
    /// The (static) grid.
    pub grid: &'a Grid,
    /// Per-site node availability at `now`.
    pub avail: &'a [NodeAvailability],
    /// The current instant (the batch boundary).
    pub now: Time,
    /// The failure model in force.
    pub model: SecurityModel,
}

impl<'a> GridView<'a> {
    /// Estimated completion time of `job` on `site` given current
    /// availability (`None` if the job does not fit).
    pub fn completion_time(&self, job: &Job, site: SiteId) -> Option<Time> {
        let s = self.grid.get(site)?;
        if !s.fits_width(job.width) {
            return None;
        }
        let start = self.avail[site.0].earliest_start(job.width, self.now.max(job.arrival))?;
        Some(start + job.exec_time(s.speed))
    }

    /// Builds the ETC matrix for a batch (row order = batch order).
    pub fn etc_matrix(&self, batch: &[BatchJob]) -> EtcMatrix {
        let jobs: Vec<Job> = batch.iter().map(|b| b.job.clone()).collect();
        EtcMatrix::build(&jobs, self.grid)
    }

    /// Completion time via a *local* availability copy — used by schedulers
    /// that tentatively commit assignments while scanning a batch.
    pub fn completion_with(
        &self,
        etc: &EtcMatrix,
        avail: &[NodeAvailability],
        batch_idx: usize,
        site: SiteId,
        width: u32,
        arrival: Time,
    ) -> Option<Time> {
        completion_time(
            etc,
            &avail[site.0],
            batch_idx,
            site.0,
            width,
            self.now.max(arrival),
        )
    }

    /// A mutable clone of the availability vector for tentative commits.
    pub fn avail_clone(&self) -> Vec<NodeAvailability> {
        self.avail.to_vec()
    }
}

/// A batch-mode scheduler: maps the accumulated batch onto the Grid.
///
/// Implementations live in `gridsec-heuristics` (Min-Min, Sufferage, …)
/// and `gridsec-stga` (the genetic algorithms). Schedulers are stateful —
/// the STGA carries its history table across calls.
pub trait BatchScheduler {
    /// Human-readable name used in reports ("Min-Min Secure", "STGA", …).
    fn name(&self) -> String;

    /// Produces an assignment for every job in `batch`.
    ///
    /// The returned schedule must cover each batch job exactly once; the
    /// engine validates it. Dispatch happens in the returned order.
    fn schedule(&mut self, batch: &[BatchJob], view: &GridView<'_>) -> BatchSchedule;

    /// Notifies the scheduler that the grid was reconfigured out of band
    /// (trust re-rating, security-level changes, node count changes) —
    /// the serving layer calls this after swapping the round driver's
    /// grid, so schedulers can drop any state compiled from the old
    /// snapshot (cached risk-weight tables, compiled fitness kernels).
    ///
    /// The default is a no-op: stateless heuristics re-derive everything
    /// from the `GridView` each round.
    fn on_reconfigure(&mut self) {}
}

/// A trivially simple scheduler: each job (in batch order) goes to the site
/// with the earliest estimated completion time, honouring `secure_only`.
///
/// This is the classical *MCT* (minimum completion time) immediate-mode
/// heuristic; it doubles as the engine's reference scheduler in tests.
#[derive(Debug, Default, Clone)]
pub struct EarliestCompletion;

impl BatchScheduler for EarliestCompletion {
    fn name(&self) -> String {
        "MCT".to_string()
    }

    fn schedule(&mut self, batch: &[BatchJob], view: &GridView<'_>) -> BatchSchedule {
        let mut avail = view.avail_clone();
        let mut out = BatchSchedule::new();
        for bj in batch {
            let job = &bj.job;
            let mut best: Option<(SiteId, Time)> = None;
            let mut best_safe: Option<(SiteId, Time)> = None;
            let mut safest: Option<(SiteId, f64, Time)> = None;
            for site in view.grid.sites() {
                if !site.fits_width(job.width) {
                    continue;
                }
                let start = avail[site.id.0]
                    .earliest_start(job.width, view.now.max(job.arrival))
                    .expect("fits");
                let ct = start + job.exec_time(site.speed);
                if best.is_none_or(|(_, t)| ct < t) {
                    best = Some((site.id, ct));
                }
                if job.security_demand <= site.security_level
                    && best_safe.is_none_or(|(_, t)| ct < t)
                {
                    best_safe = Some((site.id, ct));
                }
                let better_safety = match safest {
                    None => true,
                    Some((_, sl, t)) => {
                        site.security_level > sl || (site.security_level == sl && ct < t)
                    }
                };
                if better_safety {
                    safest = Some((site.id, site.security_level, ct));
                }
            }
            let chosen = if bj.secure_only {
                best_safe
                    .or(safest.map(|(s, _, t)| (s, t)))
                    .or(best)
                    .expect("grid has at least one fitting site")
            } else {
                best.expect("grid has at least one fitting site")
            };
            let site = view.grid.site(chosen.0);
            let start = avail[chosen.0 .0]
                .earliest_start(job.width, view.now.max(job.arrival))
                .expect("fits");
            avail[chosen.0 .0].commit(job.width, start + job.exec_time(site.speed));
            out.push(job.id, chosen.0);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridsec_core::Site;

    fn view_fixture(grid: &Grid, avail: &[NodeAvailability]) -> SecurityModel {
        let _ = (grid, avail);
        SecurityModel::default()
    }

    fn grid2() -> Grid {
        Grid::new(vec![
            Site::builder(0)
                .nodes(1)
                .speed(1.0)
                .security_level(0.9)
                .build()
                .unwrap(),
            Site::builder(1)
                .nodes(1)
                .speed(4.0)
                .security_level(0.5)
                .build()
                .unwrap(),
        ])
        .unwrap()
    }

    fn bj(id: u64, work: f64, sd: f64, secure_only: bool) -> BatchJob {
        BatchJob {
            job: Job::builder(id)
                .work(work)
                .security_demand(sd)
                .build()
                .unwrap(),
            secure_only,
        }
    }

    #[test]
    fn mct_picks_fastest_site() {
        let grid = grid2();
        let avail = vec![
            NodeAvailability::new(1, Time::ZERO),
            NodeAvailability::new(1, Time::ZERO),
        ];
        let model = view_fixture(&grid, &avail);
        let view = GridView {
            grid: &grid,
            avail: &avail,
            now: Time::ZERO,
            model,
        };
        let batch = vec![bj(0, 100.0, 0.7, false)];
        let s = EarliestCompletion.schedule(&batch, &view);
        // Site 1 is 4× faster → completion 25 vs 100.
        assert_eq!(s.site_of(gridsec_core::JobId(0)), Some(SiteId(1)));
    }

    #[test]
    fn mct_secure_only_prefers_safe_site() {
        let grid = grid2();
        let avail = vec![
            NodeAvailability::new(1, Time::ZERO),
            NodeAvailability::new(1, Time::ZERO),
        ];
        let model = view_fixture(&grid, &avail);
        let view = GridView {
            grid: &grid,
            avail: &avail,
            now: Time::ZERO,
            model,
        };
        // SD 0.7 > SL(site1)=0.5, so secure-only must pick site 0 even
        // though site 1 is faster.
        let batch = vec![bj(0, 100.0, 0.7, true)];
        let s = EarliestCompletion.schedule(&batch, &view);
        assert_eq!(s.site_of(gridsec_core::JobId(0)), Some(SiteId(0)));
    }

    #[test]
    fn mct_serialises_batch_on_one_node() {
        let grid = Grid::new(vec![Site::builder(0).nodes(1).build().unwrap()]).unwrap();
        let avail = vec![NodeAvailability::new(1, Time::ZERO)];
        let view = GridView {
            grid: &grid,
            avail: &avail,
            now: Time::ZERO,
            model: SecurityModel::default(),
        };
        let batch = vec![bj(0, 10.0, 0.5, false), bj(1, 10.0, 0.5, false)];
        let s = EarliestCompletion.schedule(&batch, &view);
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn view_completion_time() {
        let grid = grid2();
        let mut a = vec![
            NodeAvailability::new(1, Time::ZERO),
            NodeAvailability::new(1, Time::ZERO),
        ];
        a[1].commit(1, Time::new(50.0));
        let view = GridView {
            grid: &grid,
            avail: &a,
            now: Time::new(10.0),
            model: SecurityModel::default(),
        };
        let job = Job::builder(0).work(100.0).build().unwrap();
        // Site 0: start max(10, 0)=10 (free) → 110.
        assert_eq!(
            view.completion_time(&job, SiteId(0)),
            Some(Time::new(110.0))
        );
        // Site 1: busy until 50, speed 4 → 75.
        assert_eq!(view.completion_time(&job, SiteId(1)), Some(Time::new(75.0)));
    }
}
