//! Replication wrapper: DFTS-style fault tolerance (Abawajy, the paper's
//! ref. \[1\]) on top of any base scheduler.
//!
//! The wrapped scheduler produces its normal assignment; for every job
//! whose chosen site is *risky* (failure probability above a threshold),
//! the wrapper adds a backup replica on the best *safe* site (earliest
//! completion among sites with `SL ≥ SD`), when one exists. The engine
//! completes the job with whichever replica succeeds first, so a primary
//! failure no longer costs a full reschedule round-trip — at the price of
//! the backup's resource consumption.
//!
//! Use with [`SimConfig::with_max_replicas`](crate::SimConfig) ≥ 2.

use crate::scheduler::{BatchJob, BatchScheduler, GridView};
use gridsec_core::etc::NodeAvailability;
use gridsec_core::{BatchSchedule, JobId, SiteId, Time};
use std::collections::HashMap;

/// Wraps a scheduler, replicating risky placements onto safe sites.
pub struct Replicated<S> {
    inner: S,
    /// Replicate when the primary's failure probability exceeds this.
    threshold: f64,
}

impl<S> Replicated<S> {
    /// Creates the wrapper; placements with `P(fail) > threshold` get a
    /// backup replica.
    pub fn new(inner: S, threshold: f64) -> Replicated<S> {
        Replicated {
            inner,
            threshold: threshold.clamp(0.0, 1.0),
        }
    }

    /// The wrapped scheduler.
    pub fn inner(&self) -> &S {
        &self.inner
    }
}

impl<S: BatchScheduler> BatchScheduler for Replicated<S> {
    fn name(&self) -> String {
        format!("Replicated[{}]", self.inner.name())
    }

    fn schedule(&mut self, batch: &[BatchJob], view: &GridView<'_>) -> BatchSchedule {
        let base = self.inner.schedule(batch, view);
        // Index the batch once: the assignment loops below would otherwise
        // re-scan it per assignment (O(n²) for large batches).
        let by_id: HashMap<JobId, &BatchJob> = batch.iter().map(|b| (b.job.id, b)).collect();
        // Track commitments of the base schedule so backup completion
        // estimates account for the primaries.
        let mut avail: Vec<NodeAvailability> = view.avail_clone();
        for a in &base.assignments {
            if let Some(bj) = by_id.get(&a.job) {
                let site = view.grid.site(a.site);
                if let Some(start) =
                    avail[a.site.0].earliest_start(bj.job.width, view.now.max(bj.job.arrival))
                {
                    avail[a.site.0].commit(bj.job.width, start + bj.job.exec_time(site.speed));
                }
            }
        }
        let mut out = base.clone();
        for a in &base.assignments {
            let Some(bj) = by_id.get(&a.job) else {
                continue;
            };
            let primary = view.grid.site(a.site);
            let p = view
                .model
                .fail_probability(bj.job.security_demand, primary.security_level);
            if p <= self.threshold {
                continue;
            }
            // Best safe backup site, excluding the primary.
            let mut best: Option<(SiteId, Time)> = None;
            for site in view.grid.sites() {
                if site.id == a.site
                    || !site.fits_width(bj.job.width)
                    || bj.job.security_demand > site.security_level
                {
                    continue;
                }
                let Some(start) =
                    avail[site.id.0].earliest_start(bj.job.width, view.now.max(bj.job.arrival))
                else {
                    continue;
                };
                let ct = start + bj.job.exec_time(site.speed);
                if best.is_none_or(|(_, t)| ct < t) {
                    best = Some((site.id, ct));
                }
            }
            if let Some((backup, ct)) = best {
                avail[backup.0].commit(bj.job.width, ct);
                out.push(bj.job.id, backup);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SimConfig;
    use crate::engine::simulate;
    use crate::scheduler::EarliestCompletion;
    use gridsec_core::{Grid, Job, Site};

    fn risky_grid() -> Grid {
        Grid::new(vec![
            Site::builder(0)
                .nodes(2)
                .speed(10.0)
                .security_level(0.1)
                .build()
                .unwrap(),
            Site::builder(1)
                .nodes(2)
                .speed(1.0)
                .security_level(0.95)
                .build()
                .unwrap(),
        ])
        .unwrap()
    }

    fn jobs(n: u64) -> Vec<Job> {
        (0..n)
            .map(|i| {
                Job::builder(i)
                    .arrival(Time::new(i as f64 * 5.0))
                    .work(40.0)
                    .security_demand(0.9)
                    .build()
                    .unwrap()
            })
            .collect()
    }

    #[test]
    fn replication_reduces_failed_reschedules() {
        let grid = risky_grid();
        let workload = jobs(40);
        // λ large → the fast unsafe site almost always fails.
        let base_config = SimConfig::default()
            .with_interval(Time::new(20.0))
            .with_lambda(50.0)
            .unwrap();
        let plain = simulate(&workload, &grid, &mut EarliestCompletion, &base_config).unwrap();
        let repl_config = base_config.clone().with_max_replicas(2);
        let replicated = simulate(
            &workload,
            &grid,
            &mut Replicated::new(EarliestCompletion, 0.5),
            &repl_config,
        )
        .unwrap();
        assert_eq!(replicated.metrics.n_jobs, 40);
        assert!(replicated.replica_dispatches > 0);
        // With a safe backup racing every risky primary, jobs never need
        // the fail-and-reschedule path.
        assert!(
            replicated.metrics.n_fail <= plain.metrics.n_fail,
            "replicated {} vs plain {}",
            replicated.metrics.n_fail,
            plain.metrics.n_fail
        );
        assert!(replicated.metrics.avg_response <= plain.metrics.avg_response * 1.5);
    }

    #[test]
    fn no_replication_below_threshold() {
        let grid = Grid::new(vec![Site::builder(0)
            .nodes(4)
            .security_level(1.0)
            .build()
            .unwrap()])
        .unwrap();
        let workload = jobs(10);
        let config = SimConfig::default()
            .with_interval(Time::new(20.0))
            .with_max_replicas(2);
        let out = simulate(
            &workload,
            &grid,
            &mut Replicated::new(EarliestCompletion, 0.2),
            &config,
        )
        .unwrap();
        // Everything is safe → wrapper adds nothing.
        assert_eq!(out.replica_dispatches, 0);
    }

    #[test]
    fn wrapper_name_reflects_inner() {
        let r = Replicated::new(EarliestCompletion, 0.5);
        assert_eq!(r.name(), "Replicated[MCT]");
    }
}
