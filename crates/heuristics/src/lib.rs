//! # gridsec-heuristics
//!
//! The security-driven scheduling heuristics of the paper's §2, plus the
//! classical immediate-mode baselines they are built on.
//!
//! Batch-mode mapping heuristics (two-phase greedy over the whole batch):
//!
//! * [`MinMin`] — repeatedly assign the job whose *best* completion time is
//!   smallest (paper's primary heuristic).
//! * [`Sufferage`] — repeatedly assign the job that would *suffer* most if
//!   denied its best site (second-best CT − best CT).
//! * [`MaxMin`] — the Min-Min dual (assign the job whose best CT is
//!   largest); a classical Braun et al. baseline used in ablations.
//! * [`Duplex`] — best-of Min-Min/Max-Min per batch (Braun et al.).
//!
//! Immediate-mode heuristics (assign jobs one by one in batch order):
//!
//! * [`Mct`] — minimum completion time.
//! * [`Met`] — minimum execution time (ignores queues).
//! * [`Kpb`] — k-percent-best (interpolates MET ↔ MCT).
//! * [`Olb`] — opportunistic load balancing (earliest-ready site).
//! * [`Switching`] — regime-switching MET/MCT on the load-balance index.
//! * [`RandomScheduler`] — uniform random admissible site.
//!
//! Every heuristic takes a [`gridsec_core::RiskMode`] and filters
//! sites through the security model (§2's *secure*/*risky*/*f-risky*
//! modes). Jobs flagged `secure_only` (already failed once) are always
//! scheduled as if in secure mode, per the paper's fail-stop rule.
//!
//! The low-level mapping functions in [`mapping`] operate on an explicit
//! [`EtcMatrix`](gridsec_core::EtcMatrix), so they can be unit-tested
//! against arbitrary (including inconsistent) ETC matrices such as the
//! paper's Fig. 2 example.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod common;
pub mod duplex;
pub mod immediate;
pub mod kpb;
pub mod mapping;
pub mod maxmin;
pub mod minmin;
pub mod random;
pub mod sufferage;
pub mod switching;

pub use common::Fallback;
pub use duplex::Duplex;
pub use immediate::{Mct, Met, Olb};
pub use kpb::Kpb;
pub use maxmin::MaxMin;
pub use minmin::MinMin;
pub use random::RandomScheduler;
pub use sufferage::Sufferage;
pub use switching::Switching;

use gridsec_core::RiskMode;
use gridsec_sim::BatchScheduler;

/// The six security-driven heuristics evaluated by the paper (Fig. 8):
/// {Min-Min, Sufferage} × {Secure, f-Risky(0.5), Risky}, in the paper's
/// presentation order.
pub fn paper_heuristics() -> Vec<Box<dyn BatchScheduler>> {
    vec![
        Box::new(MinMin::new(RiskMode::Secure)),
        Box::new(MinMin::new(RiskMode::FRisky(RiskMode::PAPER_F))),
        Box::new(MinMin::new(RiskMode::Risky)),
        Box::new(Sufferage::new(RiskMode::Secure)),
        Box::new(Sufferage::new(RiskMode::FRisky(RiskMode::PAPER_F))),
        Box::new(Sufferage::new(RiskMode::Risky)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_set_has_six_members_in_order() {
        let hs = paper_heuristics();
        let names: Vec<String> = hs.iter().map(|h| h.name()).collect();
        assert_eq!(
            names,
            vec![
                "Min-Min Secure",
                "Min-Min 0.5-Risky",
                "Min-Min Risky",
                "Sufferage Secure",
                "Sufferage 0.5-Risky",
                "Sufferage Risky",
            ]
        );
    }
}
