//! Immediate-mode baselines: MCT, MET, OLB (Maheswaran et al. 1999).
//!
//! These assign jobs one at a time in batch order — no global view of the
//! batch — and serve as the classical reference points the paper's batch
//! heuristics are measured against. All are security-driven through the
//! same candidate-site filter as Min-Min/Sufferage.

use crate::common::{candidate_sites, Fallback};
use gridsec_core::etc::NodeAvailability;
use gridsec_core::{BatchSchedule, RiskMode, SiteId, Time};
use gridsec_sim::{BatchJob, BatchScheduler, GridView};

/// Selection rule of an immediate-mode heuristic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Rule {
    /// Minimum completion time (queue-aware).
    Mct,
    /// Minimum execution time (ignores queues; classic "limited
    /// information" baseline).
    Met,
    /// Opportunistic load balancing: earliest-ready site, ignoring
    /// execution time.
    Olb,
}

fn run_immediate(
    rule: Rule,
    mode: RiskMode,
    fallback: Fallback,
    batch: &[BatchJob],
    view: &GridView<'_>,
) -> BatchSchedule {
    let mut avail: Vec<NodeAvailability> = view.avail_clone();
    let mut out = BatchSchedule::new();
    for bj in batch {
        let job = &bj.job;
        let cands = candidate_sites(job, bj.secure_only, mode, view, fallback);
        let mut best: Option<(usize, Time, Time)> = None; // (site, key, ct)
        for &s in &cands {
            let site = view.grid.site(SiteId(s));
            let start = match avail[s].earliest_start(job.width, view.now.max(job.arrival)) {
                Some(t) => t,
                None => continue,
            };
            let exec = job.exec_time(site.speed);
            let ct = start + exec;
            let key = match rule {
                Rule::Mct => ct,
                Rule::Met => exec,
                Rule::Olb => start,
            };
            if best.is_none_or(|(_, k, _)| key < k) {
                best = Some((s, key, ct));
            }
        }
        let (s, _, ct) = best.expect("candidate list is never empty for fitting jobs");
        avail[s].commit(job.width, ct);
        out.push(job.id, SiteId(s));
    }
    out
}

macro_rules! immediate_scheduler {
    ($(#[$doc:meta])* $name:ident, $rule:expr, $label:literal) => {
        $(#[$doc])*
        #[derive(Debug, Clone)]
        pub struct $name {
            mode: RiskMode,
            fallback: Fallback,
        }

        impl $name {
            /// Creates the scheduler operating under `mode`.
            pub fn new(mode: RiskMode) -> Self {
                Self {
                    mode,
                    fallback: Fallback::default(),
                }
            }

            /// Overrides the no-admissible-site fallback policy.
            pub fn with_fallback(mut self, fallback: Fallback) -> Self {
                self.fallback = fallback;
                self
            }

            /// The risk mode in force.
            pub fn mode(&self) -> RiskMode {
                self.mode
            }
        }

        impl BatchScheduler for $name {
            fn name(&self) -> String {
                format!("{} {}", $label, self.mode.label())
            }

            fn schedule(&mut self, batch: &[BatchJob], view: &GridView<'_>) -> BatchSchedule {
                run_immediate($rule, self.mode, self.fallback, batch, view)
            }
        }
    };
}

immediate_scheduler!(
    /// Minimum-Completion-Time: each job (in batch order) goes to the
    /// admissible site finishing it earliest, considering current queues.
    Mct,
    Rule::Mct,
    "MCT"
);

immediate_scheduler!(
    /// Minimum-Execution-Time: each job goes to the admissible site that
    /// *executes* it fastest, ignoring queues (prone to pile-ups on the
    /// fastest site — a useful worst-case baseline).
    Met,
    Rule::Met,
    "MET"
);

immediate_scheduler!(
    /// Opportunistic Load Balancing: each job goes to the admissible site
    /// that becomes ready earliest, ignoring execution times.
    Olb,
    Rule::Olb,
    "OLB"
);

#[cfg(test)]
mod tests {
    use super::*;
    use gridsec_core::{Grid, Job, JobId, SecurityModel, Site};

    fn fixture() -> (Grid, Vec<NodeAvailability>) {
        let grid = Grid::new(vec![
            Site::builder(0)
                .nodes(1)
                .speed(1.0)
                .security_level(1.0)
                .build()
                .unwrap(),
            Site::builder(1)
                .nodes(1)
                .speed(5.0)
                .security_level(1.0)
                .build()
                .unwrap(),
        ])
        .unwrap();
        let mut avail = vec![
            NodeAvailability::new(1, Time::ZERO),
            NodeAvailability::new(1, Time::ZERO),
        ];
        // The fast site is busy until t = 100.
        avail[1].commit(1, Time::new(100.0));
        (grid, avail)
    }

    fn one_job() -> Vec<BatchJob> {
        vec![BatchJob {
            job: Job::builder(0)
                .work(50.0)
                .security_demand(0.5)
                .build()
                .unwrap(),
            secure_only: false,
        }]
    }

    #[test]
    fn mct_considers_queues() {
        let (grid, avail) = fixture();
        let view = GridView {
            grid: &grid,
            avail: &avail,
            now: Time::ZERO,
            model: SecurityModel::default(),
        };
        // Site 0: done at 50. Site 1: 100 + 10 = 110. MCT → site 0.
        let s = Mct::new(RiskMode::Risky).schedule(&one_job(), &view);
        assert_eq!(s.site_of(JobId(0)), Some(SiteId(0)));
    }

    #[test]
    fn met_ignores_queues() {
        let (grid, avail) = fixture();
        let view = GridView {
            grid: &grid,
            avail: &avail,
            now: Time::ZERO,
            model: SecurityModel::default(),
        };
        // MET looks only at exec time: 10 on the busy fast site wins.
        let s = Met::new(RiskMode::Risky).schedule(&one_job(), &view);
        assert_eq!(s.site_of(JobId(0)), Some(SiteId(1)));
    }

    #[test]
    fn olb_takes_earliest_ready_site() {
        let (grid, avail) = fixture();
        let view = GridView {
            grid: &grid,
            avail: &avail,
            now: Time::ZERO,
            model: SecurityModel::default(),
        };
        let s = Olb::new(RiskMode::Risky).schedule(&one_job(), &view);
        assert_eq!(s.site_of(JobId(0)), Some(SiteId(0)));
    }

    #[test]
    fn names_include_mode() {
        assert_eq!(Mct::new(RiskMode::Secure).name(), "MCT Secure");
        assert_eq!(Met::new(RiskMode::Risky).name(), "MET Risky");
        assert_eq!(Olb::new(RiskMode::FRisky(0.5)).name(), "OLB 0.5-Risky");
    }

    #[test]
    fn full_batch_covered_in_order() {
        let (grid, avail) = fixture();
        let view = GridView {
            grid: &grid,
            avail: &avail,
            now: Time::ZERO,
            model: SecurityModel::default(),
        };
        let jobs: Vec<Job> = (0..4)
            .map(|i| Job::builder(i).work(10.0).build().unwrap())
            .collect();
        let batch: Vec<BatchJob> = jobs
            .iter()
            .cloned()
            .map(|job| BatchJob {
                job,
                secure_only: false,
            })
            .collect();
        let s = Mct::new(RiskMode::Risky).schedule(&batch, &view);
        assert!(s.validate(&jobs, &grid).is_ok());
        // Immediate mode preserves batch order in dispatch.
        let order: Vec<u64> = s.assignments.iter().map(|a| a.job.0).collect();
        assert_eq!(order, vec![0, 1, 2, 3]);
    }
}
