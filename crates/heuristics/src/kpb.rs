//! The k-percent-best (KPB) immediate-mode heuristic (Maheswaran et al.).
//!
//! For each job, consider only the `k` percent of admissible sites with
//! the smallest *execution* time, and among them pick the earliest
//! *completion*. KPB interpolates between MET (`k` → 0: fastest site
//! only) and MCT (`k` = 100: all sites), avoiding MET's pile-up on the
//! single fastest site while still favouring fast sites.

use crate::common::{candidate_sites, Fallback};
use gridsec_core::etc::NodeAvailability;
use gridsec_core::{BatchSchedule, Error, Result, RiskMode, SiteId, Time};
use gridsec_sim::{BatchJob, BatchScheduler, GridView};

/// k-percent-best scheduler.
#[derive(Debug, Clone)]
pub struct Kpb {
    mode: RiskMode,
    fallback: Fallback,
    /// Percentage of best-executing sites to consider, in `(0, 100]`.
    k_percent: f64,
}

impl Kpb {
    /// Creates a KPB scheduler; `k_percent` must lie in `(0, 100]`.
    pub fn new(mode: RiskMode, k_percent: f64) -> Result<Kpb> {
        if !(k_percent > 0.0 && k_percent <= 100.0) {
            return Err(Error::invalid(
                "k_percent",
                format!("must be in (0, 100], got {k_percent}"),
            ));
        }
        Ok(Kpb {
            mode,
            fallback: Fallback::default(),
            k_percent,
        })
    }

    /// Overrides the no-admissible-site fallback policy.
    pub fn with_fallback(mut self, fallback: Fallback) -> Self {
        self.fallback = fallback;
        self
    }

    /// The `k` parameter.
    pub fn k_percent(&self) -> f64 {
        self.k_percent
    }
}

impl BatchScheduler for Kpb {
    fn name(&self) -> String {
        format!("KPB({:.0}%) {}", self.k_percent, self.mode.label())
    }

    fn schedule(&mut self, batch: &[BatchJob], view: &GridView<'_>) -> BatchSchedule {
        let mut avail: Vec<NodeAvailability> = view.avail_clone();
        let mut out = BatchSchedule::new();
        for bj in batch {
            let job = &bj.job;
            let mut cands = candidate_sites(job, bj.secure_only, self.mode, view, self.fallback);
            // Keep the ceil(k% × |cands|) sites with the smallest exec time.
            cands.sort_by(|&a, &b| {
                let ea = job.work / view.grid.site(SiteId(a)).speed;
                let eb = job.work / view.grid.site(SiteId(b)).speed;
                ea.total_cmp(&eb)
            });
            let keep = ((self.k_percent / 100.0) * cands.len() as f64).ceil() as usize;
            cands.truncate(keep.max(1));
            let mut best: Option<(usize, Time)> = None;
            for &s in &cands {
                let site = view.grid.site(SiteId(s));
                let start = match avail[s].earliest_start(job.width, view.now.max(job.arrival)) {
                    Some(t) => t,
                    None => continue,
                };
                let ct = start + job.exec_time(site.speed);
                if best.is_none_or(|(_, t)| ct < t) {
                    best = Some((s, ct));
                }
            }
            let (s, ct) = best.expect("kept candidate list is non-empty");
            avail[s].commit(job.width, ct);
            out.push(job.id, SiteId(s));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridsec_core::{Grid, Job, JobId, SecurityModel, Site};

    fn grid3() -> Grid {
        Grid::new(vec![
            Site::builder(0).nodes(1).speed(1.0).build().unwrap(),
            Site::builder(1).nodes(1).speed(2.0).build().unwrap(),
            Site::builder(2).nodes(1).speed(4.0).build().unwrap(),
        ])
        .unwrap()
    }

    fn batch(n: u64) -> Vec<BatchJob> {
        (0..n)
            .map(|i| BatchJob {
                job: Job::builder(i).work(100.0).build().unwrap(),
                secure_only: false,
            })
            .collect()
    }

    #[test]
    fn k_validation() {
        assert!(Kpb::new(RiskMode::Risky, 0.0).is_err());
        assert!(Kpb::new(RiskMode::Risky, 101.0).is_err());
        assert!(Kpb::new(RiskMode::Risky, 50.0).is_ok());
    }

    #[test]
    fn small_k_behaves_like_met() {
        // k = 1% keeps only the fastest site; all jobs pile onto site 2.
        let grid = grid3();
        let avail = vec![NodeAvailability::new(1, Time::ZERO); 3];
        let view = GridView {
            grid: &grid,
            avail: &avail,
            now: Time::ZERO,
            model: SecurityModel::default(),
        };
        let mut kpb = Kpb::new(RiskMode::Risky, 1.0).unwrap();
        let s = kpb.schedule(&batch(3), &view);
        assert!(s.assignments.iter().all(|a| a.site == SiteId(2)));
    }

    #[test]
    fn full_k_behaves_like_mct() {
        // k = 100% sees queue buildup and spreads.
        let grid = grid3();
        let avail = vec![NodeAvailability::new(1, Time::ZERO); 3];
        let view = GridView {
            grid: &grid,
            avail: &avail,
            now: Time::ZERO,
            model: SecurityModel::default(),
        };
        let mut kpb = Kpb::new(RiskMode::Risky, 100.0).unwrap();
        let s = kpb.schedule(&batch(3), &view);
        let distinct: std::collections::HashSet<_> = s.assignments.iter().map(|a| a.site).collect();
        // 100/50/25 exec times: site 2 twice (25, 50 … wait queue) — at
        // least two distinct sites get used.
        assert!(distinct.len() >= 2);
    }

    #[test]
    fn intermediate_k_balances_within_fast_sites() {
        let grid = grid3();
        let avail = vec![NodeAvailability::new(1, Time::ZERO); 3];
        let view = GridView {
            grid: &grid,
            avail: &avail,
            now: Time::ZERO,
            model: SecurityModel::default(),
        };
        // 67% of 3 sites → 2 fastest sites (1 and 2).
        let mut kpb = Kpb::new(RiskMode::Risky, 67.0).unwrap();
        let s = kpb.schedule(&batch(4), &view);
        assert!(s
            .assignments
            .iter()
            .all(|a| a.site == SiteId(1) || a.site == SiteId(2)));
        assert_eq!(s.site_of(JobId(0)), Some(SiteId(2)));
    }
}
