//! The security-driven Sufferage scheduler (§2, heuristic 2).

use crate::common::{Fallback, MapCtx};
use crate::mapping::map_sufferage;
use gridsec_core::{BatchSchedule, RiskMode};
use gridsec_sim::{BatchJob, BatchScheduler, GridView};

/// Sufferage under a risk mode: the job that would "suffer" most in
/// completion time if denied its best site (second-best CT − best CT) is
/// assigned first, to its best site.
#[derive(Debug, Clone)]
pub struct Sufferage {
    mode: RiskMode,
    fallback: Fallback,
}

impl Sufferage {
    /// Creates a Sufferage scheduler operating under `mode`.
    pub fn new(mode: RiskMode) -> Self {
        Sufferage {
            mode,
            fallback: Fallback::default(),
        }
    }

    /// Overrides the no-admissible-site fallback policy.
    pub fn with_fallback(mut self, fallback: Fallback) -> Self {
        self.fallback = fallback;
        self
    }

    /// The risk mode in force.
    pub fn mode(&self) -> RiskMode {
        self.mode
    }
}

impl BatchScheduler for Sufferage {
    fn name(&self) -> String {
        format!("Sufferage {}", self.mode.label())
    }

    fn schedule(&mut self, batch: &[BatchJob], view: &GridView<'_>) -> BatchSchedule {
        let ctx = MapCtx::build(batch, view, self.mode, self.fallback);
        let mut avail = view.avail_clone();
        let mapping = map_sufferage(&ctx, &mut avail);
        BatchSchedule::from_pairs(
            mapping
                .into_iter()
                .map(|(j, s)| (batch[j].job.id, gridsec_core::SiteId(s))),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridsec_core::etc::NodeAvailability;
    use gridsec_core::{Grid, Job, JobId, SecurityModel, Site, SiteId, Time};

    #[test]
    fn prioritises_site_captive_jobs() {
        // Site 0 fast, site 1 very slow. The wide job only fits on site 0;
        // among narrow jobs, the one with the bigger penalty moves first.
        let grid = Grid::new(vec![
            Site::builder(0)
                .nodes(4)
                .speed(4.0)
                .security_level(1.0)
                .build()
                .unwrap(),
            Site::builder(1)
                .nodes(1)
                .speed(1.0)
                .security_level(1.0)
                .build()
                .unwrap(),
        ])
        .unwrap();
        let avail = vec![
            NodeAvailability::new(4, Time::ZERO),
            NodeAvailability::new(1, Time::ZERO),
        ];
        let view = GridView {
            grid: &grid,
            avail: &avail,
            now: Time::ZERO,
            model: SecurityModel::default(),
        };
        let batch: Vec<BatchJob> = vec![
            Job::builder(0).work(40.0).width(1).build().unwrap(),
            Job::builder(1).work(400.0).width(1).build().unwrap(),
        ]
        .into_iter()
        .map(|job| BatchJob {
            job,
            secure_only: false,
        })
        .collect();
        let s = Sufferage::new(RiskMode::Risky).schedule(&batch, &view);
        // Job 1 suffers more (400 − 100 = 300 vs 40 − 10 = 30): first.
        assert_eq!(s.assignments[0].job, JobId(1));
        assert_eq!(s.assignments[0].site, SiteId(0));
        let jobs: Vec<Job> = batch.iter().map(|b| b.job.clone()).collect();
        assert!(s.validate(&jobs, &grid).is_ok());
    }

    #[test]
    fn secure_only_jobs_avoid_risk_even_in_risky_mode() {
        let grid = Grid::new(vec![
            Site::builder(0)
                .nodes(1)
                .speed(10.0)
                .security_level(0.2)
                .build()
                .unwrap(),
            Site::builder(1)
                .nodes(1)
                .speed(1.0)
                .security_level(0.99)
                .build()
                .unwrap(),
        ])
        .unwrap();
        let avail = vec![
            NodeAvailability::new(1, Time::ZERO),
            NodeAvailability::new(1, Time::ZERO),
        ];
        let view = GridView {
            grid: &grid,
            avail: &avail,
            now: Time::ZERO,
            model: SecurityModel::default(),
        };
        let batch = vec![BatchJob {
            job: Job::builder(0)
                .work(50.0)
                .security_demand(0.9)
                .build()
                .unwrap(),
            secure_only: true,
        }];
        let s = Sufferage::new(RiskMode::Risky).schedule(&batch, &view);
        assert_eq!(s.site_of(JobId(0)), Some(SiteId(1)));
    }
}
