//! Duplex: run Min-Min *and* Max-Min on the batch, keep whichever
//! produces the smaller batch makespan (Braun et al.'s eleventh-hour
//! baseline — cheap insurance against Min-Min's long-job starvation).

use crate::common::{Fallback, MapCtx};
use crate::mapping::{map_max_min, map_min_min, mapping_makespan};
use gridsec_core::{BatchSchedule, RiskMode};
use gridsec_sim::{BatchJob, BatchScheduler, GridView};

/// The Duplex scheduler.
#[derive(Debug, Clone)]
pub struct Duplex {
    mode: RiskMode,
    fallback: Fallback,
}

impl Duplex {
    /// Creates a Duplex scheduler operating under `mode`.
    pub fn new(mode: RiskMode) -> Self {
        Duplex {
            mode,
            fallback: Fallback::default(),
        }
    }

    /// Overrides the no-admissible-site fallback policy.
    pub fn with_fallback(mut self, fallback: Fallback) -> Self {
        self.fallback = fallback;
        self
    }

    /// The risk mode in force.
    pub fn mode(&self) -> RiskMode {
        self.mode
    }
}

impl BatchScheduler for Duplex {
    fn name(&self) -> String {
        format!("Duplex {}", self.mode.label())
    }

    fn schedule(&mut self, batch: &[BatchJob], view: &GridView<'_>) -> BatchSchedule {
        let ctx = MapCtx::build(batch, view, self.mode, self.fallback);
        let mut a1 = view.avail_clone();
        let mm = map_min_min(&ctx, &mut a1);
        let mut a2 = view.avail_clone();
        let xm = map_max_min(&ctx, &mut a2);
        let ms_mm = mapping_makespan(&ctx, view.avail_clone(), &mm);
        let ms_xm = mapping_makespan(&ctx, view.avail_clone(), &xm);
        // (both replays start from the same availability snapshot)
        let pick = if ms_mm <= ms_xm { mm } else { xm };
        BatchSchedule::from_pairs(
            pick.into_iter()
                .map(|(j, s)| (batch[j].job.id, gridsec_core::SiteId(s))),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridsec_core::etc::NodeAvailability;
    use gridsec_core::{Grid, Job, SecurityModel, Site, Time};

    #[test]
    fn duplex_covers_batch_and_never_loses_to_both() {
        let grid = Grid::new(vec![
            Site::builder(0).nodes(1).speed(1.0).build().unwrap(),
            Site::builder(1).nodes(1).speed(2.5).build().unwrap(),
        ])
        .unwrap();
        let avail = vec![
            NodeAvailability::new(1, Time::ZERO),
            NodeAvailability::new(1, Time::ZERO),
        ];
        let view = GridView {
            grid: &grid,
            avail: &avail,
            now: Time::ZERO,
            model: SecurityModel::default(),
        };
        let jobs: Vec<Job> = (0..7)
            .map(|i| Job::builder(i).work(15.0 * (i + 1) as f64).build().unwrap())
            .collect();
        let batch: Vec<BatchJob> = jobs
            .iter()
            .cloned()
            .map(|job| BatchJob {
                job,
                secure_only: false,
            })
            .collect();
        let s = Duplex::new(RiskMode::Risky).schedule(&batch, &view);
        assert!(s.validate(&jobs, &grid).is_ok());
        assert_eq!(Duplex::new(RiskMode::Secure).name(), "Duplex Secure");
    }
}
