//! The Switching Algorithm (Maheswaran et al.): alternate between MET and
//! MCT based on the grid's load-balance index.
//!
//! MET drives work to the fastest sites (good when the grid is balanced,
//! terrible once they saturate); MCT balances load (but wastes the fast
//! sites when everything is idle). Switching watches the ratio of the
//! earliest to the latest site ready-time, `π = r_min / r_max ∈ [0, 1]`:
//! when the load is balanced (`π > high`) it uses MET to exploit fast
//! sites, and once imbalance grows (`π < low`) it falls back to MCT until
//! balance recovers.

use crate::common::{candidate_sites, Fallback};
use gridsec_core::etc::NodeAvailability;
use gridsec_core::{BatchSchedule, Error, Result, RiskMode, SiteId, Time};
use gridsec_sim::{BatchJob, BatchScheduler, GridView};

/// The Switching scheduler.
#[derive(Debug, Clone)]
pub struct Switching {
    mode: RiskMode,
    fallback: Fallback,
    low: f64,
    high: f64,
    use_met: bool,
}

impl Switching {
    /// Creates a Switching scheduler with thresholds `0 ≤ low ≤ high ≤ 1`
    /// (classic values: low = 0.6, high = 0.9).
    pub fn new(mode: RiskMode, low: f64, high: f64) -> Result<Switching> {
        if !(0.0..=1.0).contains(&low) || !(0.0..=1.0).contains(&high) || low > high {
            return Err(Error::invalid(
                "thresholds",
                format!("need 0 ≤ low ≤ high ≤ 1, got ({low}, {high})"),
            ));
        }
        Ok(Switching {
            mode,
            fallback: Fallback::default(),
            low,
            high,
            use_met: false, // start balanced-pessimistic: MCT
        })
    }

    /// Classic thresholds (0.6, 0.9).
    pub fn classic(mode: RiskMode) -> Switching {
        Self::new(mode, 0.6, 0.9).expect("classic thresholds are valid")
    }

    /// Load-balance index over current availability: earliest ready time
    /// divided by latest ready time (1.0 = perfectly balanced).
    fn balance_index(avail: &[NodeAvailability]) -> f64 {
        let readies: Vec<f64> = avail.iter().map(|a| a.ready_time().seconds()).collect();
        let min = readies.iter().copied().fold(f64::INFINITY, f64::min);
        let max = readies.iter().copied().fold(0.0f64, f64::max);
        if max <= 0.0 {
            1.0
        } else {
            (min / max).clamp(0.0, 1.0)
        }
    }
}

impl BatchScheduler for Switching {
    fn name(&self) -> String {
        format!("Switching {}", self.mode.label())
    }

    fn schedule(&mut self, batch: &[BatchJob], view: &GridView<'_>) -> BatchSchedule {
        let mut avail = view.avail_clone();
        let mut out = BatchSchedule::new();
        for bj in batch {
            let job = &bj.job;
            // Update the regime from the *current* tentative state.
            let pi = Self::balance_index(&avail);
            if pi > self.high {
                self.use_met = true;
            } else if pi < self.low {
                self.use_met = false;
            }
            let cands = candidate_sites(job, bj.secure_only, self.mode, view, self.fallback);
            let mut best: Option<(usize, Time, Time)> = None; // (site, key, ct)
            for &s in &cands {
                let site = view.grid.site(SiteId(s));
                let Some(start) = avail[s].earliest_start(job.width, view.now.max(job.arrival))
                else {
                    continue;
                };
                let exec = job.exec_time(site.speed);
                let ct = start + exec;
                let key = if self.use_met { exec } else { ct };
                if best.is_none_or(|(_, k, _)| key < k) {
                    best = Some((s, key, ct));
                }
            }
            let (s, _, ct) = best.expect("candidates are never empty");
            avail[s].commit(job.width, ct);
            out.push(job.id, SiteId(s));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridsec_core::{Grid, Job, SecurityModel, Site};

    fn grid() -> Grid {
        Grid::new(vec![
            Site::builder(0).nodes(1).speed(1.0).build().unwrap(),
            Site::builder(1).nodes(1).speed(4.0).build().unwrap(),
        ])
        .unwrap()
    }

    fn batch(n: u64) -> Vec<BatchJob> {
        (0..n)
            .map(|i| BatchJob {
                job: Job::builder(i).work(100.0).build().unwrap(),
                secure_only: false,
            })
            .collect()
    }

    #[test]
    fn threshold_validation() {
        assert!(Switching::new(RiskMode::Risky, 0.9, 0.6).is_err());
        assert!(Switching::new(RiskMode::Risky, -0.1, 0.5).is_err());
        assert!(Switching::new(RiskMode::Risky, 0.6, 0.9).is_ok());
    }

    #[test]
    fn starts_balanced_uses_met_then_switches_to_mct() {
        let g = grid();
        let avail = vec![
            NodeAvailability::new(1, Time::ZERO),
            NodeAvailability::new(1, Time::ZERO),
        ];
        let view = GridView {
            grid: &g,
            avail: &avail,
            now: Time::ZERO,
            model: SecurityModel::default(),
        };
        let mut s = Switching::classic(RiskMode::Risky);
        let schedule = s.schedule(&batch(6), &view);
        // On an idle grid π = 1 → MET sends the first job(s) to the fast
        // site; imbalance grows, π drops, MCT kicks in and uses site 0 too.
        assert_eq!(schedule.assignments[0].site, SiteId(1));
        let used: std::collections::HashSet<_> =
            schedule.assignments.iter().map(|a| a.site).collect();
        assert!(used.contains(&SiteId(0)), "MCT regime must engage");
        let jobs: Vec<Job> = batch(6).into_iter().map(|b| b.job).collect();
        assert!(schedule.validate(&jobs, &g).is_ok());
    }

    #[test]
    fn balance_index_extremes() {
        let idle = vec![
            NodeAvailability::new(1, Time::ZERO),
            NodeAvailability::new(1, Time::ZERO),
        ];
        assert_eq!(Switching::balance_index(&idle), 1.0);
        let mut skew = idle.clone();
        skew[0].commit(1, Time::new(100.0));
        assert_eq!(Switching::balance_index(&skew), 0.0);
    }
}
