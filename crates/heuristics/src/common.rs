//! Shared machinery: security-driven candidate-site selection and the
//! batch context handed to the low-level mapping functions.

use gridsec_core::etc::{EtcMatrix, NodeAvailability};
use gridsec_core::{Job, RiskMode, Time};
use gridsec_sim::{BatchJob, GridView};
use serde::{Deserialize, Serialize};

/// What to do when the risk mode admits *no* site for a job.
///
/// With the paper's distributions (`SD ≤ 0.9`, `SL ≤ 1.0`) a secure
/// placement usually exists, but a particular random grid may offer no site
/// with `SL ≥ SD` for some job, and a job cannot be held forever.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum Fallback {
    /// Use the fitting site(s) with maximal security level — the
    /// risk-minimal choice (default; matches the paper's observation that
    /// secure mode completes all jobs while leaving low-SL sites idle).
    #[default]
    MaxSecurityLevel,
    /// Use every fitting site (degrade to risky for this job).
    AnyFitting,
}

/// The effective risk mode for one batch job: failed jobs are re-scheduled
/// under secure mode regardless of the scheduler's own mode (§2 fail-stop
/// rule).
pub fn effective_mode(mode: RiskMode, secure_only: bool) -> RiskMode {
    if secure_only {
        RiskMode::Secure
    } else {
        mode
    }
}

/// Candidate site indices for a job under a mode, applying `fallback` when
/// the admissible set is empty. The result is non-empty whenever the job
/// fits on at least one site (which the engine guarantees).
pub fn candidate_sites(
    job: &Job,
    secure_only: bool,
    mode: RiskMode,
    view: &GridView<'_>,
    fallback: Fallback,
) -> Vec<usize> {
    let mode = effective_mode(mode, secure_only);
    let admissible: Vec<usize> = view
        .grid
        .sites()
        .filter(|s| s.fits_width(job.width) && mode.admits(&view.model, job.security_demand, s))
        .map(|s| s.id.0)
        .collect();
    if !admissible.is_empty() {
        return admissible;
    }
    let fitting: Vec<usize> = view
        .grid
        .sites()
        .filter(|s| s.fits_width(job.width))
        .map(|s| s.id.0)
        .collect();
    match fallback {
        Fallback::AnyFitting => fitting,
        Fallback::MaxSecurityLevel => {
            let max_sl = fitting
                .iter()
                .map(|&s| view.grid.site(gridsec_core::SiteId(s)).security_level)
                .fold(f64::NEG_INFINITY, f64::max);
            fitting
                .into_iter()
                .filter(|&s| {
                    (view.grid.site(gridsec_core::SiteId(s)).security_level - max_sl).abs() < 1e-12
                })
                .collect()
        }
    }
}

/// Everything a low-level mapping function needs about one batch, with the
/// grid abstracted into an ETC matrix and candidate lists (enabling tests
/// on arbitrary matrices).
#[derive(Debug, Clone)]
pub struct MapCtx {
    /// Execution times, batch-row-major.
    pub etc: EtcMatrix,
    /// Node widths per batch job.
    pub widths: Vec<u32>,
    /// Arrival instants per batch job (floors the start time).
    pub arrivals: Vec<Time>,
    /// Candidate site indices per batch job (non-empty).
    pub candidates: Vec<Vec<usize>>,
    /// The batch boundary instant.
    pub now: Time,
    /// The order in which assignment-replay (GA fitness and dispatch)
    /// commits jobs to sites. Identity by default; the STGA uses a
    /// first-fit-decreasing order (width, then work, descending), which
    /// packs multi-node sites better than arrival order.
    pub commit_order: Vec<usize>,
}

impl MapCtx {
    /// Builds the context for a batch under a risk mode.
    pub fn build(
        batch: &[BatchJob],
        view: &GridView<'_>,
        mode: RiskMode,
        fallback: Fallback,
    ) -> MapCtx {
        let jobs: Vec<Job> = batch.iter().map(|b| b.job.clone()).collect();
        let etc = EtcMatrix::build(&jobs, view.grid);
        let widths = jobs.iter().map(|j| j.width).collect();
        let arrivals = jobs.iter().map(|j| j.arrival).collect();
        let candidates = batch
            .iter()
            .map(|b| candidate_sites(&b.job, b.secure_only, mode, view, fallback))
            .collect();
        let commit_order = (0..batch.len()).collect();
        MapCtx {
            etc,
            widths,
            arrivals,
            candidates,
            now: view.now,
            commit_order,
        }
    }

    /// Switches to a first-fit-decreasing commit order: widest jobs first,
    /// then largest work — the classic bin-packing order that reduces
    /// fragmentation on multi-node sites.
    pub fn with_ffd_order(mut self) -> MapCtx {
        let works: Vec<f64> = (0..self.n_jobs())
            .map(|j| {
                self.etc
                    .row(j)
                    .iter()
                    .copied()
                    .filter(|t| t.is_finite())
                    .fold(0.0f64, f64::max)
            })
            .collect();
        self.commit_order.sort_by(|&a, &b| {
            self.widths[b]
                .cmp(&self.widths[a])
                .then_with(|| works[b].total_cmp(&works[a]))
                .then_with(|| a.cmp(&b))
        });
        self
    }

    /// Number of batch jobs.
    pub fn n_jobs(&self) -> usize {
        self.widths.len()
    }

    /// The commit order as an iterator: the explicit `commit_order` when
    /// it is a full permutation, identity otherwise (e.g. when a context
    /// is hand-built in tests with an empty order).
    pub fn order_iter(&self) -> impl Iterator<Item = usize> + '_ {
        let explicit = self.commit_order.len() == self.n_jobs();
        (0..self.n_jobs()).map(move |i| if explicit { self.commit_order[i] } else { i })
    }

    /// Estimated completion time of batch job `j` on site `s` against the
    /// given availability state, or `None` if the job does not fit there.
    pub fn completion(&self, avail: &[NodeAvailability], j: usize, s: usize) -> Option<Time> {
        let exec = self.etc.get(j, s);
        if !exec.is_finite() {
            return None;
        }
        let start = avail[s].earliest_start(self.widths[j], self.now.max(self.arrivals[j]))?;
        Some(start + Time::new(exec))
    }

    /// Best (site, completion) for job `j` over its candidates; `None` only
    /// if no candidate fits (cannot happen for engine-validated batches).
    pub fn best(&self, avail: &[NodeAvailability], j: usize) -> Option<(usize, Time)> {
        let mut best: Option<(usize, Time)> = None;
        for &s in &self.candidates[j] {
            if let Some(ct) = self.completion(avail, j, s) {
                if best.is_none_or(|(_, t)| ct < t) {
                    best = Some((s, ct));
                }
            }
        }
        best
    }

    /// Best and second-best completion times for job `j` (the Sufferage
    /// quantities). When only one candidate exists, the second-best equals
    /// the best (sufferage 0).
    pub fn best_two(&self, avail: &[NodeAvailability], j: usize) -> Option<(usize, Time, Time)> {
        let mut best: Option<(usize, Time)> = None;
        let mut second: Option<Time> = None;
        for &s in &self.candidates[j] {
            if let Some(ct) = self.completion(avail, j, s) {
                match best {
                    None => best = Some((s, ct)),
                    Some((bs, bt)) => {
                        if ct < bt {
                            second = Some(bt);
                            best = Some((s, ct));
                            let _ = bs;
                        } else if second.is_none_or(|t| ct < t) {
                            second = Some(ct);
                        }
                    }
                }
            }
        }
        best.map(|(s, t)| (s, t, second.unwrap_or(t)))
    }

    /// Commits job `j` to site `s`: reserves the nodes until the estimated
    /// completion and returns it.
    pub fn commit(&self, avail: &mut [NodeAvailability], j: usize, s: usize) -> Time {
        let ct = self
            .completion(avail, j, s)
            .expect("commit target must fit");
        avail[s].commit(self.widths[j], ct);
        ct
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridsec_core::{Grid, SecurityModel, Site};

    fn grid() -> Grid {
        Grid::new(vec![
            Site::builder(0)
                .nodes(4)
                .speed(1.0)
                .security_level(0.9)
                .build()
                .unwrap(),
            Site::builder(1)
                .nodes(2)
                .speed(2.0)
                .security_level(0.5)
                .build()
                .unwrap(),
        ])
        .unwrap()
    }

    #[test]
    fn effective_mode_overrides_for_failed_jobs() {
        assert_eq!(effective_mode(RiskMode::Risky, true), RiskMode::Secure);
        assert_eq!(effective_mode(RiskMode::Risky, false), RiskMode::Risky);
    }

    #[test]
    fn candidates_respect_mode_and_fallback() {
        let g = grid();
        let avail = vec![
            NodeAvailability::new(4, Time::ZERO),
            NodeAvailability::new(2, Time::ZERO),
        ];
        let v = GridView {
            grid: &g,
            avail: &avail,
            now: Time::ZERO,
            model: SecurityModel::default(),
        };
        let job = Job::builder(0).security_demand(0.7).build().unwrap();
        // Secure: only site 0 (SL 0.9).
        assert_eq!(
            candidate_sites(&job, false, RiskMode::Secure, &v, Fallback::default()),
            vec![0]
        );
        // Risky: both.
        assert_eq!(
            candidate_sites(&job, false, RiskMode::Risky, &v, Fallback::default()),
            vec![0, 1]
        );
        // Demand above every SL → secure admits nothing → fallback to max-SL.
        let hot = Job::builder(1).security_demand(0.95).build().unwrap();
        assert_eq!(
            candidate_sites(
                &hot,
                false,
                RiskMode::Secure,
                &v,
                Fallback::MaxSecurityLevel
            ),
            vec![0]
        );
        assert_eq!(
            candidate_sites(&hot, false, RiskMode::Secure, &v, Fallback::AnyFitting),
            vec![0, 1]
        );
        // secure_only forces secure filtering even in risky mode.
        assert_eq!(
            candidate_sites(&job, true, RiskMode::Risky, &v, Fallback::default()),
            vec![0]
        );
    }

    #[test]
    fn ctx_best_and_commit() {
        let g = grid();
        let avail = vec![
            NodeAvailability::new(4, Time::ZERO),
            NodeAvailability::new(2, Time::ZERO),
        ];
        let v = GridView {
            grid: &g,
            avail: &avail,
            now: Time::ZERO,
            model: SecurityModel::default(),
        };
        let batch = vec![BatchJob {
            job: Job::builder(0)
                .work(100.0)
                .security_demand(0.5)
                .build()
                .unwrap(),
            secure_only: false,
        }];
        let ctx = MapCtx::build(&batch, &v, RiskMode::Risky, Fallback::default());
        let mut work = avail.clone();
        let (s, ct) = ctx.best(&work, 0).unwrap();
        assert_eq!(s, 1); // speed 2 → 50 s
        assert_eq!(ct, Time::new(50.0));
        let committed = ctx.commit(&mut work, 0, s);
        assert_eq!(committed, Time::new(50.0));
        // Site 1 has two nodes: one more identical job still finishes at
        // 50 on the free node; after that both nodes are busy until 50 and
        // a third job would finish at 100.
        assert_eq!(ctx.completion(&work, 0, 1), Some(Time::new(50.0)));
        ctx.commit(&mut work, 0, 1);
        assert_eq!(ctx.completion(&work, 0, 1), Some(Time::new(100.0)));
    }

    #[test]
    fn best_two_degenerates_with_single_candidate() {
        let g = grid();
        let avail = vec![
            NodeAvailability::new(4, Time::ZERO),
            NodeAvailability::new(2, Time::ZERO),
        ];
        let v = GridView {
            grid: &g,
            avail: &avail,
            now: Time::ZERO,
            model: SecurityModel::default(),
        };
        let batch = vec![BatchJob {
            job: Job::builder(0)
                .work(60.0)
                .security_demand(0.7)
                .build()
                .unwrap(),
            secure_only: false,
        }];
        let ctx = MapCtx::build(&batch, &v, RiskMode::Secure, Fallback::default());
        let (s, best, second) = ctx.best_two(&avail, 0).unwrap();
        assert_eq!(s, 0);
        assert_eq!(best, second); // sufferage 0
    }
}
