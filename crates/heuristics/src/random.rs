//! Uniform-random baseline scheduler.

use crate::common::{candidate_sites, Fallback};
use gridsec_core::rng::{stream, Stream};
use gridsec_core::{BatchSchedule, RiskMode, SiteId};
use gridsec_sim::{BatchJob, BatchScheduler, GridView};
use rand::Rng;
use rand_chacha::ChaCha8Rng;

/// Assigns each job to a uniformly random admissible site. The weakest
/// sensible baseline: it respects the risk mode (and the secure-only rule
/// for failed jobs) but optimises nothing.
#[derive(Debug, Clone)]
pub struct RandomScheduler {
    mode: RiskMode,
    fallback: Fallback,
    rng: ChaCha8Rng,
}

impl RandomScheduler {
    /// Creates a random scheduler with its own deterministic stream.
    pub fn new(mode: RiskMode, seed: u64) -> Self {
        RandomScheduler {
            mode,
            fallback: Fallback::default(),
            rng: stream(seed, Stream::Custom(0x52414E44)),
        }
    }

    /// Overrides the no-admissible-site fallback policy.
    pub fn with_fallback(mut self, fallback: Fallback) -> Self {
        self.fallback = fallback;
        self
    }
}

impl BatchScheduler for RandomScheduler {
    fn name(&self) -> String {
        format!("Random {}", self.mode.label())
    }

    fn schedule(&mut self, batch: &[BatchJob], view: &GridView<'_>) -> BatchSchedule {
        let mut out = BatchSchedule::new();
        for bj in batch {
            let cands = candidate_sites(&bj.job, bj.secure_only, self.mode, view, self.fallback);
            let pick = cands[self.rng.gen_range(0..cands.len())];
            out.push(bj.job.id, SiteId(pick));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridsec_core::etc::NodeAvailability;
    use gridsec_core::{Grid, Job, SecurityModel, Site, Time};

    #[test]
    fn covers_batch_and_respects_secure_mode() {
        let grid = Grid::new(vec![
            Site::builder(0)
                .nodes(1)
                .security_level(0.3)
                .build()
                .unwrap(),
            Site::builder(1)
                .nodes(1)
                .security_level(0.95)
                .build()
                .unwrap(),
        ])
        .unwrap();
        let avail = vec![
            NodeAvailability::new(1, Time::ZERO),
            NodeAvailability::new(1, Time::ZERO),
        ];
        let view = GridView {
            grid: &grid,
            avail: &avail,
            now: Time::ZERO,
            model: SecurityModel::default(),
        };
        let jobs: Vec<Job> = (0..20)
            .map(|i| {
                Job::builder(i)
                    .work(10.0)
                    .security_demand(0.8)
                    .build()
                    .unwrap()
            })
            .collect();
        let batch: Vec<BatchJob> = jobs
            .iter()
            .cloned()
            .map(|job| BatchJob {
                job,
                secure_only: false,
            })
            .collect();
        let mut s = RandomScheduler::new(RiskMode::Secure, 1);
        let schedule = s.schedule(&batch, &view);
        assert!(schedule.validate(&jobs, &grid).is_ok());
        // Secure mode: SD 0.8 only admits site 1.
        assert!(schedule.assignments.iter().all(|a| a.site == SiteId(1)));
    }

    #[test]
    fn risky_mode_spreads_over_sites() {
        let grid = Grid::new(vec![
            Site::builder(0).nodes(1).build().unwrap(),
            Site::builder(1).nodes(1).build().unwrap(),
        ])
        .unwrap();
        let avail = vec![
            NodeAvailability::new(1, Time::ZERO),
            NodeAvailability::new(1, Time::ZERO),
        ];
        let view = GridView {
            grid: &grid,
            avail: &avail,
            now: Time::ZERO,
            model: SecurityModel::default(),
        };
        let batch: Vec<BatchJob> = (0..50)
            .map(|i| BatchJob {
                job: Job::builder(i).work(5.0).build().unwrap(),
                secure_only: false,
            })
            .collect();
        let mut s = RandomScheduler::new(RiskMode::Risky, 2);
        let schedule = s.schedule(&batch, &view);
        let on0 = schedule
            .assignments
            .iter()
            .filter(|a| a.site == SiteId(0))
            .count();
        assert!(on0 > 10 && on0 < 40, "uniform spread, got {on0}/50");
    }

    #[test]
    fn deterministic_per_seed() {
        let grid = Grid::new(vec![
            Site::builder(0).nodes(1).build().unwrap(),
            Site::builder(1).nodes(1).build().unwrap(),
        ])
        .unwrap();
        let avail = vec![
            NodeAvailability::new(1, Time::ZERO),
            NodeAvailability::new(1, Time::ZERO),
        ];
        let view = GridView {
            grid: &grid,
            avail: &avail,
            now: Time::ZERO,
            model: SecurityModel::default(),
        };
        let batch: Vec<BatchJob> = (0..10)
            .map(|i| BatchJob {
                job: Job::builder(i).work(5.0).build().unwrap(),
                secure_only: false,
            })
            .collect();
        let a = RandomScheduler::new(RiskMode::Risky, 9).schedule(&batch, &view);
        let b = RandomScheduler::new(RiskMode::Risky, 9).schedule(&batch, &view);
        assert_eq!(a, b);
    }
}
