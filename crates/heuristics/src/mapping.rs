//! Low-level batch-mapping algorithms over explicit ETC matrices.
//!
//! These functions implement the two-phase greedy loops of Min-Min,
//! Max-Min and Sufferage against a [`MapCtx`] and a mutable availability
//! state, returning `(job, site)` pairs in dispatch order. They are pure
//! with respect to the grid: tests drive them with hand-written
//! (including inconsistent) ETC matrices such as the paper's Fig. 2
//! example.
//!
//! ## Hot-path structure
//!
//! The textbook loops are O(n²·m): every round rescans every unassigned
//! job's candidate sites. The implementations here cut that two ways
//! while staying **bit-identical** to the textbook versions (kept in
//! [`reference`]; the property suite asserts equality on random
//! instances):
//!
//! * **Invalidation caching.** Committing a job only delays the committed
//!   site — [`NodeAvailability`] is monotone — so another job's cached
//!   best (site, CT) stays exactly what a fresh scan would return unless
//!   the committed site could have contributed to it. Min-Min/Max-Min
//!   recompute a job only when its cached best sits on the committed
//!   site; Sufferage (whose second-best may also move) recomputes when
//!   the committed site is in the job's candidate list.
//! * **Deterministic parallel argmin.** The per-round selection over
//!   cached values runs on `par_iter().indexed_min_by`, whose tree
//!   reduction breaks ties toward the lowest index — the same winner as
//!   the sequential first-strictly-better scan, at every thread count.

use crate::common::MapCtx;
use gridsec_core::etc::NodeAvailability;
use gridsec_core::Time;
use rayon::prelude::*;
use std::cmp::Ordering;

/// Min-Min: repeatedly pick the unassigned job whose *best* completion
/// time is smallest, and assign it there. Ties break on lower job index,
/// then lower site index (deterministic).
pub fn map_min_min(ctx: &MapCtx, avail: &mut [NodeAvailability]) -> Vec<(usize, usize)> {
    map_by_best(ctx, avail, |a, b| a.cmp(b))
}

/// Max-Min: the dual — pick the unassigned job whose best completion time
/// is *largest* (runs long jobs early).
pub fn map_max_min(ctx: &MapCtx, avail: &mut [NodeAvailability]) -> Vec<(usize, usize)> {
    map_by_best(ctx, avail, |a, b| b.cmp(a))
}

/// Shared Min-Min / Max-Min skeleton: `cmp` orders candidate completion
/// times so that `Ordering::Less` means "strictly better" (the argmin
/// keeps the earliest position on ties, matching the sequential scan).
fn map_by_best(
    ctx: &MapCtx,
    avail: &mut [NodeAvailability],
    cmp: impl Fn(&Time, &Time) -> Ordering + Sync,
) -> Vec<(usize, usize)> {
    let n = ctx.n_jobs();
    let mut unassigned: Vec<usize> = (0..n).collect();
    // Cached best (site, CT) per unassigned position, parallel initial
    // fill.
    let mut best: Vec<(usize, Time)> = {
        let view: &[NodeAvailability] = avail;
        unassigned
            .par_iter()
            .map(|&j| {
                ctx.best(view, j)
                    .expect("every batch job has a feasible candidate")
            })
            .collect()
    };
    let mut out = Vec::with_capacity(n);
    while !unassigned.is_empty() {
        let (pos, _) = best
            .par_iter()
            .indexed_min_by(|a, b| cmp(&a.1, &b.1))
            .expect("non-empty unassigned set");
        let (site, _) = best[pos];
        let job = unassigned.remove(pos);
        best.remove(pos);
        ctx.commit(avail, job, site);
        out.push((job, site));
        // Only jobs whose cached best sat on the committed site can have
        // changed (availability is monotone; see module docs).
        for (i, &j) in unassigned.iter().enumerate() {
            if best[i].0 == site {
                best[i] = ctx
                    .best(avail, j)
                    .expect("every batch job has a feasible candidate");
            }
        }
    }
    out
}

/// Sufferage: repeatedly pick the unassigned job with the largest
/// *sufferage* (second-best CT − best CT) and assign it to its best site.
/// A job with a single candidate has sufferage 0.
pub fn map_sufferage(ctx: &MapCtx, avail: &mut [NodeAvailability]) -> Vec<(usize, usize)> {
    let n = ctx.n_jobs();
    let m = ctx.etc.n_sites();
    let mut unassigned: Vec<usize> = (0..n).collect();
    // Candidate-membership mask: invalidation below must recompute every
    // job that could see the committed site at all (its second-best may
    // sit there even when its best does not).
    let mut is_candidate = vec![false; n * m];
    for (j, cands) in ctx.candidates.iter().enumerate() {
        for &s in cands {
            is_candidate[j * m + s] = true;
        }
    }
    // Cached (best site, best CT, second-best CT) per unassigned
    // position, parallel initial fill.
    let mut cached: Vec<(usize, Time, Time)> = {
        let view: &[NodeAvailability] = avail;
        unassigned
            .par_iter()
            .map(|&j| {
                ctx.best_two(view, j)
                    .expect("every batch job has a feasible candidate")
            })
            .collect()
    };
    let mut out = Vec::with_capacity(n);
    while !unassigned.is_empty() {
        // Largest sufferage wins; ties go to the earliest position, as in
        // the sequential strictly-greater scan.
        let (pos, _) = cached
            .par_iter()
            .indexed_min_by(|a, b| (b.2 - b.1).cmp(&(a.2 - a.1)))
            .expect("non-empty unassigned set");
        let (site, _, _) = cached[pos];
        let job = unassigned.remove(pos);
        cached.remove(pos);
        ctx.commit(avail, job, site);
        out.push((job, site));
        for (i, &j) in unassigned.iter().enumerate() {
            if is_candidate[j * m + site] {
                cached[i] = ctx
                    .best_two(avail, j)
                    .expect("every batch job has a feasible candidate");
            }
        }
    }
    out
}

/// The textbook O(n²·m) loops, exactly as implemented before the PR 3
/// hot-path rewrite: full rescan of every unassigned job per round,
/// sequential first-strictly-better selection. Kept as the behavioural
/// reference — the property suite asserts the optimized loops above match
/// these bit for bit on random instances, and `perf_baseline` times both
/// sides.
pub mod reference {
    use super::*;

    /// Reference Min-Min (see [`super::map_min_min`]).
    pub fn map_min_min(ctx: &MapCtx, avail: &mut [NodeAvailability]) -> Vec<(usize, usize)> {
        map_by_best(ctx, avail, |best, incumbent| best < incumbent)
    }

    /// Reference Max-Min (see [`super::map_max_min`]).
    pub fn map_max_min(ctx: &MapCtx, avail: &mut [NodeAvailability]) -> Vec<(usize, usize)> {
        map_by_best(ctx, avail, |best, incumbent| best > incumbent)
    }

    fn map_by_best(
        ctx: &MapCtx,
        avail: &mut [NodeAvailability],
        prefer: impl Fn(Time, Time) -> bool,
    ) -> Vec<(usize, usize)> {
        let n = ctx.n_jobs();
        let mut unassigned: Vec<usize> = (0..n).collect();
        let mut out = Vec::with_capacity(n);
        while !unassigned.is_empty() {
            let mut pick: Option<(usize, usize, Time)> = None; // (pos, site, ct)
            for (pos, &j) in unassigned.iter().enumerate() {
                let (s, ct) = ctx
                    .best(avail, j)
                    .expect("every batch job has a feasible candidate");
                if pick.is_none_or(|(_, _, t)| prefer(ct, t)) {
                    pick = Some((pos, s, ct));
                }
            }
            let (pos, site, _) = pick.expect("non-empty unassigned set");
            let job = unassigned.remove(pos);
            ctx.commit(avail, job, site);
            out.push((job, site));
        }
        out
    }

    /// Reference Sufferage (see [`super::map_sufferage`]).
    pub fn map_sufferage(ctx: &MapCtx, avail: &mut [NodeAvailability]) -> Vec<(usize, usize)> {
        let n = ctx.n_jobs();
        let mut unassigned: Vec<usize> = (0..n).collect();
        let mut out = Vec::with_capacity(n);
        while !unassigned.is_empty() {
            let mut pick: Option<(usize, usize, Time)> = None; // (pos, site, sufferage)
            for (pos, &j) in unassigned.iter().enumerate() {
                let (s, best, second) = ctx
                    .best_two(avail, j)
                    .expect("every batch job has a feasible candidate");
                let sufferage = second - best;
                if pick.is_none_or(|(_, _, v)| sufferage > v) {
                    pick = Some((pos, s, sufferage));
                }
            }
            let (pos, site, _) = pick.expect("non-empty unassigned set");
            let job = unassigned.remove(pos);
            ctx.commit(avail, job, site);
            out.push((job, site));
        }
        out
    }
}

/// Makespan implied by a mapping: latest committed completion time. Takes
/// a *fresh* availability state and replays the mapping.
pub fn mapping_makespan(
    ctx: &MapCtx,
    mut avail: Vec<NodeAvailability>,
    mapping: &[(usize, usize)],
) -> Time {
    let mut makespan = Time::ZERO;
    for &(j, s) in mapping {
        let ct = ctx.commit(&mut avail, j, s);
        makespan = makespan.max(ct);
    }
    makespan
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridsec_core::etc::EtcMatrix;

    /// A hand-constructed inconsistent ETC instance in the spirit of the
    /// paper's Fig. 2: three jobs, two single-node sites. Min-Min commits
    /// J2 then J1 to S1 and forces J3 late (makespan 14); Sufferage sees
    /// J3's huge penalty on S2, gives it S1 first, and finishes at 11.
    fn fig2_ctx() -> (MapCtx, Vec<NodeAvailability>) {
        // Rows J1..J3, columns S1, S2.
        let etc = EtcMatrix::from_raw(3, 2, vec![4.0, 8.0, 3.0, 6.0, 7.0, 18.0]);
        let ctx = MapCtx {
            etc,
            widths: vec![1, 1, 1],
            arrivals: vec![Time::ZERO; 3],
            candidates: vec![vec![0, 1]; 3],
            now: Time::ZERO,
            commit_order: vec![],
        };
        let avail = vec![
            NodeAvailability::new(1, Time::ZERO),
            NodeAvailability::new(1, Time::ZERO),
        ];
        (ctx, avail)
    }

    #[test]
    fn fig2_min_min_schedules_smallest_first() {
        let (ctx, mut avail) = fig2_ctx();
        let mapping = map_min_min(&ctx, &mut avail);
        // J2 (index 1) has the smallest earliest ETC (3 on S1) — first.
        assert_eq!(mapping[0], (1, 0));
        // Then J1 stays on S1 (3+4=7 beats 8 on S2), trapping J3.
        assert_eq!(mapping[1], (0, 0));
        assert_eq!(mapping[2], (2, 0));
        let (ctx, avail) = fig2_ctx();
        let ms = mapping_makespan(&ctx, avail, &mapping);
        assert_eq!(ms, Time::new(14.0));
    }

    #[test]
    fn fig2_sufferage_rescues_the_suffering_job() {
        let (ctx, mut avail) = fig2_ctx();
        let mapping = map_sufferage(&ctx, &mut avail);
        // J3 (index 2) suffers most (18 − 7 = 11) — scheduled first to S1.
        assert_eq!(mapping[0], (2, 0));
        let (ctx, avail) = fig2_ctx();
        let ms = mapping_makespan(&ctx, avail, &mapping);
        assert_eq!(ms, Time::new(11.0));
    }

    #[test]
    fn fig2_sufferage_beats_min_min() {
        let (ctx, mut a1) = fig2_ctx();
        let mm = map_min_min(&ctx, &mut a1);
        let (ctx2, mut a2) = fig2_ctx();
        let sf = map_sufferage(&ctx2, &mut a2);
        let (ctx3, a3) = fig2_ctx();
        let ms_mm = mapping_makespan(&ctx3, a3.clone(), &mm);
        let ms_sf = mapping_makespan(&ctx3, a3, &sf);
        assert!(ms_sf < ms_mm, "sufferage {ms_sf} vs min-min {ms_mm}");
    }

    #[test]
    fn max_min_runs_long_jobs_first() {
        let (ctx, mut avail) = fig2_ctx();
        let mapping = map_max_min(&ctx, &mut avail);
        // J3's best CT (7) is the largest best — scheduled first.
        assert_eq!(mapping[0], (2, 0));
    }

    #[test]
    fn all_mappings_cover_each_job_once() {
        let (ctx, a) = fig2_ctx();
        for f in [map_min_min, map_max_min, map_sufferage] {
            let mut avail = a.clone();
            let m = f(&ctx, &mut avail);
            let mut jobs: Vec<usize> = m.iter().map(|&(j, _)| j).collect();
            jobs.sort_unstable();
            assert_eq!(jobs, vec![0, 1, 2]);
        }
    }

    #[test]
    fn candidates_restrict_assignments() {
        let etc = EtcMatrix::from_raw(2, 2, vec![1.0, 10.0, 1.0, 10.0]);
        let ctx = MapCtx {
            etc,
            widths: vec![1, 1],
            arrivals: vec![Time::ZERO; 2],
            // Job 0 may only use the slow site 1.
            candidates: vec![vec![1], vec![0, 1]],
            now: Time::ZERO,
            commit_order: vec![],
        };
        let mut avail = vec![
            NodeAvailability::new(1, Time::ZERO),
            NodeAvailability::new(1, Time::ZERO),
        ];
        let m = map_min_min(&ctx, &mut avail);
        let index = gridsec_core::BatchSchedule::from_pairs(
            m.iter()
                .map(|&(j, s)| (gridsec_core::JobId(j as u64), gridsec_core::SiteId(s))),
        )
        .index();
        let site_of = |j: u64| index.site_of(gridsec_core::JobId(j)).unwrap().0;
        assert_eq!(site_of(0), 1);
        assert_eq!(site_of(1), 0);
    }

    #[test]
    fn arrival_floor_delays_start() {
        let etc = EtcMatrix::from_raw(1, 1, vec![5.0]);
        let ctx = MapCtx {
            etc,
            widths: vec![1],
            arrivals: vec![Time::new(100.0)],
            candidates: vec![vec![0]],
            now: Time::new(50.0),
            commit_order: vec![],
        };
        let avail = vec![NodeAvailability::new(1, Time::ZERO)];
        let mut a = avail.clone();
        let m = map_min_min(&ctx, &mut a);
        let ms = mapping_makespan(&ctx, avail, &m);
        // Start no earlier than the arrival (100), not `now` (50).
        assert_eq!(ms, Time::new(105.0));
    }
}
