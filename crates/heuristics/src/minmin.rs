//! The security-driven Min-Min scheduler (§2, heuristic 1).

use crate::common::{Fallback, MapCtx};
use crate::mapping::map_min_min;
use gridsec_core::{BatchSchedule, RiskMode};
use gridsec_sim::{BatchJob, BatchScheduler, GridView};

/// Min-Min under a risk mode: for each job the site with the earliest
/// completion time is identified; the job with the minimum earliest
/// completion time is assigned first, and the process repeats.
///
/// ```
/// use gridsec_core::RiskMode;
/// use gridsec_heuristics::MinMin;
/// use gridsec_sim::BatchScheduler;
/// let s = MinMin::new(RiskMode::FRisky(0.5));
/// assert_eq!(s.name(), "Min-Min 0.5-Risky");
/// ```
#[derive(Debug, Clone)]
pub struct MinMin {
    mode: RiskMode,
    fallback: Fallback,
}

impl MinMin {
    /// Creates a Min-Min scheduler operating under `mode`.
    pub fn new(mode: RiskMode) -> Self {
        MinMin {
            mode,
            fallback: Fallback::default(),
        }
    }

    /// Overrides the no-admissible-site fallback policy.
    pub fn with_fallback(mut self, fallback: Fallback) -> Self {
        self.fallback = fallback;
        self
    }

    /// The risk mode in force.
    pub fn mode(&self) -> RiskMode {
        self.mode
    }
}

impl BatchScheduler for MinMin {
    fn name(&self) -> String {
        format!("Min-Min {}", self.mode.label())
    }

    fn schedule(&mut self, batch: &[BatchJob], view: &GridView<'_>) -> BatchSchedule {
        let ctx = MapCtx::build(batch, view, self.mode, self.fallback);
        let mut avail = view.avail_clone();
        let mapping = map_min_min(&ctx, &mut avail);
        BatchSchedule::from_pairs(
            mapping
                .into_iter()
                .map(|(j, s)| (batch[j].job.id, gridsec_core::SiteId(s))),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridsec_core::etc::NodeAvailability;
    use gridsec_core::{Grid, Job, JobId, SecurityModel, Site, SiteId, Time};

    fn batch(jobs: Vec<Job>) -> Vec<BatchJob> {
        jobs.into_iter()
            .map(|job| BatchJob {
                job,
                secure_only: false,
            })
            .collect()
    }

    #[test]
    fn secure_mode_avoids_low_sl_sites() {
        let grid = Grid::new(vec![
            Site::builder(0)
                .nodes(1)
                .speed(10.0)
                .security_level(0.3)
                .build()
                .unwrap(),
            Site::builder(1)
                .nodes(1)
                .speed(1.0)
                .security_level(0.95)
                .build()
                .unwrap(),
        ])
        .unwrap();
        let avail = vec![
            NodeAvailability::new(1, Time::ZERO),
            NodeAvailability::new(1, Time::ZERO),
        ];
        let view = GridView {
            grid: &grid,
            avail: &avail,
            now: Time::ZERO,
            model: SecurityModel::default(),
        };
        let b = batch(vec![Job::builder(0)
            .work(100.0)
            .security_demand(0.8)
            .build()
            .unwrap()]);
        let schedule = MinMin::new(RiskMode::Secure).schedule(&b, &view);
        assert_eq!(schedule.site_of(JobId(0)), Some(SiteId(1)));
        // Risky mode takes the 10× faster unsafe site.
        let schedule = MinMin::new(RiskMode::Risky).schedule(&b, &view);
        assert_eq!(schedule.site_of(JobId(0)), Some(SiteId(0)));
    }

    #[test]
    fn schedules_whole_batch() {
        let grid = Grid::new(vec![Site::builder(0).nodes(2).build().unwrap()]).unwrap();
        let avail = vec![NodeAvailability::new(2, Time::ZERO)];
        let view = GridView {
            grid: &grid,
            avail: &avail,
            now: Time::ZERO,
            model: SecurityModel::default(),
        };
        let jobs: Vec<Job> = (0..5)
            .map(|i| Job::builder(i).work(10.0 + i as f64).build().unwrap())
            .collect();
        let b = batch(jobs.clone());
        let schedule = MinMin::new(RiskMode::Risky).schedule(&b, &view);
        assert!(schedule.validate(&jobs, &grid).is_ok());
        // Min-Min emits the shortest job first.
        assert_eq!(schedule.assignments[0].job, JobId(0));
    }
}
