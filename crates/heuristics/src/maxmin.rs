//! The Max-Min baseline (Braun et al.), security-driven like its peers.

use crate::common::{Fallback, MapCtx};
use crate::mapping::map_max_min;
use gridsec_core::{BatchSchedule, RiskMode};
use gridsec_sim::{BatchJob, BatchScheduler, GridView};

/// Max-Min under a risk mode: the dual of Min-Min — the job whose *best*
/// completion time is **largest** is assigned first, so long jobs are not
/// starved to the end of the batch. Not part of the paper's seven-way
/// comparison, but a standard baseline used in our ablation benches.
#[derive(Debug, Clone)]
pub struct MaxMin {
    mode: RiskMode,
    fallback: Fallback,
}

impl MaxMin {
    /// Creates a Max-Min scheduler operating under `mode`.
    pub fn new(mode: RiskMode) -> Self {
        MaxMin {
            mode,
            fallback: Fallback::default(),
        }
    }

    /// Overrides the no-admissible-site fallback policy.
    pub fn with_fallback(mut self, fallback: Fallback) -> Self {
        self.fallback = fallback;
        self
    }

    /// The risk mode in force.
    pub fn mode(&self) -> RiskMode {
        self.mode
    }
}

impl BatchScheduler for MaxMin {
    fn name(&self) -> String {
        format!("Max-Min {}", self.mode.label())
    }

    fn schedule(&mut self, batch: &[BatchJob], view: &GridView<'_>) -> BatchSchedule {
        let ctx = MapCtx::build(batch, view, self.mode, self.fallback);
        let mut avail = view.avail_clone();
        let mapping = map_max_min(&ctx, &mut avail);
        BatchSchedule::from_pairs(
            mapping
                .into_iter()
                .map(|(j, s)| (batch[j].job.id, gridsec_core::SiteId(s))),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridsec_core::etc::NodeAvailability;
    use gridsec_core::{Grid, Job, JobId, SecurityModel, Site, Time};

    #[test]
    fn longest_job_goes_first() {
        let grid = Grid::new(vec![Site::builder(0).nodes(2).build().unwrap()]).unwrap();
        let avail = vec![NodeAvailability::new(2, Time::ZERO)];
        let view = GridView {
            grid: &grid,
            avail: &avail,
            now: Time::ZERO,
            model: SecurityModel::default(),
        };
        let batch: Vec<BatchJob> = vec![
            Job::builder(0).work(10.0).build().unwrap(),
            Job::builder(1).work(500.0).build().unwrap(),
            Job::builder(2).work(50.0).build().unwrap(),
        ]
        .into_iter()
        .map(|job| BatchJob {
            job,
            secure_only: false,
        })
        .collect();
        let s = MaxMin::new(RiskMode::Risky).schedule(&batch, &view);
        assert_eq!(s.assignments[0].job, JobId(1));
        let jobs: Vec<Job> = batch.iter().map(|b| b.job.clone()).collect();
        assert!(s.validate(&jobs, &grid).is_ok());
    }
}
