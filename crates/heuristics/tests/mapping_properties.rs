//! Property tests for the low-level mapping algorithms over arbitrary
//! (including inconsistent) ETC matrices.

use gridsec_core::etc::{EtcMatrix, NodeAvailability};
use gridsec_core::{BatchSchedule, JobId, SiteId, Time};
use gridsec_heuristics::common::MapCtx;
use gridsec_heuristics::mapping::{map_max_min, map_min_min, map_sufferage, mapping_makespan};
use proptest::prelude::*;

/// Random mapping instance: n jobs × m single-node sites with arbitrary
/// finite execution times, full candidate lists.
fn arb_instance() -> impl Strategy<Value = (MapCtx, Vec<NodeAvailability>)> {
    (1usize..12, 1usize..6).prop_flat_map(|(n, m)| {
        prop::collection::vec(1.0f64..1_000.0, n * m).prop_map(move |data| {
            let ctx = MapCtx {
                etc: EtcMatrix::from_raw(n, m, data),
                widths: vec![1; n],
                arrivals: vec![Time::ZERO; n],
                candidates: vec![(0..m).collect(); n],
                now: Time::ZERO,
                commit_order: vec![],
            };
            let avail = vec![NodeAvailability::new(1, Time::ZERO); m];
            (ctx, avail)
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn optimized_loops_match_textbook_reference((ctx, avail) in arb_instance()) {
        // The cached/parallel loops must reproduce the pre-PR3 textbook
        // O(n²·m) loops exactly — mapping order, sites and final
        // availability state.
        use gridsec_heuristics::mapping::reference;
        type MapFn = fn(&MapCtx, &mut [NodeAvailability]) -> Vec<(usize, usize)>;
        let pairs: [(MapFn, MapFn); 3] = [
            (map_min_min, reference::map_min_min),
            (map_max_min, reference::map_max_min),
            (map_sufferage, reference::map_sufferage),
        ];
        for (optimized, textbook) in pairs {
            let mut a1 = avail.clone();
            let mut a2 = avail.clone();
            let got = optimized(&ctx, &mut a1);
            let want = textbook(&ctx, &mut a2);
            prop_assert_eq!(got, want);
            prop_assert_eq!(a1, a2);
        }
    }

    #[test]
    fn mapping_loops_are_thread_count_independent((ctx, avail) in arb_instance()) {
        let run = |threads: usize| {
            let pool = rayon::ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .expect("pool builds");
            pool.install(|| {
                let mut a = avail.clone();
                let mm = map_min_min(&ctx, &mut a);
                let mut a = avail.clone();
                let sf = map_sufferage(&ctx, &mut a);
                (mm, sf)
            })
        };
        let one = run(1);
        prop_assert_eq!(run(2), one.clone());
        prop_assert_eq!(run(4), one);
    }

    #[test]
    fn mappings_are_permutations((ctx, avail) in arb_instance()) {
        for f in [map_min_min, map_max_min, map_sufferage] {
            let mut a = avail.clone();
            let mapping = f(&ctx, &mut a);
            let mut jobs: Vec<usize> = mapping.iter().map(|&(j, _)| j).collect();
            jobs.sort_unstable();
            prop_assert_eq!(jobs, (0..ctx.n_jobs()).collect::<Vec<_>>());
            for &(_, s) in &mapping {
                prop_assert!(s < ctx.etc.n_sites());
            }
        }
    }

    #[test]
    fn makespan_at_least_best_single_exec((ctx, avail) in arb_instance()) {
        // Any schedule's makespan is ≥ the largest per-job minimum exec.
        let lb = (0..ctx.n_jobs())
            .map(|j| {
                ctx.etc
                    .row(j)
                    .iter()
                    .copied()
                    .fold(f64::INFINITY, f64::min)
            })
            .fold(0.0f64, f64::max);
        for f in [map_min_min, map_max_min, map_sufferage] {
            let mut a = avail.clone();
            let mapping = f(&ctx, &mut a);
            let ms = mapping_makespan(&ctx, avail.clone(), &mapping);
            prop_assert!(ms.seconds() >= lb - 1e-9);
        }
    }

    #[test]
    fn makespan_at_most_serial_sum((ctx, avail) in arb_instance()) {
        // Upper bound: running every job serially at its *worst* time.
        let ub: f64 = (0..ctx.n_jobs())
            .map(|j| {
                ctx.etc
                    .row(j)
                    .iter()
                    .copied()
                    .filter(|t| t.is_finite())
                    .fold(0.0f64, f64::max)
            })
            .sum();
        for f in [map_min_min, map_max_min, map_sufferage] {
            let mut a = avail.clone();
            let mapping = f(&ctx, &mut a);
            let ms = mapping_makespan(&ctx, avail.clone(), &mapping);
            prop_assert!(ms.seconds() <= ub + 1e-6);
        }
    }

    #[test]
    fn min_min_greedy_invariant((ctx, avail) in arb_instance()) {
        // The first Min-Min pick has the globally smallest completion time
        // on an idle grid — i.e. the smallest ETC entry of the matrix.
        let mut a = avail.clone();
        let mapping = map_min_min(&ctx, &mut a);
        let (j0, s0) = mapping[0];
        let first_ct = ctx.etc.get(j0, s0);
        let global_min = ctx
            .etc
            .raw()
            .iter()
            .copied()
            .fold(f64::INFINITY, f64::min);
        prop_assert!((first_ct - global_min).abs() < 1e-9);
    }

    #[test]
    fn restricted_candidates_are_honoured(
        (ctx, avail) in arb_instance(),
        pick in any::<prop::sample::Index>(),
    ) {
        // Restrict one job to a single site; every mapping must comply —
        // and every *other* job must stay inside its candidate list.
        // Queried through a ScheduleIndex built once per mapping instead
        // of a per-job linear scan.
        let mut ctx = ctx;
        let j = pick.index(ctx.n_jobs());
        let s = pick.index(ctx.etc.n_sites());
        ctx.candidates[j] = vec![s];
        for f in [map_min_min, map_max_min, map_sufferage] {
            let mut a = avail.clone();
            let mapping = f(&ctx, &mut a);
            let schedule = BatchSchedule::from_pairs(
                mapping.iter().map(|&(jj, ss)| (JobId(jj as u64), SiteId(ss))),
            );
            let index = schedule.index();
            prop_assert_eq!(index.site_of(JobId(j as u64)), Some(SiteId(s)));
            for jj in 0..ctx.n_jobs() {
                let site = index.site_of(JobId(jj as u64)).unwrap();
                prop_assert!(ctx.candidates[jj].contains(&site.0));
            }
        }
    }
}
