//! Fixed-bucket log2 histograms.
//!
//! A [`Histogram`] has 65 buckets: bucket 0 holds the value `0`, and
//! bucket `b ≥ 1` holds values with exactly `b` significant bits, i.e.
//! the range `[2^(b-1), 2^b - 1]`. Recording is a single relaxed atomic
//! increment per bucket plus the count/sum counters — lock-free, safe
//! from any thread, and cheap enough for per-round hot paths.
//!
//! A [`HistogramSnapshot`] is the serializable view: per-bucket counts
//! plus total count and sum. Snapshots merge by per-bucket addition
//! (associative and commutative — pinned by root proptests) and support
//! saturating deltas, which is how the autoscaler reads a *trend* (the
//! rounds since its last tick) instead of instantaneous samples.
//!
//! Quantile estimates return the inclusive upper bound of the bucket
//! holding the nearest-rank sample, so the estimate always bounds the
//! true quantile from above and is within one log2 bucket of it.

use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};

/// Number of log2 buckets: one for zero plus one per significant-bit
/// count of a `u64`.
pub const N_BUCKETS: usize = 65;

/// Index of the bucket holding `value`.
#[inline]
fn bucket_of(value: u64) -> usize {
    (u64::BITS - value.leading_zeros()) as usize
}

/// Inclusive upper bound of bucket `b` (`0` for bucket 0, else
/// `2^b - 1`).
#[inline]
fn bucket_upper(b: usize) -> u64 {
    if b == 0 {
        0
    } else if b >= 64 {
        u64::MAX
    } else {
        (1u64 << b) - 1
    }
}

/// A lock-free fixed-bucket log2 histogram over `u64` samples.
#[derive(Debug)]
pub struct Histogram {
    count: AtomicU64,
    sum: AtomicU64,
    buckets: [AtomicU64; N_BUCKETS],
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    /// Records one sample. Relaxed atomics: concurrent snapshots may
    /// observe the count and a bucket out of step by a sample — fine
    /// for telemetry, never for control flow.
    #[inline]
    pub fn record(&self, value: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.buckets[bucket_of(value)].fetch_add(1, Ordering::Relaxed);
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// A serializable snapshot of the current contents.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = vec![0u64; N_BUCKETS];
        for (b, slot) in buckets.iter_mut().zip(&self.buckets) {
            *b = slot.load(Ordering::Relaxed);
        }
        while buckets.last() == Some(&0) {
            buckets.pop();
        }
        HistogramSnapshot {
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            buckets,
        }
    }
}

/// The serializable, mergeable view of a [`Histogram`]: total count and
/// sum plus per-bucket counts (trailing empty buckets trimmed).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    /// Total samples.
    pub count: u64,
    /// Sum of all samples (wrapping on overflow, like the recorder).
    pub sum: u64,
    /// Per-bucket counts; index `b` covers `[2^(b-1), 2^b - 1]`
    /// (bucket 0 holds the value 0). Trailing zeros are trimmed.
    #[serde(default)]
    pub buckets: Vec<u64>,
}

impl HistogramSnapshot {
    /// Merges `other` into `self` by per-bucket addition. Associative
    /// and commutative — merging shard snapshots in any order yields
    /// the same aggregate.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        self.count += other.count;
        self.sum = self.sum.wrapping_add(other.sum);
        if self.buckets.len() < other.buckets.len() {
            self.buckets.resize(other.buckets.len(), 0);
        }
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
    }

    /// The saturating per-bucket difference `self - earlier`: the
    /// samples recorded since `earlier` was taken, assuming `earlier`
    /// is a prior snapshot of the same histogram. This is the
    /// autoscaler's trend window.
    pub fn delta_since(&self, earlier: &HistogramSnapshot) -> HistogramSnapshot {
        let mut buckets = self.buckets.clone();
        for (a, b) in buckets.iter_mut().zip(&earlier.buckets) {
            *a = a.saturating_sub(*b);
        }
        while buckets.last() == Some(&0) {
            buckets.pop();
        }
        HistogramSnapshot {
            count: self.count.saturating_sub(earlier.count),
            sum: self.sum.wrapping_sub(earlier.sum),
            buckets,
        }
    }

    /// Mean sample value (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Nearest-rank quantile estimate for `q ∈ [0, 1]`: the inclusive
    /// upper bound of the bucket containing the nearest-rank sample.
    /// The estimate is ≥ the true quantile and within one log2 bucket
    /// of it (i.e. less than 2× for values ≥ 1). Returns 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (b, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_upper(b);
            }
        }
        bucket_upper(self.buckets.len().saturating_sub(1))
    }

    /// The p50 estimate.
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// The p95 estimate.
    pub fn p95(&self) -> u64 {
        self.quantile(0.95)
    }

    /// The p99 estimate.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// `(upper_bound, cumulative_count)` pairs for Prometheus-style
    /// text exposition, ending with the implicit `+Inf` bucket. Only
    /// the buckets up to the last non-empty one are materialised.
    pub fn cumulative_buckets(&self) -> Vec<(u64, u64)> {
        let mut out = Vec::with_capacity(self.buckets.len());
        let mut cum = 0u64;
        for (b, &c) in self.buckets.iter().enumerate() {
            cum += c;
            out.push((bucket_upper(b), cum));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_cover_powers_of_two() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), 64);
        assert_eq!(bucket_upper(0), 0);
        assert_eq!(bucket_upper(1), 1);
        assert_eq!(bucket_upper(2), 3);
        assert_eq!(bucket_upper(64), u64::MAX);
    }

    #[test]
    fn record_snapshot_quantile_round_trip() {
        let h = Histogram::new();
        for v in [0u64, 1, 1, 5, 9, 100, 1000] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 7);
        assert_eq!(s.sum, 1116);
        // p50: rank 4 of [0,1,1,5,9,100,1000] is 5 → bucket [4,7] → 7.
        assert_eq!(s.p50(), 7);
        // p99: rank 7 is 1000 → bucket [512,1023] → 1023.
        assert_eq!(s.p99(), 1023);
        assert!(s.mean() > 0.0);
        // Snapshot serialises and round-trips.
        let json = serde_json::to_string(&s).unwrap();
        let back: HistogramSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn empty_snapshot_is_all_zeros() {
        let s = Histogram::new().snapshot();
        assert_eq!(s.count, 0);
        assert_eq!(s.quantile(0.99), 0);
        assert_eq!(s.mean(), 0.0);
        assert!(s.buckets.is_empty());
    }

    #[test]
    fn merge_adds_bucket_counts() {
        let a = Histogram::new();
        let b = Histogram::new();
        a.record(3);
        b.record(3);
        b.record(70);
        let mut m = a.snapshot();
        m.merge(&b.snapshot());
        assert_eq!(m.count, 3);
        assert_eq!(m.sum, 76);
        assert_eq!(m.buckets[bucket_of(3)], 2);
        assert_eq!(m.buckets[bucket_of(70)], 1);
    }

    #[test]
    fn delta_since_recovers_the_recent_window() {
        let h = Histogram::new();
        h.record(10);
        let early = h.snapshot();
        h.record(500);
        h.record(600);
        let d = h.snapshot().delta_since(&early);
        assert_eq!(d.count, 2);
        assert_eq!(d.sum, 1100);
        // The old sample is subtracted out; p99 of the delta reflects
        // only the recent window.
        assert_eq!(d.p99(), 1023);
    }

    #[test]
    fn cumulative_buckets_end_at_total() {
        let h = Histogram::new();
        for v in [1u64, 2, 900] {
            h.record(v);
        }
        let cum = h.snapshot().cumulative_buckets();
        assert_eq!(cum.last().unwrap().1, 3);
        // Cumulative counts are monotone.
        assert!(cum.windows(2).all(|w| w[0].1 <= w[1].1));
    }
}
