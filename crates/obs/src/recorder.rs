//! The flight recorder: a process-wide set of bounded per-thread ring
//! buffers holding structured spans and events.
//!
//! * **Zero-alloc hot path.** A recorded event is a `Copy` struct of
//!   `&'static str` names and integer fields written into a
//!   preallocated ring slot; nothing allocates after a thread's first
//!   event. Each thread owns its ring, so recording takes one relaxed
//!   atomic load (the enable flag) plus one uncontended mutex lock.
//! * **Bounded.** Rings hold [`RING_CAPACITY`] events and overwrite the
//!   oldest; the recorder can never grow without bound in a soak.
//! * **Monotonic timestamps.** All events are stamped from one
//!   process-wide monotonic epoch, so a merged dump is totally ordered
//!   across threads.
//! * **Inert.** When disabled (the default), [`span!`]/[`event!`] cost
//!   one relaxed atomic load and record nothing. Enabled or not,
//!   nothing here influences scheduling — the root determinism test
//!   pins bit-identical schedules with the recorder on vs. off.
//!
//! Dumps ([`snapshot`], [`dump_ndjson`]) merge every thread's ring,
//! sort by timestamp, and render one JSON object per event — the
//! `trace_dump` wire frame and the daemon's automatic
//! `reshard_rejected` dump both go through this path.

use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// Events retained per thread before the ring wraps.
pub const RING_CAPACITY: usize = 4096;

/// What an event marks: the start of a span, its end, or a point event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Kind {
    Begin,
    End,
    Instant,
}

impl Kind {
    fn as_str(self) -> &'static str {
        match self {
            Kind::Begin => "begin",
            Kind::End => "end",
            Kind::Instant => "event",
        }
    }
}

/// One ring slot: fixed-size, `Copy`, no heap references.
#[derive(Debug, Clone, Copy)]
struct RawEvent {
    nanos: u64,
    kind: Kind,
    name: &'static str,
    f1: Option<(&'static str, i64)>,
    f2: Option<(&'static str, i64)>,
}

struct RingInner {
    events: Vec<RawEvent>,
    next: usize,
    total: u64,
}

struct Ring {
    thread: u64,
    inner: Mutex<RingInner>,
}

static ENABLED: AtomicBool = AtomicBool::new(false);
static NEXT_THREAD: AtomicU64 = AtomicU64::new(0);

fn registry() -> &'static Mutex<Vec<Arc<Ring>>> {
    static REGISTRY: OnceLock<Mutex<Vec<Arc<Ring>>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(Vec::new()))
}

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

fn now_nanos() -> u64 {
    epoch().elapsed().as_nanos() as u64
}

thread_local! {
    static LOCAL: Arc<Ring> = {
        let ring = Arc::new(Ring {
            thread: NEXT_THREAD.fetch_add(1, Ordering::Relaxed),
            inner: Mutex::new(RingInner {
                events: Vec::with_capacity(RING_CAPACITY),
                next: 0,
                total: 0,
            }),
        });
        registry().lock().expect("recorder registry").push(ring.clone());
        ring
    };
}

/// Turns recording on (idempotent). The timestamp epoch is fixed at the
/// first call, so all subsequent events share one monotonic origin.
pub fn enable() {
    let _ = epoch();
    ENABLED.store(true, Ordering::Relaxed);
}

/// Turns recording off; rings keep their contents for dumping.
pub fn disable() {
    ENABLED.store(false, Ordering::Relaxed);
}

/// Whether the recorder is currently recording.
pub fn is_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Empties every thread's ring (test isolation).
pub fn clear() {
    for ring in registry().lock().expect("recorder registry").iter() {
        let mut inner = ring.inner.lock().expect("recorder ring");
        inner.events.clear();
        inner.next = 0;
        inner.total = 0;
    }
}

#[inline]
fn record(
    kind: Kind,
    name: &'static str,
    f1: Option<(&'static str, i64)>,
    f2: Option<(&'static str, i64)>,
) {
    if !is_enabled() {
        return;
    }
    let ev = RawEvent {
        nanos: now_nanos(),
        kind,
        name,
        f1,
        f2,
    };
    LOCAL.with(|ring| {
        let mut inner = ring.inner.lock().expect("recorder ring");
        let at = inner.next;
        if inner.events.len() < RING_CAPACITY {
            inner.events.push(ev);
        } else {
            inner.events[at] = ev;
        }
        inner.next = (at + 1) % RING_CAPACITY;
        inner.total += 1;
    });
}

/// Records a point event. Prefer the [`event!`] macro, which names the
/// fields.
pub fn instant(
    name: &'static str,
    f1: Option<(&'static str, i64)>,
    f2: Option<(&'static str, i64)>,
) {
    record(Kind::Instant, name, f1, f2);
}

/// An active span: records a `begin` event on creation and an `end`
/// event (same name and fields) when dropped. Prefer the [`span!`]
/// macro.
#[must_use = "a span records its end when dropped"]
pub struct Span {
    name: &'static str,
    f1: Option<(&'static str, i64)>,
    f2: Option<(&'static str, i64)>,
}

/// Opens a span. Prefer the [`span!`] macro, which names the fields.
pub fn span(
    name: &'static str,
    f1: Option<(&'static str, i64)>,
    f2: Option<(&'static str, i64)>,
) -> Span {
    record(Kind::Begin, name, f1, f2);
    Span { name, f1, f2 }
}

impl Drop for Span {
    fn drop(&mut self) {
        record(Kind::End, self.name, self.f1, self.f2);
    }
}

/// Opens a [`Span`] with up to two named integer fields:
/// `span!("round", shard = 3, batch = 17)`. The guard records the
/// matching `end` event when it goes out of scope.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::recorder::span($name, None, None)
    };
    ($name:expr, $k1:ident = $v1:expr) => {
        $crate::recorder::span($name, Some((stringify!($k1), ($v1) as i64)), None)
    };
    ($name:expr, $k1:ident = $v1:expr, $k2:ident = $v2:expr) => {
        $crate::recorder::span(
            $name,
            Some((stringify!($k1), ($v1) as i64)),
            Some((stringify!($k2), ($v2) as i64)),
        )
    };
}

/// Records a point event with up to two named integer fields:
/// `event!("reshard_rejected", from = 4, to = 2)`.
#[macro_export]
macro_rules! event {
    ($name:expr) => {
        $crate::recorder::instant($name, None, None)
    };
    ($name:expr, $k1:ident = $v1:expr) => {
        $crate::recorder::instant($name, Some((stringify!($k1), ($v1) as i64)), None)
    };
    ($name:expr, $k1:ident = $v1:expr, $k2:ident = $v2:expr) => {
        $crate::recorder::instant(
            $name,
            Some((stringify!($k1), ($v1) as i64)),
            Some((stringify!($k2), ($v2) as i64)),
        )
    };
}

/// One named integer field of a [`TraceEvent`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceField {
    /// Field name (e.g. `shard`).
    pub key: String,
    /// Field value.
    pub value: i64,
}

/// One flight-recorder event as dumped: the serializable form of a ring
/// slot, used by the `trace_dump` wire frame and the NDJSON dump.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceEvent {
    /// Nanoseconds since the recorder epoch (monotonic).
    pub t_nanos: u64,
    /// Recording thread (recorder-local id, stable per thread).
    pub thread: u64,
    /// `begin`, `end`, or `event`.
    pub kind: String,
    /// Span/event name.
    pub name: String,
    /// Named integer fields, in declaration order.
    #[serde(default)]
    pub fields: Vec<TraceField>,
}

/// Recorder health, returned in the `telemetry` wire frame.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RecorderStatus {
    /// Whether recording is on.
    pub enabled: bool,
    /// Threads that have recorded at least one event.
    pub threads: usize,
    /// Events currently retained across all rings.
    pub retained: usize,
    /// Events recorded since start (including overwritten ones).
    pub recorded: u64,
    /// Ring capacity per thread.
    pub capacity: usize,
}

/// The recorder's current status.
pub fn status() -> RecorderStatus {
    let rings = registry().lock().expect("recorder registry");
    let mut retained = 0;
    let mut recorded = 0;
    let mut threads = 0;
    for ring in rings.iter() {
        let inner = ring.inner.lock().expect("recorder ring");
        if inner.total > 0 {
            threads += 1;
        }
        retained += inner.events.len();
        recorded += inner.total;
    }
    RecorderStatus {
        enabled: is_enabled(),
        threads,
        retained,
        recorded,
        capacity: RING_CAPACITY,
    }
}

/// Merges every thread's ring into one timestamp-ordered event list
/// (oldest first). Rings are locked one at a time; recording threads
/// stall at most for their own ring's copy.
pub fn snapshot() -> Vec<TraceEvent> {
    let rings: Vec<Arc<Ring>> = registry().lock().expect("recorder registry").clone();
    let mut out = Vec::new();
    for ring in rings {
        let inner = ring.inner.lock().expect("recorder ring");
        // Ring order: next..end is the oldest segment once wrapped.
        let (older, newer) = if inner.events.len() < RING_CAPACITY {
            (&inner.events[..0], &inner.events[..])
        } else {
            inner.events.split_at(inner.next)
        };
        for ev in newer.iter().chain(older) {
            let mut fields = Vec::new();
            for f in [ev.f1, ev.f2].into_iter().flatten() {
                fields.push(TraceField {
                    key: f.0.to_string(),
                    value: f.1,
                });
            }
            out.push(TraceEvent {
                t_nanos: ev.nanos,
                thread: ring.thread,
                kind: ev.kind.as_str().to_string(),
                name: ev.name.to_string(),
                fields,
            });
        }
    }
    out.sort_by_key(|e| (e.t_nanos, e.thread));
    out
}

/// Renders [`snapshot`] as NDJSON: one JSON object per line, oldest
/// event first.
pub fn dump_ndjson() -> String {
    let mut out = String::new();
    for ev in snapshot() {
        out.push_str(&serde_json::to_string(&ev).expect("trace event serialises"));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    // The recorder is process-global, so exercise everything from one
    // test to avoid cross-test interference under the parallel runner.
    #[test]
    fn record_wrap_dump_status_round_trip() {
        clear();
        enable();
        assert!(is_enabled());

        {
            let _outer = crate::span!("reshard_barrier", from = 4, to = 2);
            crate::event!("dispatch", shard = 1);
            let _inner = crate::span!("round", batch = 17);
        }
        let events = snapshot();
        assert!(events.len() >= 5, "begin/end pairs plus the event");
        assert!(events.windows(2).all(|w| w[0].t_nanos <= w[1].t_nanos));
        let barrier: Vec<&TraceEvent> = events
            .iter()
            .filter(|e| e.name == "reshard_barrier")
            .collect();
        assert_eq!(barrier.len(), 2);
        assert_eq!(barrier[0].kind, "begin");
        assert_eq!(barrier[1].kind, "end");
        assert_eq!(barrier[0].fields[0].key, "from");
        assert_eq!(barrier[0].fields[0].value, 4);

        // NDJSON: one parseable object per line, round-tripping.
        let dump = dump_ndjson();
        for line in dump.lines() {
            let ev: TraceEvent = serde_json::from_str(line).expect("NDJSON line parses");
            assert!(!ev.name.is_empty());
        }

        // Wrap: over-filling the ring keeps it bounded.
        for i in 0..(RING_CAPACITY + 10) {
            crate::event!("spin", i = i);
        }
        let st = status();
        assert!(st.enabled);
        assert!(st.retained <= st.threads * RING_CAPACITY);
        assert!(st.recorded > RING_CAPACITY as u64);
        let events = snapshot();
        assert!(events.len() <= status().threads * RING_CAPACITY);

        // Disabled: recording is a no-op.
        disable();
        let before = status().recorded;
        crate::event!("ignored");
        assert_eq!(status().recorded, before);
        clear();
        assert_eq!(status().retained, 0);
    }
}
