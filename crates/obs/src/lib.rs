//! Telemetry primitives shared by the engine and the serving daemon:
//!
//! * [`histogram`] — fixed-bucket log2 [`Histogram`]s with lock-free
//!   atomic recording, mergeable serializable snapshots and bounded
//!   quantile estimates (p50/p95/p99 within one power-of-two bucket).
//! * [`recorder`] — a process-wide flight recorder: bounded per-thread
//!   ring buffers of structured spans/events with monotonic timestamps
//!   and a zero-allocation hot path, dumped as NDJSON on demand.
//!
//! Instrumentation is *inert by construction*: nothing in this crate
//! feeds back into scheduling decisions, touches RNG streams, or
//! reorders work. The repo's golden/kernel/sharding/reshard equivalence
//! suites run bit-identical with the recorder enabled or disabled — the
//! root determinism test pins that.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod histogram;
pub mod recorder;

pub use histogram::{Histogram, HistogramSnapshot};
pub use recorder::{RecorderStatus, TraceEvent, TraceField};
