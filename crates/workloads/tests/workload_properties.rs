//! Property tests for the workload substrate: generator invariants over
//! random configurations and SWF round-trips over random job lists.

use gridsec_core::{Job, Time};
use gridsec_workloads::swf::{self, ConvertOptions};
use gridsec_workloads::{NasConfig, PsaConfig, SecurityParams, WorkloadProfile};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn psa_generator_invariants(
        n in 1usize..400,
        sites in 1usize..30,
        rate in 0.001f64..0.1,
        levels in 1u32..40,
        seed in 0u64..10_000,
    ) {
        let mut cfg = PsaConfig::default().with_n_jobs(n).with_seed(seed);
        cfg.n_sites = sites;
        cfg.arrival_rate = rate;
        cfg.work_levels = levels;
        let w = cfg.generate().unwrap();
        prop_assert_eq!(w.jobs.len(), n);
        prop_assert_eq!(w.grid.len(), sites);
        // Arrivals sorted and strictly positive.
        prop_assert!(w.jobs.windows(2).all(|p| p[0].arrival <= p[1].arrival));
        prop_assert!(w.jobs[0].arrival > Time::ZERO);
        // Work on the level grid, ids dense.
        for (i, j) in w.jobs.iter().enumerate() {
            prop_assert_eq!(j.id.0, i as u64);
            let level = j.work / cfg.max_work * f64::from(levels);
            prop_assert!((level - level.round()).abs() < 1e-6);
        }
    }

    #[test]
    fn nas_generator_invariants(
        n in 1usize..400,
        fold in 1u32..=16,
        seed in 0u64..10_000,
    ) {
        let mut cfg = NasConfig::default().with_n_jobs(n).with_seed(seed);
        cfg.fold_width = fold;
        let w = cfg.generate().unwrap();
        prop_assert_eq!(w.jobs.len(), n);
        for j in &w.jobs {
            prop_assert!(j.width <= fold.clamp(1, 16));
            prop_assert!(j.work > 0.0);
            prop_assert!((0.6..=0.9).contains(&j.security_demand));
        }
        // Every job fits the grid.
        let max_nodes = w.grid.max_nodes();
        prop_assert!(w.jobs.iter().all(|j| j.width <= max_nodes));
    }

    #[test]
    fn swf_roundtrip_any_jobs(
        specs in prop::collection::vec(
            (1.0f64..100_000.0, 0.0f64..1_000_000.0, 1u32..=128),
            1..60,
        ),
    ) {
        let jobs: Vec<Job> = specs
            .iter()
            .enumerate()
            .map(|(i, &(work, arrival, width))| {
                Job::builder(i as u64)
                    .work(work)
                    .arrival(Time::new(arrival))
                    .width(width)
                    .build()
                    .unwrap()
            })
            .collect();
        let text = swf::write(&jobs);
        let records = swf::parse(&text).unwrap();
        prop_assert_eq!(records.len(), jobs.len());
        let opts = ConvertOptions {
            max_width: 128,
            time_squeeze: 1.0,
            security: SecurityParams::default(),
            seed: 1,
        };
        let back = swf::to_jobs(&records, &opts).unwrap();
        // to_jobs sorts by submit; compare as multisets of (arrival, work,
        // width) triples.
        let mut a: Vec<(u64, u64, u32)> = jobs
            .iter()
            .map(|j| (j.arrival.seconds().to_bits(), j.work.to_bits(), j.width))
            .collect();
        let mut b: Vec<(u64, u64, u32)> = back
            .iter()
            .map(|j| (j.arrival.seconds().to_bits(), j.work.to_bits(), j.width))
            .collect();
        a.sort_unstable();
        b.sort_unstable();
        prop_assert_eq!(a, b);
    }

    #[test]
    fn profile_is_total_and_consistent(
        specs in prop::collection::vec(
            (1.0f64..10_000.0, 0.0f64..500_000.0, 1u32..=8),
            1..80,
        ),
    ) {
        let jobs: Vec<Job> = specs
            .iter()
            .enumerate()
            .map(|(i, &(work, arrival, width))| {
                Job::builder(i as u64)
                    .work(work)
                    .arrival(Time::new(arrival))
                    .width(width)
                    .build()
                    .unwrap()
            })
            .collect();
        let p = WorkloadProfile::of(&jobs);
        prop_assert_eq!(p.n_jobs, jobs.len());
        prop_assert!(p.span >= 0.0);
        prop_assert!(p.mean_work > 0.0);
        // Width histogram totals the job count.
        let total: usize = p.width_histogram.values().sum();
        prop_assert_eq!(total, jobs.len());
        // Hourly fractions sum to 1.
        let sum: f64 = p.hourly_arrival_fraction.iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-9);
        // Node-seconds is Σ width × work.
        let expect: f64 = jobs.iter().map(|j| f64::from(j.width) * j.work).sum();
        prop_assert!((p.total_node_seconds - expect).abs() < 1e-6 * expect.max(1.0));
    }
}
