//! Synthetic NAS iPSC/860 trace (§4.2) and the paper's 12-site Grid.
//!
//! The paper replays three months (92 days, ~16 000 jobs) of accounting
//! records from the 128-node Intel iPSC/860 at NASA Ames, time-squeezed to
//! 46 days, over a 12-site Grid (4 sites × 16 nodes + 8 sites × 8 nodes).
//!
//! The genuine trace is not redistributable here, so this module generates
//! a **distribution-faithful synthetic trace** following the published
//! characterisation by Feitelson & Nitzberg (1994):
//!
//! * job widths are powers of two from 1 to 128 (the hypercube dimension),
//!   with small jobs most numerous but wide jobs carrying most of the
//!   consumed node-seconds;
//! * runtimes span seconds to hours, roughly log-uniform, positively
//!   correlated with width;
//! * submissions follow a strong diurnal and weekday/weekend cycle.
//!
//! Real traces in Standard Workload Format (e.g. `NASA-iPSC-1993-3.swf`)
//! can be loaded through [`crate::swf`] instead; both paths produce the
//! same `Vec<Job>` shape, so every experiment runs unchanged on the real
//! data when it is available.
//!
//! **Width folding.** The paper's grid has at most 16 nodes per site while
//! trace jobs go up to 128 nodes; an atomic job must fit within one site.
//! Jobs wider than `fold_width` (default 8, the smallest site size) are
//! folded: width becomes `fold_width` and work is scaled by
//! `original_width / fold_width`, preserving node-seconds, so every site
//! can host every job (documented in DESIGN.md §3).

use crate::arrival::{DiurnalProfile, ModulatedPoisson};
use crate::security::SecurityParams;
use gridsec_core::rng::{stream, Stream};
use gridsec_core::{Error, Grid, Job, Result, Site, Time};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Power-of-two width classes and their job-count weights.
///
/// Approximates the size distribution reported for the NASA Ames iPSC/860:
/// single-node jobs dominate counts; 32- and 64-node jobs dominate
/// node-seconds.
const WIDTH_CLASSES: [(u32, f64); 8] = [
    (1, 0.28),
    (2, 0.11),
    (4, 0.14),
    (8, 0.13),
    (16, 0.12),
    (32, 0.12),
    (64, 0.07),
    (128, 0.03),
];

/// Configuration of the synthetic NAS trace generator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NasConfig {
    /// Number of jobs (paper: 16 000).
    pub n_jobs: usize,
    /// Trace span in days before squeezing (paper: 92).
    pub trace_days: f64,
    /// Time-squeeze factor (paper: 2.0 → 46 days of arrivals).
    pub squeeze: f64,
    /// Minimum job runtime in seconds.
    pub min_runtime: f64,
    /// Maximum base runtime in seconds (before the width correlation).
    pub max_runtime: f64,
    /// Jobs wider than this are folded down to this width with their work
    /// scaled by `raw_width / fold_width` (node-seconds preserved).
    /// Default 8 — the smallest site size — so every site can host every
    /// job and the load spreads across the whole 12-site grid; folding to
    /// 16 instead would pin 75 % of the node-seconds to the four 16-node
    /// sites (see DESIGN.md §3).
    pub fold_width: u32,
    /// SD/SL distributions.
    pub security: SecurityParams,
    /// Generator seed.
    pub seed: u64,
}

impl Default for NasConfig {
    fn default() -> Self {
        NasConfig {
            n_jobs: 16_000,
            trace_days: 92.0,
            squeeze: 2.0,
            min_runtime: 30.0,
            max_runtime: 14_400.0, // 4 h
            fold_width: 8,
            security: SecurityParams::default(),
            seed: 1993,
        }
    }
}

impl NasConfig {
    /// Table-1 defaults with a different job count.
    pub fn with_n_jobs(mut self, n: usize) -> Self {
        self.n_jobs = n;
        self
    }

    /// Table-1 defaults with a different seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Validates the configuration.
    pub fn validate(&self) -> Result<()> {
        if self.n_jobs == 0 {
            return Err(Error::invalid("n_jobs", "need at least one job"));
        }
        if !(self.trace_days.is_finite() && self.trace_days > 0.0) {
            return Err(Error::invalid("trace_days", "must be positive"));
        }
        if !(self.squeeze.is_finite() && self.squeeze >= 1.0) {
            return Err(Error::invalid("squeeze", "must be ≥ 1"));
        }
        if !(self.min_runtime > 0.0 && self.max_runtime > self.min_runtime) {
            return Err(Error::invalid(
                "runtime",
                "need 0 < min_runtime < max_runtime",
            ));
        }
        if self.fold_width == 0 {
            return Err(Error::invalid("fold_width", "must be ≥ 1"));
        }
        self.security.validate()
    }

    /// The paper's 12-site NAS Grid: 4 × 16-node + 8 × 8-node sites,
    /// homogeneous speed 1.0, `SL ~ U[0.4, 1.0]` drawn from this config's
    /// seed.
    pub fn grid(&self) -> Result<Grid> {
        let mut sl_rng = stream(self.seed, Stream::SecurityLevel);
        let mut sites = Vec::with_capacity(12);
        for id in 0..12 {
            let nodes = if id < 4 { 16 } else { 8 };
            sites.push(
                Site::builder(id)
                    .nodes(nodes)
                    .speed(1.0)
                    .security_level(self.security.sample_sl(&mut sl_rng))
                    .build()?,
            );
        }
        Grid::new(sites)
    }

    /// Generates the synthetic trace and its grid.
    pub fn generate(&self) -> Result<NasWorkload> {
        self.validate()?;
        let grid = self.grid()?;
        let fold = self.fold_width.min(grid.max_nodes());
        let mut wl_rng = stream(self.seed, Stream::Workload);
        let mut sd_rng = stream(self.seed, Stream::SecurityDemand);

        // Peak rate calibrated so the expected arrival count over the
        // (un-squeezed) trace span matches n_jobs.
        let profile = DiurnalProfile::default();
        let mean_intensity = mean_weekly_intensity(&profile);
        let span = self.trace_days * 86_400.0;
        let peak_rate = self.n_jobs as f64 / (mean_intensity * span);
        let process = ModulatedPoisson::new(peak_rate, profile);

        let mut jobs = Vec::with_capacity(self.n_jobs);
        let mut t = Time::ZERO;
        for i in 0..self.n_jobs {
            t = process.next_after(t, &mut wl_rng);
            let raw_width = sample_width(&mut wl_rng);
            let runtime = self.sample_runtime(raw_width, &mut wl_rng);
            // Fold wide jobs, preserving node-seconds (DESIGN.md §3).
            let (width, work) = if raw_width > fold {
                (fold, runtime * f64::from(raw_width) / f64::from(fold))
            } else {
                (raw_width, runtime)
            };
            jobs.push(
                Job::builder(i as u64)
                    .arrival(t / self.squeeze)
                    .width(width)
                    .work(work)
                    .security_demand(self.security.sample_sd(&mut sd_rng))
                    .build()?,
            );
        }
        Ok(NasWorkload {
            jobs,
            grid,
            config: self.clone(),
        })
    }

    /// Log-uniform base runtime with a mild positive width correlation
    /// (`width^0.15`, capped at 1.5 × max_runtime).
    fn sample_runtime<R: Rng + ?Sized>(&self, width: u32, rng: &mut R) -> f64 {
        let lo = self.min_runtime.ln();
        let hi = self.max_runtime.ln();
        let base = (rng.gen_range(lo..hi)).exp();
        let corr = f64::from(width).powf(0.15);
        (base * corr).min(self.max_runtime * 1.5)
    }
}

/// Average of the weekly intensity profile (fraction of peak).
fn mean_weekly_intensity(p: &DiurnalProfile) -> f64 {
    let weekday = (10.0 / 24.0) * p.prime + (14.0 / 24.0) * p.night;
    (5.0 * weekday + 2.0 * p.weekend) / 7.0
}

/// Samples a power-of-two width from [`WIDTH_CLASSES`].
fn sample_width<R: Rng + ?Sized>(rng: &mut R) -> u32 {
    let total: f64 = WIDTH_CLASSES.iter().map(|(_, w)| w).sum();
    let mut x = rng.gen_range(0.0..total);
    for &(width, w) in &WIDTH_CLASSES {
        if x < w {
            return width;
        }
        x -= w;
    }
    WIDTH_CLASSES[WIDTH_CLASSES.len() - 1].0
}

/// A generated NAS instance.
#[derive(Debug, Clone)]
pub struct NasWorkload {
    /// The jobs, in arrival order.
    pub jobs: Vec<Job>,
    /// The 12-site grid (4 × 16 + 8 × 8 nodes).
    pub grid: Grid,
    /// The configuration that produced it.
    pub config: NasConfig,
}

#[cfg(test)]
#[allow(clippy::field_reassign_with_default)] // builder-free mutation reads clearer in tests
mod tests {
    use super::*;

    fn small() -> NasWorkload {
        NasConfig::default().with_n_jobs(2000).generate().unwrap()
    }

    #[test]
    fn grid_matches_paper_topology() {
        let g = NasConfig::default().grid().unwrap();
        assert_eq!(g.len(), 12);
        let sixteens = g.sites().filter(|s| s.nodes == 16).count();
        let eights = g.sites().filter(|s| s.nodes == 8).count();
        assert_eq!(sixteens, 4);
        assert_eq!(eights, 8);
        // 128 mapped nodes in total.
        assert_eq!(g.sites().map(|s| s.nodes).sum::<u32>(), 128);
        for s in g.sites() {
            assert!((0.4..=1.0).contains(&s.security_level));
            assert_eq!(s.speed, 1.0);
        }
    }

    #[test]
    fn widths_are_powers_of_two_and_fit() {
        let w = small();
        for j in &w.jobs {
            assert!(j.width.is_power_of_two(), "width {}", j.width);
            assert!(j.width <= 8, "width folded to the smallest site");
            assert!(j.work >= w.config.min_runtime * 0.99);
        }
        // Single-node jobs should be the most common class.
        let ones = w.jobs.iter().filter(|j| j.width == 1).count();
        assert!(ones as f64 / w.jobs.len() as f64 > 0.2);
    }

    #[test]
    fn folding_preserves_node_seconds_statistically() {
        // Width-8 jobs include folded 16/32/64/128-node jobs, so their
        // mean work exceeds that of the narrow jobs.
        let w = small();
        let wide_work: Vec<f64> = w
            .jobs
            .iter()
            .filter(|j| j.width == 8)
            .map(|j| j.work)
            .collect();
        let narrow_work: Vec<f64> = w
            .jobs
            .iter()
            .filter(|j| j.width == 1)
            .map(|j| j.work)
            .collect();
        let mw = gridsec_core::stats::mean(&wide_work);
        let mn = gridsec_core::stats::mean(&narrow_work);
        assert!(mw > mn, "folded wide jobs should carry more work");
    }

    #[test]
    fn arrivals_squeezed_to_half_span() {
        // The peak rate is calibrated to the configured job count, so any
        // count spans the full (squeezed) 46-day window, never the raw 92.
        let w = NasConfig::default().with_n_jobs(4000).generate().unwrap();
        let last = w.jobs.last().unwrap().arrival;
        assert!(
            last > Time::days(30.0) && last < Time::days(60.0),
            "arrivals end at {last}"
        );
        assert!(w.jobs.windows(2).all(|p| p[0].arrival <= p[1].arrival));
    }

    #[test]
    fn full_trace_spans_about_46_days() {
        let w = NasConfig::default().generate().unwrap();
        assert_eq!(w.jobs.len(), 16_000);
        let last = w.jobs.last().unwrap().arrival;
        assert!(
            last > Time::days(35.0) && last < Time::days(55.0),
            "span {last}"
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let a = NasConfig::default().with_n_jobs(300).generate().unwrap();
        let b = NasConfig::default().with_n_jobs(300).generate().unwrap();
        assert_eq!(a.jobs, b.jobs);
        let c = NasConfig::default()
            .with_n_jobs(300)
            .with_seed(7)
            .generate()
            .unwrap();
        assert_ne!(a.jobs, c.jobs);
    }

    #[test]
    fn invalid_configs_rejected() {
        assert!(NasConfig::default().with_n_jobs(0).generate().is_err());
        let mut c = NasConfig::default();
        c.squeeze = 0.5;
        assert!(c.generate().is_err());
        let mut c = NasConfig::default();
        c.min_runtime = 100.0;
        c.max_runtime = 50.0;
        assert!(c.generate().is_err());
    }

    #[test]
    fn security_demands_in_range() {
        let w = small();
        assert!(w
            .jobs
            .iter()
            .all(|j| (0.6..=0.9).contains(&j.security_demand)));
    }
}
