//! Workload characterisation: the summary statistics used to check a
//! synthetic trace against its published characterisation (and to compare
//! it with a real SWF trace).

use gridsec_core::stats::{mean, Histogram};
use gridsec_core::{Grid, Job, Time};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Aggregate characterisation of a workload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadProfile {
    /// Number of jobs.
    pub n_jobs: usize,
    /// Arrival span (first to last submission), seconds.
    pub span: f64,
    /// Mean inter-arrival time, seconds.
    pub mean_interarrival: f64,
    /// Jobs per width class.
    pub width_histogram: BTreeMap<u32, usize>,
    /// Mean work (reference seconds).
    pub mean_work: f64,
    /// Total node-seconds demanded (`Σ width × work`).
    pub total_node_seconds: f64,
    /// Mean security demand.
    pub mean_sd: f64,
    /// Fraction of arrivals in each hour-of-day bucket (24 entries).
    pub hourly_arrival_fraction: Vec<f64>,
}

impl WorkloadProfile {
    /// Profiles a job list (jobs need not be sorted).
    pub fn of(jobs: &[Job]) -> WorkloadProfile {
        let n = jobs.len();
        if n == 0 {
            return WorkloadProfile {
                n_jobs: 0,
                span: 0.0,
                mean_interarrival: 0.0,
                width_histogram: BTreeMap::new(),
                mean_work: 0.0,
                total_node_seconds: 0.0,
                mean_sd: 0.0,
                hourly_arrival_fraction: vec![0.0; 24],
            };
        }
        let mut arrivals: Vec<f64> = jobs.iter().map(|j| j.arrival.seconds()).collect();
        arrivals.sort_by(f64::total_cmp);
        let span = arrivals[n - 1] - arrivals[0];
        let mut width_histogram = BTreeMap::new();
        for j in jobs {
            *width_histogram.entry(j.width).or_insert(0) += 1;
        }
        let works: Vec<f64> = jobs.iter().map(|j| j.work).collect();
        let sds: Vec<f64> = jobs.iter().map(|j| j.security_demand).collect();
        let total_node_seconds = jobs.iter().map(|j| f64::from(j.width) * j.work).sum();
        let mut hourly = Histogram::new(0.0, 24.0, 24);
        for &a in &arrivals {
            hourly.push((a % 86_400.0) / 3_600.0);
        }
        let hourly_arrival_fraction = hourly
            .counts()
            .iter()
            .map(|&c| c as f64 / n as f64)
            .collect();
        WorkloadProfile {
            n_jobs: n,
            span,
            mean_interarrival: if n > 1 { span / (n - 1) as f64 } else { 0.0 },
            width_histogram,
            mean_work: mean(&works),
            total_node_seconds,
            mean_sd: mean(&sds),
            hourly_arrival_fraction,
        }
    }

    /// Offered load relative to a grid over the arrival span:
    /// `total node-seconds demanded / (total power × span)`. Values above
    /// 1.0 mean the grid cannot keep up within the arrival window.
    pub fn offered_load(&self, grid: &Grid) -> f64 {
        let capacity = grid.total_power() * self.span.max(f64::MIN_POSITIVE);
        self.total_node_seconds / capacity
    }

    /// Estimated batch size for a periodic scheduler with the given
    /// interval.
    pub fn expected_batch_size(&self, interval: Time) -> f64 {
        if self.mean_interarrival == 0.0 {
            self.n_jobs as f64
        } else {
            interval.seconds() / self.mean_interarrival
        }
    }

    /// Human-readable dump.
    pub fn summary(&self) -> String {
        let widths: Vec<String> = self
            .width_histogram
            .iter()
            .map(|(w, c)| format!("{w}:{c}"))
            .collect();
        format!(
            "{} jobs over {:.1} days; mean work {:.0} s; {:.2e} node-s total; widths {{{}}}; mean SD {:.2}",
            self.n_jobs,
            self.span / 86_400.0,
            self.mean_work,
            self.total_node_seconds,
            widths.join(" "),
            self.mean_sd,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nas::NasConfig;
    use crate::psa::PsaConfig;

    #[test]
    fn profile_of_empty() {
        let p = WorkloadProfile::of(&[]);
        assert_eq!(p.n_jobs, 0);
        assert_eq!(p.hourly_arrival_fraction.len(), 24);
    }

    #[test]
    fn psa_profile_matches_table1() {
        let w = PsaConfig::default().with_n_jobs(2000).generate().unwrap();
        let p = WorkloadProfile::of(&w.jobs);
        assert_eq!(p.n_jobs, 2000);
        // Mean inter-arrival ≈ 1/0.008 = 125 s.
        assert!((p.mean_interarrival - 125.0).abs() < 15.0);
        // Mean work ≈ the mean of 20 uniform levels of 300 000 = 157 500.
        assert!((p.mean_work - 157_500.0).abs() < 12_000.0);
        // Width 1 only.
        assert_eq!(p.width_histogram.len(), 1);
        assert!((0.6..=0.9).contains(&p.mean_sd));
        // PSA is heavily over-subscribed relative to its arrival span.
        assert!(p.offered_load(&w.grid) > 1.0);
    }

    #[test]
    fn nas_profile_shows_diurnal_cycle_and_widths() {
        // Use an unsqueezed trace: the paper's ×2 time squeeze compresses
        // the day/night cycle to 12 h, scrambling hour-of-day phases.
        let mut cfg = NasConfig::default().with_n_jobs(4000);
        cfg.squeeze = 1.0;
        let w = cfg.generate().unwrap();
        let p = WorkloadProfile::of(&w.jobs);
        // Power-of-two widths 1..8 after folding.
        for w in p.width_histogram.keys() {
            assert!(w.is_power_of_two() && *w <= 8);
        }
        // Prime-time hours (per-hour rate) clearly exceed night hours.
        let day: f64 = p.hourly_arrival_fraction[8..18].iter().sum::<f64>() / 10.0;
        let night: f64 = p.hourly_arrival_fraction[0..6].iter().sum::<f64>() / 6.0;
        assert!(day > night * 2.0, "day {day:.3} night {night:.3}");
        assert!(p.summary().contains("jobs over"));
    }

    #[test]
    fn expected_batch_size() {
        let w = PsaConfig::default().with_n_jobs(1000).generate().unwrap();
        let p = WorkloadProfile::of(&w.jobs);
        let b = p.expected_batch_size(Time::new(1000.0));
        assert!((b - 8.0).abs() < 1.5, "batch ≈ 8, got {b}");
    }
}
