//! Standard Workload Format (SWF) trace I/O.
//!
//! SWF is the Parallel Workloads Archive interchange format: one job per
//! line, 18 whitespace-separated fields, `;`-prefixed header comments.
//! This module parses the fields the scheduler needs (submit time, run
//! time, allocated processors) and converts records to [`Job`]s — so the
//! genuine `NASA-iPSC-1993-3.swf` trace can replace the synthetic NAS
//! generator without touching any experiment code.
//!
//! Field reference (1-based, as in the archive documentation):
//! 1 job number · 2 submit time · 3 wait time · 4 run time ·
//! 5 allocated processors · 6–18 resources/status/user metadata.

use crate::security::SecurityParams;
use gridsec_core::rng::{stream, Stream};
use gridsec_core::{Error, Job, Result, Time};
use serde::{Deserialize, Serialize};

/// One parsed SWF record (only scheduler-relevant fields retained).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SwfRecord {
    /// Field 1: job number.
    pub job_number: u64,
    /// Field 2: submit time (seconds from trace start).
    pub submit: f64,
    /// Field 3: wait time in the original system (−1 when unknown).
    pub wait: f64,
    /// Field 4: run time in seconds.
    pub run_time: f64,
    /// Field 5: number of allocated processors.
    pub processors: u32,
    /// Field 11: status (1 = completed), −1 when unknown.
    pub status: i32,
}

/// Parses SWF text into records, skipping comments, empty lines, and jobs
/// with non-positive runtime or processor counts (cancelled/failed
/// submissions, as is standard practice when replaying SWF traces).
pub fn parse(text: &str) -> Result<Vec<SwfRecord>> {
    let mut out = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with(';') {
            continue;
        }
        let fields: Vec<&str> = line.split_whitespace().collect();
        if fields.len() < 5 {
            return Err(Error::TraceParse {
                line: lineno + 1,
                message: format!("expected ≥ 5 fields, got {}", fields.len()),
            });
        }
        let f = |i: usize| -> Result<f64> {
            fields[i].parse::<f64>().map_err(|e| Error::TraceParse {
                line: lineno + 1,
                message: format!("field {}: {e}", i + 1),
            })
        };
        let job_number = f(0)? as u64;
        let submit = f(1)?;
        let wait = f(2)?;
        let run_time = f(3)?;
        let processors = f(4)? as i64;
        let status = if fields.len() > 10 { f(10)? as i32 } else { -1 };
        if run_time <= 0.0 || processors <= 0 || submit < 0.0 {
            continue; // cancelled or malformed job; skip as archives advise
        }
        out.push(SwfRecord {
            job_number,
            submit,
            wait,
            run_time,
            processors: processors as u32,
            status,
        });
    }
    Ok(out)
}

/// Options for converting SWF records to [`Job`]s.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConvertOptions {
    /// Fold jobs wider than this down to this width, scaling work to
    /// preserve node-seconds (the paper's 12-site grid tops out at 16).
    pub max_width: u32,
    /// Divide submit times by this factor (paper: 2.0 → 92 d → 46 d).
    pub time_squeeze: f64,
    /// Distribution for the security demands SWF lacks.
    pub security: SecurityParams,
    /// Seed for the security-demand stream.
    pub seed: u64,
}

impl Default for ConvertOptions {
    fn default() -> Self {
        ConvertOptions {
            max_width: 16,
            time_squeeze: 2.0,
            security: SecurityParams::default(),
            seed: 1993,
        }
    }
}

/// Converts parsed records into simulation jobs (ids renumbered densely in
/// submit order).
pub fn to_jobs(records: &[SwfRecord], opts: &ConvertOptions) -> Result<Vec<Job>> {
    if opts.max_width == 0 {
        return Err(Error::invalid("max_width", "must be ≥ 1"));
    }
    if !(opts.time_squeeze.is_finite() && opts.time_squeeze >= 1.0) {
        return Err(Error::invalid("time_squeeze", "must be ≥ 1"));
    }
    opts.security.validate()?;
    let mut sorted: Vec<&SwfRecord> = records.iter().collect();
    sorted.sort_by(|a, b| a.submit.total_cmp(&b.submit));
    let mut sd_rng = stream(opts.seed, Stream::SecurityDemand);
    let mut jobs = Vec::with_capacity(sorted.len());
    for (i, r) in sorted.iter().enumerate() {
        let (width, work) = if r.processors > opts.max_width {
            (
                opts.max_width,
                r.run_time * f64::from(r.processors) / f64::from(opts.max_width),
            )
        } else {
            (r.processors, r.run_time)
        };
        jobs.push(
            Job::builder(i as u64)
                .arrival(Time::new(r.submit / opts.time_squeeze))
                .width(width)
                .work(work)
                .security_demand(opts.security.sample_sd(&mut sd_rng))
                .build()?,
        );
    }
    Ok(jobs)
}

/// Serialises jobs back to SWF lines (fields we don't model are −1), so
/// synthetic workloads can be inspected with standard archive tooling.
pub fn write(jobs: &[Job]) -> String {
    let mut s = String::with_capacity(jobs.len() * 64);
    s.push_str("; generated by gridsec-workloads\n");
    for j in jobs {
        s.push_str(&format!(
            "{} {} -1 {} {} -1 -1 -1 -1 -1 1 -1 -1 -1 -1 -1 -1 -1\n",
            j.id.0,
            j.arrival.seconds(),
            j.work,
            j.width
        ));
    }
    s
}

#[cfg(test)]
#[allow(clippy::field_reassign_with_default)] // builder-free mutation reads clearer in tests
mod tests {
    use super::*;

    const SAMPLE: &str = "\
; SWF header comment
; MaxProcs: 128

1 0 5 100 4 -1 -1 -1 -1 -1 1 -1 -1 -1 -1 -1 -1 -1
2 10 0 200 128 -1 -1 -1 -1 -1 1 -1 -1 -1 -1 -1 -1 -1
3 20 0 -1 4 -1 -1 -1 -1 -1 0 -1 -1 -1 -1 -1 -1 -1
4 30 0 50 0 -1 -1 -1 -1 -1 0 -1 -1 -1 -1 -1 -1 -1
5 5 2 10 1
";

    #[test]
    fn parse_skips_comments_and_bad_jobs() {
        let recs = parse(SAMPLE).unwrap();
        // Jobs 3 (runtime −1) and 4 (0 procs) are skipped.
        assert_eq!(recs.len(), 3);
        assert_eq!(recs[0].job_number, 1);
        assert_eq!(recs[0].processors, 4);
        assert_eq!(recs[1].processors, 128);
        assert_eq!(recs[2].job_number, 5);
        assert_eq!(recs[2].status, -1); // short line, no status field
    }

    #[test]
    fn parse_rejects_malformed_lines() {
        assert!(parse("1 2 3").is_err());
        assert!(parse("a b c d e").is_err());
    }

    #[test]
    fn conversion_folds_and_squeezes() {
        let recs = parse(SAMPLE).unwrap();
        let jobs = to_jobs(&recs, &ConvertOptions::default()).unwrap();
        assert_eq!(jobs.len(), 3);
        // Sorted by submit: job 1 (t=0), job 5 (t=5), job 2 (t=10).
        assert_eq!(jobs[0].arrival, Time::ZERO);
        assert_eq!(jobs[1].arrival, Time::new(2.5)); // 5 / 2
        assert_eq!(jobs[2].arrival, Time::new(5.0)); // 10 / 2
                                                     // The 128-proc job folds to width 16 with 8× work.
        let folded = &jobs[2];
        assert_eq!(folded.width, 16);
        assert_eq!(folded.work, 200.0 * 128.0 / 16.0);
        // Node-seconds preserved.
        assert_eq!(
            folded.work * f64::from(folded.width),
            200.0 * 128.0 * 16.0 / 16.0
        );
    }

    #[test]
    fn conversion_validates_options() {
        let recs = parse(SAMPLE).unwrap();
        let mut o = ConvertOptions::default();
        o.max_width = 0;
        assert!(to_jobs(&recs, &o).is_err());
        let mut o = ConvertOptions::default();
        o.time_squeeze = 0.0;
        assert!(to_jobs(&recs, &o).is_err());
    }

    #[test]
    fn roundtrip_write_parse() {
        let recs = parse(SAMPLE).unwrap();
        let jobs = to_jobs(&recs, &ConvertOptions::default()).unwrap();
        let text = write(&jobs);
        let reparsed = parse(&text).unwrap();
        assert_eq!(reparsed.len(), jobs.len());
        for (r, j) in reparsed.iter().zip(&jobs) {
            assert_eq!(r.submit, j.arrival.seconds());
            assert_eq!(r.run_time, j.work);
            assert_eq!(r.processors, j.width);
        }
    }

    #[test]
    fn security_demands_assigned_from_seed() {
        let recs = parse(SAMPLE).unwrap();
        let a = to_jobs(&recs, &ConvertOptions::default()).unwrap();
        let b = to_jobs(&recs, &ConvertOptions::default()).unwrap();
        assert_eq!(a, b);
        let mut o = ConvertOptions::default();
        o.seed = 77;
        let c = to_jobs(&recs, &o).unwrap();
        assert!(a
            .iter()
            .zip(&c)
            .any(|(x, y)| x.security_demand != y.security_demand));
    }
}
