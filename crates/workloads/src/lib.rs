//! # gridsec-workloads
//!
//! Workload substrate for the IPDPS 2005 reproduction: the two benchmark
//! workloads of the paper's §4.2 plus trace I/O.
//!
//! * [`psa`] — the **parameter-sweep application** generator: `N`
//!   independent width-1 jobs with Poisson arrivals (rate 0.008/s) and
//!   20-level workloads in `[0, 300000]` s, over a 20-site grid with
//!   10-level speeds (Table 1).
//! * [`nas`] — a **synthetic NAS iPSC/860 trace** generator reproducing the
//!   published characteristics of the 1993 NASA Ames trace (Feitelson &
//!   Nitzberg): power-of-two job widths, log-uniform runtimes, diurnal +
//!   weekly modulated arrivals over 92 days, time-squeezed ×2 to 46 days,
//!   mapped to the paper's 12-site grid (4 × 16-node + 8 × 8-node).
//!   The real trace is not redistributable here; [`swf`] loads the genuine
//!   file when available (see DESIGN.md §3 for the substitution argument).
//! * [`swf`] — Standard Workload Format parser/writer.
//! * [`arrival`] — homogeneous and modulated Poisson arrival processes.
//! * [`security`] — SD/SL assignment from the paper's uniform distributions.
//! * [`analysis`] — workload characterisation (width histograms, diurnal
//!   profile, offered load) for validating synthetic traces.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod analysis;
pub mod arrival;
pub mod nas;
pub mod psa;
pub mod security;
pub mod swf;

pub use analysis::WorkloadProfile;
pub use nas::{NasConfig, NasWorkload};
pub use psa::{PsaConfig, PsaWorkload};
pub use security::SecurityParams;
