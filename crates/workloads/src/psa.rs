//! The parameter-sweep application (PSA) workload of §4.2 / Table 1.
//!
//! A PSA is a set of `N` independent sequential jobs (width 1), each with
//! the same task specification but a different dataset. Table 1 parameters:
//!
//! | parameter       | value                          |
//! |-----------------|--------------------------------|
//! | number of jobs  | 5000 (scaled in Fig. 10)       |
//! | number of sites | 20                             |
//! | arrival rate    | Poisson, 0.008 jobs/s          |
//! | job workloads   | 20 levels over (0, 300000] s   |
//! | site speeds     | 10 levels over (0, 10]         |
//! | SL              | U[0.4, 1.0]                    |
//! | SD              | U[0.6, 0.9]                    |

use crate::arrival::PoissonProcess;
use crate::security::SecurityParams;
use gridsec_core::rng::{stream, Stream};
use gridsec_core::{Error, Grid, Job, Result, Site};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Configuration of the PSA generator (defaults = Table 1).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PsaConfig {
    /// Number of jobs `N`.
    pub n_jobs: usize,
    /// Number of Grid sites `M`.
    pub n_sites: usize,
    /// Poisson arrival rate (jobs per second).
    pub arrival_rate: f64,
    /// Number of discrete workload levels.
    pub work_levels: u32,
    /// Maximum workload in reference seconds (level `k` of `L` carries
    /// `k/L × max_work`, `k = 1..=L`, so work is never 0).
    pub max_work: f64,
    /// Number of discrete site-speed levels (level `k` of `L` has speed
    /// `k/L × max_speed`, `k = 1..=L`).
    pub speed_levels: u32,
    /// Maximum site speed.
    pub max_speed: f64,
    /// SD/SL distributions.
    pub security: SecurityParams,
    /// Generator seed.
    pub seed: u64,
}

impl Default for PsaConfig {
    fn default() -> Self {
        PsaConfig {
            n_jobs: 5000,
            n_sites: 20,
            arrival_rate: 0.008,
            work_levels: 20,
            max_work: 300_000.0,
            speed_levels: 10,
            max_speed: 10.0,
            security: SecurityParams::default(),
            seed: 2005,
        }
    }
}

impl PsaConfig {
    /// Table-1 defaults with a different job count (the Fig. 10 sweep).
    pub fn with_n_jobs(mut self, n: usize) -> Self {
        self.n_jobs = n;
        self
    }

    /// Table-1 defaults with a different seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Validates the configuration.
    pub fn validate(&self) -> Result<()> {
        if self.n_jobs == 0 {
            return Err(Error::invalid("n_jobs", "need at least one job"));
        }
        if self.n_sites == 0 {
            return Err(Error::invalid("n_sites", "need at least one site"));
        }
        if !(self.arrival_rate.is_finite() && self.arrival_rate > 0.0) {
            return Err(Error::invalid("arrival_rate", "must be positive"));
        }
        if self.work_levels == 0 || self.speed_levels == 0 {
            return Err(Error::invalid("levels", "level counts must be ≥ 1"));
        }
        if !(self.max_work.is_finite() && self.max_work > 0.0) {
            return Err(Error::invalid("max_work", "must be positive"));
        }
        if !(self.max_speed.is_finite() && self.max_speed > 0.0) {
            return Err(Error::invalid("max_speed", "must be positive"));
        }
        self.security.validate()
    }

    /// Generates the workload and its grid.
    pub fn generate(&self) -> Result<PsaWorkload> {
        self.validate()?;
        let mut wl_rng = stream(self.seed, Stream::Workload);
        let mut sd_rng = stream(self.seed, Stream::SecurityDemand);
        let mut sl_rng = stream(self.seed, Stream::SecurityLevel);

        let arrivals = PoissonProcess::new(self.arrival_rate).generate(self.n_jobs, &mut wl_rng);
        let mut jobs = Vec::with_capacity(self.n_jobs);
        for (i, at) in arrivals.into_iter().enumerate() {
            let level = wl_rng.gen_range(1..=self.work_levels);
            let work = f64::from(level) / f64::from(self.work_levels) * self.max_work;
            let sd = self.security.sample_sd(&mut sd_rng);
            jobs.push(
                Job::builder(i as u64)
                    .arrival(at)
                    .width(1)
                    .work(work)
                    .security_demand(sd)
                    .build()?,
            );
        }

        let mut sites = Vec::with_capacity(self.n_sites);
        for s in 0..self.n_sites {
            let level = sl_rng.gen_range(1..=self.speed_levels);
            let speed = f64::from(level) / f64::from(self.speed_levels) * self.max_speed;
            let sl = self.security.sample_sl(&mut sl_rng);
            sites.push(
                Site::builder(s)
                    .nodes(1)
                    .speed(speed)
                    .security_level(sl)
                    .build()?,
            );
        }
        Ok(PsaWorkload {
            jobs,
            grid: Grid::new(sites)?,
            config: self.clone(),
        })
    }
}

/// A generated PSA instance.
#[derive(Debug, Clone)]
pub struct PsaWorkload {
    /// The jobs, in arrival order.
    pub jobs: Vec<Job>,
    /// The 20-site grid.
    pub grid: Grid,
    /// The configuration that produced it.
    pub config: PsaConfig,
}

#[cfg(test)]
#[allow(clippy::field_reassign_with_default)] // builder-free mutation reads clearer in tests
mod tests {
    use super::*;

    #[test]
    fn default_matches_table1() {
        let c = PsaConfig::default();
        assert_eq!(c.n_jobs, 5000);
        assert_eq!(c.n_sites, 20);
        assert_eq!(c.arrival_rate, 0.008);
        assert_eq!(c.work_levels, 20);
        assert_eq!(c.max_work, 300_000.0);
        assert_eq!(c.speed_levels, 10);
    }

    #[test]
    fn generate_produces_consistent_workload() {
        let w = PsaConfig::default().with_n_jobs(500).generate().unwrap();
        assert_eq!(w.jobs.len(), 500);
        assert_eq!(w.grid.len(), 20);
        // Jobs sorted by arrival, all width 1, work within the level grid.
        assert!(w.jobs.windows(2).all(|p| p[0].arrival <= p[1].arrival));
        for j in &w.jobs {
            assert_eq!(j.width, 1);
            assert!(j.work > 0.0 && j.work <= 300_000.0);
            let level = j.work / 300_000.0 * 20.0;
            assert!(
                (level - level.round()).abs() < 1e-9,
                "work not on level grid"
            );
            assert!((0.6..=0.9).contains(&j.security_demand));
        }
        for s in w.grid.sites() {
            assert!(s.speed > 0.0 && s.speed <= 10.0);
            assert!((0.4..=1.0).contains(&s.security_level));
            assert_eq!(s.nodes, 1);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a = PsaConfig::default().with_n_jobs(100).generate().unwrap();
        let b = PsaConfig::default().with_n_jobs(100).generate().unwrap();
        assert_eq!(a.jobs, b.jobs);
        assert_eq!(a.grid, b.grid);
        let c = PsaConfig::default()
            .with_n_jobs(100)
            .with_seed(999)
            .generate()
            .unwrap();
        assert_ne!(a.jobs, c.jobs);
    }

    #[test]
    fn invalid_configs_rejected() {
        assert!(PsaConfig::default().with_n_jobs(0).generate().is_err());
        let mut c = PsaConfig::default();
        c.arrival_rate = 0.0;
        assert!(c.generate().is_err());
        let mut c = PsaConfig::default();
        c.work_levels = 0;
        assert!(c.generate().is_err());
    }

    #[test]
    fn arrival_span_matches_rate() {
        let w = PsaConfig::default().generate().unwrap();
        let span = w.jobs.last().unwrap().arrival.seconds();
        let expect = 5000.0 / 0.008;
        assert!(
            (span - expect).abs() / expect < 0.1,
            "span {span} vs {expect}"
        );
    }
}
