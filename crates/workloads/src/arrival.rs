//! Arrival processes.
//!
//! * [`PoissonProcess`] — homogeneous Poisson arrivals (exponential
//!   inter-arrival times), used by the PSA workload (rate 0.008/s).
//! * [`ModulatedPoisson`] — non-homogeneous Poisson via thinning, with a
//!   diurnal × weekly rate profile, used by the synthetic NAS trace
//!   (production traces show strong day/night and weekday/weekend cycles).

use gridsec_core::Time;
use rand::Rng;

/// Homogeneous Poisson process with rate `λ` arrivals per second.
#[derive(Debug, Clone, Copy)]
pub struct PoissonProcess {
    rate: f64,
}

impl PoissonProcess {
    /// Creates a process with the given positive rate.
    ///
    /// # Panics
    /// Panics if `rate` is not positive and finite.
    pub fn new(rate: f64) -> Self {
        assert!(
            rate.is_finite() && rate > 0.0,
            "arrival rate must be positive"
        );
        PoissonProcess { rate }
    }

    /// The rate parameter.
    pub fn rate(&self) -> f64 {
        self.rate
    }

    /// Samples the next arrival strictly after `now`.
    pub fn next_after<R: Rng + ?Sized>(&self, now: Time, rng: &mut R) -> Time {
        let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        now + Time::new(-u.ln() / self.rate)
    }

    /// Generates the first `n` arrival instants starting from time 0.
    pub fn generate<R: Rng + ?Sized>(&self, n: usize, rng: &mut R) -> Vec<Time> {
        let mut out = Vec::with_capacity(n);
        let mut t = Time::ZERO;
        for _ in 0..n {
            t = self.next_after(t, rng);
            out.push(t);
        }
        out
    }
}

/// Diurnal × weekly rate profile for [`ModulatedPoisson`].
///
/// The relative intensity at time `t` is `day_shape(hour) × week_shape(dow)`
/// where prime-time working hours (8:00–18:00) carry most of the load —
/// the pattern reported for the NASA Ames iPSC/860 trace.
#[derive(Debug, Clone, Copy)]
pub struct DiurnalProfile {
    /// Relative intensity during prime time (8:00–18:00 weekdays).
    pub prime: f64,
    /// Relative intensity during weekday nights.
    pub night: f64,
    /// Relative intensity on weekends (whole day).
    pub weekend: f64,
}

impl Default for DiurnalProfile {
    fn default() -> Self {
        // Roughly 70 % of submissions in prime time, consistent with the
        // published trace characterisation.
        DiurnalProfile {
            prime: 1.0,
            night: 0.25,
            weekend: 0.15,
        }
    }
}

impl DiurnalProfile {
    /// Relative intensity (≤ 1) at simulated time `t` (t = 0 is Monday
    /// 00:00).
    pub fn intensity(&self, t: Time) -> f64 {
        let secs = t.seconds();
        let day = (secs / 86_400.0).floor() as i64;
        let dow = day.rem_euclid(7); // 0 = Monday
        let hour = (secs % 86_400.0) / 3600.0;
        if dow >= 5 {
            self.weekend
        } else if (8.0..18.0).contains(&hour) {
            self.prime
        } else {
            self.night
        }
    }

    /// The peak intensity, for thinning.
    pub fn peak(&self) -> f64 {
        self.prime.max(self.night).max(self.weekend)
    }
}

/// Non-homogeneous Poisson arrivals via Lewis–Shedler thinning.
#[derive(Debug, Clone, Copy)]
pub struct ModulatedPoisson {
    /// Peak rate (arrivals/s) during the highest-intensity period.
    pub peak_rate: f64,
    /// The modulation profile.
    pub profile: DiurnalProfile,
}

impl ModulatedPoisson {
    /// Creates a modulated process with the given peak rate.
    ///
    /// # Panics
    /// Panics if `peak_rate` is not positive and finite.
    pub fn new(peak_rate: f64, profile: DiurnalProfile) -> Self {
        assert!(
            peak_rate.is_finite() && peak_rate > 0.0,
            "peak rate must be positive"
        );
        ModulatedPoisson { peak_rate, profile }
    }

    /// Samples the next arrival strictly after `now` (thinning).
    pub fn next_after<R: Rng + ?Sized>(&self, now: Time, rng: &mut R) -> Time {
        let majorant = self.peak_rate * self.profile.peak();
        let mut t = now;
        loop {
            let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
            t += Time::new(-u.ln() / majorant);
            let accept: f64 = rng.gen();
            let local = self.peak_rate * self.profile.intensity(t);
            if accept <= local / majorant {
                return t;
            }
        }
    }

    /// Generates arrivals until either `n` jobs or the `horizon` is reached.
    pub fn generate<R: Rng + ?Sized>(&self, n: usize, horizon: Time, rng: &mut R) -> Vec<Time> {
        let mut out = Vec::with_capacity(n);
        let mut t = Time::ZERO;
        while out.len() < n {
            t = self.next_after(t, rng);
            if t > horizon {
                break;
            }
            out.push(t);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridsec_core::rng::{stream, Stream};

    #[test]
    fn poisson_mean_interarrival_close_to_inverse_rate() {
        let p = PoissonProcess::new(0.008);
        let mut rng = stream(3, Stream::Workload);
        let arrivals = p.generate(5000, &mut rng);
        assert!(arrivals.windows(2).all(|w| w[0] < w[1]));
        let mean_gap = arrivals.last().unwrap().seconds() / 5000.0;
        let expect = 1.0 / 0.008;
        assert!(
            (mean_gap - expect).abs() / expect < 0.05,
            "mean gap {mean_gap} vs {expect}"
        );
    }

    #[test]
    fn poisson_is_strictly_increasing_and_positive() {
        let p = PoissonProcess::new(1.0);
        let mut rng = stream(4, Stream::Workload);
        let a = p.generate(100, &mut rng);
        assert!(a[0] > Time::ZERO);
        assert!(a.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_rate_panics() {
        let _ = PoissonProcess::new(0.0);
    }

    #[test]
    fn profile_distinguishes_periods() {
        let p = DiurnalProfile::default();
        // Monday 12:00 — prime.
        assert_eq!(p.intensity(Time::hours(12.0)), p.prime);
        // Monday 03:00 — night.
        assert_eq!(p.intensity(Time::hours(3.0)), p.night);
        // Saturday noon (day 5) — weekend.
        assert_eq!(p.intensity(Time::days(5.0) + Time::hours(12.0)), p.weekend);
        assert_eq!(p.peak(), p.prime);
    }

    #[test]
    fn modulated_concentrates_in_prime_time() {
        let m = ModulatedPoisson::new(0.05, DiurnalProfile::default());
        let mut rng = stream(5, Stream::Workload);
        let arrivals = m.generate(4000, Time::days(60.0), &mut rng);
        assert!(arrivals.len() > 1000, "got {}", arrivals.len());
        let prime = arrivals
            .iter()
            .filter(|t| {
                let p = DiurnalProfile::default();
                p.intensity(**t) == p.prime
            })
            .count();
        // Prime time is 10/24 h × 5/7 days ≈ 30 % of the week but should
        // carry well over half the arrivals.
        assert!(
            prime as f64 / arrivals.len() as f64 > 0.5,
            "prime fraction {}",
            prime as f64 / arrivals.len() as f64
        );
    }

    #[test]
    fn modulated_respects_horizon() {
        let m = ModulatedPoisson::new(0.001, DiurnalProfile::default());
        let mut rng = stream(6, Stream::Workload);
        let arrivals = m.generate(10_000, Time::days(1.0), &mut rng);
        assert!(arrivals.iter().all(|t| *t <= Time::days(1.0)));
        assert!(arrivals.len() < 10_000);
    }
}
