//! Security-demand / security-level assignment (Table 1 distributions).

use gridsec_core::{Error, Result};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Uniform SD/SL distribution bounds.
///
/// Paper defaults (Table 1): `SL ~ U[0.4, 1.0]`, `SD ~ U[0.6, 0.9]`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SecurityParams {
    /// Lower bound of the job security-demand distribution.
    pub sd_min: f64,
    /// Upper bound of the job security-demand distribution.
    pub sd_max: f64,
    /// Lower bound of the site security-level distribution.
    pub sl_min: f64,
    /// Upper bound of the site security-level distribution.
    pub sl_max: f64,
}

impl Default for SecurityParams {
    fn default() -> Self {
        SecurityParams {
            sd_min: 0.6,
            sd_max: 0.9,
            sl_min: 0.4,
            sl_max: 1.0,
        }
    }
}

impl SecurityParams {
    /// Validates that both ranges are ordered and inside `[0, 1]`.
    pub fn validate(&self) -> Result<()> {
        for (name, lo, hi) in [
            ("sd", self.sd_min, self.sd_max),
            ("sl", self.sl_min, self.sl_max),
        ] {
            if !(0.0..=1.0).contains(&lo) || !(0.0..=1.0).contains(&hi) || lo > hi {
                return Err(Error::invalid(
                    "security",
                    format!("{name} range [{lo}, {hi}] must be ordered within [0, 1]"),
                ));
            }
        }
        Ok(())
    }

    /// Samples one job security demand.
    pub fn sample_sd<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        if self.sd_min == self.sd_max {
            self.sd_min
        } else {
            rng.gen_range(self.sd_min..=self.sd_max)
        }
    }

    /// Samples one site security level.
    pub fn sample_sl<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        if self.sl_min == self.sl_max {
            self.sl_min
        } else {
            rng.gen_range(self.sl_min..=self.sl_max)
        }
    }
}

#[cfg(test)]
#[allow(clippy::field_reassign_with_default)] // builder-free mutation reads clearer in tests
mod tests {
    use super::*;
    use gridsec_core::rng::{stream, Stream};

    #[test]
    fn defaults_match_table1() {
        let p = SecurityParams::default();
        assert_eq!((p.sd_min, p.sd_max), (0.6, 0.9));
        assert_eq!((p.sl_min, p.sl_max), (0.4, 1.0));
        assert!(p.validate().is_ok());
    }

    #[test]
    fn samples_respect_bounds() {
        let p = SecurityParams::default();
        let mut rng = stream(1, Stream::SecurityDemand);
        for _ in 0..1000 {
            let sd = p.sample_sd(&mut rng);
            let sl = p.sample_sl(&mut rng);
            assert!((p.sd_min..=p.sd_max).contains(&sd));
            assert!((p.sl_min..=p.sl_max).contains(&sl));
        }
    }

    #[test]
    fn degenerate_range_is_constant() {
        let p = SecurityParams {
            sd_min: 0.7,
            sd_max: 0.7,
            sl_min: 0.5,
            sl_max: 0.5,
        };
        let mut rng = stream(2, Stream::SecurityDemand);
        assert_eq!(p.sample_sd(&mut rng), 0.7);
        assert_eq!(p.sample_sl(&mut rng), 0.5);
    }

    #[test]
    fn invalid_ranges_rejected() {
        let mut p = SecurityParams::default();
        p.sd_min = 0.95;
        p.sd_max = 0.6;
        assert!(p.validate().is_err());
        let mut q = SecurityParams::default();
        q.sl_max = 1.5;
        assert!(q.validate().is_err());
    }
}
