//! JSON experiment specifications for the `gridsec` CLI.
//!
//! A spec file describes a full experiment: the workload (PSA, synthetic
//! NAS, or an SWF trace file), the scheduler roster, and the simulator
//! configuration. See `gridsec example-spec` for a starting point.

use gridsec_core::{Error, Grid, Job, Result, RiskMode, Site};
use gridsec_sim::{
    ArrivalPhase, ArrivalProcess, BatchScheduler, FaultSpec, Scenario, SimConfig, TrustSpec,
};
use gridsec_stga::{
    GaParams, SaParams, SharedHistory, SimulatedAnnealing, StandardGa, Stga, StgaParams,
    TabuParams, TabuSearch,
};
use gridsec_workloads::{swf, NasConfig, PsaConfig};
use serde::{Deserialize, Serialize};

/// Workload selection.
#[derive(Debug, Clone, Serialize, Deserialize)]
#[serde(tag = "kind", rename_all = "snake_case")]
pub enum WorkloadSpec {
    /// The Table-1 parameter-sweep workload.
    Psa {
        /// PSA generator configuration (defaults = Table 1).
        #[serde(default)]
        config: PsaConfig,
    },
    /// The synthetic NAS iPSC/860 trace.
    Nas {
        /// NAS generator configuration (defaults = Table 1 / DESIGN.md).
        #[serde(default)]
        config: NasConfig,
    },
    /// A real trace in Standard Workload Format; runs on the NAS grid.
    Swf {
        /// Path to the `.swf` file.
        path: String,
        /// Conversion options (width folding, time squeeze, SD seed).
        #[serde(default)]
        convert: swf::ConvertOptions,
    },
}

impl WorkloadSpec {
    /// Materialises the workload: jobs plus the grid they run on.
    pub fn build(&self) -> Result<(Vec<Job>, Grid)> {
        match self {
            WorkloadSpec::Psa { config } => {
                let w = config.generate()?;
                Ok((w.jobs, w.grid))
            }
            WorkloadSpec::Nas { config } => {
                let w = config.generate()?;
                Ok((w.jobs, w.grid))
            }
            WorkloadSpec::Swf { path, convert } => {
                let text = std::fs::read_to_string(path).map_err(|e| {
                    Error::invalid("workload.path", format!("cannot read {path}: {e}"))
                })?;
                let records = swf::parse(&text)?;
                let jobs = swf::to_jobs(&records, convert)?;
                let grid = NasConfig::default().grid()?;
                Ok((jobs, grid))
            }
        }
    }
}

/// One scheduler to run.
#[derive(Debug, Clone, Serialize, Deserialize)]
#[serde(tag = "algorithm", rename_all = "snake_case")]
pub enum SchedulerSpec {
    /// Security-driven Min-Min.
    MinMin {
        /// Risk mode (`{"Secure"}`, `{"Risky"}` or `{"FRisky": 0.5}`).
        mode: RiskMode,
    },
    /// Security-driven Sufferage.
    Sufferage {
        /// Risk mode.
        mode: RiskMode,
    },
    /// Max-Min baseline.
    MaxMin {
        /// Risk mode.
        mode: RiskMode,
    },
    /// Duplex: best of Min-Min and Max-Min per batch.
    Duplex {
        /// Risk mode.
        mode: RiskMode,
    },
    /// Switching Algorithm (MET/MCT on the load-balance index).
    Switching {
        /// Risk mode.
        mode: RiskMode,
        /// Lower balance threshold.
        low: f64,
        /// Upper balance threshold.
        high: f64,
    },
    /// Minimum completion time (immediate mode).
    Mct {
        /// Risk mode.
        mode: RiskMode,
    },
    /// Minimum execution time (immediate mode).
    Met {
        /// Risk mode.
        mode: RiskMode,
    },
    /// Opportunistic load balancing (immediate mode).
    Olb {
        /// Risk mode.
        mode: RiskMode,
    },
    /// k-percent best.
    Kpb {
        /// Risk mode.
        mode: RiskMode,
        /// The percentage of best-executing sites considered.
        k_percent: f64,
    },
    /// Uniform-random admissible site.
    Random {
        /// Risk mode.
        mode: RiskMode,
        /// RNG seed.
        #[serde(default)]
        seed: u64,
    },
    /// The Space-Time Genetic Algorithm.
    Stga {
        /// STGA parameters (defaults = Table 1).
        #[serde(default)]
        params: StgaParams,
        /// Training batch size (0 disables training).
        #[serde(default)]
        train_batch: usize,
    },
    /// The conventional GA baseline.
    Ga {
        /// GA parameters (defaults = Table 1).
        #[serde(default)]
        params: GaParams,
    },
    /// Simulated annealing (offline-style metaheuristic baseline).
    Sa {
        /// SA parameters.
        #[serde(default)]
        params: SaParams,
    },
    /// Tabu search baseline.
    Tabu {
        /// Tabu parameters.
        #[serde(default)]
        params: TabuParams,
    },
}

impl SchedulerSpec {
    /// Instantiates the scheduler; `jobs`/`grid` are used for STGA
    /// training.
    pub fn build(&self, jobs: &[Job], grid: &Grid) -> Result<Box<dyn BatchScheduler>> {
        Ok(self.build_send(jobs, grid)?)
    }

    /// Whether this spec builds an STGA (the only scheduler with
    /// persistable state — its history table).
    pub fn is_stga(&self) -> bool {
        matches!(self, SchedulerSpec::Stga { .. })
    }

    /// Like [`SchedulerSpec::build_send`], but an STGA adopts `history`
    /// (a restored or shared table) instead of opening a fresh one —
    /// the serving daemon's restart path. Non-STGA schedulers ignore it.
    pub fn build_send_with_history(
        &self,
        jobs: &[Job],
        grid: &Grid,
        history: Option<SharedHistory>,
    ) -> Result<Box<dyn BatchScheduler + Send>> {
        if let (
            SchedulerSpec::Stga {
                params,
                train_batch,
            },
            Some(history),
        ) = (self, history)
        {
            let mut stga = Stga::with_history(*params, history);
            if *train_batch > 0 {
                stga.train(jobs, grid, *train_batch)?;
            }
            return Ok(Box::new(stga));
        }
        self.build_send(jobs, grid)
    }

    /// Like [`SchedulerSpec::build`], but `Send` — movable into the
    /// serving daemon's scheduling thread.
    pub fn build_send(&self, jobs: &[Job], grid: &Grid) -> Result<Box<dyn BatchScheduler + Send>> {
        use gridsec_heuristics as h;
        Ok(match self {
            SchedulerSpec::MinMin { mode } => Box::new(h::MinMin::new(*mode)),
            SchedulerSpec::Sufferage { mode } => Box::new(h::Sufferage::new(*mode)),
            SchedulerSpec::MaxMin { mode } => Box::new(h::MaxMin::new(*mode)),
            SchedulerSpec::Duplex { mode } => Box::new(h::Duplex::new(*mode)),
            SchedulerSpec::Switching { mode, low, high } => {
                Box::new(h::Switching::new(*mode, *low, *high)?)
            }
            SchedulerSpec::Mct { mode } => Box::new(h::Mct::new(*mode)),
            SchedulerSpec::Met { mode } => Box::new(h::Met::new(*mode)),
            SchedulerSpec::Olb { mode } => Box::new(h::Olb::new(*mode)),
            SchedulerSpec::Kpb { mode, k_percent } => Box::new(h::Kpb::new(*mode, *k_percent)?),
            SchedulerSpec::Random { mode, seed } => Box::new(h::RandomScheduler::new(*mode, *seed)),
            SchedulerSpec::Stga {
                params,
                train_batch,
            } => {
                let mut stga = Stga::new(*params)?;
                if *train_batch > 0 {
                    stga.train(jobs, grid, *train_batch)?;
                }
                Box::new(stga)
            }
            SchedulerSpec::Ga { params } => Box::new(StandardGa::new(*params)?),
            SchedulerSpec::Sa { params } => Box::new(SimulatedAnnealing::new(*params)?),
            SchedulerSpec::Tabu { params } => Box::new(TabuSearch::new(*params)?),
        })
    }
}

/// A complete experiment specification.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExperimentSpec {
    /// The workload to run.
    pub workload: WorkloadSpec,
    /// Schedulers to compare (each gets a fresh simulation).
    pub schedulers: Vec<SchedulerSpec>,
    /// Simulator configuration.
    #[serde(default)]
    pub sim: SimConfig,
}

impl ExperimentSpec {
    /// Parses a spec from JSON text.
    pub fn from_json(text: &str) -> Result<ExperimentSpec> {
        serde_json::from_str(text)
            .map_err(|e| Error::invalid("spec", format!("invalid JSON spec: {e}")))
    }

    /// A ready-to-edit example spec.
    pub fn example() -> ExperimentSpec {
        ExperimentSpec {
            workload: WorkloadSpec::Psa {
                config: PsaConfig::default().with_n_jobs(500),
            },
            schedulers: vec![
                SchedulerSpec::MinMin {
                    mode: RiskMode::Secure,
                },
                SchedulerSpec::MinMin {
                    mode: RiskMode::FRisky(0.5),
                },
                SchedulerSpec::Sufferage {
                    mode: RiskMode::Risky,
                },
                SchedulerSpec::Stga {
                    params: StgaParams::default(),
                    train_batch: 8,
                },
            ],
            sim: SimConfig::default(),
        }
    }
}

/// Grid selection for a chaos scenario (which generates its own jobs, so
/// only the resource side of a workload is needed).
#[derive(Debug, Clone, Serialize, Deserialize)]
#[serde(tag = "kind", rename_all = "snake_case")]
pub enum GridSpec {
    /// An explicit site list.
    Sites {
        /// The sites, ids 0..n in order.
        sites: Vec<Site>,
    },
    /// The PSA sweep grid (20 sites by default).
    Psa {
        /// PSA generator configuration; only its grid is used.
        #[serde(default)]
        config: PsaConfig,
    },
    /// The NAS iPSC/860 grid (12 sites).
    Nas {
        /// NAS generator configuration; only its grid is used.
        #[serde(default)]
        config: NasConfig,
    },
}

impl GridSpec {
    /// Materialises the grid.
    pub fn build(&self) -> Result<Grid> {
        match self {
            GridSpec::Sites { sites } => Grid::new(sites.clone()),
            GridSpec::Psa { config } => Ok(config.generate()?.grid),
            GridSpec::Nas { config } => config.grid(),
        }
    }
}

/// A complete chaos-scenario specification: the grid under test, one
/// scheduler, the batching configuration, and the injection program
/// itself. Replayable through the engine (`gridsec chaos`) and the
/// daemon (`loadgen --scenario`).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ScenarioSpec {
    /// The grid the scenario runs on.
    pub grid: GridSpec,
    /// The scheduler under test.
    pub scheduler: SchedulerSpec,
    /// Simulator configuration (batch policy, interval, security model).
    #[serde(default)]
    pub sim: SimConfig,
    /// The scenario program: arrivals, faults, trust dynamics.
    pub scenario: Scenario,
}

impl ScenarioSpec {
    /// Parses a scenario spec from JSON text.
    pub fn from_json(text: &str) -> Result<ScenarioSpec> {
        serde_json::from_str(text)
            .map_err(|e| Error::invalid("scenario spec", format!("invalid JSON spec: {e}")))
    }

    /// A ready-to-edit churn example: two tenants (one heavy-tailed, one
    /// steady), an explicit outage with rejoin, a fault storm, a trust
    /// re-rate and a trust storm — every injection kind the engine knows.
    pub fn example() -> ScenarioSpec {
        let sites = [(2u32, 1.0), (4, 2.0), (2, 1.5), (4, 1.0)]
            .iter()
            .enumerate()
            .map(|(i, &(nodes, speed))| {
                Site::builder(i)
                    .nodes(nodes)
                    .speed(speed)
                    .security_level(0.95)
                    .build()
                    .expect("example sites are valid")
            })
            .collect();
        ScenarioSpec {
            grid: GridSpec::Sites { sites },
            scheduler: SchedulerSpec::MinMin {
                mode: RiskMode::Risky,
            },
            sim: SimConfig::default().with_interval(gridsec_core::Time::new(30.0)),
            scenario: Scenario {
                seed: 4242,
                arrivals: vec![
                    ArrivalPhase {
                        tenant: "batch".into(),
                        start: 0.0,
                        end: 400.0,
                        process: ArrivalProcess::Poisson { rate: 0.08 },
                        width_min: 1,
                        width_max: 2,
                        work_min: 50.0,
                        work_max: 400.0,
                        sd_min: 0.3,
                        sd_max: 0.6,
                    },
                    ArrivalPhase {
                        tenant: "bursty".into(),
                        start: 100.0,
                        end: 300.0,
                        process: ArrivalProcess::Pareto {
                            rate: 0.05,
                            alpha: 1.5,
                        },
                        width_min: 1,
                        width_max: 4,
                        work_min: 20.0,
                        work_max: 150.0,
                        sd_min: 0.3,
                        sd_max: 0.5,
                    },
                ],
                faults: vec![
                    FaultSpec::SiteDown {
                        site: 1,
                        at: 120.0,
                        until: Some(260.0),
                    },
                    FaultSpec::FaultStorm {
                        start: 150.0,
                        end: 350.0,
                        rate: 0.01,
                        mttr: 60.0,
                        sites: None,
                    },
                ],
                trust: vec![
                    TrustSpec::ReRate {
                        at: 180.0,
                        levels: vec![0.9; 4],
                    },
                    TrustSpec::TrustStorm {
                        start: 50.0,
                        end: 380.0,
                        rate: 0.02,
                        jitter: 0.1,
                    },
                ],
                max_jobs: Some(48),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn example_spec_roundtrips() {
        let spec = ExperimentSpec::example();
        let json = serde_json::to_string_pretty(&spec).unwrap();
        let back = ExperimentSpec::from_json(&json).unwrap();
        assert_eq!(back.schedulers.len(), 4);
        let (jobs, grid) = back.workload.build().unwrap();
        assert_eq!(jobs.len(), 500);
        assert_eq!(grid.len(), 20);
    }

    #[test]
    fn schedulers_instantiate() {
        let spec = ExperimentSpec::example();
        let (jobs, grid) = spec.workload.build().unwrap();
        for s in &spec.schedulers {
            let b = s.build(&jobs[..50], &grid).unwrap();
            assert!(!b.name().is_empty());
        }
    }

    #[test]
    fn bad_json_is_an_error() {
        assert!(ExperimentSpec::from_json("{").is_err());
        assert!(ExperimentSpec::from_json("{\"workload\": 5}").is_err());
    }

    #[test]
    fn scenario_spec_roundtrips_and_compiles() {
        let spec = ScenarioSpec::example();
        let json = serde_json::to_string_pretty(&spec).unwrap();
        let back = ScenarioSpec::from_json(&json).unwrap();
        let grid = back.grid.build().unwrap();
        assert_eq!(grid.len(), 4);
        let stream = back.scenario.compile(&grid).unwrap();
        assert!(stream.n_jobs() > 0);
        // The compiled stream is a pure function of (spec, grid).
        let again = spec.scenario.compile(&grid).unwrap();
        assert_eq!(stream.events.len(), again.events.len());
    }

    #[test]
    fn scenario_grid_kinds_build() {
        for grid in [
            GridSpec::Psa {
                config: PsaConfig::default(),
            },
            GridSpec::Nas {
                config: NasConfig::default(),
            },
        ] {
            assert!(grid.build().unwrap().len() >= 12);
        }
        assert!(ScenarioSpec::from_json("{\"grid\": 5}").is_err());
    }

    #[test]
    fn nas_spec_builds() {
        let spec = ExperimentSpec {
            workload: WorkloadSpec::Nas {
                config: NasConfig::default().with_n_jobs(100),
            },
            schedulers: vec![SchedulerSpec::Mct {
                mode: RiskMode::Risky,
            }],
            sim: SimConfig::default(),
        };
        let (jobs, grid) = spec.workload.build().unwrap();
        assert_eq!(jobs.len(), 100);
        assert_eq!(grid.len(), 12);
    }
}
