//! `gridsec` — command-line front end for the GridSec scheduling library.
//!
//! ```console
//! gridsec example-spec > exp.json        # write a starter spec
//! gridsec run exp.json                   # run it, print the comparison
//! gridsec run exp.json --json out.json   # also dump machine-readable results
//! gridsec run exp.json --threads 4       # cap the scheduler worker pool
//! gridsec generate psa 1000 > psa.swf    # emit a workload as SWF
//! gridsec generate nas 16000 > nas.swf
//! gridsec serve exp.json --bind 127.0.0.1:7070   # online daemon (NDJSON/TCP)
//! ```

mod spec;

use gridsec_serve::{
    AutoscaleConfig, ClockMode, Daemon, DaemonOptions, OnlineSession, SessionFactory,
    ShardPersistence, ShardSpec,
};
use gridsec_sim::{simulate, ScenarioRunner, ShardPlan};
use gridsec_stga::SharedHistory;
use gridsec_workloads::{swf, NasConfig, PsaConfig};
use spec::{ExperimentSpec, ScenarioSpec};

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if let Err(msg) = apply_threads_flag(&mut args) {
        eprintln!("error: {msg}");
        std::process::exit(2);
    }
    let code = match args.first().map(String::as_str) {
        Some("run") => cmd_run(&args[1..]),
        Some("example-spec") => cmd_example_spec(),
        Some("example-scenario") => cmd_example_scenario(),
        Some("generate") => cmd_generate(&args[1..]),
        Some("serve") => cmd_serve(&args[1..]),
        Some("trace-dump") => cmd_trace_dump(&args[1..]),
        Some("chaos") => cmd_chaos(&args[1..]),
        Some("--help") | Some("-h") | None => {
            print_usage();
            0
        }
        Some(other) => {
            eprintln!("error: unknown command `{other}`");
            print_usage();
            2
        }
    };
    std::process::exit(code);
}

fn print_usage() {
    eprintln!(
        "usage:\n  gridsec run <spec.json> [--json <out.json>]\n  \
         gridsec example-spec\n  gridsec example-scenario\n  \
         gridsec generate <psa|nas> <n_jobs> [seed]\n  \
         gridsec serve <spec.json> [--bind <addr>] [--virtual-clock] [--shards <n>]\n\
         \x20             [--state <prefix>] [--max-pending <n>] [--autoscale]\n\
         \x20             [--autoscale-<knob> <n>]\n  \
         gridsec trace-dump <addr>\n  \
         gridsec chaos <scenario.json> [--json <out.json>]\n\
         \n\
         chaos: compiles the scenario's injection program (arrivals, site\n\
         failures/rejoins, trust re-ratings) and replays it through the engine,\n\
         printing the zero-lost-jobs ledger. `example-scenario` writes a starter\n\
         churn spec; the same file drives `loadgen --scenario` against the daemon.\n\
         \n\
         serve: starts the online scheduling daemon (NDJSON frames over TCP) with\n\
         the spec's grid and *first* scheduler; jobs arrive via `submit` frames.\n\
         --bind defaults to 127.0.0.1:0 (ephemeral; the bound address is printed).\n\
         --virtual-clock batches by submitted arrival times instead of wall time.\n\
         --shards <n> partitions the grid into n site-disjoint shards, each with\n\
         \x20            its own scheduler on its own thread (default 1).\n\
         --state <prefix> persists each shard's STGA history table to\n\
         \x20            <prefix>.shard<k>.json at drain/shutdown and reloads on boot.\n\
         --max-pending <n> bounds each shard's pending queue (busy frames past it).\n\
         --metrics-addr <addr> serves a plaintext Prometheus-style exposition page\n\
         \x20            over TCP (write-on-connect; scrape with curl or nc).\n\
         --io-threads <n> event-loop threads multiplexing all client sockets\n\
         \x20            (default: a small pool sized from available parallelism;\n\
         \x20            connections never get threads of their own).\n\
         --idle-timeout-ms <n> reap connections silent this long (half-open\n\
         \x20            peers; default off).\n\
         --flight-dump <path> writes an NDJSON flight-recorder dump on rejected\n\
         \x20            reshards (post-barrier build failures).\n\
         The daemon is elastic: `reshard` frames repartition the grid live, and\n\
         --autoscale splits hot shards / merges cold ones automatically. Knobs\n\
         (each `--autoscale-<knob> <n>` implies --autoscale): min, max,\n\
         split-pending, split-round-micros, merge-pending, patience, interval-ms.\n\
         \n\
         trace-dump: pulls a flight-recorder snapshot from a live daemon over the\n\
         wire (a `trace_dump` frame) and prints it as NDJSON, one span/event per\n\
         line, oldest first.\n\
         \n\
         global options:\n  --threads <n>   worker threads for parallel scheduler sections\n  \
         \x20               (default: RAYON_NUM_THREADS or all available cores)"
    );
}

fn cmd_serve(args: &[String]) -> i32 {
    let Some(path) = args.first().filter(|a| !a.starts_with("--")) else {
        eprintln!("error: `serve` needs a spec path");
        return 2;
    };
    let mut bind = "127.0.0.1:0".to_string();
    let mut clock = ClockMode::WallClock;
    let mut n_shards = 1usize;
    let mut state: Option<String> = None;
    let mut max_pending: Option<usize> = None;
    let mut metrics_addr: Option<String> = None;
    let mut flight_dump: Option<String> = None;
    let mut io_threads: Option<usize> = None;
    let mut idle_timeout: Option<std::time::Duration> = None;
    let mut autoscale = false;
    let mut autoscale_cfg = AutoscaleConfig::default();
    let mut i = 1;
    while i < args.len() {
        let value = |name: &str| -> Result<String, String> {
            args.get(i + 1)
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        // `--autoscale-<knob> <n>`: tune one autoscaler threshold (and
        // turn the autoscaler on, like bare `--autoscale`).
        if let Some(knob) = args[i].strip_prefix("--autoscale-") {
            let parsed = value(&args[i]).ok().and_then(|v| v.parse::<u64>().ok());
            let Some(n) = parsed else {
                eprintln!("error: {} needs a non-negative integer", args[i]);
                return 2;
            };
            match knob {
                "min" => autoscale_cfg.min_shards = n as usize,
                "max" => autoscale_cfg.max_shards = n as usize,
                "split-pending" => autoscale_cfg.split_pending = n as usize,
                "split-round-micros" => autoscale_cfg.split_round_micros = n,
                "merge-pending" => autoscale_cfg.merge_pending = n as usize,
                "patience" => autoscale_cfg.patience = n as usize,
                "interval-ms" => autoscale_cfg.interval = std::time::Duration::from_millis(n),
                other => {
                    eprintln!("error: unknown autoscale knob `--autoscale-{other}`");
                    return 2;
                }
            }
            autoscale = true;
            i += 2;
            continue;
        }
        match args[i].as_str() {
            "--autoscale" => {
                autoscale = true;
                i += 1;
            }
            "--bind" => match value("--bind") {
                Ok(b) => {
                    bind = b;
                    i += 2;
                }
                Err(e) => {
                    eprintln!("error: {e}");
                    return 2;
                }
            },
            "--virtual-clock" => {
                clock = ClockMode::Virtual;
                i += 1;
            }
            "--shards" => match value("--shards").map(|v| v.parse::<usize>()) {
                Ok(Ok(n)) if n >= 1 => {
                    n_shards = n;
                    i += 2;
                }
                _ => {
                    eprintln!("error: --shards needs a positive integer");
                    return 2;
                }
            },
            "--state" => match value("--state") {
                Ok(p) => {
                    state = Some(p);
                    i += 2;
                }
                Err(e) => {
                    eprintln!("error: {e}");
                    return 2;
                }
            },
            "--metrics-addr" => match value("--metrics-addr") {
                Ok(a) => {
                    metrics_addr = Some(a);
                    i += 2;
                }
                Err(e) => {
                    eprintln!("error: {e}");
                    return 2;
                }
            },
            "--flight-dump" => match value("--flight-dump") {
                Ok(p) => {
                    flight_dump = Some(p);
                    i += 2;
                }
                Err(e) => {
                    eprintln!("error: {e}");
                    return 2;
                }
            },
            "--max-pending" => match value("--max-pending").map(|v| v.parse::<usize>()) {
                Ok(Ok(n)) if n >= 1 => {
                    max_pending = Some(n);
                    i += 2;
                }
                _ => {
                    eprintln!("error: --max-pending needs a positive integer");
                    return 2;
                }
            },
            "--io-threads" => match value("--io-threads").map(|v| v.parse::<usize>()) {
                Ok(Ok(n)) if n >= 1 => {
                    io_threads = Some(n);
                    i += 2;
                }
                _ => {
                    eprintln!("error: --io-threads needs a positive integer");
                    return 2;
                }
            },
            "--idle-timeout-ms" => match value("--idle-timeout-ms").map(|v| v.parse::<u64>()) {
                Ok(Ok(n)) if n >= 1 => {
                    idle_timeout = Some(std::time::Duration::from_millis(n));
                    i += 2;
                }
                _ => {
                    eprintln!("error: --idle-timeout-ms needs a positive integer");
                    return 2;
                }
            },
            other => {
                eprintln!("error: unknown serve option `{other}`");
                return 2;
            }
        }
    }
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: cannot read {path}: {e}");
            return 1;
        }
    };
    let spec = match ExperimentSpec::from_json(&text) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: {e}");
            return 1;
        }
    };
    let (jobs, grid) = match spec.workload.build() {
        Ok(x) => x,
        Err(e) => {
            eprintln!("error: {e}");
            return 1;
        }
    };
    let Some(sspec) = spec.schedulers.first() else {
        eprintln!("error: the spec lists no schedulers");
        return 1;
    };
    if state.is_some() && !sspec.is_stga() {
        eprintln!("note: --state only persists STGA history tables; ignored for this scheduler");
    }
    let plan = match ShardPlan::contiguous(&grid, n_shards) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("error: {e}");
            return 1;
        }
    };
    // One scheduler per shard, each over its subgrid. The spec's workload
    // seeds STGA training (restricted to jobs that fit the shard);
    // serving traffic comes in over the wire.
    let mut shards = Vec::with_capacity(n_shards);
    let mut name = String::new();
    for k in 0..n_shards {
        let sub = match plan.subgrid(&grid, k) {
            Ok(g) => g,
            Err(e) => {
                eprintln!("error: {e}");
                return 1;
            }
        };
        let shard_jobs: Vec<gridsec_core::Job> = jobs
            .iter()
            .filter(|j| sub.sites().any(|s| s.fits_width(j.width)))
            .cloned()
            .collect();
        // Restore the shard's history table when a state file exists.
        let state_path = state
            .as_ref()
            .map(|p| gridsec_serve::shard_state_path(std::path::Path::new(p), k));
        let history = if sspec.is_stga() {
            match &state_path {
                Some(p) if p.exists() => match std::fs::read_to_string(p)
                    .map_err(|e| e.to_string())
                    .and_then(|t| SharedHistory::from_json(&t).map_err(|e| e.to_string()))
                {
                    Ok(h) => {
                        println!(
                            "gridsec-serve: shard {k}: restored {} history entries from {}",
                            h.len(),
                            p.display()
                        );
                        Some(h)
                    }
                    Err(e) => {
                        eprintln!("error: cannot restore state from {}: {e}", p.display());
                        return 1;
                    }
                },
                Some(_) => Some(SharedHistory::new(stga_capacity(sspec))),
                None => None,
            }
        } else {
            None
        };
        let scheduler = match sspec.build_send_with_history(&shard_jobs, &sub, history.clone()) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("error: shard {k}: {e}");
                return 1;
            }
        };
        name = scheduler.name();
        let session = match OnlineSession::new(sub, scheduler, &spec.sim) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("error: shard {k}: {e}");
                return 1;
            }
        };
        let snapshot = history
            .clone()
            .map(|h| Box::new(move || h.to_json()) as Box<dyn Fn() -> String + Send>);
        let persist = match (state_path, history) {
            (Some(path), Some(history)) => Some(ShardPersistence {
                path,
                snapshot: Box::new(move || history.to_json()),
            }),
            _ => None,
        };
        shards.push(ShardSpec {
            session,
            persist,
            history: snapshot,
        });
    }
    // The session factory rebuilds shards after a `reshard` frame (or an
    // autoscaler action): same scheduler spec over the new subgrid, STGA
    // history tables merged from the contributing old shards, per-shard
    // persistence re-pointed at `<prefix>.shard<k>.json`.
    let factory: SessionFactory = {
        let sspec = sspec.clone();
        let sim = spec.sim.clone();
        let jobs = jobs.clone();
        let state = state.clone();
        Box::new(move |ctx| {
            let shard = ctx.shard;
            let shard_jobs: Vec<gridsec_core::Job> = jobs
                .iter()
                .filter(|j| ctx.subgrid.sites().any(|s| s.fits_width(j.width)))
                .cloned()
                .collect();
            let history = if sspec.is_stga() {
                Some(if ctx.history_sources.is_empty() {
                    SharedHistory::new(stga_capacity(&sspec))
                } else {
                    SharedHistory::merge_json(&ctx.history_sources).map_err(|e| e.to_string())?
                })
            } else {
                None
            };
            let scheduler = sspec
                .build_send_with_history(&shard_jobs, &ctx.subgrid, history.clone())
                .map_err(|e| e.to_string())?;
            let session = OnlineSession::restore(ctx.subgrid, scheduler, &sim, ctx.seed)
                .map_err(|e| e.to_string())?;
            let snapshot = history
                .clone()
                .map(|h| Box::new(move || h.to_json()) as Box<dyn Fn() -> String + Send>);
            let persist = match (&state, history) {
                (Some(prefix), Some(h)) => Some(ShardPersistence {
                    path: gridsec_serve::shard_state_path(std::path::Path::new(prefix), shard),
                    snapshot: Box::new(move || h.to_json()),
                }),
                _ => None,
            };
            Ok(ShardSpec {
                session,
                persist,
                history: snapshot,
            })
        })
    };
    let daemon = match Daemon::spawn_elastic(
        grid,
        plan,
        shards,
        factory,
        autoscale.then_some(autoscale_cfg),
        &bind,
        DaemonOptions {
            clock,
            max_pending,
            metrics_addr: metrics_addr.clone(),
            state_prefix: state.as_ref().map(std::path::PathBuf::from),
            flight_dump: flight_dump.as_ref().map(std::path::PathBuf::from),
            io_threads: io_threads.unwrap_or(0), // 0 = auto-size the pool
            idle_timeout,
            ..DaemonOptions::default()
        },
    ) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("error: cannot bind {bind}: {e}");
            return 1;
        }
    };
    let elastic = if autoscale {
        format!(
            ", autoscaling {}–{} shards",
            autoscale_cfg.min_shards, autoscale_cfg.max_shards
        )
    } else {
        String::new()
    };
    println!(
        "gridsec-serve: {name} × {n_shards} shard(s) on {} ({:?} clock, policy {:?}{elastic}); \
         send NDJSON frames, {{\"type\":\"shutdown\"}} to stop",
        daemon.addr(),
        clock,
        spec.sim.batch_policy,
    );
    if let Some(m) = daemon.metrics_addr() {
        println!("gridsec-serve: metrics exposition on {m} (plaintext, scrape with curl/nc)");
    }
    daemon.join();
    0
}

/// `gridsec trace-dump <addr>`: pull the daemon's flight-recorder ring
/// over the wire and print it as NDJSON (one span/event per line).
fn cmd_trace_dump(args: &[String]) -> i32 {
    let Some(addr) = args.first() else {
        eprintln!("error: `trace-dump` needs a daemon address (host:port)");
        return 2;
    };
    let addr: std::net::SocketAddr = match addr.parse() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: invalid address {addr}: {e}");
            return 2;
        }
    };
    let mut client = match gridsec_serve::Client::connect(addr) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: cannot connect to {addr}: {e}");
            return 1;
        }
    };
    match client.send(&gridsec_serve::Request::TraceDump) {
        Ok(gridsec_serve::Response::TraceDump { events }) => {
            eprintln!("gridsec trace-dump: {} events from {addr}", events.len());
            for ev in &events {
                match serde_json::to_string(ev) {
                    Ok(line) => println!("{line}"),
                    Err(e) => {
                        eprintln!("error: cannot serialise event: {e}");
                        return 1;
                    }
                }
            }
            0
        }
        Ok(other) => {
            eprintln!("error: unexpected response: {other:?}");
            1
        }
        Err(e) => {
            eprintln!("error: trace-dump failed: {e}");
            1
        }
    }
}

/// The history-table capacity an STGA spec would open, for pre-sizing a
/// fresh shard table that the daemon then persists.
fn stga_capacity(sspec: &spec::SchedulerSpec) -> usize {
    match sspec {
        spec::SchedulerSpec::Stga { params, .. } => params.table_capacity,
        _ => unreachable!("only called for STGA specs"),
    }
}

/// Extracts a global `--threads <n>` option (any position) and sizes the
/// rayon pool accordingly before any parallel work starts.
fn apply_threads_flag(args: &mut Vec<String>) -> Result<(), String> {
    let Some(i) = args.iter().position(|a| a == "--threads") else {
        return Ok(());
    };
    if i + 1 >= args.len() {
        return Err("--threads needs a value".into());
    }
    let n: usize = args[i + 1]
        .parse()
        .map_err(|_| "--threads must be a positive integer".to_string())?;
    if n == 0 {
        return Err("--threads must be a positive integer".into());
    }
    args.drain(i..=i + 1);
    rayon::ThreadPoolBuilder::new()
        .num_threads(n)
        .build_global()
        .map_err(|e| e.to_string())
}

fn cmd_run(args: &[String]) -> i32 {
    let Some(path) = args.first() else {
        eprintln!("error: `run` needs a spec path");
        return 2;
    };
    let json_out = match args.iter().position(|a| a == "--json") {
        Some(i) => match args.get(i + 1) {
            Some(p) => Some(p.clone()),
            None => {
                eprintln!("error: --json needs a path");
                return 2;
            }
        },
        None => None,
    };
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: cannot read {path}: {e}");
            return 1;
        }
    };
    let spec = match ExperimentSpec::from_json(&text) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: {e}");
            return 1;
        }
    };
    let (jobs, grid) = match spec.workload.build() {
        Ok(x) => x,
        Err(e) => {
            eprintln!("error: {e}");
            return 1;
        }
    };
    println!(
        "workload: {} jobs on {} sites; sim seed {}",
        jobs.len(),
        grid.len(),
        spec.sim.seed
    );
    let mut outputs = Vec::new();
    for sspec in &spec.schedulers {
        let mut scheduler = match sspec.build(&jobs, &grid) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("error: {e}");
                return 1;
            }
        };
        match simulate(&jobs, &grid, scheduler.as_mut(), &spec.sim) {
            Ok(out) => {
                println!("{}", out.summary());
                outputs.push(out);
            }
            Err(e) => {
                eprintln!("error: {} failed: {e}", scheduler.name());
                return 1;
            }
        }
    }
    if let Some(p) = json_out {
        match serde_json::to_string_pretty(&outputs) {
            Ok(s) => {
                if let Err(e) = std::fs::write(&p, s) {
                    eprintln!("error: cannot write {p}: {e}");
                    return 1;
                }
                println!("[wrote {p}]");
            }
            Err(e) => {
                eprintln!("error: serialisation failed: {e}");
                return 1;
            }
        }
    }
    0
}

fn cmd_chaos(args: &[String]) -> i32 {
    let Some(path) = args.first() else {
        eprintln!("error: `chaos` needs a scenario spec path");
        return 2;
    };
    let json_out = match args.iter().position(|a| a == "--json") {
        Some(i) => match args.get(i + 1) {
            Some(p) => Some(p.clone()),
            None => {
                eprintln!("error: --json needs a path");
                return 2;
            }
        },
        None => None,
    };
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: cannot read {path}: {e}");
            return 1;
        }
    };
    let spec = match ScenarioSpec::from_json(&text) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: {e}");
            return 1;
        }
    };
    let grid = match spec.grid.build() {
        Ok(g) => g,
        Err(e) => {
            eprintln!("error: {e}");
            return 1;
        }
    };
    let stream = match spec.scenario.compile(&grid) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: {e}");
            return 1;
        }
    };
    let scheduler = match spec.scheduler.build_send(&[], &grid) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: {e}");
            return 1;
        }
    };
    let name = scheduler.name();
    println!(
        "chaos: {} injections ({} arrivals) on {} sites, scheduler {name}, seed {}",
        stream.events.len(),
        stream.n_jobs(),
        grid.len(),
        spec.scenario.seed,
    );
    let runner = match ScenarioRunner::new(grid, scheduler, &spec.sim) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {e}");
            return 1;
        }
    };
    let outcome = match runner.run(&stream) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: replay failed: {e}");
            return 1;
        }
    };
    println!(
        "  jobs: {} generated, {} submitted, {} scheduled, {} requeued, {} pending, {} rejected",
        outcome.jobs_generated,
        outcome.jobs_submitted,
        outcome.jobs_scheduled,
        outcome.jobs_requeued,
        outcome.pending,
        outcome.rejected.len(),
    );
    println!(
        "  churn: {} site failures, {} rejoins; {} rounds, makespan {}",
        outcome.sites_failed, outcome.sites_rejoined, outcome.rounds, outcome.max_completion,
    );
    if let Some(p) = json_out {
        // Alongside the raw outcome, emit a `metrics` block in the same
        // schema the daemon's `query metrics` frame uses — including the
        // reshard counters (always zero for an offline engine replay) —
        // so one consumer parses both.
        let round_nanos_hist = {
            let h = gridsec_obs::Histogram::new();
            for &n in &outcome.round_nanos {
                h.record(n);
            }
            h.snapshot()
        };
        let metrics = gridsec_serve::ServeMetrics {
            jobs_submitted: outcome.jobs_submitted,
            jobs_scheduled: outcome.jobs_scheduled,
            pending: outcome.pending,
            rounds: outcome.rounds,
            batch_sizes: Vec::new(),
            round_nanos: outcome.round_nanos.clone(),
            round_nanos_hist,
            batch_size_hist: gridsec_obs::HistogramSnapshot::default(),
            scheduler_seconds: outcome.round_nanos.iter().sum::<u64>() as f64 / 1e9,
            virtual_now: outcome.max_completion,
            max_completion: outcome.max_completion,
            sites_failed: outcome.sites_failed,
            sites_rejoined: outcome.sites_rejoined,
            jobs_requeued: outcome.jobs_requeued,
            busy_rejections: 0,
            reshards_completed: 0,
            jobs_migrated: 0,
        };
        #[derive(serde::Serialize)]
        struct ChaosReport {
            outcome: gridsec_sim::ScenarioOutcome,
            metrics: gridsec_serve::ServeMetrics,
        }
        let doc = ChaosReport {
            outcome: outcome.clone(),
            metrics,
        };
        match serde_json::to_string_pretty(&doc) {
            Ok(s) => {
                if let Err(e) = std::fs::write(&p, s) {
                    eprintln!("error: cannot write {p}: {e}");
                    return 1;
                }
                println!("[wrote {p}]");
            }
            Err(e) => {
                eprintln!("error: serialisation failed: {e}");
                return 1;
            }
        }
    }
    if outcome.fully_accounted() {
        println!("  ledger: balanced (every job scheduled, pending, or typed-rejected)");
        0
    } else {
        eprintln!("error: ledger does NOT balance — jobs were lost");
        1
    }
}

fn cmd_example_scenario() -> i32 {
    let spec = ScenarioSpec::example();
    println!(
        "{}",
        serde_json::to_string_pretty(&spec).expect("example scenario serialises")
    );
    0
}

fn cmd_example_spec() -> i32 {
    let spec = ExperimentSpec::example();
    println!(
        "{}",
        serde_json::to_string_pretty(&spec).expect("example spec serialises")
    );
    0
}

fn cmd_generate(args: &[String]) -> i32 {
    let (Some(kind), Some(n)) = (args.first(), args.get(1)) else {
        eprintln!("error: `generate` needs <psa|nas> <n_jobs>");
        return 2;
    };
    let n: usize = match n.parse() {
        Ok(v) => v,
        Err(_) => {
            eprintln!("error: n_jobs must be an integer");
            return 2;
        }
    };
    let seed: u64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(2005);
    let jobs = match kind.as_str() {
        "psa" => match PsaConfig::default()
            .with_n_jobs(n)
            .with_seed(seed)
            .generate()
        {
            Ok(w) => w.jobs,
            Err(e) => {
                eprintln!("error: {e}");
                return 1;
            }
        },
        "nas" => match NasConfig::default()
            .with_n_jobs(n)
            .with_seed(seed)
            .generate()
        {
            Ok(w) => w.jobs,
            Err(e) => {
                eprintln!("error: {e}");
                return 1;
            }
        },
        other => {
            eprintln!("error: unknown workload kind `{other}`");
            return 2;
        }
    };
    print!("{}", swf::write(&jobs));
    0
}
