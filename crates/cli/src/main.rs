//! `gridsec` — command-line front end for the GridSec scheduling library.
//!
//! ```console
//! gridsec example-spec > exp.json        # write a starter spec
//! gridsec run exp.json                   # run it, print the comparison
//! gridsec run exp.json --json out.json   # also dump machine-readable results
//! gridsec run exp.json --threads 4       # cap the scheduler worker pool
//! gridsec generate psa 1000 > psa.swf    # emit a workload as SWF
//! gridsec generate nas 16000 > nas.swf
//! gridsec serve exp.json --bind 127.0.0.1:7070   # online daemon (NDJSON/TCP)
//! ```

mod spec;

use gridsec_serve::{ClockMode, Daemon, DaemonOptions, OnlineSession};
use gridsec_sim::simulate;
use gridsec_workloads::{swf, NasConfig, PsaConfig};
use spec::ExperimentSpec;

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if let Err(msg) = apply_threads_flag(&mut args) {
        eprintln!("error: {msg}");
        std::process::exit(2);
    }
    let code = match args.first().map(String::as_str) {
        Some("run") => cmd_run(&args[1..]),
        Some("example-spec") => cmd_example_spec(),
        Some("generate") => cmd_generate(&args[1..]),
        Some("serve") => cmd_serve(&args[1..]),
        Some("--help") | Some("-h") | None => {
            print_usage();
            0
        }
        Some(other) => {
            eprintln!("error: unknown command `{other}`");
            print_usage();
            2
        }
    };
    std::process::exit(code);
}

fn print_usage() {
    eprintln!(
        "usage:\n  gridsec run <spec.json> [--json <out.json>]\n  \
         gridsec example-spec\n  gridsec generate <psa|nas> <n_jobs> [seed]\n  \
         gridsec serve <spec.json> [--bind <addr>] [--virtual-clock]\n\
         \n\
         serve: starts the online scheduling daemon (NDJSON frames over TCP) with\n\
         the spec's grid and *first* scheduler; jobs arrive via `submit` frames.\n\
         --bind defaults to 127.0.0.1:0 (ephemeral; the bound address is printed).\n\
         --virtual-clock batches by submitted arrival times instead of wall time.\n\
         \n\
         global options:\n  --threads <n>   worker threads for parallel scheduler sections\n  \
         \x20               (default: RAYON_NUM_THREADS or all available cores)"
    );
}

fn cmd_serve(args: &[String]) -> i32 {
    let Some(path) = args.first().filter(|a| !a.starts_with("--")) else {
        eprintln!("error: `serve` needs a spec path");
        return 2;
    };
    let mut bind = "127.0.0.1:0".to_string();
    let mut clock = ClockMode::WallClock;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--bind" => match args.get(i + 1) {
                Some(b) => {
                    bind = b.clone();
                    i += 2;
                }
                None => {
                    eprintln!("error: --bind needs an address");
                    return 2;
                }
            },
            "--virtual-clock" => {
                clock = ClockMode::Virtual;
                i += 1;
            }
            other => {
                eprintln!("error: unknown serve option `{other}`");
                return 2;
            }
        }
    }
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: cannot read {path}: {e}");
            return 1;
        }
    };
    let spec = match ExperimentSpec::from_json(&text) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: {e}");
            return 1;
        }
    };
    let (jobs, grid) = match spec.workload.build() {
        Ok(x) => x,
        Err(e) => {
            eprintln!("error: {e}");
            return 1;
        }
    };
    let Some(sspec) = spec.schedulers.first() else {
        eprintln!("error: the spec lists no schedulers");
        return 1;
    };
    // The spec's workload seeds STGA training; serving traffic comes in
    // over the wire.
    let scheduler = match sspec.build_send(&jobs, &grid) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: {e}");
            return 1;
        }
    };
    let name = scheduler.name();
    let session = match OnlineSession::new(grid, scheduler, &spec.sim) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: {e}");
            return 1;
        }
    };
    let daemon = match Daemon::spawn(
        session,
        &bind,
        DaemonOptions {
            clock,
            ..DaemonOptions::default()
        },
    ) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("error: cannot bind {bind}: {e}");
            return 1;
        }
    };
    println!(
        "gridsec-serve: {name} on {} ({:?} clock, policy {:?}); send NDJSON frames, \
         {{\"type\":\"shutdown\"}} to stop",
        daemon.addr(),
        clock,
        spec.sim.batch_policy,
    );
    daemon.join();
    0
}

/// Extracts a global `--threads <n>` option (any position) and sizes the
/// rayon pool accordingly before any parallel work starts.
fn apply_threads_flag(args: &mut Vec<String>) -> Result<(), String> {
    let Some(i) = args.iter().position(|a| a == "--threads") else {
        return Ok(());
    };
    if i + 1 >= args.len() {
        return Err("--threads needs a value".into());
    }
    let n: usize = args[i + 1]
        .parse()
        .map_err(|_| "--threads must be a positive integer".to_string())?;
    if n == 0 {
        return Err("--threads must be a positive integer".into());
    }
    args.drain(i..=i + 1);
    rayon::ThreadPoolBuilder::new()
        .num_threads(n)
        .build_global()
        .map_err(|e| e.to_string())
}

fn cmd_run(args: &[String]) -> i32 {
    let Some(path) = args.first() else {
        eprintln!("error: `run` needs a spec path");
        return 2;
    };
    let json_out = match args.iter().position(|a| a == "--json") {
        Some(i) => match args.get(i + 1) {
            Some(p) => Some(p.clone()),
            None => {
                eprintln!("error: --json needs a path");
                return 2;
            }
        },
        None => None,
    };
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: cannot read {path}: {e}");
            return 1;
        }
    };
    let spec = match ExperimentSpec::from_json(&text) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: {e}");
            return 1;
        }
    };
    let (jobs, grid) = match spec.workload.build() {
        Ok(x) => x,
        Err(e) => {
            eprintln!("error: {e}");
            return 1;
        }
    };
    println!(
        "workload: {} jobs on {} sites; sim seed {}",
        jobs.len(),
        grid.len(),
        spec.sim.seed
    );
    let mut outputs = Vec::new();
    for sspec in &spec.schedulers {
        let mut scheduler = match sspec.build(&jobs, &grid) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("error: {e}");
                return 1;
            }
        };
        match simulate(&jobs, &grid, scheduler.as_mut(), &spec.sim) {
            Ok(out) => {
                println!("{}", out.summary());
                outputs.push(out);
            }
            Err(e) => {
                eprintln!("error: {} failed: {e}", scheduler.name());
                return 1;
            }
        }
    }
    if let Some(p) = json_out {
        match serde_json::to_string_pretty(&outputs) {
            Ok(s) => {
                if let Err(e) = std::fs::write(&p, s) {
                    eprintln!("error: cannot write {p}: {e}");
                    return 1;
                }
                println!("[wrote {p}]");
            }
            Err(e) => {
                eprintln!("error: serialisation failed: {e}");
                return 1;
            }
        }
    }
    0
}

fn cmd_example_spec() -> i32 {
    let spec = ExperimentSpec::example();
    println!(
        "{}",
        serde_json::to_string_pretty(&spec).expect("example spec serialises")
    );
    0
}

fn cmd_generate(args: &[String]) -> i32 {
    let (Some(kind), Some(n)) = (args.first(), args.get(1)) else {
        eprintln!("error: `generate` needs <psa|nas> <n_jobs>");
        return 2;
    };
    let n: usize = match n.parse() {
        Ok(v) => v,
        Err(_) => {
            eprintln!("error: n_jobs must be an integer");
            return 2;
        }
    };
    let seed: u64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(2005);
    let jobs = match kind.as_str() {
        "psa" => match PsaConfig::default()
            .with_n_jobs(n)
            .with_seed(seed)
            .generate()
        {
            Ok(w) => w.jobs,
            Err(e) => {
                eprintln!("error: {e}");
                return 1;
            }
        },
        "nas" => match NasConfig::default()
            .with_n_jobs(n)
            .with_seed(seed)
            .generate()
        {
            Ok(w) => w.jobs,
            Err(e) => {
                eprintln!("error: {e}");
                return 1;
            }
        },
        other => {
            eprintln!("error: unknown workload kind `{other}`");
            return 2;
        }
    };
    print!("{}", swf::write(&jobs));
    0
}
