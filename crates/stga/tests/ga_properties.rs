//! Property tests for the GA machinery: operators preserve feasibility,
//! elitism makes best-fitness monotone, the history table honours its
//! bounds, and Eq. 2 similarity behaves like a similarity.

use gridsec_core::etc::{EtcMatrix, NodeAvailability};
use gridsec_core::rng::{stream, Stream};
use gridsec_core::Time;
use gridsec_heuristics::common::MapCtx;
use gridsec_stga::chromosome::Chromosome;
use gridsec_stga::fitness::{evaluate, FitnessKind};
use gridsec_stga::ga::evolve;
use gridsec_stga::history::{similarity, BatchSignature, HistoryTable};
use gridsec_stga::ops::{crossover, mutate};
use gridsec_stga::GaParams;
use proptest::prelude::*;

fn arb_candidates() -> impl Strategy<Value = Vec<Vec<usize>>> {
    (1usize..10, 2usize..6).prop_flat_map(|(n, m)| {
        prop::collection::vec(
            prop::collection::btree_set(0usize..m, 1..=m).prop_map(|s| s.into_iter().collect()),
            n..=n,
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn operators_preserve_feasibility(cands in arb_candidates(), seed in 0u64..500) {
        let mut rng = stream(seed, Stream::Genetic);
        let a = Chromosome::random(&cands, &mut rng);
        let b = Chromosome::random(&cands, &mut rng);
        let (c, d) = crossover(&a, &b, &mut rng);
        prop_assert!(c.is_feasible(&cands));
        prop_assert!(d.is_feasible(&cands));
        let mut e = c.clone();
        mutate(&mut e, &cands, &mut rng);
        prop_assert!(e.is_feasible(&cands));
    }

    #[test]
    fn repair_always_yields_feasible(
        cands in arb_candidates(),
        genes in prop::collection::vec(0u16..50, 0..20),
        seed in 0u64..500,
    ) {
        let mut rng = stream(seed, Stream::Genetic);
        let c = Chromosome::from_genes(genes);
        let fixed = c.repair(&cands, &mut rng);
        prop_assert!(fixed.is_feasible(&cands));
    }

    #[test]
    fn evolution_never_worsens_with_elitism(
        n in 2usize..8,
        m in 2usize..5,
        seed in 0u64..200,
    ) {
        let data: Vec<f64> = (0..n * m).map(|i| 10.0 + (i * 7 % 90) as f64).collect();
        let ctx = MapCtx {
            etc: EtcMatrix::from_raw(n, m, data),
            widths: vec![1; n],
            arrivals: vec![Time::ZERO; n],
            candidates: vec![(0..m).collect(); n],
            now: Time::ZERO,
            commit_order: vec![],
        };
        let avail = vec![NodeAvailability::new(1, Time::ZERO); m];
        let params = GaParams::default()
            .with_population(20)
            .with_generations(15)
            .with_seed(seed);
        let mut rng = stream(seed, Stream::Genetic);
        let r = evolve(&ctx, &avail, vec![], &params, FitnessKind::Makespan, None, &mut rng);
        prop_assert!(r.trajectory.windows(2).all(|w| w[1] <= w[0] + 1e-12));
        prop_assert!(r.best.is_feasible(&ctx.candidates));
        let check = evaluate(&ctx, &avail, &r.best, FitnessKind::Makespan, None);
        prop_assert!((check - r.best_fitness).abs() < 1e-9);
    }

    #[test]
    fn similarity_is_bounded_symmetric_reflexive(
        a in prop::collection::vec(0.0f64..1_000.0, 0..30),
        b in prop::collection::vec(0.0f64..1_000.0, 0..30),
    ) {
        let sab = similarity(&a, &b);
        let sba = similarity(&b, &a);
        prop_assert!((0.0..=1.0).contains(&sab));
        prop_assert!((sab - sba).abs() < 1e-12);
        prop_assert_eq!(similarity(&a, &a), 1.0);
    }

    #[test]
    fn history_table_never_exceeds_capacity(
        cap in 1usize..20,
        inserts in prop::collection::vec(0.0f64..100.0, 0..60),
    ) {
        let mut t = HistoryTable::new(cap);
        for (i, v) in inserts.iter().enumerate() {
            t.insert(
                BatchSignature {
                    ready_times: vec![*v],
                    etc: vec![*v * 2.0, i as f64],
                    demands: vec![0.7],
                },
                Chromosome::from_genes(vec![0]),
            );
            prop_assert!(t.len() <= cap);
        }
    }

    #[test]
    fn exact_signature_always_hits(
        v in prop::collection::vec(1.0f64..100.0, 1..10),
    ) {
        let mut t = HistoryTable::new(8);
        let sig = BatchSignature {
            ready_times: v.clone(),
            etc: v.iter().map(|x| x * 3.0).collect(),
            demands: vec![0.8; v.len()],
        };
        t.insert(sig.clone(), Chromosome::from_genes(vec![1; v.len()]));
        let hits = t.lookup(&sig, 0.999, 4);
        prop_assert_eq!(hits.len(), 1);
    }
}
