//! Genetic operators (§3): single-point crossover and point mutation.

use crate::chromosome::Chromosome;
use rand::Rng;

/// Single-point crossover: swaps the tails of two chromosomes after a
/// random cut point (paper: "random swapping of two portions of two
/// arbitrarily selected chromosomes").
///
/// Both parents must have equal length ≥ 2; the cut is chosen in
/// `1..len`, so both children differ from their parents whenever the
/// tails differ.
pub fn crossover<R: Rng + ?Sized>(
    a: &Chromosome,
    b: &Chromosome,
    rng: &mut R,
) -> (Chromosome, Chromosome) {
    let mut ca = a.clone();
    let mut cb = b.clone();
    crossover_in_place(&mut ca, &mut cb, rng);
    (ca, cb)
}

/// [`crossover`] on two already-materialised children: swaps the tails of
/// `a` and `b` in place, allocation-free. RNG consumption is identical to
/// `crossover` (one cut draw when `len ≥ 2`, none otherwise), so the GA
/// evolve loop can copy parents into recycled population slots and cross
/// them there without changing any result.
pub fn crossover_in_place<R: Rng + ?Sized>(a: &mut Chromosome, b: &mut Chromosome, rng: &mut R) {
    let _ = crossover_in_place_tracked(a, b, rng);
}

/// [`crossover_in_place`] that also reports the cut point, or `None` when
/// the chromosomes are too short to cross. Both children differ from
/// their respective parents only at genes `cut..len` — the touched-gene
/// bound the GA hands to the kernel's delta evaluation. RNG consumption
/// is identical to the untracked form (which delegates here).
pub fn crossover_in_place_tracked<R: Rng + ?Sized>(
    a: &mut Chromosome,
    b: &mut Chromosome,
    rng: &mut R,
) -> Option<usize> {
    assert_eq!(a.len(), b.len(), "crossover needs equal-length parents");
    let n = a.len();
    if n < 2 {
        return None;
    }
    let cut = rng.gen_range(1..n);
    for i in cut..n {
        std::mem::swap(&mut a.genes_mut()[i], &mut b.genes_mut()[i]);
    }
    Some(cut)
}

/// Point mutation: re-draws the site of one random job from its candidate
/// list (paper: "randomly changing the site assignment of a randomly
/// selected job … to some other site").
///
/// When the job has more than one candidate the new gene is guaranteed to
/// differ from the old one.
pub fn mutate<R: Rng + ?Sized>(c: &mut Chromosome, candidates: &[Vec<usize>], rng: &mut R) {
    let _ = mutate_tracked(c, candidates, rng);
}

/// [`mutate`] that also reports which gene changed (`None` when the
/// drawn job had at most one candidate and the chromosome was left
/// untouched) — the second half of the GA's touched-gene tracking. RNG
/// consumption is identical to the untracked form (which delegates here).
pub fn mutate_tracked<R: Rng + ?Sized>(
    c: &mut Chromosome,
    candidates: &[Vec<usize>],
    rng: &mut R,
) -> Option<usize> {
    if c.is_empty() {
        return None;
    }
    let j = rng.gen_range(0..c.len());
    let cand = &candidates[j];
    if cand.len() <= 1 {
        return None;
    }
    let old = c.site_of(j);
    let mut pick = cand[rng.gen_range(0..cand.len())];
    while pick == old {
        pick = cand[rng.gen_range(0..cand.len())];
    }
    c.genes_mut()[j] = pick as u16;
    Some(j)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridsec_core::rng::{stream, Stream};

    #[test]
    fn crossover_swaps_tails() {
        let mut rng = stream(1, Stream::Genetic);
        let a = Chromosome::from_genes(vec![0, 0, 0, 0, 0]);
        let b = Chromosome::from_genes(vec![1, 1, 1, 1, 1]);
        let (c, d) = crossover(&a, &b, &mut rng);
        // Each child is a prefix of one parent + suffix of the other.
        let cut = c.genes().iter().position(|&g| g == 1).unwrap();
        assert!((1..5).contains(&cut));
        assert!(c.genes()[..cut].iter().all(|&g| g == 0));
        assert!(c.genes()[cut..].iter().all(|&g| g == 1));
        assert!(d.genes()[..cut].iter().all(|&g| g == 1));
        assert!(d.genes()[cut..].iter().all(|&g| g == 0));
    }

    #[test]
    fn crossover_preserves_multiset_per_position() {
        let mut rng = stream(2, Stream::Genetic);
        let a = Chromosome::from_genes(vec![0, 1, 2, 3]);
        let b = Chromosome::from_genes(vec![4, 5, 6, 7]);
        let (c, d) = crossover(&a, &b, &mut rng);
        for i in 0..4 {
            let mut got = [c.genes()[i], d.genes()[i]];
            got.sort_unstable();
            let mut want = [a.genes()[i], b.genes()[i]];
            want.sort_unstable();
            assert_eq!(got, want);
        }
    }

    #[test]
    fn in_place_crossover_matches_allocating_crossover() {
        for seed in 0..20 {
            let mut r1 = stream(seed, Stream::Genetic);
            let mut r2 = stream(seed, Stream::Genetic);
            let a = Chromosome::from_genes(vec![0, 1, 2, 3, 4, 5]);
            let b = Chromosome::from_genes(vec![9, 8, 7, 6, 5, 4]);
            let (ca, cb) = crossover(&a, &b, &mut r1);
            let mut da = a.clone();
            let mut db = b.clone();
            crossover_in_place(&mut da, &mut db, &mut r2);
            assert_eq!((da, db), (ca, cb), "seed {seed}");
            // Both paths consumed the same RNG state.
            assert_eq!(r1.gen::<u64>(), r2.gen::<u64>());
        }
    }

    #[test]
    fn crossover_of_singletons_is_identity() {
        let mut rng = stream(3, Stream::Genetic);
        let a = Chromosome::from_genes(vec![0]);
        let b = Chromosome::from_genes(vec![1]);
        let (c, d) = crossover(&a, &b, &mut rng);
        assert_eq!(c, a);
        assert_eq!(d, b);
    }

    #[test]
    fn mutation_changes_exactly_one_gene_when_possible() {
        let mut rng = stream(4, Stream::Genetic);
        let cands = vec![vec![0, 1, 2]; 6];
        for _ in 0..50 {
            let mut c = Chromosome::from_genes(vec![0; 6]);
            let before = c.clone();
            mutate(&mut c, &cands, &mut rng);
            let diff = c
                .genes()
                .iter()
                .zip(before.genes())
                .filter(|(x, y)| x != y)
                .count();
            assert_eq!(diff, 1);
            assert!(c.is_feasible(&cands));
        }
    }

    #[test]
    fn tracked_ops_report_exact_touched_genes() {
        for seed in 0..30 {
            let mut rng = stream(100 + seed, Stream::Genetic);
            let a0 = Chromosome::from_genes(vec![0, 1, 2, 3, 4, 5, 6, 7]);
            let b0 = Chromosome::from_genes(vec![7, 6, 5, 4, 3, 2, 1, 0]);
            let mut a = a0.clone();
            let mut b = b0.clone();
            let cut = crossover_in_place_tracked(&mut a, &mut b, &mut rng).unwrap();
            // Genes before the cut are untouched in both children.
            assert_eq!(a.genes()[..cut], a0.genes()[..cut]);
            assert_eq!(b.genes()[..cut], b0.genes()[..cut]);
            let cands = vec![vec![0usize, 1, 2, 3, 4, 5, 6, 7]; 8];
            let before = a.clone();
            let j = mutate_tracked(&mut a, &cands, &mut rng).unwrap();
            for (i, (x, y)) in a.genes().iter().zip(before.genes()).enumerate() {
                assert_eq!(i == j, x != y, "only the reported gene may change");
            }
        }
    }

    #[test]
    fn mutation_noop_with_single_candidate() {
        let mut rng = stream(5, Stream::Genetic);
        let cands = vec![vec![2]; 3];
        let mut c = Chromosome::from_genes(vec![2, 2, 2]);
        mutate(&mut c, &cands, &mut rng);
        assert_eq!(c.genes(), &[2, 2, 2]);
    }
}
