//! Fitness evaluation: the completion time of the schedule a chromosome
//! encodes (§3: "the fitness value … is the completion time of the
//! schedule represented by the solution"; smallest is best).
//!
//! Many schedules share the same makespan (only the site finishing last
//! matters), so the fitness adds a *flow* term — the mean job completion
//! time scaled by a configurable weight
//! ([`GaParams::flow_weight`](crate::GaParams), default
//! [`DEFAULT_FLOW_WEIGHT`]) — that steers the GA toward schedules that
//! also finish the *other* jobs early. At the default weight it acts as a
//! pure tie-breaker; larger weights trade batch makespan for throughput,
//! which matters in the on-line setting (ablation `flow_weight` in
//! `gridsec-bench`).

use crate::chromosome::Chromosome;
use gridsec_core::etc::NodeAvailability;
use gridsec_core::Time;
use gridsec_heuristics::common::MapCtx;
use serde::{Deserialize, Serialize};

/// Default weight of the mean-completion (flow) term relative to the
/// makespan: small enough to act as a pure tie-breaker.
pub const DEFAULT_FLOW_WEIGHT: f64 = 1e-4;

/// Which quantity the GA minimises.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum FitnessKind {
    /// Batch makespan (the paper's fitness), with the mean-completion
    /// tie-break.
    #[default]
    Makespan,
    /// Batch makespan with each risky execution inflated by its expected
    /// number of attempts `1/(1−P_fail)` — a risk-aware ablation variant
    /// (not used by the paper's base STGA).
    ExpectedMakespan,
}

/// Security context needed by [`FitnessKind::ExpectedMakespan`]: per-job ×
/// per-site expected-attempt multipliers (1.0 where `SD ≤ SL`).
#[derive(Debug, Clone)]
pub struct RiskWeights {
    n_sites: usize,
    weights: Vec<f64>,
}

impl RiskWeights {
    /// Builds the multiplier table from per-job demands and per-site
    /// levels under a security model.
    pub fn build(model: &gridsec_core::SecurityModel, sds: &[f64], sls: &[f64]) -> RiskWeights {
        let n_sites = sls.len();
        let mut weights = Vec::with_capacity(sds.len() * n_sites);
        for &sd in sds {
            for &sl in sls {
                let w = model.expected_attempts(sd, sl);
                weights.push(if w.is_finite() { w } else { 1e9 });
            }
        }
        RiskWeights { n_sites, weights }
    }

    /// Multiplier for batch job `j` on site `s`.
    #[inline]
    pub fn get(&self, j: usize, s: usize) -> f64 {
        self.weights[j * self.n_sites + s]
    }
}

/// Memoised [`RiskWeights`] keyed by a fingerprint of the security
/// snapshot (model λ, per-site security levels via
/// [`Grid::security_fingerprint`](gridsec_core::Grid::security_fingerprint),
/// per-job demands).
///
/// Risk-aware schedulers previously rebuilt the full `[job × site]`
/// multiplier table on every invocation even when trust and security
/// state had not changed between rounds; this cache rebuilds only when
/// the fingerprint moves — i.e. on trust re-rating or grid
/// reconfiguration — and is explicitly invalidated by the scheduler's
/// `on_reconfigure` hook.
#[derive(Debug, Default)]
pub struct RiskCache {
    fingerprint: Option<u64>,
    weights: Option<RiskWeights>,
    hits: u64,
    misses: u64,
}

impl RiskCache {
    /// An empty cache.
    pub fn new() -> RiskCache {
        RiskCache::default()
    }

    /// Returns the cached table when the `(model, grid security snapshot,
    /// demands)` fingerprint is unchanged, rebuilding it otherwise.
    pub fn get_or_build(
        &mut self,
        model: &gridsec_core::SecurityModel,
        grid_fingerprint: u64,
        sds: &[f64],
        sls: &[f64],
    ) -> &RiskWeights {
        let mut fp = grid_fingerprint ^ model.lambda().to_bits().rotate_left(17);
        for &sd in sds {
            fp = (fp.rotate_left(13) ^ sd.to_bits()).wrapping_mul(0x1000_0000_01b3);
        }
        if self.fingerprint == Some(fp) && self.weights.is_some() {
            self.hits += 1;
        } else {
            self.misses += 1;
            self.weights = Some(RiskWeights::build(model, sds, sls));
            self.fingerprint = Some(fp);
        }
        self.weights.as_ref().expect("cache was just filled")
    }

    /// Drops the cached table; the next lookup rebuilds unconditionally.
    /// Called when the scheduler is told the grid was reconfigured.
    pub fn invalidate(&mut self) {
        self.fingerprint = None;
        self.weights = None;
    }

    /// `(hits, misses)` counters since construction.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }
}

/// Above this ratio of retained capacity to live size, `reset_scratch`
/// releases the tail — hysteresis so ordinary batch-size jitter never
/// triggers a shrink, while a reconfiguration to a much smaller grid
/// stops pinning the old grid's buffers forever.
const SCRATCH_SHRINK_FACTOR: usize = 4;
/// Scratch capacity worth keeping regardless of ratio (tiny buffers are
/// not worth churning).
const SCRATCH_SHRINK_FLOOR: usize = 16;

/// Resets `scratch` to mirror `base` without reallocating inner buffers.
///
/// When a previous round left far more capacity than `base` now needs
/// (e.g. the grid was reconfigured down), the excess is released — see
/// [`SCRATCH_SHRINK_FACTOR`]; steady-state rounds never shrink, keeping
/// the hot path allocation-free.
pub fn reset_scratch(scratch: &mut Vec<NodeAvailability>, base: &[NodeAvailability]) {
    scratch.truncate(base.len());
    if scratch.capacity() > SCRATCH_SHRINK_FLOOR
        && scratch.capacity() / SCRATCH_SHRINK_FACTOR >= base.len()
    {
        scratch.shrink_to(base.len().max(SCRATCH_SHRINK_FLOOR));
    }
    for (i, b) in base.iter().enumerate() {
        if i < scratch.len() {
            scratch[i].clone_from(b);
        } else {
            scratch.push(b.clone());
        }
    }
}

/// Evaluates a chromosome against a caller-provided scratch availability
/// buffer (reused across calls — the hot path of the GA).
pub fn evaluate_with_scratch(
    ctx: &MapCtx,
    base_avail: &[NodeAvailability],
    scratch: &mut Vec<NodeAvailability>,
    chromosome: &Chromosome,
    kind: FitnessKind,
    risk: Option<&RiskWeights>,
    flow_weight: f64,
) -> f64 {
    debug_assert_eq!(chromosome.len(), ctx.n_jobs());
    reset_scratch(scratch, base_avail);
    let mut makespan = Time::ZERO;
    let mut sum_ct = 0.0;
    for j in ctx.order_iter() {
        let s = chromosome.site_of(j);
        let exec = ctx.etc.get(j, s);
        if !exec.is_finite() {
            return f64::INFINITY;
        }
        let exec = match kind {
            FitnessKind::Makespan => exec,
            FitnessKind::ExpectedMakespan => exec * risk.map_or(1.0, |r| r.get(j, s)),
        };
        let start = match scratch[s].earliest_start(ctx.widths[j], ctx.now.max(ctx.arrivals[j])) {
            Some(t) => t,
            None => return f64::INFINITY,
        };
        let ct = start + Time::new(exec);
        scratch[s].commit(ctx.widths[j], ct);
        makespan = makespan.max(ct);
        sum_ct += ct.seconds();
    }
    makespan.seconds() + flow_weight * (sum_ct / ctx.n_jobs() as f64)
}

/// Convenience wrapper allocating its own scratch buffer: replays the
/// chromosome's assignments (in batch order) and returns the fitness.
/// Infeasible genes (non-fitting sites) yield `f64::INFINITY`, so they can
/// never win selection.
pub fn evaluate(
    ctx: &MapCtx,
    base_avail: &[NodeAvailability],
    chromosome: &Chromosome,
    kind: FitnessKind,
    risk: Option<&RiskWeights>,
) -> f64 {
    let mut scratch = Vec::with_capacity(base_avail.len());
    evaluate_with_scratch(
        ctx,
        base_avail,
        &mut scratch,
        chromosome,
        kind,
        risk,
        DEFAULT_FLOW_WEIGHT,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridsec_core::etc::EtcMatrix;
    use gridsec_core::SecurityModel;

    fn ctx2() -> (MapCtx, Vec<NodeAvailability>) {
        // 2 jobs × 2 single-node sites.
        let etc = EtcMatrix::from_raw(2, 2, vec![10.0, 20.0, 30.0, 15.0]);
        let ctx = MapCtx {
            etc,
            widths: vec![1, 1],
            arrivals: vec![Time::ZERO; 2],
            candidates: vec![vec![0, 1]; 2],
            now: Time::ZERO,
            commit_order: vec![],
        };
        let avail = vec![
            NodeAvailability::new(1, Time::ZERO),
            NodeAvailability::new(1, Time::ZERO),
        ];
        (ctx, avail)
    }

    /// Strips the tie-break term for exact-makespan assertions.
    fn close(actual: f64, makespan: f64) -> bool {
        (actual - makespan).abs() <= DEFAULT_FLOW_WEIGHT * makespan * 2.0 + 1e-9
    }

    #[test]
    fn fitness_is_schedule_makespan_plus_tiebreak() {
        let (ctx, avail) = ctx2();
        // Both jobs on site 0: 10 then 10+30 = 40.
        let c = Chromosome::from_genes(vec![0, 0]);
        let f = evaluate(&ctx, &avail, &c, FitnessKind::Makespan, None);
        assert!(close(f, 40.0), "f = {f}");
        // Split: max(10, 15) = 15.
        let c = Chromosome::from_genes(vec![0, 1]);
        let f = evaluate(&ctx, &avail, &c, FitnessKind::Makespan, None);
        assert!(close(f, 15.0), "f = {f}");
        // Swapped: max(20, 30) = 30.
        let c = Chromosome::from_genes(vec![1, 0]);
        let f = evaluate(&ctx, &avail, &c, FitnessKind::Makespan, None);
        assert!(close(f, 30.0), "f = {f}");
    }

    #[test]
    fn tiebreak_prefers_earlier_average_completion() {
        // Two schedules with the *same* makespan (100) but different mean
        // completion: A gives CTs {100, 99} (mean 99.5), B gives {100, 50}
        // (mean 75). The tie-break must rank B strictly better.
        let etc = EtcMatrix::from_raw(2, 2, vec![100.0, 100.0, 50.0, 99.0]);
        let ctx = MapCtx {
            etc,
            widths: vec![1, 1],
            arrivals: vec![Time::ZERO; 2],
            candidates: vec![vec![0, 1]; 2],
            now: Time::ZERO,
            commit_order: vec![],
        };
        let avail = vec![
            NodeAvailability::new(1, Time::ZERO),
            NodeAvailability::new(1, Time::ZERO),
        ];
        let a = Chromosome::from_genes(vec![0, 1]); // CTs 100, 99
        let b = Chromosome::from_genes(vec![1, 0]); // CTs 100, 50
        let fa = evaluate(&ctx, &avail, &a, FitnessKind::Makespan, None);
        let fb = evaluate(&ctx, &avail, &b, FitnessKind::Makespan, None);
        assert!(fb < fa, "tie-break should prefer B: {fb} vs {fa}");
        // But the tie-break never overrides a real makespan difference.
        let worse = Chromosome::from_genes(vec![0, 0]); // CTs 100, 150
        let fw = evaluate(&ctx, &avail, &worse, FitnessKind::Makespan, None);
        assert!(fw > fa);
    }

    #[test]
    fn infeasible_gene_is_infinite() {
        let etc = EtcMatrix::from_raw(1, 2, vec![10.0, f64::INFINITY]);
        let ctx = MapCtx {
            etc,
            widths: vec![1],
            arrivals: vec![Time::ZERO],
            candidates: vec![vec![0]],
            now: Time::ZERO,
            commit_order: vec![],
        };
        let avail = vec![
            NodeAvailability::new(1, Time::ZERO),
            NodeAvailability::new(1, Time::ZERO),
        ];
        let c = Chromosome::from_genes(vec![1]);
        assert!(evaluate(&ctx, &avail, &c, FitnessKind::Makespan, None).is_infinite());
    }

    #[test]
    fn fitness_respects_preexisting_load() {
        let (ctx, mut avail) = ctx2();
        avail[1].commit(1, Time::new(100.0));
        let c = Chromosome::from_genes(vec![0, 1]);
        // Job 1 on busy site 1: 100 + 15 = 115.
        let f = evaluate(&ctx, &avail, &c, FitnessKind::Makespan, None);
        assert!(close(f, 115.0), "f = {f}");
    }

    #[test]
    fn scratch_reuse_matches_fresh_allocation() {
        let (ctx, avail) = ctx2();
        let c = Chromosome::from_genes(vec![0, 1]);
        let fresh = evaluate(&ctx, &avail, &c, FitnessKind::Makespan, None);
        let mut scratch = Vec::new();
        for _ in 0..3 {
            let reused = evaluate_with_scratch(
                &ctx,
                &avail,
                &mut scratch,
                &c,
                FitnessKind::Makespan,
                None,
                DEFAULT_FLOW_WEIGHT,
            );
            assert_eq!(fresh, reused);
        }
    }

    #[test]
    fn reset_scratch_handles_size_changes() {
        let base3 = vec![NodeAvailability::new(2, Time::ZERO); 3];
        let base1 = vec![NodeAvailability::new(4, Time::new(5.0))];
        let mut scratch = Vec::new();
        reset_scratch(&mut scratch, &base3);
        assert_eq!(scratch, base3);
        reset_scratch(&mut scratch, &base1);
        assert_eq!(scratch, base1);
        reset_scratch(&mut scratch, &base3);
        assert_eq!(scratch, base3);
    }

    #[test]
    fn expected_makespan_penalises_risky_sites() {
        let model = SecurityModel::new(3.0).unwrap();
        // Job 0 has SD 0.9; site 0 is unsafe (SL 0.4), site 1 safe (1.0).
        let risk = RiskWeights::build(&model, &[0.9, 0.5], &[0.4, 1.0]);
        assert!(risk.get(0, 0) > 1.0);
        assert_eq!(risk.get(0, 1), 1.0);
        // SD 0.5 > SL 0.4: risky, multiplier above 1 (but small gap).
        assert!(risk.get(1, 0) > 1.0 && risk.get(1, 0) < risk.get(0, 0));
        assert_eq!(risk.get(1, 1), 1.0);
    }

    #[test]
    fn reset_scratch_reclaims_capacity_after_reconfigure() {
        // A big grid warms the scratch; reconfiguring to a small one must
        // eventually release the retained capacity (hysteresis shrink)…
        let big = vec![NodeAvailability::new(1, Time::ZERO); 256];
        let small = vec![NodeAvailability::new(1, Time::ZERO); 4];
        let mut scratch = Vec::new();
        reset_scratch(&mut scratch, &big);
        assert!(scratch.capacity() >= 256);
        reset_scratch(&mut scratch, &small);
        assert!(
            scratch.capacity() <= 64,
            "stale capacity kept: {}",
            scratch.capacity()
        );
        assert_eq!(scratch, small);
        // …while modest jitter around the working size never shrinks.
        let mid = vec![NodeAvailability::new(1, Time::ZERO); 100];
        reset_scratch(&mut scratch, &mid);
        let cap = scratch.capacity();
        let jitter = vec![NodeAvailability::new(1, Time::ZERO); 80];
        reset_scratch(&mut scratch, &jitter);
        assert_eq!(scratch.capacity(), cap, "hysteresis must tolerate jitter");
    }

    #[test]
    fn risk_cache_rebuilds_only_on_snapshot_change() {
        let model = SecurityModel::new(3.0).unwrap();
        let mut cache = RiskCache::new();
        let sds = [0.9, 0.5];
        let sls = [0.4, 1.0];
        let w1 = cache.get_or_build(&model, 7, &sds, &sls).get(0, 0);
        assert_eq!(cache.stats(), (0, 1));
        let w2 = cache.get_or_build(&model, 7, &sds, &sls).get(0, 0);
        assert_eq!(cache.stats(), (1, 1));
        assert_eq!(w1.to_bits(), w2.to_bits());
        // A different grid fingerprint (trust re-rate / reconfigure)
        // forces a rebuild; so do different demands.
        cache.get_or_build(&model, 8, &sds, &sls);
        assert_eq!(cache.stats(), (1, 2));
        cache.get_or_build(&model, 8, &[0.9, 0.6], &sls);
        assert_eq!(cache.stats(), (1, 3));
        // Explicit invalidation drops the entry even for an identical key.
        cache.invalidate();
        cache.get_or_build(&model, 8, &[0.9, 0.6], &sls);
        assert_eq!(cache.stats(), (1, 4));
    }

    #[test]
    fn risk_weights_boundary() {
        let model = SecurityModel::new(3.0).unwrap();
        let risk = RiskWeights::build(&model, &[0.5], &[0.5, 0.6]);
        assert_eq!(risk.get(0, 0), 1.0); // SD == SL: safe
        assert_eq!(risk.get(0, 1), 1.0);
    }
}
