//! The Space-Time Genetic Algorithm scheduler (§3, Fig. 6).

use crate::chromosome::Chromosome;
use crate::fitness::{FitnessKind, RiskCache};
use crate::ga::{evolve_with_pool, GaPool, GaResult};
use crate::history::{BatchSignature, SharedHistory};
use crate::params::StgaParams;
use gridsec_core::etc::NodeAvailability;
use gridsec_core::rng::{stream, Stream};
use gridsec_core::{BatchSchedule, Grid, Job, Result, RiskMode, SiteId, Time};
use gridsec_heuristics::common::{Fallback, MapCtx};
use gridsec_heuristics::mapping::{map_min_min, map_sufferage};
use gridsec_sim::{BatchJob, BatchScheduler, GridView};
use rand_chacha::ChaCha8Rng;

/// The STGA scheduler.
///
/// Per scheduling round (Fig. 6):
///
/// 1. build the batch signature (site ready times, ETC matrix, security
///    demands);
/// 2. pull up to `history_fraction × population` chromosomes from
///    sufficiently similar past rounds (Eq. 2 ≥ threshold), adapting them
///    to the current batch;
/// 3. add Min-Min and Sufferage solutions (when enabled) and fill the
///    rest of the population randomly ("to guarantee enough diversity");
/// 4. evolve for `generations` iterations;
/// 5. store the best chromosome back into the LRU history table.
///
/// Like the paper's STGA, jobs are free to take risks (risky-mode
/// candidates); previously-failed jobs are pinned to safe sites.
pub struct Stga {
    params: StgaParams,
    history: SharedHistory,
    rng: ChaCha8Rng,
    fallback: Fallback,
    fitness: FitnessKind,
    last_result: Option<GaResult>,
    /// Population/fitness buffers reused across scheduling rounds — a
    /// long-lived STGA (one batch after another in the serving daemon)
    /// allocates its GA state once and recycles it forever.
    pool: GaPool,
    /// Memoised risk-weight table for [`FitnessKind::ExpectedMakespan`]:
    /// rebuilt only when the security snapshot fingerprint moves (trust
    /// re-rate / reconfigure), not on every round.
    risk_cache: RiskCache,
}

impl Stga {
    /// Creates an STGA with a fresh history table.
    pub fn new(params: StgaParams) -> Result<Stga> {
        params.validate()?;
        let history = SharedHistory::new(params.table_capacity);
        Ok(Self::with_history(params, history))
    }

    /// Creates an STGA sharing an existing (possibly pre-trained) table.
    pub fn with_history(params: StgaParams, history: SharedHistory) -> Stga {
        let rng = stream(params.ga.seed, Stream::Genetic);
        Stga {
            params,
            history,
            rng,
            fallback: Fallback::default(),
            fitness: FitnessKind::Makespan,
            last_result: None,
            pool: GaPool::new(),
            risk_cache: RiskCache::new(),
        }
    }

    /// Overrides the fitness variant (ablations).
    pub fn with_fitness(mut self, kind: FitnessKind) -> Stga {
        self.fitness = kind;
        self
    }

    /// Overrides the no-admissible-site fallback policy.
    pub fn with_fallback(mut self, fallback: Fallback) -> Stga {
        self.fallback = fallback;
        self
    }

    /// The shared history table handle.
    pub fn history(&self) -> &SharedHistory {
        &self.history
    }

    /// The parameters in force.
    pub fn params(&self) -> &StgaParams {
        &self.params
    }

    /// Convergence trajectory of the most recent round (for Fig. 5-style
    /// plots), if any round has run.
    pub fn last_trajectory(&self) -> Option<&[f64]> {
        self.last_result.as_ref().map(|r| r.trajectory.as_slice())
    }

    /// `(hits, misses)` of the risk-weight cache (only populated when the
    /// fitness variant is [`FitnessKind::ExpectedMakespan`]).
    pub fn risk_cache_stats(&self) -> (u64, u64) {
        self.risk_cache.stats()
    }

    /// Pre-populates the history table by running Min-Min and Sufferage
    /// over `jobs` in batches of `batch_size` against an initially idle
    /// copy of `grid`, committing each batch so successive signatures see
    /// evolving load (§4.3: "we use the Min-Min and Sufferage heuristics
    /// \[on\] a fixed number of training jobs to generate the initial
    /// lookup table entries"; Table 1: 500 training jobs).
    pub fn train(&mut self, jobs: &[Job], grid: &Grid, batch_size: usize) -> Result<()> {
        let batch_size = batch_size.max(1);
        let take = jobs.len().min(self.params.training_jobs);
        let mut avail: Vec<NodeAvailability> = grid
            .sites()
            .map(|s| NodeAvailability::new(s.nodes, Time::ZERO))
            .collect();
        for chunk in jobs[..take].chunks(batch_size) {
            let batch: Vec<BatchJob> = chunk
                .iter()
                .cloned()
                .map(|job| BatchJob {
                    job,
                    secure_only: false,
                })
                .collect();
            let view = GridView {
                grid,
                avail: &avail,
                now: Time::ZERO,
                model: gridsec_core::SecurityModel::default(),
            };
            let ctx = MapCtx::build(&batch, &view, RiskMode::Risky, self.fallback);
            let sig = signature_of(&ctx, &avail, &batch);
            let mut a1 = avail.clone();
            let mm = mapping_to_chromosome(&map_min_min(&ctx, &mut a1), ctx.n_jobs());
            let mut a2 = avail.clone();
            let sf = mapping_to_chromosome(&map_sufferage(&ctx, &mut a2), ctx.n_jobs());
            self.history.insert(sig.clone(), mm.clone());
            self.history.insert(sig, sf);
            // Commit the Min-Min plan so the next training batch sees a
            // loaded grid.
            for (j, s) in mm.genes().iter().enumerate() {
                let s = *s as usize;
                let ct = ctx
                    .completion(&avail, j, s)
                    .expect("training mapping is feasible");
                avail[s].commit(ctx.widths[j], ct);
            }
        }
        Ok(())
    }
}

/// Converts a `(job, site)` mapping into the positional chromosome.
fn mapping_to_chromosome(mapping: &[(usize, usize)], n: usize) -> Chromosome {
    let mut genes = vec![0u16; n];
    for &(j, s) in mapping {
        genes[j] = s as u16;
    }
    Chromosome::from_genes(genes)
}

/// Builds the Eq. 2 signature of a batch: re-based site ready times, the
/// flattened ETC matrix, and the job security demands.
fn signature_of(ctx: &MapCtx, avail: &[NodeAvailability], batch: &[BatchJob]) -> BatchSignature {
    let readies: Vec<f64> = avail.iter().map(|a| a.ready_time().seconds()).collect();
    let base = readies.iter().copied().fold(f64::INFINITY, f64::min);
    let base = if base.is_finite() { base } else { 0.0 };
    BatchSignature {
        ready_times: readies.iter().map(|r| r - base).collect(),
        etc: ctx.etc.raw().to_vec(),
        demands: batch.iter().map(|b| b.job.security_demand).collect(),
    }
}

impl BatchScheduler for Stga {
    fn name(&self) -> String {
        "STGA".to_string()
    }

    fn on_reconfigure(&mut self) {
        // Drop everything compiled from the old security snapshot. The
        // fitness kernel itself is re-lowered from the live snapshot at
        // the start of every round, so the risk table is the only state
        // that could go stale.
        self.risk_cache.invalidate();
    }

    fn schedule(&mut self, batch: &[BatchJob], view: &GridView<'_>) -> BatchSchedule {
        let _eval_span = gridsec_obs::span!("stga_eval", batch = batch.len());
        // First-fit-decreasing commit order: the GA's schedule replay (and
        // the engine's dispatch, which follows the emitted order) packs
        // wide jobs first — strictly better bin-packing on multi-node
        // sites than arrival order.
        let ctx = MapCtx::build(batch, view, RiskMode::Risky, self.fallback).with_ffd_order();
        let sig = signature_of(&ctx, view.avail, batch);

        let pop = self.params.ga.population;
        let history_limit = ((pop as f64) * self.params.history_fraction).floor() as usize;
        let mut seeds: Vec<Chromosome> = self
            .history
            .lookup(&sig, self.params.similarity_threshold, history_limit)
            .into_iter()
            .map(|c| c.repair(&ctx.candidates, &mut self.rng))
            .collect();

        if self.params.heuristic_seeds {
            let mut a1 = view.avail_clone();
            seeds.push(mapping_to_chromosome(
                &map_min_min(&ctx, &mut a1),
                ctx.n_jobs(),
            ));
            let mut a2 = view.avail_clone();
            seeds.push(mapping_to_chromosome(
                &map_sufferage(&ctx, &mut a2),
                ctx.n_jobs(),
            ));
        }

        // Base STGA minimises pure makespan (no risk table); the
        // risk-aware ablation inflates execution times by expected
        // attempts, with the `[job × site]` table served from the
        // fingerprint-keyed cache instead of rebuilt every round.
        let risk_weights = match self.fitness {
            FitnessKind::Makespan => None,
            FitnessKind::ExpectedMakespan => {
                let sds: Vec<f64> = batch.iter().map(|b| b.job.security_demand).collect();
                let sls: Vec<f64> = view.grid.security_levels().collect();
                Some(self.risk_cache.get_or_build(
                    &view.model,
                    view.grid.security_fingerprint(),
                    &sds,
                    &sls,
                ))
            }
        };
        let result = evolve_with_pool(
            &ctx,
            view.avail,
            seeds,
            &self.params.ga,
            self.fitness,
            risk_weights,
            &mut self.rng,
            &mut self.pool,
        );
        self.history.insert(sig, result.best.clone());

        // Emit in the fitness replay's commit order so the engine realises
        // exactly the schedule the GA evaluated.
        let schedule = BatchSchedule::from_pairs(
            ctx.order_iter()
                .map(|j| (batch[j].job.id, SiteId(result.best.site_of(j)))),
        );
        self.last_result = Some(result);
        schedule
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::GaParams;
    use gridsec_core::{SecurityModel, Site};

    fn params_small() -> StgaParams {
        StgaParams {
            ga: GaParams::default()
                .with_population(30)
                .with_generations(20)
                .with_seed(3),
            ..StgaParams::default()
        }
    }

    fn grid() -> Grid {
        Grid::new(vec![
            Site::builder(0)
                .nodes(2)
                .speed(1.0)
                .security_level(0.9)
                .build()
                .unwrap(),
            Site::builder(1)
                .nodes(2)
                .speed(2.0)
                .security_level(0.5)
                .build()
                .unwrap(),
        ])
        .unwrap()
    }

    fn batch(n: u64) -> Vec<BatchJob> {
        (0..n)
            .map(|i| BatchJob {
                job: Job::builder(i)
                    .work(50.0 + 10.0 * i as f64)
                    .security_demand(0.6 + 0.02 * (i % 10) as f64)
                    .build()
                    .unwrap(),
                secure_only: false,
            })
            .collect()
    }

    #[test]
    fn schedules_whole_batch_validly() {
        let g = grid();
        let avail = vec![
            NodeAvailability::new(2, Time::ZERO),
            NodeAvailability::new(2, Time::ZERO),
        ];
        let view = GridView {
            grid: &g,
            avail: &avail,
            now: Time::ZERO,
            model: SecurityModel::default(),
        };
        let b = batch(8);
        let jobs: Vec<Job> = b.iter().map(|x| x.job.clone()).collect();
        let mut stga = Stga::new(params_small()).unwrap();
        let s = stga.schedule(&b, &view);
        assert!(s.validate(&jobs, &g).is_ok());
        assert!(stga.last_trajectory().is_some());
        // The round was recorded in history.
        assert_eq!(stga.history().len(), 1);
    }

    #[test]
    fn history_grows_and_seeds_later_rounds() {
        let g = grid();
        let avail = vec![
            NodeAvailability::new(2, Time::ZERO),
            NodeAvailability::new(2, Time::ZERO),
        ];
        let view = GridView {
            grid: &g,
            avail: &avail,
            now: Time::ZERO,
            model: SecurityModel::default(),
        };
        let b = batch(6);
        let mut stga = Stga::new(params_small()).unwrap();
        let first = stga.schedule(&b, &view);
        // The same batch again: history should contain a (near-)exact
        // match, and the result should be at least as good.
        let second = stga.schedule(&b, &view);
        assert_eq!(stga.history().len(), 2);
        assert_eq!(first.len(), second.len());
    }

    #[test]
    fn secure_only_jobs_get_safe_sites() {
        let g = grid();
        let avail = vec![
            NodeAvailability::new(2, Time::ZERO),
            NodeAvailability::new(2, Time::ZERO),
        ];
        let view = GridView {
            grid: &g,
            avail: &avail,
            now: Time::ZERO,
            model: SecurityModel::default(),
        };
        // SD 0.8: only site 0 (SL 0.9) is safe.
        let b = vec![BatchJob {
            job: Job::builder(0)
                .work(10.0)
                .security_demand(0.8)
                .build()
                .unwrap(),
            secure_only: true,
        }];
        let mut stga = Stga::new(params_small()).unwrap();
        let s = stga.schedule(&b, &view);
        assert_eq!(s.site_of(gridsec_core::JobId(0)), Some(SiteId(0)));
    }

    #[test]
    fn training_populates_history() {
        let g = grid();
        let jobs: Vec<Job> = (0..40)
            .map(|i| {
                Job::builder(i)
                    .work(25.0 + i as f64)
                    .security_demand(0.7)
                    .build()
                    .unwrap()
            })
            .collect();
        let mut stga = Stga::new(params_small()).unwrap();
        stga.train(&jobs, &g, 8).unwrap();
        // 40 jobs / batches of 8 = 5 batches × 2 heuristics = 10 entries.
        assert_eq!(stga.history().len(), 10);
    }

    #[test]
    fn training_respects_training_job_cap() {
        let g = grid();
        let mut p = params_small();
        p.training_jobs = 10;
        let jobs: Vec<Job> = (0..100)
            .map(|i| Job::builder(i).work(20.0).build().unwrap())
            .collect();
        let mut stga = Stga::new(p).unwrap();
        stga.train(&jobs, &g, 5).unwrap();
        // Only 10 jobs used → 2 batches × 2 entries.
        assert_eq!(stga.history().len(), 4);
    }

    #[test]
    fn risk_cache_serves_repeated_rounds_and_reconfigures_invalidate() {
        let g = grid();
        let avail = vec![
            NodeAvailability::new(2, Time::ZERO),
            NodeAvailability::new(2, Time::ZERO),
        ];
        let view = GridView {
            grid: &g,
            avail: &avail,
            now: Time::ZERO,
            model: SecurityModel::default(),
        };
        let b = batch(6);
        let mut stga = Stga::new(params_small())
            .unwrap()
            .with_fitness(FitnessKind::ExpectedMakespan);
        let _ = stga.schedule(&b, &view);
        assert_eq!(stga.risk_cache_stats(), (0, 1), "first round builds");
        let _ = stga.schedule(&b, &view);
        let _ = stga.schedule(&b, &view);
        assert_eq!(
            stga.risk_cache_stats(),
            (2, 1),
            "unchanged snapshot must hit the cache"
        );
        // A trust reconfiguration notification invalidates the table.
        stga.on_reconfigure();
        let _ = stga.schedule(&b, &view);
        assert_eq!(stga.risk_cache_stats(), (2, 2));
        // Base (Makespan) STGA never touches the cache.
        let mut base = Stga::new(params_small()).unwrap();
        let _ = base.schedule(&b, &view);
        assert_eq!(base.risk_cache_stats(), (0, 0));
    }

    #[test]
    fn stga_beats_or_matches_its_heuristic_seeds() {
        // With heuristic seeding + elitism the GA result can never be
        // worse than the better of Min-Min / Sufferage on the same batch.
        let g = grid();
        let avail = vec![
            NodeAvailability::new(2, Time::ZERO),
            NodeAvailability::new(2, Time::ZERO),
        ];
        let view = GridView {
            grid: &g,
            avail: &avail,
            now: Time::ZERO,
            model: SecurityModel::default(),
        };
        let b = batch(10);
        let ctx = MapCtx::build(&b, &view, RiskMode::Risky, Fallback::default());
        let mut a1 = avail.clone();
        let mm = mapping_to_chromosome(&map_min_min(&ctx, &mut a1), ctx.n_jobs());
        let mm_fit = crate::fitness::evaluate(&ctx, &avail, &mm, FitnessKind::Makespan, None);
        let mut stga = Stga::new(params_small()).unwrap();
        let _ = stga.schedule(&b, &view);
        let best = stga.last_result.as_ref().unwrap().best_fitness;
        assert!(best <= mm_fit + 1e-9, "GA {best} vs Min-Min {mm_fit}");
    }
}
