//! Simulated-annealing batch scheduler — the *offline* optimiser the
//! paper's §2 rules out for on-line use ("we cannot afford to use an
//! offline algorithm such as simulated annealing \[20\]").
//!
//! Included as a baseline so that claim is measurable: SA explores the
//! same assignment space as the GA via single-gene moves under a
//! geometric cooling schedule. With enough iterations it matches or beats
//! the GA per batch; at equal wall-clock budget it is the slower
//! converger the paper expects (see the `scheduling_cost` bench).

use crate::chromosome::Chromosome;
use crate::fitness::{evaluate_with_scratch, FitnessKind};
use gridsec_core::rng::{stream, Stream};
use gridsec_core::{BatchSchedule, Error, Result, RiskMode, SiteId};
use gridsec_heuristics::common::{Fallback, MapCtx};
use gridsec_sim::{BatchJob, BatchScheduler, GridView};
use rand::Rng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// Simulated-annealing parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SaParams {
    /// Number of candidate moves evaluated.
    pub iterations: usize,
    /// Initial temperature as a fraction of the initial fitness (a move
    /// that worsens fitness by `t0_fraction × f0` is accepted with
    /// probability `e^-1` at the start).
    pub t0_fraction: f64,
    /// Geometric cooling factor per iteration (0 < α < 1).
    pub cooling: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SaParams {
    fn default() -> Self {
        SaParams {
            iterations: 20_000,
            t0_fraction: 0.1,
            cooling: 0.9995,
            seed: 0x5A,
        }
    }
}

impl SaParams {
    /// Validates the parameters.
    pub fn validate(&self) -> Result<()> {
        if self.iterations == 0 {
            return Err(Error::invalid("iterations", "must be ≥ 1"));
        }
        if !(self.t0_fraction.is_finite() && self.t0_fraction > 0.0) {
            return Err(Error::invalid("t0_fraction", "must be positive"));
        }
        if !(self.cooling > 0.0 && self.cooling < 1.0) {
            return Err(Error::invalid("cooling", "must be in (0, 1)"));
        }
        Ok(())
    }
}

/// The SA scheduler (risky-mode candidates, like the GA).
pub struct SimulatedAnnealing {
    params: SaParams,
    rng: ChaCha8Rng,
    fallback: Fallback,
}

impl SimulatedAnnealing {
    /// Creates an SA scheduler.
    pub fn new(params: SaParams) -> Result<SimulatedAnnealing> {
        params.validate()?;
        Ok(SimulatedAnnealing {
            rng: stream(params.seed, Stream::Custom(0x5A5A)),
            params,
            fallback: Fallback::default(),
        })
    }

    /// Anneals one batch and returns the best chromosome and fitness.
    pub fn anneal(
        &mut self,
        ctx: &MapCtx,
        base_avail: &[gridsec_core::etc::NodeAvailability],
    ) -> (Chromosome, f64) {
        let mut scratch = Vec::with_capacity(base_avail.len());
        let mut current = Chromosome::random(&ctx.candidates, &mut self.rng);
        let eval = |c: &Chromosome, scratch: &mut Vec<_>| {
            evaluate_with_scratch(
                ctx,
                base_avail,
                scratch,
                c,
                FitnessKind::Makespan,
                None,
                crate::fitness::DEFAULT_FLOW_WEIGHT,
            )
        };
        let mut current_fit = eval(&current, &mut scratch);
        let mut best = current.clone();
        let mut best_fit = current_fit;
        let mut temperature = (current_fit * self.params.t0_fraction).max(f64::MIN_POSITIVE);
        for _ in 0..self.params.iterations {
            // Single-gene move: re-draw one job's site.
            let j = self.rng.gen_range(0..ctx.n_jobs());
            let cand = &ctx.candidates[j];
            if cand.len() > 1 {
                let old = current.genes()[j];
                let mut pick = cand[self.rng.gen_range(0..cand.len())] as u16;
                while pick == old {
                    pick = cand[self.rng.gen_range(0..cand.len())] as u16;
                }
                let mut neighbour = current.clone();
                neighbour.genes_mut()[j] = pick;
                let neighbour_fit = eval(&neighbour, &mut scratch);
                let delta = neighbour_fit - current_fit;
                let accept =
                    delta <= 0.0 || self.rng.gen::<f64>() < (-delta / temperature.max(1e-12)).exp();
                if accept {
                    current = neighbour;
                    current_fit = neighbour_fit;
                    if current_fit < best_fit {
                        best = current.clone();
                        best_fit = current_fit;
                    }
                }
            }
            temperature *= self.params.cooling;
        }
        (best, best_fit)
    }
}

impl BatchScheduler for SimulatedAnnealing {
    fn name(&self) -> String {
        "SA".to_string()
    }

    fn schedule(&mut self, batch: &[BatchJob], view: &GridView<'_>) -> BatchSchedule {
        let ctx = MapCtx::build(batch, view, RiskMode::Risky, self.fallback);
        let (best, _) = self.anneal(&ctx, view.avail);
        BatchSchedule::from_pairs(
            batch
                .iter()
                .enumerate()
                .map(|(j, bj)| (bj.job.id, SiteId(best.site_of(j)))),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridsec_core::etc::{EtcMatrix, NodeAvailability};
    use gridsec_core::Time;

    fn ctx() -> (MapCtx, Vec<NodeAvailability>) {
        let n = 6;
        let m = 3;
        let mut etc = Vec::new();
        for j in 0..n {
            for _ in 0..m {
                etc.push(10.0 * (j + 1) as f64);
            }
        }
        (
            MapCtx {
                etc: EtcMatrix::from_raw(n, m, etc),
                widths: vec![1; n],
                arrivals: vec![Time::ZERO; n],
                candidates: vec![(0..m).collect(); n],
                now: Time::ZERO,
                commit_order: vec![],
            },
            vec![NodeAvailability::new(1, Time::ZERO); m],
        )
    }

    #[test]
    fn sa_finds_near_optimal_schedule() {
        let (ctx, avail) = ctx();
        let mut sa = SimulatedAnnealing::new(SaParams {
            iterations: 5_000,
            ..SaParams::default()
        })
        .unwrap();
        let (best, fit) = sa.anneal(&ctx, &avail);
        // Optimum 70 (210 work over 3 sites).
        assert!(fit <= 80.0, "fitness {fit}");
        assert!(best.is_feasible(&ctx.candidates));
    }

    #[test]
    fn sa_is_deterministic_per_seed() {
        let (ctx, avail) = ctx();
        let run = || {
            let mut sa = SimulatedAnnealing::new(SaParams {
                iterations: 2_000,
                seed: 99,
                ..SaParams::default()
            })
            .unwrap();
            sa.anneal(&ctx, &avail)
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn params_validated() {
        let p = SaParams {
            iterations: 0,
            ..SaParams::default()
        };
        assert!(SimulatedAnnealing::new(p).is_err());
        let p = SaParams {
            cooling: 1.0,
            ..SaParams::default()
        };
        assert!(SimulatedAnnealing::new(p).is_err());
        let p = SaParams {
            t0_fraction: 0.0,
            ..SaParams::default()
        };
        assert!(SimulatedAnnealing::new(p).is_err());
    }
}
