//! The compiled fitness kernel: a structure-of-arrays lowering of the
//! grid + trust + security snapshot that turns chromosome evaluation into
//! index arithmetic over flat slices.
//!
//! [`evaluate_with_scratch`](crate::fitness::evaluate_with_scratch) — the
//! retained reference implementation — re-walks the ETC matrix, the
//! per-job candidate metadata and the per-site availability objects for
//! every chromosome. The GA evaluates tens of thousands of chromosomes
//! per round against the *same* snapshot, so this module compiles that
//! snapshot once per round (the shape of `simlin`'s compiler → bytecode →
//! VM pipeline) into:
//!
//! - `eff`: a dense `[job × site]` plane of *effective* execution times,
//!   folding the ETC lookup, the security-overhead/risk multiplier
//!   ([`FitnessKind::ExpectedMakespan`]) and every feasibility test
//!   (non-fitting ETC entries, zero widths, widths exceeding a site's
//!   node count) into one `f64` per cell — `+∞` marks infeasible, so the
//!   per-gene test is a single `is_finite()`;
//! - `floors`: the per-job release floor `now.max(arrival)`;
//! - `base_free`: every site's sorted node free-times concatenated into
//!   one flat plane, indexed by `site_off` prefix offsets.
//!
//! [`FitnessKernel::evaluate_full`] then replays a chromosome with no
//! hashing, trust branching or graph chasing, and is bit-identical to the
//! reference path because it performs the *same* [`Time`] operations in
//! the *same* commit order on the *same* values.
//!
//! On top of the full replay sits **delta evaluation**
//! ([`FitnessKernel::evaluate_delta`]): a GA child differs from its
//! parent only at crossover/mutation-touched genes, so only the sites
//! those genes moved work onto or off of can change their ready chains.
//! The delta path resets just the affected sites' free-time segments,
//! recomputes completion times for jobs landing on them, copies every
//! other job's completion time from the parent, and re-aggregates — and
//! falls back to a full replay when the touched set is wide. Both paths
//! produce bit-identical fitness (the golden-equivalence digests and the
//! proptests in `tests/kernel_equivalence.rs` pin this).

use crate::fitness::{FitnessKind, RiskWeights};
use gridsec_core::etc::NodeAvailability;
use gridsec_core::Time;
use gridsec_heuristics::common::MapCtx;

/// A fitness program compiled from one scheduling round's snapshot.
///
/// Compile once per round with [`FitnessKernel::recompile`] (reusing the
/// previous round's buffers), then evaluate every chromosome of every
/// generation against it.
#[derive(Debug, Clone, Default)]
pub struct FitnessKernel {
    n_jobs: usize,
    n_sites: usize,
    flow_weight: f64,
    /// `[job × site]` effective execution times; `+∞` ⇔ infeasible gene.
    eff: Vec<f64>,
    /// Per-job start floor: `now.max(arrival)`.
    floors: Vec<Time>,
    /// Per-job node width.
    widths: Vec<u32>,
    /// Resolved commit order (the reference path's `order_iter`).
    order: Vec<u32>,
    /// All sites' sorted free-times, concatenated in site order.
    base_free: Vec<Time>,
    /// Prefix offsets into `base_free`; site `s` owns `site_off[s]..site_off[s+1]`.
    site_off: Vec<u32>,
}

/// Reusable per-evaluation working memory for a [`FitnessKernel`].
///
/// Contents never influence results — every evaluation fully initialises
/// the slices it reads — so buffers can be pooled and shared across
/// chromosomes, generations and rounds exactly like the reference path's
/// availability scratch.
#[derive(Debug, Default)]
pub struct KernelScratch {
    /// Working copy of the `base_free` plane.
    free: Vec<Time>,
    /// Per-site "ready chain affected" marker for delta evaluation.
    site_mask: Vec<bool>,
}

impl FitnessKernel {
    /// Compiles a fresh kernel from a round snapshot (convenience wrapper
    /// over [`FitnessKernel::recompile`]).
    pub fn compile(
        ctx: &MapCtx,
        base_avail: &[NodeAvailability],
        kind: FitnessKind,
        risk: Option<&RiskWeights>,
        flow_weight: f64,
    ) -> FitnessKernel {
        let mut kernel = FitnessKernel::default();
        kernel.recompile(ctx, base_avail, kind, risk, flow_weight);
        kernel
    }

    /// Re-lowers the snapshot into this kernel's buffers, reusing their
    /// allocations. Called once per scheduling round; any change to the
    /// grid, trust ratings, security levels, availability or batch is
    /// picked up here because the kernel is rebuilt from the live
    /// snapshot, never cached across rounds.
    pub fn recompile(
        &mut self,
        ctx: &MapCtx,
        base_avail: &[NodeAvailability],
        kind: FitnessKind,
        risk: Option<&RiskWeights>,
        flow_weight: f64,
    ) {
        let n = ctx.n_jobs();
        let m = ctx.etc.n_sites();
        let _compile_span = gridsec_obs::span!("kernel_compile", jobs = n, sites = m);
        assert_eq!(
            base_avail.len(),
            m,
            "availability must cover every ETC site"
        );
        self.n_jobs = n;
        self.n_sites = m;
        self.flow_weight = flow_weight;

        self.eff.clear();
        self.eff.reserve(n * m);
        for j in 0..n {
            let w = ctx.widths[j];
            for (s, site) in base_avail.iter().enumerate() {
                let exec = ctx.etc.get(j, s);
                // The exact expression of the reference path, including the
                // risk multiplier applied *after* the raw-ETC lookup, so
                // finite products carry identical bits.
                let exec = match kind {
                    FitnessKind::Makespan => exec,
                    FitnessKind::ExpectedMakespan => exec * risk.map_or(1.0, |r| r.get(j, s)),
                };
                // Fold both of the reference path's infeasibility exits
                // (non-finite execution time; width 0 or wider than the
                // site) into the +∞ sentinel.
                let feasible = exec.is_finite() && w >= 1 && (w as usize) <= site.nodes();
                self.eff.push(if feasible { exec } else { f64::INFINITY });
            }
        }

        self.floors.clear();
        self.floors
            .extend((0..n).map(|j| ctx.now.max(ctx.arrivals[j])));
        self.widths.clear();
        self.widths.extend_from_slice(&ctx.widths);
        self.order.clear();
        self.order.extend(ctx.order_iter().map(|j| j as u32));

        self.base_free.clear();
        self.site_off.clear();
        self.site_off.reserve(m + 1);
        self.site_off.push(0);
        for a in base_avail {
            self.base_free.extend_from_slice(a.free_times());
            self.site_off.push(self.base_free.len() as u32);
        }
    }

    /// Number of jobs the kernel was compiled for.
    #[inline]
    pub fn n_jobs(&self) -> usize {
        self.n_jobs
    }

    /// Number of sites the kernel was compiled for.
    #[inline]
    pub fn n_sites(&self) -> usize {
        self.n_sites
    }

    /// Full replay: evaluates `genes` from the base availability plane,
    /// writing each job's completion time into `cts` (indexed by batch
    /// position). Returns the fitness; `+∞` means an infeasible gene was
    /// hit and `cts` is only partially written (callers must not use it
    /// as a delta parent — the GA gates on finite parent fitness).
    ///
    /// Bit-identical to
    /// [`evaluate_with_scratch`](crate::fitness::evaluate_with_scratch):
    /// same commit order, same [`Time`] arithmetic (`at_least`, `max`,
    /// `+`), same aggregation, and a merge-rotate commit that reproduces
    /// the reference's re-sorted segment bit for bit.
    pub fn evaluate_full(
        &self,
        genes: &[u16],
        cts: &mut Vec<Time>,
        scratch: &mut KernelScratch,
    ) -> f64 {
        debug_assert_eq!(genes.len(), self.n_jobs);
        scratch.free.clear();
        scratch.free.extend_from_slice(&self.base_free);
        cts.clear();
        cts.resize(self.n_jobs, Time::ZERO);
        let mut makespan = Time::ZERO;
        let mut sum_ct = 0.0;
        for &j in &self.order {
            let j = j as usize;
            let s = genes[j] as usize;
            let exec = self.eff[j * self.n_sites + s];
            if !exec.is_finite() {
                return f64::INFINITY;
            }
            let ct = self.replay_one(j, s, exec, &mut scratch.free);
            cts[j] = ct;
            makespan = makespan.max(ct);
            sum_ct += ct.seconds();
        }
        makespan.seconds() + self.flow_weight * (sum_ct / self.n_jobs as f64)
    }

    /// Delta replay: evaluates a child that differs from an
    /// already-evaluated parent only at genes in `from..n` (the
    /// crossover-cut / mutation-touched suffix tracked by the GA's
    /// operators).
    ///
    /// Only sites that genes moved onto or off of can see a different
    /// commit subsequence, so only jobs landing on those sites are
    /// replayed; everything else inherits the parent's completion time
    /// verbatim, and the aggregate is recomputed over all completion
    /// times in commit order — making the result bit-identical to
    /// [`FitnessKernel::evaluate_full`] on the child. Falls back to a
    /// full replay when at least half the batch needs recomputation.
    ///
    /// `parent_cts` must be the complete completion-time vector of a
    /// *finite-fitness* parent evaluation.
    #[allow(clippy::too_many_arguments)] // flat-slice kernel entry point
    pub fn evaluate_delta(
        &self,
        genes: &[u16],
        parent_genes: &[u16],
        parent_cts: &[Time],
        from: usize,
        cts: &mut Vec<Time>,
        scratch: &mut KernelScratch,
    ) -> f64 {
        let n = self.n_jobs;
        debug_assert_eq!(genes.len(), n);
        debug_assert_eq!(parent_genes.len(), n);
        debug_assert_eq!(parent_cts.len(), n);

        // Mark every site whose ready chain the gene diff can perturb.
        scratch.site_mask.clear();
        scratch.site_mask.resize(self.n_sites, false);
        let mut any = false;
        for j in from..n {
            if genes[j] != parent_genes[j] {
                scratch.site_mask[genes[j] as usize] = true;
                scratch.site_mask[parent_genes[j] as usize] = true;
                any = true;
            }
        }
        if !any {
            // Identical genome: the parent's outcome, re-aggregated (the
            // aggregation of a finite evaluation is a pure function of
            // its completion times, so this reproduces the parent
            // fitness bit for bit).
            cts.clear();
            cts.extend_from_slice(parent_cts);
            return self.aggregate(cts);
        }

        // Wide diffs replay everything — the crossover of two unrelated
        // parents routinely touches most sites, and patching then costs
        // more than the straight-line full pass.
        let moved = genes
            .iter()
            .filter(|&&g| scratch.site_mask[g as usize])
            .count();
        if moved * 2 >= n {
            return self.evaluate_full(genes, cts, scratch);
        }

        // Reset only the affected sites' segments from the base plane;
        // unaffected segments are never read on this path, so whatever a
        // previous evaluation left there is harmless.
        if scratch.free.len() == self.base_free.len() {
            for s in 0..self.n_sites {
                if scratch.site_mask[s] {
                    let (lo, hi) = self.site_span(s);
                    scratch.free[lo..hi].copy_from_slice(&self.base_free[lo..hi]);
                }
            }
        } else {
            scratch.free.clear();
            scratch.free.extend_from_slice(&self.base_free);
        }

        cts.clear();
        cts.extend_from_slice(parent_cts);
        for &j in &self.order {
            let j = j as usize;
            let s = genes[j] as usize;
            if !scratch.site_mask[s] {
                continue;
            }
            let exec = self.eff[j * self.n_sites + s];
            if !exec.is_finite() {
                return f64::INFINITY;
            }
            cts[j] = self.replay_one(j, s, exec, &mut scratch.free);
        }
        self.aggregate(cts)
    }

    /// Commits job `j` (feasible, effective time `exec`) onto site `s`'s
    /// segment of the free-time plane and returns its completion time —
    /// the flat-slice form of `NodeAvailability::earliest_start` +
    /// `commit`, with the re-sort replaced by a merge-rotate.
    ///
    /// The reference path overwrites the segment's first `w` entries with
    /// `ct` and re-sorts the whole segment. Here the segment is known
    /// sorted and `ct ≥ start ≥ seg[w-1] ≥ seg[..w]`, so the same sorted
    /// result is produced by dropping the `w` smallest entries and
    /// splicing `w` copies of `ct` at their ordered position — O(nodes)
    /// moves instead of a sort. Bit-identical: `Time`'s order is
    /// `total_cmp`, under which equal keys have equal bits, so a sorted
    /// segment is a unique byte sequence however it was produced.
    #[inline]
    fn replay_one(&self, j: usize, s: usize, exec: f64, free: &mut [Time]) -> Time {
        let (lo, hi) = self.site_span(s);
        let seg = &mut free[lo..hi];
        let w = self.widths[j] as usize;
        let start = seg[w - 1].at_least(self.floors[j]);
        let ct = start + Time::new(exec);
        let p = seg[w..].partition_point(|t| *t < ct);
        seg.copy_within(w..w + p, 0);
        seg[p..p + w].fill(ct);
        ct
    }

    /// `base_free` span owned by site `s`.
    #[inline]
    fn site_span(&self, s: usize) -> (usize, usize) {
        (self.site_off[s] as usize, self.site_off[s + 1] as usize)
    }

    /// Fitness from a complete completion-time vector: the same
    /// commit-order accumulation the full replay performs inline.
    fn aggregate(&self, cts: &[Time]) -> f64 {
        let mut makespan = Time::ZERO;
        let mut sum_ct = 0.0;
        for &j in &self.order {
            let ct = cts[j as usize];
            makespan = makespan.max(ct);
            sum_ct += ct.seconds();
        }
        makespan.seconds() + self.flow_weight * (sum_ct / self.n_jobs as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chromosome::Chromosome;
    use crate::fitness::{evaluate_with_scratch, DEFAULT_FLOW_WEIGHT};
    use gridsec_core::etc::EtcMatrix;
    use gridsec_core::rng::{stream, Stream};
    use gridsec_core::SecurityModel;
    use rand::Rng;

    /// A deliberately lumpy snapshot: multi-node sites, mixed widths, a
    /// preloaded site, non-zero arrivals and an explicit commit order.
    fn snapshot() -> (MapCtx, Vec<NodeAvailability>) {
        let n = 7;
        let m = 3;
        let mut etc = Vec::new();
        for j in 0..n {
            for s in 0..m {
                etc.push(5.0 + ((j * 31 + s * 17) % 23) as f64);
            }
        }
        // Job 5 fits nowhere but site 0 by ETC; job 6 is wider than site 2.
        etc[5 * m + 1] = f64::INFINITY;
        etc[5 * m + 2] = f64::INFINITY;
        let mut ctx = MapCtx {
            etc: EtcMatrix::from_raw(n, m, etc),
            widths: vec![1, 2, 1, 3, 1, 1, 4],
            arrivals: (0..n).map(|j| Time::new(j as f64 * 0.5)).collect(),
            candidates: vec![vec![0, 1, 2]; n],
            now: Time::new(1.0),
            commit_order: vec![6, 3, 1, 0, 2, 4, 5],
        };
        ctx.candidates[5] = vec![0];
        let mut avail = vec![
            NodeAvailability::new(4, Time::ZERO),
            NodeAvailability::new(4, Time::new(2.0)),
            NodeAvailability::new(2, Time::ZERO),
        ];
        avail[0].commit(2, Time::new(9.0));
        (ctx, avail)
    }

    fn reference(ctx: &MapCtx, avail: &[NodeAvailability], c: &Chromosome) -> f64 {
        let mut scratch = Vec::new();
        evaluate_with_scratch(
            ctx,
            avail,
            &mut scratch,
            c,
            FitnessKind::Makespan,
            None,
            DEFAULT_FLOW_WEIGHT,
        )
    }

    #[test]
    fn full_replay_matches_reference_bit_for_bit() {
        let (ctx, avail) = snapshot();
        let kernel = FitnessKernel::compile(
            &ctx,
            &avail,
            FitnessKind::Makespan,
            None,
            DEFAULT_FLOW_WEIGHT,
        );
        let mut scratch = KernelScratch::default();
        let mut cts = Vec::new();
        let mut rng = stream(42, Stream::Genetic);
        for _ in 0..200 {
            let c = Chromosome::random(&ctx.candidates, &mut rng);
            let want = reference(&ctx, &avail, &c);
            let got = kernel.evaluate_full(c.genes(), &mut cts, &mut scratch);
            assert_eq!(want.to_bits(), got.to_bits(), "genes {:?}", c.genes());
        }
    }

    #[test]
    fn infeasible_genes_are_infinite_in_both_paths() {
        let (ctx, avail) = snapshot();
        let kernel = FitnessKernel::compile(
            &ctx,
            &avail,
            FitnessKind::Makespan,
            None,
            DEFAULT_FLOW_WEIGHT,
        );
        let mut scratch = KernelScratch::default();
        let mut cts = Vec::new();
        // Job 5 on site 1: non-finite ETC. Job 6 on site 2: width 4 > 2.
        for genes in [vec![0, 0, 0, 0, 0, 1, 0], vec![0, 0, 0, 0, 0, 0, 2]] {
            let c = Chromosome::from_genes(genes);
            assert!(reference(&ctx, &avail, &c).is_infinite());
            assert!(kernel
                .evaluate_full(c.genes(), &mut cts, &mut scratch)
                .is_infinite());
        }
    }

    #[test]
    fn risk_lowering_matches_reference() {
        let (ctx, avail) = snapshot();
        let model = SecurityModel::new(3.0).unwrap();
        let sds: Vec<f64> = (0..ctx.n_jobs()).map(|j| 0.3 + 0.1 * j as f64).collect();
        let sls = vec![0.9, 0.4, 0.6];
        let risk = RiskWeights::build(&model, &sds, &sls);
        let kernel = FitnessKernel::compile(
            &ctx,
            &avail,
            FitnessKind::ExpectedMakespan,
            Some(&risk),
            DEFAULT_FLOW_WEIGHT,
        );
        let mut scratch = KernelScratch::default();
        let mut cts = Vec::new();
        let mut ref_scratch = Vec::new();
        let mut rng = stream(7, Stream::Genetic);
        for _ in 0..100 {
            let c = Chromosome::random(&ctx.candidates, &mut rng);
            let want = evaluate_with_scratch(
                &ctx,
                &avail,
                &mut ref_scratch,
                &c,
                FitnessKind::ExpectedMakespan,
                Some(&risk),
                DEFAULT_FLOW_WEIGHT,
            );
            let got = kernel.evaluate_full(c.genes(), &mut cts, &mut scratch);
            assert_eq!(want.to_bits(), got.to_bits());
        }
    }

    #[test]
    fn delta_matches_full_for_random_patches() {
        let (ctx, avail) = snapshot();
        let kernel = FitnessKernel::compile(
            &ctx,
            &avail,
            FitnessKind::Makespan,
            None,
            DEFAULT_FLOW_WEIGHT,
        );
        let n = ctx.n_jobs();
        let mut scratch = KernelScratch::default();
        let mut parent_cts = Vec::new();
        let mut full_cts = Vec::new();
        let mut delta_cts = Vec::new();
        let mut rng = stream(99, Stream::Genetic);
        let mut tried = 0;
        while tried < 200 {
            let parent = Chromosome::random(&ctx.candidates, &mut rng);
            let pf = kernel.evaluate_full(parent.genes(), &mut parent_cts, &mut scratch);
            if !pf.is_finite() {
                continue;
            }
            // Random patch: between 0 and n random gene rewrites.
            let mut child = parent.clone();
            let k = rng.gen_range(0..=n);
            let mut from = n;
            for _ in 0..k {
                let j = rng.gen_range(0..n);
                let cand = &ctx.candidates[j];
                child.genes_mut()[j] = cand[rng.gen_range(0..cand.len())] as u16;
                from = from.min(j);
            }
            let want = kernel.evaluate_full(child.genes(), &mut full_cts, &mut scratch);
            let got = kernel.evaluate_delta(
                child.genes(),
                parent.genes(),
                &parent_cts,
                from,
                &mut delta_cts,
                &mut scratch,
            );
            assert_eq!(want.to_bits(), got.to_bits(), "patch width {k}");
            if want.is_finite() {
                assert_eq!(full_cts, delta_cts, "completion times must agree");
            }
            tried += 1;
        }
    }

    #[test]
    fn delta_with_empty_patch_reproduces_parent_fitness() {
        let (ctx, avail) = snapshot();
        let kernel = FitnessKernel::compile(
            &ctx,
            &avail,
            FitnessKind::Makespan,
            None,
            DEFAULT_FLOW_WEIGHT,
        );
        let mut scratch = KernelScratch::default();
        let mut parent_cts = Vec::new();
        let mut cts = Vec::new();
        let c = Chromosome::from_genes(vec![0, 1, 2, 0, 1, 0, 0]);
        let pf = kernel.evaluate_full(c.genes(), &mut parent_cts, &mut scratch);
        assert!(pf.is_finite());
        let df =
            kernel.evaluate_delta(c.genes(), c.genes(), &parent_cts, 0, &mut cts, &mut scratch);
        assert_eq!(pf.to_bits(), df.to_bits());
        assert_eq!(parent_cts, cts);
    }

    #[test]
    fn recompile_reuses_buffers_across_snapshots() {
        let (ctx, avail) = snapshot();
        let mut kernel = FitnessKernel::compile(
            &ctx,
            &avail,
            FitnessKind::Makespan,
            None,
            DEFAULT_FLOW_WEIGHT,
        );
        // Recompile on a smaller snapshot, then back; results must track
        // the live snapshot exactly.
        let etc = EtcMatrix::from_raw(2, 2, vec![10.0, 20.0, 30.0, 15.0]);
        let small_ctx = MapCtx {
            etc,
            widths: vec![1, 1],
            arrivals: vec![Time::ZERO; 2],
            candidates: vec![vec![0, 1]; 2],
            now: Time::ZERO,
            commit_order: vec![],
        };
        let small_avail = vec![
            NodeAvailability::new(1, Time::ZERO),
            NodeAvailability::new(1, Time::ZERO),
        ];
        kernel.recompile(
            &small_ctx,
            &small_avail,
            FitnessKind::Makespan,
            None,
            DEFAULT_FLOW_WEIGHT,
        );
        let mut scratch = KernelScratch::default();
        let mut cts = Vec::new();
        let c = Chromosome::from_genes(vec![0, 1]);
        let got = kernel.evaluate_full(c.genes(), &mut cts, &mut scratch);
        assert_eq!(
            got.to_bits(),
            reference(&small_ctx, &small_avail, &c).to_bits()
        );
        kernel.recompile(
            &ctx,
            &avail,
            FitnessKind::Makespan,
            None,
            DEFAULT_FLOW_WEIGHT,
        );
        let mut rng = stream(3, Stream::Genetic);
        let c = Chromosome::random(&ctx.candidates, &mut rng);
        let got = kernel.evaluate_full(c.genes(), &mut cts, &mut scratch);
        assert_eq!(got.to_bits(), reference(&ctx, &avail, &c).to_bits());
    }
}
