//! The conventional GA baseline: identical engine, but every round starts
//! from a purely random population (no history, no heuristic seeds). This
//! is the "traditional GA" whose slow convergence motivates the STGA
//! (Fig. 5).

use crate::chromosome::Chromosome;
use crate::fitness::{FitnessKind, RiskCache};
use crate::ga::{evolve_with_pool, GaPool, GaResult};
use crate::params::GaParams;
use gridsec_core::rng::{stream, Stream};
use gridsec_core::{BatchSchedule, Result, RiskMode, SiteId};
use gridsec_heuristics::common::{Fallback, MapCtx};
use gridsec_sim::{BatchJob, BatchScheduler, GridView};
use rand_chacha::ChaCha8Rng;

/// Conventional (space-only) genetic algorithm scheduler.
pub struct StandardGa {
    params: GaParams,
    rng: ChaCha8Rng,
    fallback: Fallback,
    fitness: FitnessKind,
    last_result: Option<GaResult>,
    /// Buffers reused across rounds (see [`GaPool`]).
    pool: GaPool,
    /// Fingerprint-keyed risk-weight cache (see
    /// [`Stga`](crate::Stga)'s counterpart); only consulted for
    /// [`FitnessKind::ExpectedMakespan`].
    risk_cache: RiskCache,
}

impl StandardGa {
    /// Creates a conventional GA scheduler.
    pub fn new(params: GaParams) -> Result<StandardGa> {
        params.validate()?;
        let rng = stream(params.seed, Stream::Genetic);
        Ok(StandardGa {
            params,
            rng,
            fallback: Fallback::default(),
            fitness: FitnessKind::Makespan,
            last_result: None,
            pool: GaPool::new(),
            risk_cache: RiskCache::new(),
        })
    }

    /// Overrides the fitness variant.
    pub fn with_fitness(mut self, kind: FitnessKind) -> StandardGa {
        self.fitness = kind;
        self
    }

    /// Convergence trajectory of the most recent round.
    pub fn last_trajectory(&self) -> Option<&[f64]> {
        self.last_result.as_ref().map(|r| r.trajectory.as_slice())
    }

    /// The parameters in force.
    pub fn params(&self) -> &GaParams {
        &self.params
    }
}

impl BatchScheduler for StandardGa {
    fn name(&self) -> String {
        "GA".to_string()
    }

    fn on_reconfigure(&mut self) {
        self.risk_cache.invalidate();
    }

    fn schedule(&mut self, batch: &[BatchJob], view: &GridView<'_>) -> BatchSchedule {
        let ctx = MapCtx::build(batch, view, RiskMode::Risky, self.fallback);
        let risk_weights = match self.fitness {
            FitnessKind::Makespan => None,
            FitnessKind::ExpectedMakespan => {
                let sds: Vec<f64> = batch.iter().map(|b| b.job.security_demand).collect();
                let sls: Vec<f64> = view.grid.security_levels().collect();
                Some(self.risk_cache.get_or_build(
                    &view.model,
                    view.grid.security_fingerprint(),
                    &sds,
                    &sls,
                ))
            }
        };
        let result = evolve_with_pool(
            &ctx,
            view.avail,
            Vec::<Chromosome>::new(),
            &self.params,
            self.fitness,
            risk_weights,
            &mut self.rng,
            &mut self.pool,
        );
        let schedule = BatchSchedule::from_pairs(
            batch
                .iter()
                .enumerate()
                .map(|(j, bj)| (bj.job.id, SiteId(result.best.site_of(j)))),
        );
        self.last_result = Some(result);
        schedule
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridsec_core::etc::NodeAvailability;
    use gridsec_core::{Grid, Job, SecurityModel, Site, Time};

    #[test]
    fn conventional_ga_schedules_validly() {
        let grid = Grid::new(vec![
            Site::builder(0).nodes(1).speed(1.0).build().unwrap(),
            Site::builder(1).nodes(1).speed(3.0).build().unwrap(),
        ])
        .unwrap();
        let avail = vec![
            NodeAvailability::new(1, Time::ZERO),
            NodeAvailability::new(1, Time::ZERO),
        ];
        let view = GridView {
            grid: &grid,
            avail: &avail,
            now: Time::ZERO,
            model: SecurityModel::default(),
        };
        let jobs: Vec<Job> = (0..6)
            .map(|i| Job::builder(i).work(30.0).build().unwrap())
            .collect();
        let batch: Vec<BatchJob> = jobs
            .iter()
            .cloned()
            .map(|job| BatchJob {
                job,
                secure_only: false,
            })
            .collect();
        let mut ga = StandardGa::new(
            GaParams::default()
                .with_population(30)
                .with_generations(30)
                .with_seed(1),
        )
        .unwrap();
        let s = ga.schedule(&batch, &view);
        assert!(s.validate(&jobs, &grid).is_ok());
        assert_eq!(ga.name(), "GA");
        // 6 × 30 s of work over speeds (1, 3): optimum near 60 s; a short
        // GA run should land below the all-on-one-site extremes.
        let fit = ga.last_result.as_ref().unwrap().best_fitness;
        assert!(fit < 180.0, "fitness {fit}");
    }
}
