//! Island-model parallel GA: several sub-populations evolve concurrently
//! (fanned out over the shared rayon worker pool, so island-level and
//! fitness-level parallelism draw from the same threads instead of
//! oversubscribing) and exchange their best individuals along a ring after
//! every epoch.
//!
//! Islands are a classic scalability construction for GAs: the per-island
//! populations are smaller (cheaper generations), threads use otherwise
//! idle cores, and the restricted gene flow preserves diversity longer
//! than one panmictic population. The schedule produced is deterministic
//! for a given seed — each island owns an independent RNG stream and the
//! ring migration is order-independent.
//!
//! This is an extension beyond the paper (its GA is single-population);
//! the `ablations` bench compares the two.

use crate::chromosome::Chromosome;
use crate::fitness::{FitnessKind, RiskWeights};
use crate::ga::{evolve_population, GaResult};
use crate::params::GaParams;
use gridsec_core::etc::NodeAvailability;
use gridsec_core::rng::{stream, subseed, Stream};
use gridsec_core::{Error, Result};
use gridsec_heuristics::common::MapCtx;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// Island-model parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IslandParams {
    /// Per-island GA parameters (`population` is the island size;
    /// `generations` is the total across all epochs).
    pub ga: GaParams,
    /// Number of islands (≥ 1; 1 degenerates to the plain GA).
    pub islands: usize,
    /// Number of migration epochs (the total generations are split evenly
    /// across epochs).
    pub epochs: usize,
    /// Individuals copied to the next island in the ring per epoch.
    pub migrants: usize,
}

impl Default for IslandParams {
    fn default() -> Self {
        IslandParams {
            ga: GaParams::default().with_population(50),
            islands: 4,
            epochs: 5,
            migrants: 2,
        }
    }
}

impl IslandParams {
    /// Validates the parameters.
    pub fn validate(&self) -> Result<()> {
        self.ga.validate()?;
        if self.islands == 0 {
            return Err(Error::invalid("islands", "need at least one island"));
        }
        if self.epochs == 0 {
            return Err(Error::invalid("epochs", "need at least one epoch"));
        }
        if self.migrants >= self.ga.population {
            return Err(Error::invalid(
                "migrants",
                "must be below the island population",
            ));
        }
        Ok(())
    }
}

/// State of one island between epochs.
struct Island {
    population: Vec<Chromosome>,
    fitness: Vec<f64>,
    best: Option<GaResult>,
    seed: u64,
}

/// Runs the island-model GA and returns the globally best result.
///
/// `initial` seeds island 0 (history/heuristic chromosomes); the other
/// islands start random — mirroring the STGA's "diversity" requirement at
/// the island level.
pub fn evolve_islands(
    ctx: &MapCtx,
    base_avail: &[NodeAvailability],
    initial: Vec<Chromosome>,
    params: &IslandParams,
    kind: FitnessKind,
    risk: Option<&RiskWeights>,
) -> GaResult {
    params.validate().expect("island parameters must be valid");
    let per_epoch = (params.ga.generations / params.epochs).max(1);
    let mut islands: Vec<Island> = (0..params.islands)
        .map(|i| Island {
            population: if i == 0 { initial.clone() } else { Vec::new() },
            fitness: Vec::new(),
            best: None,
            seed: subseed(params.ga.seed, 0xA150 + i as u64),
        })
        .collect();

    for epoch in 0..params.epochs {
        // Last epoch absorbs the rounding remainder.
        let gens = if epoch + 1 == params.epochs {
            // Saturating: with epochs > generations, per_epoch is clamped to
            // 1 and the product can exceed the total.
            params
                .ga
                .generations
                .saturating_sub(per_epoch * (params.epochs - 1))
        } else {
            per_epoch
        };
        let epoch_params = GaParams {
            generations: gens.max(1),
            ..params.ga
        };
        islands.par_iter_mut().for_each(|island| {
            let mut rng = stream(island.seed, Stream::Custom(epoch as u64));
            let seeds = std::mem::take(&mut island.population);
            let (result, population, fitness) =
                evolve_population(ctx, base_avail, seeds, &epoch_params, kind, risk, &mut rng);
            island.population = population;
            island.fitness = fitness;
            let better = island
                .best
                .as_ref()
                .is_none_or(|b| result.best_fitness < b.best_fitness);
            if better {
                island.best = Some(result);
            }
        });

        // Ring migration: island i sends its best `migrants` to island
        // (i+1) % k, replacing the receiver's worst individuals.
        if params.islands > 1 && params.migrants > 0 && epoch + 1 < params.epochs {
            let emigrants: Vec<Vec<Chromosome>> = islands
                .iter()
                .map(|isl| {
                    let mut idx: Vec<usize> = (0..isl.population.len()).collect();
                    idx.sort_by(|&a, &b| isl.fitness[a].total_cmp(&isl.fitness[b]));
                    idx.into_iter()
                        .take(params.migrants)
                        .map(|i| isl.population[i].clone())
                        .collect()
                })
                .collect();
            let k = islands.len();
            for (i, migrants) in emigrants.into_iter().enumerate() {
                let to = (i + 1) % k;
                let isl = &mut islands[to];
                let mut idx: Vec<usize> = (0..isl.population.len()).collect();
                idx.sort_by(|&a, &b| isl.fitness[b].total_cmp(&isl.fitness[a])); // worst first
                for (slot, migrant) in idx.into_iter().zip(migrants) {
                    isl.population[slot] = migrant;
                }
            }
        }
    }

    islands
        .into_iter()
        .filter_map(|i| i.best)
        .min_by(|a, b| a.best_fitness.total_cmp(&b.best_fitness))
        .expect("at least one island ran")
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridsec_core::etc::EtcMatrix;
    use gridsec_core::Time;

    /// 8 jobs × 4 identical single-node sites.
    fn ctx() -> (MapCtx, Vec<NodeAvailability>) {
        let n = 8;
        let m = 4;
        let mut etc = Vec::new();
        for j in 0..n {
            for _ in 0..m {
                etc.push(5.0 * (j + 1) as f64);
            }
        }
        let ctx = MapCtx {
            etc: EtcMatrix::from_raw(n, m, etc),
            widths: vec![1; n],
            arrivals: vec![Time::ZERO; n],
            candidates: vec![(0..m).collect(); n],
            now: Time::ZERO,
            commit_order: vec![],
        };
        let avail = vec![NodeAvailability::new(1, Time::ZERO); m];
        (ctx, avail)
    }

    fn params() -> IslandParams {
        IslandParams {
            ga: GaParams::default()
                .with_population(20)
                .with_generations(40)
                .with_seed(7),
            islands: 3,
            epochs: 4,
            migrants: 2,
        }
    }

    #[test]
    fn islands_find_good_schedules() {
        let (ctx, avail) = ctx();
        let r = evolve_islands(&ctx, &avail, vec![], &params(), FitnessKind::Makespan, None);
        // Total work 5(1+…+8) = 180 over 4 sites → bound 45; a packing at
        // or near 50 is easily reachable.
        assert!(r.best_fitness <= 60.0, "fitness {}", r.best_fitness);
        assert!(r.best.is_feasible(&ctx.candidates));
    }

    #[test]
    fn deterministic_across_runs() {
        let (ctx, avail) = ctx();
        let a = evolve_islands(&ctx, &avail, vec![], &params(), FitnessKind::Makespan, None);
        let b = evolve_islands(&ctx, &avail, vec![], &params(), FitnessKind::Makespan, None);
        assert_eq!(a.best_fitness, b.best_fitness);
        assert_eq!(a.best, b.best);
    }

    #[test]
    fn single_island_degenerates() {
        let (ctx, avail) = ctx();
        let mut p = params();
        p.islands = 1;
        p.migrants = 0;
        let r = evolve_islands(&ctx, &avail, vec![], &p, FitnessKind::Makespan, None);
        assert!(r.best_fitness.is_finite());
    }

    #[test]
    fn invalid_params_rejected() {
        let mut p = params();
        p.islands = 0;
        assert!(p.validate().is_err());
        let mut p = params();
        p.epochs = 0;
        assert!(p.validate().is_err());
        let mut p = params();
        p.migrants = p.ga.population;
        assert!(p.validate().is_err());
    }

    #[test]
    fn seeded_island_zero_propagates_quality() {
        let (ctx, avail) = ctx();
        // A near-optimal seed in island 0 must never be lost.
        let seed_chrom = Chromosome::from_genes(vec![0, 1, 2, 3, 0, 1, 2, 3]);
        let seed_fit =
            crate::fitness::evaluate(&ctx, &avail, &seed_chrom, FitnessKind::Makespan, None);
        let r = evolve_islands(
            &ctx,
            &avail,
            vec![seed_chrom],
            &params(),
            FitnessKind::Makespan,
            None,
        );
        assert!(r.best_fitness <= seed_fit + 1e-9);
    }
}
