//! Selection: value-based roulette wheel with elitism (§3).
//!
//! The scheduling fitness is a *cost* (makespan — smaller is better), so
//! the wheel weights each individual by `(worst − fitness)`: the best
//! solution gets the largest slice, the worst gets (almost) none. Elitism
//! copies the best `k` individuals unchanged into the next generation.

use rand::Rng;

/// Indices of the `k` best (lowest-fitness) individuals, in order.
pub fn elite_indices(fitness: &[f64], k: usize) -> Vec<usize> {
    let mut idx = Vec::new();
    elite_indices_into(fitness, k, &mut idx);
    idx
}

/// [`elite_indices`] into a caller-owned scratch buffer — the evolve loop
/// calls this once per generation without re-allocating. `out` is
/// cleared first; after the call it holds the `k` best indices in order.
pub fn elite_indices_into(fitness: &[f64], k: usize, out: &mut Vec<usize>) {
    out.clear();
    out.extend(0..fitness.len());
    // Stable sort: equal-fitness individuals keep index order, so elite
    // selection is deterministic and ties go to the lowest index.
    out.sort_by(|&a, &b| fitness[a].total_cmp(&fitness[b]));
    out.truncate(k);
}

/// A pre-built roulette wheel over minimisation fitness values.
#[derive(Debug, Clone)]
pub struct RouletteWheel {
    cumulative: Vec<f64>,
    total: f64,
}

impl Default for RouletteWheel {
    fn default() -> Self {
        Self::new()
    }
}

impl RouletteWheel {
    /// An empty wheel to be filled by [`RouletteWheel::rebuild`] — lets
    /// the evolve loop own one cumulative table for its whole run instead
    /// of allocating a fresh one per generation.
    pub fn new() -> RouletteWheel {
        RouletteWheel {
            cumulative: Vec::new(),
            total: 0.0,
        }
    }

    /// Builds the wheel. Infinite fitness values get zero weight. When all
    /// finite values are equal (or none are finite) the wheel degenerates
    /// to uniform over the finite (or all) individuals.
    pub fn build(fitness: &[f64]) -> RouletteWheel {
        let mut wheel = RouletteWheel::new();
        wheel.rebuild(fitness);
        wheel
    }

    /// Rebuilds the wheel in place over new fitness values, reusing the
    /// cumulative table's allocation. Semantics are exactly those of
    /// [`RouletteWheel::build`].
    pub fn rebuild(&mut self, fitness: &[f64]) {
        assert!(!fitness.is_empty(), "wheel needs at least one individual");
        let worst = fitness
            .iter()
            .copied()
            .filter(|f| f.is_finite())
            .fold(f64::NEG_INFINITY, f64::max);
        self.cumulative.clear();
        self.cumulative.reserve(fitness.len());
        self.total = 0.0;
        if !worst.is_finite() {
            // No finite individual: uniform.
            for _ in fitness {
                self.total += 1.0;
                self.cumulative.push(self.total);
            }
            return;
        }
        // Small floor so the worst finite individual keeps a sliver of
        // probability (pure (worst − f) would zero it out).
        let span = fitness
            .iter()
            .copied()
            .filter(|f| f.is_finite())
            .fold(f64::INFINITY, f64::min);
        let floor = ((worst - span).abs().max(worst.abs()) * 1e-6).max(f64::MIN_POSITIVE);
        for &f in fitness {
            let w = if f.is_finite() {
                (worst - f) + floor
            } else {
                0.0
            };
            self.total += w;
            self.cumulative.push(self.total);
        }
        if self.total <= 0.0 {
            // All-equal degenerate case: uniform over finite individuals.
            self.total = 0.0;
            self.cumulative.clear();
            for &f in fitness {
                self.total += if f.is_finite() { 1.0 } else { 0.0 };
                self.cumulative.push(self.total);
            }
        }
    }

    /// Spins the wheel, returning an individual index.
    pub fn spin<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let x = rng.gen_range(0.0..self.total.max(f64::MIN_POSITIVE));
        match self
            .cumulative
            .binary_search_by(|c| c.partial_cmp(&x).expect("no NaN in wheel"))
        {
            Ok(i) => (i + 1).min(self.cumulative.len() - 1),
            Err(i) => i.min(self.cumulative.len() - 1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridsec_core::rng::{stream, Stream};

    #[test]
    fn elite_returns_best_indices() {
        let fit = vec![5.0, 1.0, 3.0, 0.5];
        assert_eq!(elite_indices(&fit, 2), vec![3, 1]);
        assert_eq!(elite_indices(&fit, 0), Vec::<usize>::new());
        assert_eq!(elite_indices(&fit, 10), vec![3, 1, 2, 0]);
    }

    #[test]
    fn wheel_prefers_low_fitness() {
        let fit = vec![10.0, 100.0]; // index 0 is much better
        let wheel = RouletteWheel::build(&fit);
        let mut rng = stream(1, Stream::Genetic);
        let mut count0 = 0;
        for _ in 0..10_000 {
            if wheel.spin(&mut rng) == 0 {
                count0 += 1;
            }
        }
        // Weight ratio ≈ 90 : ~0 → index 0 should win almost always.
        assert!(count0 > 9_500, "count0 = {count0}");
    }

    #[test]
    fn wheel_uniform_when_all_equal() {
        let fit = vec![7.0; 4];
        let wheel = RouletteWheel::build(&fit);
        let mut rng = stream(2, Stream::Genetic);
        let mut counts = [0usize; 4];
        for _ in 0..8_000 {
            counts[wheel.spin(&mut rng)] += 1;
        }
        for c in counts {
            assert!(c > 1_500, "counts {counts:?}");
        }
    }

    #[test]
    fn wheel_excludes_infinite_individuals() {
        let fit = vec![f64::INFINITY, 5.0, f64::INFINITY, 6.0];
        let wheel = RouletteWheel::build(&fit);
        let mut rng = stream(3, Stream::Genetic);
        for _ in 0..2_000 {
            let i = wheel.spin(&mut rng);
            assert!(i == 1 || i == 3, "picked infeasible {i}");
        }
    }

    #[test]
    fn rebuild_matches_build_and_reuses_allocation() {
        let fits: [&[f64]; 4] = [
            &[4.0, 2.0, 9.0],
            &[7.0; 4],
            &[f64::INFINITY, 5.0, f64::INFINITY, 6.0],
            &[f64::INFINITY; 3],
        ];
        let mut wheel = RouletteWheel::new();
        wheel.rebuild(&[1.0; 8]); // warm the allocation past every case
        let cap = wheel.cumulative.capacity();
        for fit in fits {
            wheel.rebuild(fit);
            let fresh = RouletteWheel::build(fit);
            assert_eq!(wheel.cumulative, fresh.cumulative);
            assert_eq!(wheel.total, fresh.total);
            assert_eq!(wheel.cumulative.capacity(), cap, "table re-allocated");
        }
    }

    #[test]
    fn elite_indices_into_reuses_buffer() {
        let fit = vec![5.0, 1.0, 3.0, 0.5];
        let mut out = Vec::with_capacity(8);
        let cap = out.capacity();
        elite_indices_into(&fit, 2, &mut out);
        assert_eq!(out, vec![3, 1]);
        elite_indices_into(&fit, 10, &mut out);
        assert_eq!(out, vec![3, 1, 2, 0]);
        assert_eq!(out.capacity(), cap);
        // Equal fitness: stable order, lowest indices first.
        elite_indices_into(&[2.0; 5], 3, &mut out);
        assert_eq!(out, vec![0, 1, 2]);
    }

    #[test]
    fn wheel_handles_all_infinite() {
        let fit = vec![f64::INFINITY; 3];
        let wheel = RouletteWheel::build(&fit);
        let mut rng = stream(4, Stream::Genetic);
        let i = wheel.spin(&mut rng);
        assert!(i < 3);
    }
}
