//! Selection: value-based roulette wheel with elitism (§3).
//!
//! The scheduling fitness is a *cost* (makespan — smaller is better), so
//! the wheel weights each individual by `(worst − fitness)`: the best
//! solution gets the largest slice, the worst gets (almost) none. Elitism
//! copies the best `k` individuals unchanged into the next generation.

use rand::Rng;

/// Indices of the `k` best (lowest-fitness) individuals, in order.
pub fn elite_indices(fitness: &[f64], k: usize) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..fitness.len()).collect();
    idx.sort_by(|&a, &b| fitness[a].total_cmp(&fitness[b]));
    idx.truncate(k);
    idx
}

/// A pre-built roulette wheel over minimisation fitness values.
#[derive(Debug, Clone)]
pub struct RouletteWheel {
    cumulative: Vec<f64>,
    total: f64,
}

impl RouletteWheel {
    /// Builds the wheel. Infinite fitness values get zero weight. When all
    /// finite values are equal (or none are finite) the wheel degenerates
    /// to uniform over the finite (or all) individuals.
    pub fn build(fitness: &[f64]) -> RouletteWheel {
        assert!(!fitness.is_empty(), "wheel needs at least one individual");
        let worst = fitness
            .iter()
            .copied()
            .filter(|f| f.is_finite())
            .fold(f64::NEG_INFINITY, f64::max);
        let mut cumulative = Vec::with_capacity(fitness.len());
        let mut total = 0.0;
        if !worst.is_finite() {
            // No finite individual: uniform.
            for _ in fitness {
                total += 1.0;
                cumulative.push(total);
            }
            return RouletteWheel { cumulative, total };
        }
        // Small floor so the worst finite individual keeps a sliver of
        // probability (pure (worst − f) would zero it out).
        let span = fitness
            .iter()
            .copied()
            .filter(|f| f.is_finite())
            .fold(f64::INFINITY, f64::min);
        let floor = ((worst - span).abs().max(worst.abs()) * 1e-6).max(f64::MIN_POSITIVE);
        for &f in fitness {
            let w = if f.is_finite() {
                (worst - f) + floor
            } else {
                0.0
            };
            total += w;
            cumulative.push(total);
        }
        if total <= 0.0 {
            // All-equal degenerate case: uniform over finite individuals.
            total = 0.0;
            cumulative.clear();
            for &f in fitness {
                total += if f.is_finite() { 1.0 } else { 0.0 };
                cumulative.push(total);
            }
        }
        RouletteWheel { cumulative, total }
    }

    /// Spins the wheel, returning an individual index.
    pub fn spin<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let x = rng.gen_range(0.0..self.total.max(f64::MIN_POSITIVE));
        match self
            .cumulative
            .binary_search_by(|c| c.partial_cmp(&x).expect("no NaN in wheel"))
        {
            Ok(i) => (i + 1).min(self.cumulative.len() - 1),
            Err(i) => i.min(self.cumulative.len() - 1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridsec_core::rng::{stream, Stream};

    #[test]
    fn elite_returns_best_indices() {
        let fit = vec![5.0, 1.0, 3.0, 0.5];
        assert_eq!(elite_indices(&fit, 2), vec![3, 1]);
        assert_eq!(elite_indices(&fit, 0), Vec::<usize>::new());
        assert_eq!(elite_indices(&fit, 10), vec![3, 1, 2, 0]);
    }

    #[test]
    fn wheel_prefers_low_fitness() {
        let fit = vec![10.0, 100.0]; // index 0 is much better
        let wheel = RouletteWheel::build(&fit);
        let mut rng = stream(1, Stream::Genetic);
        let mut count0 = 0;
        for _ in 0..10_000 {
            if wheel.spin(&mut rng) == 0 {
                count0 += 1;
            }
        }
        // Weight ratio ≈ 90 : ~0 → index 0 should win almost always.
        assert!(count0 > 9_500, "count0 = {count0}");
    }

    #[test]
    fn wheel_uniform_when_all_equal() {
        let fit = vec![7.0; 4];
        let wheel = RouletteWheel::build(&fit);
        let mut rng = stream(2, Stream::Genetic);
        let mut counts = [0usize; 4];
        for _ in 0..8_000 {
            counts[wheel.spin(&mut rng)] += 1;
        }
        for c in counts {
            assert!(c > 1_500, "counts {counts:?}");
        }
    }

    #[test]
    fn wheel_excludes_infinite_individuals() {
        let fit = vec![f64::INFINITY, 5.0, f64::INFINITY, 6.0];
        let wheel = RouletteWheel::build(&fit);
        let mut rng = stream(3, Stream::Genetic);
        for _ in 0..2_000 {
            let i = wheel.spin(&mut rng);
            assert!(i == 1 || i == 3, "picked infeasible {i}");
        }
    }

    #[test]
    fn wheel_handles_all_infinite() {
        let fit = vec![f64::INFINITY; 3];
        let wheel = RouletteWheel::build(&fit);
        let mut rng = stream(4, Stream::Genetic);
        let i = wheel.spin(&mut rng);
        assert!(i < 3);
    }
}
