//! Tabu-search batch scheduler — another of Braun et al.'s eleven classic
//! mapping heuristics, included as a metaheuristic baseline next to the
//! GA and simulated annealing.
//!
//! Steepest-descent over single-gene moves with a recency-based tabu list
//! on `(job, site)` re-assignments; an aspiration criterion admits tabu
//! moves that improve on the global best.

use crate::chromosome::Chromosome;
use crate::fitness::{evaluate_with_scratch, FitnessKind};
use gridsec_core::rng::{stream, Stream};
use gridsec_core::{BatchSchedule, Error, Result, RiskMode, SiteId};
use gridsec_heuristics::common::{Fallback, MapCtx};
use gridsec_sim::{BatchJob, BatchScheduler, GridView};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Tabu-search parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TabuParams {
    /// Number of moves (iterations).
    pub iterations: usize,
    /// Length of the tabu list (forbidden recent `(job, site)` pairs).
    pub tenure: usize,
    /// RNG seed (initial solution).
    pub seed: u64,
}

impl Default for TabuParams {
    fn default() -> Self {
        TabuParams {
            iterations: 500,
            tenure: 32,
            seed: 0x7AB0,
        }
    }
}

impl TabuParams {
    /// Validates the parameters.
    pub fn validate(&self) -> Result<()> {
        if self.iterations == 0 {
            return Err(Error::invalid("iterations", "must be ≥ 1"));
        }
        if self.tenure == 0 {
            return Err(Error::invalid("tenure", "must be ≥ 1"));
        }
        Ok(())
    }
}

/// The tabu-search scheduler (risky-mode candidates).
pub struct TabuSearch {
    params: TabuParams,
    rng: ChaCha8Rng,
    fallback: Fallback,
}

impl TabuSearch {
    /// Creates a tabu-search scheduler.
    pub fn new(params: TabuParams) -> Result<TabuSearch> {
        params.validate()?;
        Ok(TabuSearch {
            rng: stream(params.seed, Stream::Custom(0x7AB7)),
            params,
            fallback: Fallback::default(),
        })
    }

    /// Runs the search on one batch, returning the best chromosome and
    /// its fitness.
    pub fn search(
        &mut self,
        ctx: &MapCtx,
        base_avail: &[gridsec_core::etc::NodeAvailability],
    ) -> (Chromosome, f64) {
        let mut scratch = Vec::with_capacity(base_avail.len());
        let eval = |c: &Chromosome, scratch: &mut Vec<_>| {
            evaluate_with_scratch(
                ctx,
                base_avail,
                scratch,
                c,
                FitnessKind::Makespan,
                None,
                crate::fitness::DEFAULT_FLOW_WEIGHT,
            )
        };
        let mut current = Chromosome::random(&ctx.candidates, &mut self.rng);
        let mut current_fit = eval(&current, &mut scratch);
        let mut best = current.clone();
        let mut best_fit = current_fit;
        let mut tabu: VecDeque<(usize, u16)> = VecDeque::with_capacity(self.params.tenure);

        for _ in 0..self.params.iterations {
            // Full single-gene neighbourhood scan (steepest descent).
            let mut move_best: Option<(usize, u16, f64)> = None;
            for j in 0..ctx.n_jobs() {
                let old = current.genes()[j];
                for &s in &ctx.candidates[j] {
                    let s = s as u16;
                    if s == old {
                        continue;
                    }
                    let mut neighbour = current.clone();
                    neighbour.genes_mut()[j] = s;
                    let f = eval(&neighbour, &mut scratch);
                    let is_tabu = tabu.contains(&(j, s));
                    // Aspiration: tabu moves allowed if globally improving.
                    if is_tabu && f >= best_fit {
                        continue;
                    }
                    if move_best.is_none_or(|(_, _, bf)| f < bf) {
                        move_best = Some((j, s, f));
                    }
                }
            }
            let Some((j, s, f)) = move_best else {
                break; // whole neighbourhood tabu and non-aspiring
            };
            let old = current.genes()[j];
            current.genes_mut()[j] = s;
            current_fit = f;
            // Forbid undoing this move for `tenure` iterations.
            tabu.push_back((j, old));
            while tabu.len() > self.params.tenure {
                tabu.pop_front();
            }
            if current_fit < best_fit {
                best = current.clone();
                best_fit = current_fit;
            }
        }
        (best, best_fit)
    }
}

impl BatchScheduler for TabuSearch {
    fn name(&self) -> String {
        "Tabu".to_string()
    }

    fn schedule(&mut self, batch: &[BatchJob], view: &GridView<'_>) -> BatchSchedule {
        let ctx = MapCtx::build(batch, view, RiskMode::Risky, self.fallback);
        let (best, _) = self.search(&ctx, view.avail);
        BatchSchedule::from_pairs(
            batch
                .iter()
                .enumerate()
                .map(|(j, bj)| (bj.job.id, SiteId(best.site_of(j)))),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridsec_core::etc::{EtcMatrix, NodeAvailability};
    use gridsec_core::Time;

    fn ctx() -> (MapCtx, Vec<NodeAvailability>) {
        let n = 6;
        let m = 3;
        let mut etc = Vec::new();
        for j in 0..n {
            for _ in 0..m {
                etc.push(10.0 * (j + 1) as f64);
            }
        }
        (
            MapCtx {
                etc: EtcMatrix::from_raw(n, m, etc),
                widths: vec![1; n],
                arrivals: vec![Time::ZERO; n],
                candidates: vec![(0..m).collect(); n],
                now: Time::ZERO,
                commit_order: vec![],
            },
            vec![NodeAvailability::new(1, Time::ZERO); m],
        )
    }

    #[test]
    fn tabu_reaches_the_optimum_on_a_small_instance() {
        let (ctx, avail) = ctx();
        let mut ts = TabuSearch::new(TabuParams {
            iterations: 200,
            ..TabuParams::default()
        })
        .unwrap();
        let (best, fit) = ts.search(&ctx, &avail);
        // Steepest descent with tabu diversification finds the balanced
        // optimum (70) on this 6×3 instance.
        assert!(fit <= 75.0, "fitness {fit}");
        assert!(best.is_feasible(&ctx.candidates));
    }

    #[test]
    fn tabu_is_deterministic_per_seed() {
        let (ctx, avail) = ctx();
        let run = || {
            let mut ts = TabuSearch::new(TabuParams {
                iterations: 100,
                seed: 3,
                ..TabuParams::default()
            })
            .unwrap();
            ts.search(&ctx, &avail)
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn params_validated() {
        let p = TabuParams {
            iterations: 0,
            ..TabuParams::default()
        };
        assert!(TabuSearch::new(p).is_err());
        let p = TabuParams {
            tenure: 0,
            ..TabuParams::default()
        };
        assert!(TabuSearch::new(p).is_err());
    }
}
