//! # gridsec-stga
//!
//! The paper's primary contribution: a fast **Space-Time Genetic
//! Algorithm** for trusted on-line Grid job scheduling (§3), plus the
//! conventional GA it improves upon.
//!
//! A conventional GA starts every scheduling round from a random
//! population and needs many generations to converge — too slow for
//! on-line use. The STGA observes that Grid workloads have *temporal
//! locality* (similar batches recur), so it keeps a bounded LRU **history
//! table** of `(batch signature, best chromosome)` pairs. At each round it
//! seeds the initial population with the chromosomes of sufficiently
//! similar past batches (vector similarity, Eq. 2), topped up with
//! heuristic solutions (Min-Min / Sufferage) and random chromosomes for
//! diversity. Evolution then starts near the convergence point — the
//! paper's Fig. 5 — and a handful of generations suffice (Fig. 7b).
//!
//! * [`ga`] — the generic engine: value-based roulette-wheel selection
//!   with elitism, single-point crossover, point mutation, and
//!   rayon-parallel fitness evaluation.
//! * [`kernel`] — the compiled fitness kernel: the round's grid + trust +
//!   security snapshot lowered into flat structure-of-arrays planes, with
//!   parent-patch (delta) evaluation for GA children.
//! * [`history`] — the LRU lookup table and Eq. 2 similarity.
//! * [`Stga`] — the full scheduler (implements
//!   [`BatchScheduler`](gridsec_sim::BatchScheduler)).
//! * [`StandardGa`] — the conventional GA baseline (random-only initial
//!   population), used by the Fig. 5/7b comparisons.
//! * [`islands`] — an island-model parallel GA (extension).
//! * [`sa`] / [`tabu`] — simulated-annealing and tabu-search baselines
//!   (the metaheuristics the paper's §2 contrasts against).

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod chromosome;
pub mod conventional;
pub mod fitness;
pub mod ga;
pub mod history;
pub mod islands;
pub mod kernel;
pub mod ops;
pub mod params;
pub mod sa;
pub mod selection;
pub mod stga;
pub mod tabu;

pub use chromosome::Chromosome;
pub use conventional::StandardGa;
pub use ga::{evolve, evolve_population, evolve_with_pool, GaPool, GaResult};
pub use history::{BatchSignature, HistoryTable, SharedHistory};
pub use islands::{evolve_islands, IslandParams};
pub use kernel::{FitnessKernel, KernelScratch};
pub use params::{GaParams, StgaParams};
pub use sa::{SaParams, SimulatedAnnealing};
pub use stga::Stga;
pub use tabu::{TabuParams, TabuSearch};
