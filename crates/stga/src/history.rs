//! The STGA history (lookup) table: evolution over *time* (§3).
//!
//! Each entry stores the three input parameters of a past scheduling round
//! — (1) next-available times of the sites, (2) the job-execution-time
//! (ETC) matrix, (3) the job security demands — plus the best chromosome
//! the GA found for that round. New batches are matched against entries by
//! the average of the per-parameter vector similarities (Eq. 2); entries
//! above the similarity threshold seed the initial population. The table
//! is bounded (Table 1: 150 entries) with LRU replacement.

use crate::chromosome::Chromosome;
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::Arc;

/// Eq. 2 as printed: `1 − Σ|aᵢ−bᵢ| / max{max aᵢ, max bᵢ}`, clamped to
/// `[0, 1]`.
///
/// As printed the sum is not normalised by the vector length, so for long
/// vectors the similarity collapses to 0 unless the vectors are nearly
/// identical; [`similarity`] (the default used by the table) divides the
/// summed deviation by `k` (the mean absolute deviation), which keeps the
/// 0.8 threshold meaningful at realistic batch sizes. Both are exposed;
/// DESIGN.md §6 records the deviation.
pub fn eq2_similarity(a: &[f64], b: &[f64]) -> f64 {
    pairwise_similarity(a, b, false)
}

/// Length-normalised Eq. 2: `1 − (Σ|aᵢ−bᵢ|/k) / max{max aᵢ, max bᵢ}`.
pub fn similarity(a: &[f64], b: &[f64]) -> f64 {
    pairwise_similarity(a, b, true)
}

fn pairwise_similarity(a: &[f64], b: &[f64], normalise: bool) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    let k = a.len().min(b.len());
    let denom = a
        .iter()
        .chain(b.iter())
        .copied()
        .fold(0.0f64, |acc, x| acc.max(x.abs()));
    if denom == 0.0 {
        return 1.0; // both all-zero
    }
    let mut sum = 0.0;
    for i in 0..k {
        sum += (a[i] - b[i]).abs();
    }
    // Length mismatch beyond the common prefix counts as full deviation.
    let extra = (a.len().max(b.len()) - k) as f64 * denom;
    let dev = if normalise {
        (sum + extra) / a.len().max(b.len()) as f64
    } else {
        sum + extra
    };
    (1.0 - dev / denom).clamp(0.0, 1.0)
}

/// The signature of one scheduling round: the three Eq. 2 input vectors.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BatchSignature {
    /// Per-site next-available (ready) times at the batch boundary,
    /// re-based so the earliest is 0 (batches at different absolute times
    /// with the same *relative* load should match).
    pub ready_times: Vec<f64>,
    /// Flattened ETC matrix (row-major, jobs × sites).
    pub etc: Vec<f64>,
    /// Per-job security demands.
    pub demands: Vec<f64>,
}

impl BatchSignature {
    /// Average of the three per-parameter similarities (§3).
    pub fn similarity(&self, other: &BatchSignature) -> f64 {
        let s1 = similarity(&self.ready_times, &other.ready_times);
        let s2 = similarity(&self.etc, &other.etc);
        let s3 = similarity(&self.demands, &other.demands);
        (s1 + s2 + s3) / 3.0
    }

    /// The batch-size signature: the three vector lengths. Entries with
    /// the same dimensions share a lookup bucket.
    fn dims(&self) -> SigDims {
        (self.ready_times.len(), self.etc.len(), self.demands.len())
    }
}

/// Bucket key: the lengths of (ready_times, etc, demands).
type SigDims = (usize, usize, usize);

/// Upper bound on the similarity of two equal-length-or-not vectors,
/// derived from lengths alone: the length-mismatch penalty in
/// [`similarity`] caps the score at `min_len / max_len` (and at 1 when
/// the lengths match).
fn length_similarity_bound(a: usize, b: usize) -> f64 {
    let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
    if hi == 0 {
        1.0 // both empty → similarity() returns 1
    } else {
        lo as f64 / hi as f64
    }
}

/// Upper bound on [`BatchSignature::similarity`] from dimensions alone,
/// used to skip whole lookup buckets without changing any result.
///
/// The bound holds in real arithmetic, but `similarity` and this function
/// round differently (`1 − (maxlen−k)/maxlen` vs `k/maxlen`), so the true
/// score can exceed the raw bound by a few ulps. [`BOUND_MARGIN`] absorbs
/// that: the filter compares against `bound + BOUND_MARGIN`, which can
/// only admit extra buckets (still scored exactly), never skip one whose
/// entries could pass the threshold.
fn dims_similarity_bound(a: SigDims, b: SigDims) -> f64 {
    (length_similarity_bound(a.0, b.0)
        + length_similarity_bound(a.1, b.1)
        + length_similarity_bound(a.2, b.2))
        / 3.0
}

/// Rounding slack added to [`dims_similarity_bound`] before filtering —
/// far above the few-ulp gap (≤ ~1e-15 on unit-range scores), far below
/// any meaningful threshold granularity.
const BOUND_MARGIN: f64 = 1e-9;

/// One history entry: a past round's signature and its best schedule.
/// This is the *wire* representation (used by [`HistoryTable::to_json`]);
/// in memory the ETC block is interned (see [`StoredEntry`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Entry {
    /// The round's input signature.
    pub signature: BatchSignature,
    /// The best chromosome the GA found for it.
    pub chromosome: Chromosome,
    last_used: u64,
}

/// An interned ETC block: entries whose batches share an execution-time
/// matrix (every training batch inserts two entries with one signature,
/// and recurring batches re-insert the same matrix) reference one shared
/// allocation instead of each cloning the `jobs × sites` `f64` matrix —
/// the matrix dominates an entry's footprint, so deduplication shrinks
/// the table by up to the sharing factor.
type EtcBlock = Arc<Vec<f64>>;

/// FNV-1a over the exact f64 bits (plus the length), keying the intern
/// pool. Collisions are harmless: the pool compares contents before
/// sharing a block.
fn etc_content_hash(etc: &[f64]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    h ^= etc.len() as u64;
    h = h.wrapping_mul(0x0000_0100_0000_01b3);
    for &x in etc {
        h ^= x.to_bits();
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// One stored round: the signature split into its parts, with the ETC
/// matrix behind a content-hash-interned shared block.
#[derive(Debug, Clone)]
struct StoredEntry {
    ready_times: Vec<f64>,
    etc: EtcBlock,
    demands: Vec<f64>,
    chromosome: Chromosome,
    last_used: u64,
}

impl StoredEntry {
    fn dims(&self) -> SigDims {
        (self.ready_times.len(), self.etc.len(), self.demands.len())
    }

    /// Eq. 2 similarity against a query signature (the average of the
    /// three per-parameter similarities — identical to
    /// [`BatchSignature::similarity`]).
    fn similarity(&self, query: &BatchSignature) -> f64 {
        let s1 = similarity(&self.ready_times, &query.ready_times);
        let s2 = similarity(&self.etc, &query.etc);
        let s3 = similarity(&self.demands, &query.demands);
        (s1 + s2 + s3) / 3.0
    }

    /// Reassembles the full wire signature (serialisation only).
    fn to_signature(&self) -> BatchSignature {
        BatchSignature {
            ready_times: self.ready_times.clone(),
            etc: (*self.etc).clone(),
            demands: self.demands.clone(),
        }
    }
}

/// Bounded LRU table of past scheduling solutions.
///
/// Lookup is bucketed by batch-size signature (the three vector lengths):
/// similarity between signatures of mismatched dimensions is capped at
/// the length ratio, so buckets whose bound falls below the query
/// threshold are skipped wholesale and only plausibly-similar entries are
/// scored. The pruning is exact — results are identical to the linear
/// scan ([`HistoryTable::lookup_linear`], kept as the test/bench
/// reference) for every query.
#[derive(Debug, Clone)]
pub struct HistoryTable {
    capacity: usize,
    clock: u64,
    entries: Vec<StoredEntry>,
    /// Entry indices grouped by signature dimensions (unordered within a
    /// bucket; lookup sorts the surviving candidates).
    buckets: HashMap<SigDims, Vec<usize>>,
    /// The ETC intern pool: content hash → blocks with that hash (more
    /// than one only on hash collision). Pruned on eviction.
    etc_pool: HashMap<u64, Vec<EtcBlock>>,
}

/// The serialised form: everything but the derived bucket index.
#[derive(Serialize, Deserialize)]
struct HistoryTableWire {
    capacity: usize,
    clock: u64,
    entries: Vec<Entry>,
}

impl HistoryTable {
    /// Creates an empty table with the given capacity (≥ 1).
    ///
    /// # Panics
    /// Panics if `capacity` is 0.
    pub fn new(capacity: usize) -> HistoryTable {
        assert!(capacity >= 1, "history table capacity must be ≥ 1");
        HistoryTable {
            capacity,
            clock: 0,
            entries: Vec::with_capacity(capacity),
            buckets: HashMap::new(),
            etc_pool: HashMap::new(),
        }
    }

    /// Interns an ETC matrix: returns the pooled block when an identical
    /// one is already stored, otherwise adopts `etc` as a new block.
    fn intern_etc(&mut self, etc: Vec<f64>) -> EtcBlock {
        let hash = etc_content_hash(&etc);
        let bucket = self.etc_pool.entry(hash).or_default();
        if let Some(existing) = bucket.iter().find(|b| ***b == etc) {
            return Arc::clone(existing);
        }
        let block = Arc::new(etc);
        bucket.push(Arc::clone(&block));
        block
    }

    /// Drops one entry's reference into the intern pool: when no other
    /// entry shares the block (strong count = the entry's clone passed
    /// here + the pool's copy), the pooled copy is removed too.
    fn release_etc(&mut self, block: EtcBlock) {
        if Arc::strong_count(&block) > 2 {
            return; // other entries still share it
        }
        let hash = etc_content_hash(&block);
        if let Some(bucket) = self.etc_pool.get_mut(&hash) {
            if let Some(pos) = bucket.iter().position(|b| Arc::ptr_eq(b, &block)) {
                bucket.swap_remove(pos);
            }
            if bucket.is_empty() {
                self.etc_pool.remove(&hash);
            }
        }
    }

    /// Removes entry `i` from the table, keeping the bucket index
    /// consistent with the `swap_remove` (the former last entry takes
    /// index `i`) and pruning the ETC intern pool.
    fn remove_entry(&mut self, i: usize) {
        let dims = self.entries[i].dims();
        let bucket = self.buckets.get_mut(&dims).expect("indexed entry");
        let pos = bucket.iter().position(|&x| x == i).expect("indexed entry");
        bucket.swap_remove(pos);
        if bucket.is_empty() {
            self.buckets.remove(&dims);
        }
        let last = self.entries.len() - 1;
        if i != last {
            let moved_dims = self.entries[last].dims();
            let moved = self
                .buckets
                .get_mut(&moved_dims)
                .expect("indexed entry")
                .iter_mut()
                .find(|x| **x == last)
                .expect("indexed entry");
            *moved = i;
        }
        let removed = self.entries.swap_remove(i);
        self.release_etc(removed.etc);
    }

    /// Number of stored entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The table capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Inserts a round's result, evicting the least-recently-used entry if
    /// full.
    pub fn insert(&mut self, signature: BatchSignature, chromosome: Chromosome) {
        self.clock += 1;
        if self.entries.len() == self.capacity {
            let lru = self
                .entries
                .iter()
                .enumerate()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(i, _)| i)
                .expect("non-empty at capacity");
            self.remove_entry(lru);
        }
        self.buckets
            .entry(signature.dims())
            .or_default()
            .push(self.entries.len());
        let BatchSignature {
            ready_times,
            etc,
            demands,
        } = signature;
        let etc = self.intern_etc(etc);
        self.entries.push(StoredEntry {
            ready_times,
            etc,
            demands,
            chromosome,
            last_used: self.clock,
        });
    }

    /// Number of distinct ETC blocks held by the intern pool — at most
    /// [`HistoryTable::len`], and strictly fewer whenever entries share a
    /// matrix (diagnostics for the ~10× table-shrink claim).
    pub fn interned_etc_blocks(&self) -> usize {
        self.etc_pool.values().map(|b| b.len()).sum()
    }

    /// Returns up to `limit` chromosomes whose signatures are at least
    /// `threshold`-similar to `query`, best matches first, touching their
    /// LRU stamps.
    ///
    /// Only buckets whose dimension-derived similarity bound reaches
    /// `threshold` are scored; results are identical to
    /// [`HistoryTable::lookup_linear`].
    pub fn lookup(
        &mut self,
        query: &BatchSignature,
        threshold: f64,
        limit: usize,
    ) -> Vec<Chromosome> {
        self.clock += 1;
        let clock = self.clock;
        let qdims = query.dims();
        let mut candidates: Vec<usize> = self
            .buckets
            .iter()
            .filter(|(&dims, _)| dims_similarity_bound(qdims, dims) + BOUND_MARGIN >= threshold)
            .flat_map(|(_, idx)| idx.iter().copied())
            .collect();
        // Entry order, so equal-similarity ties sort exactly as in the
        // linear scan (the sort below is stable).
        candidates.sort_unstable();
        let mut scored: Vec<(usize, f64)> = candidates
            .into_iter()
            .map(|i| (i, self.entries[i].similarity(query)))
            .filter(|&(_, s)| s >= threshold)
            .collect();
        scored.sort_by(|a, b| b.1.total_cmp(&a.1));
        scored.truncate(limit);
        let mut out = Vec::with_capacity(scored.len());
        for (i, _) in scored {
            self.entries[i].last_used = clock;
            out.push(self.entries[i].chromosome.clone());
        }
        out
    }

    /// The pre-bucketing lookup: scores every entry. Kept as the
    /// reference implementation — the property suite asserts
    /// `lookup == lookup_linear` on random tables, and the perf baseline
    /// times both.
    pub fn lookup_linear(
        &mut self,
        query: &BatchSignature,
        threshold: f64,
        limit: usize,
    ) -> Vec<Chromosome> {
        self.clock += 1;
        let clock = self.clock;
        let mut scored: Vec<(usize, f64)> = self
            .entries
            .iter()
            .enumerate()
            .map(|(i, e)| (i, e.similarity(query)))
            .filter(|&(_, s)| s >= threshold)
            .collect();
        scored.sort_by(|a, b| b.1.total_cmp(&a.1));
        scored.truncate(limit);
        let mut out = Vec::with_capacity(scored.len());
        for (i, _) in scored {
            self.entries[i].last_used = clock;
            out.push(self.entries[i].chromosome.clone());
        }
        out
    }

    /// The best similarity of any entry against `query` (diagnostics).
    pub fn best_similarity(&self, query: &BatchSignature) -> Option<f64> {
        self.entries
            .iter()
            .map(|e| e.similarity(query))
            .max_by(f64::total_cmp)
    }

    /// Serialises the table to JSON — lets a production scheduler persist
    /// its learned history across restarts (the paper's "time" dimension
    /// survives the process). The bucket index is derived state and is
    /// not serialised; the wire format is unchanged from before
    /// bucketing.
    pub fn to_json(&self) -> String {
        let wire = HistoryTableWire {
            capacity: self.capacity,
            clock: self.clock,
            entries: self
                .entries
                .iter()
                .map(|e| Entry {
                    signature: e.to_signature(),
                    chromosome: e.chromosome.clone(),
                    last_used: e.last_used,
                })
                .collect(),
        };
        serde_json::to_string(&wire).expect("history serialises")
    }

    /// Merges several tables into one of the given capacity — the
    /// resharding state-transfer primitive (shard merges hand each new
    /// shard the histories of every source shard it absorbs).
    ///
    /// Entries from all sources are ordered by their LRU stamp (ties
    /// break by source position, then entry position — deterministic for
    /// any input), exact duplicates (same signature *and* chromosome)
    /// collapse to their most-recent copy, and when the union exceeds
    /// `capacity` only the most-recently-used entries survive — exactly
    /// the eviction the LRU table itself would have applied. Stamps are
    /// renumbered densely, so splitting one table into N copies and
    /// merging them back reconstructs the original recency order and
    /// therefore identical lookups.
    ///
    /// # Panics
    /// Panics if `capacity` is 0.
    pub fn merge(sources: &[HistoryTable], capacity: usize) -> HistoryTable {
        let mut tagged: Vec<(u64, usize, usize)> = sources
            .iter()
            .enumerate()
            .flat_map(|(si, t)| {
                t.entries
                    .iter()
                    .enumerate()
                    .map(move |(ei, e)| (e.last_used, si, ei))
            })
            .collect();
        tagged.sort_unstable();
        // Ascending recency order: a later exact duplicate supersedes an
        // earlier one (split copies re-merging must not double-count).
        let mut last_pos: HashMap<(Vec<u64>, Vec<u16>), usize> = HashMap::new();
        for (pos, &(_, si, ei)) in tagged.iter().enumerate() {
            let e = &sources[si].entries[ei];
            let mut bits: Vec<u64> =
                Vec::with_capacity(e.ready_times.len() + e.etc.len() + e.demands.len() + 3);
            for part in [&e.ready_times[..], &e.etc[..], &e.demands[..]] {
                bits.push(part.len() as u64);
                bits.extend(part.iter().map(|x| x.to_bits()));
            }
            last_pos.insert((bits, e.chromosome.genes().to_vec()), pos);
        }
        let mut survivors = vec![false; tagged.len()];
        for &pos in last_pos.values() {
            survivors[pos] = true;
        }
        let mut kept: Vec<(usize, usize)> = tagged
            .iter()
            .enumerate()
            .filter(|&(pos, _)| survivors[pos])
            .map(|(_, &(_, si, ei))| (si, ei))
            .collect();
        if kept.len() > capacity {
            // Most-recent entries win, order preserved.
            kept.drain(..kept.len() - capacity);
        }
        let mut table = HistoryTable::new(capacity);
        for (si, ei) in kept {
            let e = &sources[si].entries[ei];
            // `insert` stamps clock+1 per entry: dense 1..=n stamps in
            // recency order, clock = n.
            table.insert(e.to_signature(), e.chromosome.clone());
        }
        table
    }

    /// Restores a table saved with [`HistoryTable::to_json`], rebuilding
    /// the bucket index and re-interning the ETC blocks.
    pub fn from_json(text: &str) -> gridsec_core::Result<HistoryTable> {
        let wire: HistoryTableWire = serde_json::from_str(text).map_err(|e| {
            gridsec_core::Error::invalid("history", format!("invalid history JSON: {e}"))
        })?;
        if wire.capacity == 0 {
            return Err(gridsec_core::Error::invalid(
                "history",
                "history table capacity must be ≥ 1",
            ));
        }
        let mut table = HistoryTable {
            capacity: wire.capacity,
            clock: wire.clock,
            entries: Vec::with_capacity(wire.entries.len()),
            buckets: HashMap::new(),
            etc_pool: HashMap::new(),
        };
        for (i, e) in wire.entries.into_iter().enumerate() {
            table.buckets.entry(e.signature.dims()).or_default().push(i);
            let BatchSignature {
                ready_times,
                etc,
                demands,
            } = e.signature;
            let etc = table.intern_etc(etc);
            table.entries.push(StoredEntry {
                ready_times,
                etc,
                demands,
                chromosome: e.chromosome,
                last_used: e.last_used,
            });
        }
        Ok(table)
    }
}

/// A thread-safe, shareable history table: several schedulers (e.g. in
/// parallel parameter sweeps that share training) can read and update the
/// same table.
#[derive(Debug, Clone)]
pub struct SharedHistory(Arc<Mutex<HistoryTable>>);

impl SharedHistory {
    /// Wraps a fresh table of the given capacity.
    pub fn new(capacity: usize) -> SharedHistory {
        SharedHistory(Arc::new(Mutex::new(HistoryTable::new(capacity))))
    }

    /// Inserts an entry.
    pub fn insert(&self, signature: BatchSignature, chromosome: Chromosome) {
        self.0.lock().insert(signature, chromosome);
    }

    /// Looks up seeds (see [`HistoryTable::lookup`]).
    pub fn lookup(&self, query: &BatchSignature, threshold: f64, limit: usize) -> Vec<Chromosome> {
        self.0.lock().lookup(query, threshold, limit)
    }

    /// Entry count.
    pub fn len(&self) -> usize {
        self.0.lock().len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.0.lock().is_empty()
    }

    /// Serialises the table under the lock (see
    /// [`HistoryTable::to_json`]) — the serving daemon's per-shard state
    /// snapshot, taken at drain/shutdown barriers.
    pub fn to_json(&self) -> String {
        self.0.lock().to_json()
    }

    /// Restores a shared table from a [`HistoryTable::to_json`] snapshot
    /// — a daemon restart resumes with the learned history intact.
    pub fn from_json(text: &str) -> gridsec_core::Result<SharedHistory> {
        Ok(SharedHistory(Arc::new(Mutex::new(
            HistoryTable::from_json(text)?,
        ))))
    }

    /// Best similarity of any stored entry to `query` (None when empty) —
    /// lets restart tests assert that lookups survive persistence.
    pub fn best_similarity(&self, query: &BatchSignature) -> Option<f64> {
        self.0.lock().best_similarity(query)
    }

    /// Merges several [`HistoryTable::to_json`] snapshots into one shared
    /// table (see [`HistoryTable::merge`]). The merged capacity is the
    /// largest source capacity, so a table split into full copies and
    /// re-merged keeps its original bound. Errors on empty input or any
    /// undecodable snapshot.
    pub fn merge_json(sources: &[String]) -> gridsec_core::Result<SharedHistory> {
        if sources.is_empty() {
            return Err(gridsec_core::Error::invalid(
                "history",
                "merge needs at least one snapshot",
            ));
        }
        let tables = sources
            .iter()
            .map(|s| HistoryTable::from_json(s))
            .collect::<gridsec_core::Result<Vec<_>>>()?;
        let capacity = tables.iter().map(|t| t.capacity).max().expect("non-empty");
        Ok(SharedHistory(Arc::new(Mutex::new(HistoryTable::merge(
            &tables, capacity,
        )))))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sig(ready: &[f64], etc: &[f64], sd: &[f64]) -> BatchSignature {
        BatchSignature {
            ready_times: ready.to_vec(),
            etc: etc.to_vec(),
            demands: sd.to_vec(),
        }
    }

    #[test]
    fn similarity_reflexive_and_bounded() {
        let a = [1.0, 2.0, 3.0];
        assert_eq!(similarity(&a, &a), 1.0);
        assert_eq!(eq2_similarity(&a, &a), 1.0);
        let b = [3.0, 2.0, 1.0];
        let s = similarity(&a, &b);
        assert!((0.0..=1.0).contains(&s));
        assert!(s < 1.0);
    }

    #[test]
    fn similarity_symmetric() {
        let a = [1.0, 5.0, 2.0];
        let b = [2.0, 3.0, 4.0];
        assert_eq!(similarity(&a, &b), similarity(&b, &a));
    }

    #[test]
    fn eq2_collapses_on_long_vectors_normalised_does_not() {
        // 100 elements each off by 10 % of max.
        let a: Vec<f64> = vec![10.0; 100];
        let b: Vec<f64> = vec![9.0; 100];
        assert_eq!(eq2_similarity(&a, &b), 0.0); // Σdev = 100 > max = 10
        let s = similarity(&a, &b);
        assert!((s - 0.9).abs() < 1e-12, "s = {s}");
    }

    #[test]
    fn empty_and_zero_vectors() {
        assert_eq!(similarity(&[], &[]), 1.0);
        assert_eq!(similarity(&[1.0], &[]), 0.0);
        assert_eq!(similarity(&[0.0, 0.0], &[0.0, 0.0]), 1.0);
    }

    #[test]
    fn length_mismatch_penalised() {
        let a = [5.0, 5.0];
        let b = [5.0, 5.0, 5.0, 5.0];
        let s = similarity(&a, &b);
        // Two missing elements of four count as full deviation: 1 − 0.5.
        assert!((s - 0.5).abs() < 1e-12, "s = {s}");
    }

    #[test]
    fn signature_similarity_averages_three_parts() {
        let a = sig(&[0.0, 10.0], &[1.0, 2.0], &[0.7]);
        let b = sig(&[0.0, 10.0], &[1.0, 2.0], &[0.7]);
        assert_eq!(a.similarity(&b), 1.0);
        let c = sig(&[10.0, 0.0], &[1.0, 2.0], &[0.7]);
        let s = a.similarity(&c);
        assert!(s < 1.0 && s > 0.3);
    }

    #[test]
    fn table_insert_and_lookup() {
        let mut t = HistoryTable::new(10);
        let s1 = sig(&[0.0], &[10.0, 20.0], &[0.6]);
        t.insert(s1.clone(), Chromosome::from_genes(vec![0]));
        let hits = t.lookup(&s1, 0.8, 5);
        assert_eq!(hits.len(), 1);
        // A very different signature misses.
        let s2 = sig(&[1000.0], &[900.0, 1.0], &[0.9]);
        assert!(t.lookup(&s2, 0.8, 5).is_empty());
    }

    #[test]
    fn lru_eviction() {
        let mut t = HistoryTable::new(2);
        let s1 = sig(&[1.0], &[1.0], &[0.6]);
        let s2 = sig(&[2.0], &[2.0], &[0.7]);
        let s3 = sig(&[3.0], &[3.0], &[0.8]);
        t.insert(s1.clone(), Chromosome::from_genes(vec![1]));
        t.insert(s2.clone(), Chromosome::from_genes(vec![2]));
        // Touch s1 so s2 becomes LRU.
        let _ = t.lookup(&s1, 0.99, 1);
        t.insert(s3.clone(), Chromosome::from_genes(vec![3]));
        assert_eq!(t.len(), 2);
        // s2 was evicted; s1 and s3 still match themselves.
        assert_eq!(t.lookup(&s1, 0.99, 1).len(), 1);
        assert_eq!(t.lookup(&s3, 0.99, 1).len(), 1);
        assert!(t.lookup(&s2, 0.999, 1).is_empty());
    }

    #[test]
    fn lookup_orders_by_similarity_and_limits() {
        let mut t = HistoryTable::new(10);
        let q = sig(&[10.0, 10.0], &[5.0], &[0.7]);
        t.insert(
            sig(&[10.0, 10.0], &[5.0], &[0.7]),
            Chromosome::from_genes(vec![0]),
        ); // exact
        t.insert(
            sig(&[10.0, 9.0], &[5.0], &[0.7]),
            Chromosome::from_genes(vec![1]),
        ); // close
        t.insert(
            sig(&[10.0, 5.0], &[5.0], &[0.7]),
            Chromosome::from_genes(vec![2]),
        ); // farther
        let hits = t.lookup(&q, 0.5, 2);
        assert_eq!(hits.len(), 2);
        assert_eq!(hits[0], Chromosome::from_genes(vec![0]));
        assert_eq!(hits[1], Chromosome::from_genes(vec![1]));
    }

    #[test]
    fn shared_history_is_usable_across_clones() {
        let h = SharedHistory::new(4);
        let s1 = sig(&[1.0], &[1.0], &[0.6]);
        let h2 = h.clone();
        h.insert(s1.clone(), Chromosome::from_genes(vec![0]));
        assert_eq!(h2.len(), 1);
        assert_eq!(h2.lookup(&s1, 0.9, 3).len(), 1);
    }

    #[test]
    fn shared_history_json_roundtrip_preserves_lookups() {
        let h = SharedHistory::new(4);
        let s1 = sig(&[1.0], &[1.0], &[0.6]);
        let s2 = sig(&[9.0], &[5.0], &[0.8]);
        h.insert(s1.clone(), Chromosome::from_genes(vec![0]));
        h.insert(s2.clone(), Chromosome::from_genes(vec![1]));
        let json = h.to_json();
        let back = SharedHistory::from_json(&json).unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(
            back.lookup(&s1, 0.99, 1),
            vec![Chromosome::from_genes(vec![0])]
        );
        assert_eq!(back.best_similarity(&s2), Some(1.0));
        // The snapshot is a copy: later inserts into the original do not
        // leak into the restored table.
        h.insert(sig(&[2.0], &[2.0], &[0.5]), Chromosome::from_genes(vec![2]));
        assert_eq!(back.len(), 2);
        assert!(SharedHistory::from_json("{").is_err());
    }

    #[test]
    fn json_roundtrip_preserves_entries_and_lru() {
        let mut t = HistoryTable::new(3);
        let s1 = sig(&[1.0], &[1.0], &[0.6]);
        let s2 = sig(&[9.0], &[5.0], &[0.8]);
        t.insert(s1.clone(), Chromosome::from_genes(vec![0]));
        t.insert(s2.clone(), Chromosome::from_genes(vec![1]));
        let json = t.to_json();
        let mut back = HistoryTable::from_json(&json).unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(back.capacity(), 3);
        assert_eq!(
            back.lookup(&s1, 0.99, 1),
            vec![Chromosome::from_genes(vec![0])]
        );
        assert_eq!(
            back.lookup(&s2, 0.99, 1),
            vec![Chromosome::from_genes(vec![1])]
        );
        assert!(HistoryTable::from_json("{").is_err());
    }

    #[test]
    fn merge_of_split_copies_restores_recency_order() {
        // Shard-split copies the whole table to each half; merging the
        // halves back must reconstruct the original (dedup by exact
        // signature+chromosome, recency order preserved).
        let mut t = HistoryTable::new(2);
        let s1 = sig(&[1.0], &[1.0], &[0.6]);
        let s2 = sig(&[9.0], &[5.0], &[0.8]);
        t.insert(s1.clone(), Chromosome::from_genes(vec![0]));
        t.insert(s2.clone(), Chromosome::from_genes(vec![1]));
        let _ = t.lookup(&s1, 0.99, 1); // s2 is now LRU
        let a = HistoryTable::from_json(&t.to_json()).unwrap();
        let b = HistoryTable::from_json(&t.to_json()).unwrap();
        let mut merged = HistoryTable::merge(&[a, b], 2);
        assert_eq!(merged.len(), 2);
        // A third insert evicts the LRU — which must still be s2.
        let s3 = sig(&[4.0], &[4.0], &[0.7]);
        merged.insert(s3.clone(), Chromosome::from_genes(vec![2]));
        assert_eq!(merged.lookup(&s1, 0.99, 1).len(), 1);
        assert!(merged.lookup(&s2, 0.999, 1).is_empty());
    }

    #[test]
    fn merge_unions_disjoint_tables_and_caps_by_recency() {
        let mut a = HistoryTable::new(4);
        let mut b = HistoryTable::new(4);
        let s1 = sig(&[1.0], &[1.0], &[0.6]);
        let s2 = sig(&[9.0], &[5.0], &[0.8]);
        let s3 = sig(&[4.0], &[4.0], &[0.7]);
        a.insert(s1.clone(), Chromosome::from_genes(vec![0])); // stamp 1
        b.insert(s2.clone(), Chromosome::from_genes(vec![1])); // stamp 1 (tie: source order)
        b.insert(s3.clone(), Chromosome::from_genes(vec![2])); // stamp 2
        let full = HistoryTable::merge(&[a.clone(), b.clone()], 4);
        assert_eq!(full.len(), 3);
        // Capacity 2 keeps the most recent two: s2 outranks s1 on the
        // stamp tie only via source order — s1 (source 0) is older.
        let mut capped = HistoryTable::merge(&[a, b], 2);
        assert_eq!(capped.len(), 2);
        assert!(capped.lookup(&s1, 0.999, 1).is_empty());
        assert_eq!(capped.lookup(&s2, 0.99, 1).len(), 1);
        assert_eq!(capped.lookup(&s3, 0.99, 1).len(), 1);
    }

    #[test]
    fn merge_json_takes_max_capacity_and_rejects_garbage() {
        let a = SharedHistory::new(3);
        let b = SharedHistory::new(8);
        let s1 = sig(&[1.0], &[1.0], &[0.6]);
        a.insert(s1.clone(), Chromosome::from_genes(vec![0]));
        let merged = SharedHistory::merge_json(&[a.to_json(), b.to_json()]).unwrap();
        assert_eq!(merged.len(), 1);
        assert_eq!(merged.lookup(&s1, 0.99, 1).len(), 1);
        assert!(SharedHistory::merge_json(&[]).is_err());
        assert!(SharedHistory::merge_json(&["{".to_string()]).is_err());
    }

    #[test]
    fn bucketed_lookup_matches_linear_scan() {
        // Mixed dimensions, several thresholds, eviction churn along the
        // way: the bucketed lookup must reproduce the linear scan exactly.
        let mut bucketed = HistoryTable::new(12);
        let mut linear = HistoryTable::new(12);
        let make = |t: u64, d: usize| {
            let v: Vec<f64> = (0..d)
                .map(|i| ((t as usize * 13 + i * 5) % 40) as f64)
                .collect();
            (
                sig(&v, &v, &v[..d.min(3)]),
                Chromosome::from_genes(vec![t as u16; d]),
            )
        };
        for t in 0..30u64 {
            let (s, c) = make(t, 2 + (t % 4) as usize);
            bucketed.insert(s.clone(), c.clone());
            linear.insert(s, c);
        }
        for t in 0..30u64 {
            for threshold in [0.0, 0.4, 0.8, 0.95] {
                let (q, _) = make(t, 2 + ((t + 1) % 4) as usize);
                assert_eq!(
                    bucketed.lookup(&q, threshold, 5),
                    linear.lookup_linear(&q, threshold, 5),
                    "query {t} threshold {threshold}"
                );
            }
        }
        assert_eq!(bucketed.len(), linear.len());
    }

    #[test]
    fn dims_bound_never_undercuts_true_similarity() {
        let cases = [
            (
                sig(&[1.0, 2.0], &[3.0], &[0.5]),
                sig(&[1.0], &[3.0, 4.0], &[0.5, 0.6]),
            ),
            (sig(&[], &[1.0], &[0.5]), sig(&[2.0], &[1.0], &[0.5])),
            (sig(&[], &[], &[]), sig(&[], &[], &[])),
            (
                sig(&[9.0; 5], &[1.0; 10], &[0.7; 5]),
                sig(&[9.0; 3], &[1.0; 10], &[0.7; 4]),
            ),
        ];
        for (a, b) in cases {
            let bound = dims_similarity_bound(a.dims(), b.dims());
            let real = a.similarity(&b);
            assert!(
                real <= bound + BOUND_MARGIN,
                "similarity {real} exceeds bound {bound} for {:?} vs {:?}",
                a.dims(),
                b.dims()
            );
        }
    }

    #[test]
    fn bucket_filter_survives_bound_rounding() {
        // Adversarial rounding case: identical common prefixes, so each
        // mismatched component scores 1 − 2/3 = 0.33333333333333337 —
        // a few ulps ABOVE the raw k/maxlen bound of 0.3333333333333333.
        // With a threshold right at the true similarity, a margin-less
        // filter would skip the bucket that the linear scan returns.
        let entry = sig(&[1.0, 1.0, 1.0], &[2.0, 2.0], &[1.0, 1.0, 1.0]);
        let query = sig(&[1.0], &[2.0, 2.0], &[1.0]);
        let mut bucketed = HistoryTable::new(4);
        let mut linear = HistoryTable::new(4);
        bucketed.insert(entry.clone(), Chromosome::from_genes(vec![7]));
        linear.insert(entry.clone(), Chromosome::from_genes(vec![7]));
        let threshold = entry.similarity(&query);
        assert!(threshold > dims_similarity_bound(entry.dims(), query.dims()));
        let hits = bucketed.lookup(&query, threshold, 4);
        assert_eq!(hits, linear.lookup_linear(&query, threshold, 4));
        assert_eq!(hits.len(), 1);
    }

    #[test]
    fn eviction_keeps_bucket_index_consistent() {
        // Capacity 3 with constant churn across two dimension classes;
        // after every insert the bucketed and linear lookups must agree.
        let mut t = HistoryTable::new(3);
        let mut reference = HistoryTable::new(3);
        for i in 0..20u64 {
            let d = 1 + (i % 2) as usize;
            let v = vec![i as f64; d];
            let s = sig(&v, &v, &v);
            t.insert(s.clone(), Chromosome::from_genes(vec![i as u16]));
            reference.insert(s, Chromosome::from_genes(vec![i as u16]));
            let q = sig(&[i as f64], &[i as f64], &[i as f64]);
            assert_eq!(
                t.lookup(&q, 0.5, 3),
                reference.lookup_linear(&q, 0.5, 3),
                "after insert {i}"
            );
        }
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn identical_etc_blocks_are_interned_once() {
        let mut t = HistoryTable::new(10);
        let etc = vec![10.0, 20.0, 30.0, 40.0];
        // Same ETC under different ready times / demands (the training
        // pattern: one signature, two heuristic entries — plus a later
        // recurring batch).
        for i in 0..4u16 {
            t.insert(
                sig(&[i as f64], &etc, &[0.5 + 0.1 * i as f64]),
                Chromosome::from_genes(vec![i]),
            );
        }
        assert_eq!(t.len(), 4);
        assert_eq!(t.interned_etc_blocks(), 1);
        // A different matrix gets its own block.
        t.insert(
            sig(&[9.0], &[1.0, 2.0], &[0.7]),
            Chromosome::from_genes(vec![9]),
        );
        assert_eq!(t.interned_etc_blocks(), 2);
    }

    #[test]
    fn eviction_prunes_the_intern_pool() {
        let mut t = HistoryTable::new(2);
        t.insert(
            sig(&[1.0], &[1.0, 1.0], &[0.5]),
            Chromosome::from_genes(vec![0]),
        );
        t.insert(
            sig(&[2.0], &[2.0, 2.0], &[0.5]),
            Chromosome::from_genes(vec![1]),
        );
        assert_eq!(t.interned_etc_blocks(), 2);
        // Evicts the LRU (first) entry; its block must leave the pool.
        t.insert(
            sig(&[3.0], &[3.0, 3.0], &[0.5]),
            Chromosome::from_genes(vec![2]),
        );
        assert_eq!(t.len(), 2);
        assert_eq!(t.interned_etc_blocks(), 2);
        // Shared block survives as long as one sharer remains.
        let mut shared = HistoryTable::new(2);
        shared.insert(
            sig(&[1.0], &[7.0, 7.0], &[0.5]),
            Chromosome::from_genes(vec![0]),
        );
        shared.insert(
            sig(&[2.0], &[7.0, 7.0], &[0.5]),
            Chromosome::from_genes(vec![1]),
        );
        assert_eq!(shared.interned_etc_blocks(), 1);
        shared.insert(
            sig(&[3.0], &[8.0, 8.0], &[0.5]),
            Chromosome::from_genes(vec![2]),
        );
        // One of the sharers was evicted, the other still references the
        // 7.0 block: pool holds both blocks.
        assert_eq!(shared.len(), 2);
        assert_eq!(shared.interned_etc_blocks(), 2);
    }

    #[test]
    fn interning_round_trips_through_json() {
        let mut t = HistoryTable::new(8);
        let etc = vec![5.0, 6.0, 7.0];
        t.insert(sig(&[0.0], &etc, &[0.6]), Chromosome::from_genes(vec![1]));
        t.insert(sig(&[1.0], &etc, &[0.7]), Chromosome::from_genes(vec![2]));
        let json = t.to_json();
        let back = HistoryTable::from_json(&json).unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(back.interned_etc_blocks(), 1);
        // And the restored table serialises to the same wire text.
        assert_eq!(back.to_json(), json);
    }

    #[test]
    fn best_similarity_reports() {
        let mut t = HistoryTable::new(4);
        let s1 = sig(&[1.0], &[1.0], &[0.6]);
        assert!(t.best_similarity(&s1).is_none());
        t.insert(s1.clone(), Chromosome::from_genes(vec![0]));
        assert_eq!(t.best_similarity(&s1), Some(1.0));
    }
}
