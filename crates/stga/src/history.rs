//! The STGA history (lookup) table: evolution over *time* (§3).
//!
//! Each entry stores the three input parameters of a past scheduling round
//! — (1) next-available times of the sites, (2) the job-execution-time
//! (ETC) matrix, (3) the job security demands — plus the best chromosome
//! the GA found for that round. New batches are matched against entries by
//! the average of the per-parameter vector similarities (Eq. 2); entries
//! above the similarity threshold seed the initial population. The table
//! is bounded (Table 1: 150 entries) with LRU replacement.

use crate::chromosome::Chromosome;
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Eq. 2 as printed: `1 − Σ|aᵢ−bᵢ| / max{max aᵢ, max bᵢ}`, clamped to
/// `[0, 1]`.
///
/// As printed the sum is not normalised by the vector length, so for long
/// vectors the similarity collapses to 0 unless the vectors are nearly
/// identical; [`similarity`] (the default used by the table) divides the
/// summed deviation by `k` (the mean absolute deviation), which keeps the
/// 0.8 threshold meaningful at realistic batch sizes. Both are exposed;
/// DESIGN.md §6 records the deviation.
pub fn eq2_similarity(a: &[f64], b: &[f64]) -> f64 {
    pairwise_similarity(a, b, false)
}

/// Length-normalised Eq. 2: `1 − (Σ|aᵢ−bᵢ|/k) / max{max aᵢ, max bᵢ}`.
pub fn similarity(a: &[f64], b: &[f64]) -> f64 {
    pairwise_similarity(a, b, true)
}

fn pairwise_similarity(a: &[f64], b: &[f64], normalise: bool) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    let k = a.len().min(b.len());
    let denom = a
        .iter()
        .chain(b.iter())
        .copied()
        .fold(0.0f64, |acc, x| acc.max(x.abs()));
    if denom == 0.0 {
        return 1.0; // both all-zero
    }
    let mut sum = 0.0;
    for i in 0..k {
        sum += (a[i] - b[i]).abs();
    }
    // Length mismatch beyond the common prefix counts as full deviation.
    let extra = (a.len().max(b.len()) - k) as f64 * denom;
    let dev = if normalise {
        (sum + extra) / a.len().max(b.len()) as f64
    } else {
        sum + extra
    };
    (1.0 - dev / denom).clamp(0.0, 1.0)
}

/// The signature of one scheduling round: the three Eq. 2 input vectors.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BatchSignature {
    /// Per-site next-available (ready) times at the batch boundary,
    /// re-based so the earliest is 0 (batches at different absolute times
    /// with the same *relative* load should match).
    pub ready_times: Vec<f64>,
    /// Flattened ETC matrix (row-major, jobs × sites).
    pub etc: Vec<f64>,
    /// Per-job security demands.
    pub demands: Vec<f64>,
}

impl BatchSignature {
    /// Average of the three per-parameter similarities (§3).
    pub fn similarity(&self, other: &BatchSignature) -> f64 {
        let s1 = similarity(&self.ready_times, &other.ready_times);
        let s2 = similarity(&self.etc, &other.etc);
        let s3 = similarity(&self.demands, &other.demands);
        (s1 + s2 + s3) / 3.0
    }
}

/// One history entry: a past round's signature and its best schedule.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Entry {
    /// The round's input signature.
    pub signature: BatchSignature,
    /// The best chromosome the GA found for it.
    pub chromosome: Chromosome,
    last_used: u64,
}

/// Bounded LRU table of past scheduling solutions.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HistoryTable {
    capacity: usize,
    clock: u64,
    entries: Vec<Entry>,
}

impl HistoryTable {
    /// Creates an empty table with the given capacity (≥ 1).
    ///
    /// # Panics
    /// Panics if `capacity` is 0.
    pub fn new(capacity: usize) -> HistoryTable {
        assert!(capacity >= 1, "history table capacity must be ≥ 1");
        HistoryTable {
            capacity,
            clock: 0,
            entries: Vec::with_capacity(capacity),
        }
    }

    /// Number of stored entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The table capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Inserts a round's result, evicting the least-recently-used entry if
    /// full.
    pub fn insert(&mut self, signature: BatchSignature, chromosome: Chromosome) {
        self.clock += 1;
        if self.entries.len() == self.capacity {
            let lru = self
                .entries
                .iter()
                .enumerate()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(i, _)| i)
                .expect("non-empty at capacity");
            self.entries.swap_remove(lru);
        }
        self.entries.push(Entry {
            signature,
            chromosome,
            last_used: self.clock,
        });
    }

    /// Returns up to `limit` chromosomes whose signatures are at least
    /// `threshold`-similar to `query`, best matches first, touching their
    /// LRU stamps.
    pub fn lookup(
        &mut self,
        query: &BatchSignature,
        threshold: f64,
        limit: usize,
    ) -> Vec<Chromosome> {
        self.clock += 1;
        let clock = self.clock;
        let mut scored: Vec<(usize, f64)> = self
            .entries
            .iter()
            .enumerate()
            .map(|(i, e)| (i, e.signature.similarity(query)))
            .filter(|&(_, s)| s >= threshold)
            .collect();
        scored.sort_by(|a, b| b.1.total_cmp(&a.1));
        scored.truncate(limit);
        let mut out = Vec::with_capacity(scored.len());
        for (i, _) in scored {
            self.entries[i].last_used = clock;
            out.push(self.entries[i].chromosome.clone());
        }
        out
    }

    /// The best similarity of any entry against `query` (diagnostics).
    pub fn best_similarity(&self, query: &BatchSignature) -> Option<f64> {
        self.entries
            .iter()
            .map(|e| e.signature.similarity(query))
            .max_by(f64::total_cmp)
    }

    /// Serialises the table to JSON — lets a production scheduler persist
    /// its learned history across restarts (the paper's "time" dimension
    /// survives the process).
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("history serialises")
    }

    /// Restores a table saved with [`HistoryTable::to_json`].
    pub fn from_json(text: &str) -> gridsec_core::Result<HistoryTable> {
        serde_json::from_str(text).map_err(|e| {
            gridsec_core::Error::invalid("history", format!("invalid history JSON: {e}"))
        })
    }
}

/// A thread-safe, shareable history table: several schedulers (e.g. in
/// parallel parameter sweeps that share training) can read and update the
/// same table.
#[derive(Debug, Clone)]
pub struct SharedHistory(Arc<Mutex<HistoryTable>>);

impl SharedHistory {
    /// Wraps a fresh table of the given capacity.
    pub fn new(capacity: usize) -> SharedHistory {
        SharedHistory(Arc::new(Mutex::new(HistoryTable::new(capacity))))
    }

    /// Inserts an entry.
    pub fn insert(&self, signature: BatchSignature, chromosome: Chromosome) {
        self.0.lock().insert(signature, chromosome);
    }

    /// Looks up seeds (see [`HistoryTable::lookup`]).
    pub fn lookup(&self, query: &BatchSignature, threshold: f64, limit: usize) -> Vec<Chromosome> {
        self.0.lock().lookup(query, threshold, limit)
    }

    /// Entry count.
    pub fn len(&self) -> usize {
        self.0.lock().len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.0.lock().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sig(ready: &[f64], etc: &[f64], sd: &[f64]) -> BatchSignature {
        BatchSignature {
            ready_times: ready.to_vec(),
            etc: etc.to_vec(),
            demands: sd.to_vec(),
        }
    }

    #[test]
    fn similarity_reflexive_and_bounded() {
        let a = [1.0, 2.0, 3.0];
        assert_eq!(similarity(&a, &a), 1.0);
        assert_eq!(eq2_similarity(&a, &a), 1.0);
        let b = [3.0, 2.0, 1.0];
        let s = similarity(&a, &b);
        assert!((0.0..=1.0).contains(&s));
        assert!(s < 1.0);
    }

    #[test]
    fn similarity_symmetric() {
        let a = [1.0, 5.0, 2.0];
        let b = [2.0, 3.0, 4.0];
        assert_eq!(similarity(&a, &b), similarity(&b, &a));
    }

    #[test]
    fn eq2_collapses_on_long_vectors_normalised_does_not() {
        // 100 elements each off by 10 % of max.
        let a: Vec<f64> = vec![10.0; 100];
        let b: Vec<f64> = vec![9.0; 100];
        assert_eq!(eq2_similarity(&a, &b), 0.0); // Σdev = 100 > max = 10
        let s = similarity(&a, &b);
        assert!((s - 0.9).abs() < 1e-12, "s = {s}");
    }

    #[test]
    fn empty_and_zero_vectors() {
        assert_eq!(similarity(&[], &[]), 1.0);
        assert_eq!(similarity(&[1.0], &[]), 0.0);
        assert_eq!(similarity(&[0.0, 0.0], &[0.0, 0.0]), 1.0);
    }

    #[test]
    fn length_mismatch_penalised() {
        let a = [5.0, 5.0];
        let b = [5.0, 5.0, 5.0, 5.0];
        let s = similarity(&a, &b);
        // Two missing elements of four count as full deviation: 1 − 0.5.
        assert!((s - 0.5).abs() < 1e-12, "s = {s}");
    }

    #[test]
    fn signature_similarity_averages_three_parts() {
        let a = sig(&[0.0, 10.0], &[1.0, 2.0], &[0.7]);
        let b = sig(&[0.0, 10.0], &[1.0, 2.0], &[0.7]);
        assert_eq!(a.similarity(&b), 1.0);
        let c = sig(&[10.0, 0.0], &[1.0, 2.0], &[0.7]);
        let s = a.similarity(&c);
        assert!(s < 1.0 && s > 0.3);
    }

    #[test]
    fn table_insert_and_lookup() {
        let mut t = HistoryTable::new(10);
        let s1 = sig(&[0.0], &[10.0, 20.0], &[0.6]);
        t.insert(s1.clone(), Chromosome::from_genes(vec![0]));
        let hits = t.lookup(&s1, 0.8, 5);
        assert_eq!(hits.len(), 1);
        // A very different signature misses.
        let s2 = sig(&[1000.0], &[900.0, 1.0], &[0.9]);
        assert!(t.lookup(&s2, 0.8, 5).is_empty());
    }

    #[test]
    fn lru_eviction() {
        let mut t = HistoryTable::new(2);
        let s1 = sig(&[1.0], &[1.0], &[0.6]);
        let s2 = sig(&[2.0], &[2.0], &[0.7]);
        let s3 = sig(&[3.0], &[3.0], &[0.8]);
        t.insert(s1.clone(), Chromosome::from_genes(vec![1]));
        t.insert(s2.clone(), Chromosome::from_genes(vec![2]));
        // Touch s1 so s2 becomes LRU.
        let _ = t.lookup(&s1, 0.99, 1);
        t.insert(s3.clone(), Chromosome::from_genes(vec![3]));
        assert_eq!(t.len(), 2);
        // s2 was evicted; s1 and s3 still match themselves.
        assert_eq!(t.lookup(&s1, 0.99, 1).len(), 1);
        assert_eq!(t.lookup(&s3, 0.99, 1).len(), 1);
        assert!(t.lookup(&s2, 0.999, 1).is_empty());
    }

    #[test]
    fn lookup_orders_by_similarity_and_limits() {
        let mut t = HistoryTable::new(10);
        let q = sig(&[10.0, 10.0], &[5.0], &[0.7]);
        t.insert(
            sig(&[10.0, 10.0], &[5.0], &[0.7]),
            Chromosome::from_genes(vec![0]),
        ); // exact
        t.insert(
            sig(&[10.0, 9.0], &[5.0], &[0.7]),
            Chromosome::from_genes(vec![1]),
        ); // close
        t.insert(
            sig(&[10.0, 5.0], &[5.0], &[0.7]),
            Chromosome::from_genes(vec![2]),
        ); // farther
        let hits = t.lookup(&q, 0.5, 2);
        assert_eq!(hits.len(), 2);
        assert_eq!(hits[0], Chromosome::from_genes(vec![0]));
        assert_eq!(hits[1], Chromosome::from_genes(vec![1]));
    }

    #[test]
    fn shared_history_is_usable_across_clones() {
        let h = SharedHistory::new(4);
        let s1 = sig(&[1.0], &[1.0], &[0.6]);
        let h2 = h.clone();
        h.insert(s1.clone(), Chromosome::from_genes(vec![0]));
        assert_eq!(h2.len(), 1);
        assert_eq!(h2.lookup(&s1, 0.9, 3).len(), 1);
    }

    #[test]
    fn json_roundtrip_preserves_entries_and_lru() {
        let mut t = HistoryTable::new(3);
        let s1 = sig(&[1.0], &[1.0], &[0.6]);
        let s2 = sig(&[9.0], &[5.0], &[0.8]);
        t.insert(s1.clone(), Chromosome::from_genes(vec![0]));
        t.insert(s2.clone(), Chromosome::from_genes(vec![1]));
        let json = t.to_json();
        let mut back = HistoryTable::from_json(&json).unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(back.capacity(), 3);
        assert_eq!(
            back.lookup(&s1, 0.99, 1),
            vec![Chromosome::from_genes(vec![0])]
        );
        assert_eq!(
            back.lookup(&s2, 0.99, 1),
            vec![Chromosome::from_genes(vec![1])]
        );
        assert!(HistoryTable::from_json("{").is_err());
    }

    #[test]
    fn best_similarity_reports() {
        let mut t = HistoryTable::new(4);
        let s1 = sig(&[1.0], &[1.0], &[0.6]);
        assert!(t.best_similarity(&s1).is_none());
        t.insert(s1.clone(), Chromosome::from_genes(vec![0]));
        assert_eq!(t.best_similarity(&s1), Some(1.0));
    }
}
