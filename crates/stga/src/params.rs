//! GA and STGA parameters (paper Table 1 defaults).

use gridsec_core::{Error, Result};
use serde::{Deserialize, Serialize};

/// Parameters of the generic GA engine.
///
/// Defaults are the paper's Table 1: population 200, 100 generations,
/// crossover probability 0.8, mutation probability 0.01, elitism on.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GaParams {
    /// Population size (Table 1: 200).
    pub population: usize,
    /// Number of generations per scheduling round (Table 1: 100).
    pub generations: usize,
    /// Probability that a selected parent pair undergoes crossover
    /// (Table 1: 0.8).
    pub crossover_prob: f64,
    /// Probability that an offspring undergoes a point mutation
    /// (Table 1: 0.01).
    pub mutation_prob: f64,
    /// Number of elite individuals copied unchanged each generation
    /// (the paper implements elitism; we default to 2).
    pub elitism: usize,
    /// Seed of the GA's random stream.
    pub seed: u64,
    /// Optional early stop: end evolution after this many consecutive
    /// generations without improvement. `None` (default) runs the full
    /// `generations`, as the paper does.
    pub stall_limit: Option<usize>,
    /// Weight of the mean-completion (flow) term added to the makespan
    /// fitness. The paper's fitness is the pure schedule completion time;
    /// a small flow term breaks ties among equal-makespan schedules in
    /// favour of finishing the other jobs early, which matters for the
    /// response-time and slowdown metrics in an *on-line* setting (see
    /// `gridsec_stga::fitness`).
    pub flow_weight: f64,
}

impl Default for GaParams {
    fn default() -> Self {
        GaParams {
            population: 200,
            generations: 100,
            crossover_prob: 0.8,
            mutation_prob: 0.01,
            elitism: 2,
            seed: 0x57A6,
            stall_limit: None,
            flow_weight: crate::fitness::DEFAULT_FLOW_WEIGHT,
        }
    }
}

impl GaParams {
    /// Validates the parameters.
    pub fn validate(&self) -> Result<()> {
        if self.population < 2 {
            return Err(Error::invalid("population", "need at least 2 individuals"));
        }
        if !(0.0..=1.0).contains(&self.crossover_prob) {
            return Err(Error::invalid("crossover_prob", "must be in [0, 1]"));
        }
        if !(0.0..=1.0).contains(&self.mutation_prob) {
            return Err(Error::invalid("mutation_prob", "must be in [0, 1]"));
        }
        if self.elitism >= self.population {
            return Err(Error::invalid(
                "elitism",
                "elite count must be below the population size",
            ));
        }
        if !(self.flow_weight.is_finite() && self.flow_weight >= 0.0) {
            return Err(Error::invalid(
                "flow_weight",
                "must be finite and non-negative",
            ));
        }
        Ok(())
    }

    /// Builder-style generation override (used by the Fig. 7b sweep).
    pub fn with_generations(mut self, g: usize) -> Self {
        self.generations = g;
        self
    }

    /// Builder-style population override.
    pub fn with_population(mut self, p: usize) -> Self {
        self.population = p;
        self
    }

    /// Builder-style seed override.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// Parameters of the full STGA scheduler.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StgaParams {
    /// The inner GA parameters.
    pub ga: GaParams,
    /// History (lookup) table capacity (Table 1: 150 entries, LRU).
    pub table_capacity: usize,
    /// Minimum Eq. 2 similarity for a history entry to seed the population
    /// (Table 1: 0.8).
    pub similarity_threshold: f64,
    /// Maximum fraction of the population seeded from history (the rest is
    /// heuristic + random, preserving the diversity the paper requires).
    pub history_fraction: f64,
    /// Whether to add Min-Min / Sufferage solutions to the initial
    /// population.
    pub heuristic_seeds: bool,
    /// Number of training jobs used by [`Stga::train`](crate::Stga::train)
    /// (Table 1: 500).
    pub training_jobs: usize,
}

impl Default for StgaParams {
    fn default() -> Self {
        StgaParams {
            ga: GaParams::default(),
            table_capacity: 150,
            similarity_threshold: 0.8,
            history_fraction: 0.5,
            heuristic_seeds: true,
            training_jobs: 500,
        }
    }
}

impl StgaParams {
    /// Validates the parameters.
    pub fn validate(&self) -> Result<()> {
        self.ga.validate()?;
        if self.table_capacity == 0 {
            return Err(Error::invalid("table_capacity", "must be ≥ 1"));
        }
        if !(0.0..=1.0).contains(&self.similarity_threshold) {
            return Err(Error::invalid("similarity_threshold", "must be in [0, 1]"));
        }
        if !(0.0..=1.0).contains(&self.history_fraction) {
            return Err(Error::invalid("history_fraction", "must be in [0, 1]"));
        }
        Ok(())
    }
}

#[cfg(test)]
#[allow(clippy::field_reassign_with_default)] // builder-free mutation reads clearer in tests
mod tests {
    use super::*;

    #[test]
    fn defaults_match_table1() {
        let p = GaParams::default();
        assert_eq!(p.population, 200);
        assert_eq!(p.generations, 100);
        assert_eq!(p.crossover_prob, 0.8);
        assert_eq!(p.mutation_prob, 0.01);
        let s = StgaParams::default();
        assert_eq!(s.table_capacity, 150);
        assert_eq!(s.similarity_threshold, 0.8);
        assert_eq!(s.training_jobs, 500);
        assert!(s.validate().is_ok());
    }

    #[test]
    fn invalid_params_rejected() {
        assert!(GaParams::default().with_population(1).validate().is_err());
        let mut p = GaParams::default();
        p.crossover_prob = 1.5;
        assert!(p.validate().is_err());
        let mut p = GaParams::default();
        p.elitism = 200;
        assert!(p.validate().is_err());
        let mut s = StgaParams::default();
        s.table_capacity = 0;
        assert!(s.validate().is_err());
        let mut s = StgaParams::default();
        s.similarity_threshold = -0.1;
        assert!(s.validate().is_err());
    }

    #[test]
    fn builders() {
        let p = GaParams::default()
            .with_generations(10)
            .with_population(50)
            .with_seed(7);
        assert_eq!(p.generations, 10);
        assert_eq!(p.population, 50);
        assert_eq!(p.seed, 7);
    }
}
