//! The generic GA engine: selection → crossover → mutation → elitism,
//! with rayon-parallel, allocation-free fitness evaluation.

use crate::chromosome::Chromosome;
use crate::fitness::{evaluate_with_scratch, FitnessKind, RiskWeights};
use crate::kernel::{FitnessKernel, KernelScratch};
use crate::ops::{crossover_in_place_tracked, mutate_tracked};
use crate::params::GaParams;
use crate::selection::{elite_indices_into, RouletteWheel};
use gridsec_core::etc::NodeAvailability;
use gridsec_core::Time;
use gridsec_heuristics::common::MapCtx;
use parking_lot::Mutex;
use rand::Rng;
use rayon::prelude::*;

/// Outcome of one evolution run.
#[derive(Debug, Clone, PartialEq)]
pub struct GaResult {
    /// The best chromosome found.
    pub best: Chromosome,
    /// Its fitness (batch makespan + tie-break, seconds).
    pub best_fitness: f64,
    /// Best fitness after each generation (index 0 = initial population),
    /// for convergence plots (Fig. 5 / Fig. 7b). Shorter than
    /// `generations + 1` only when `stall_limit` stopped evolution early.
    pub trajectory: Vec<f64>,
}

/// Cross-round buffer pool for the evolve loop: both population buffers,
/// the fitness vector, the roulette table, the elite-index scratch and
/// the odd-tail spare slot.
///
/// [`evolve`] builds a throwaway pool per call. A long-lived scheduler
/// (the STGA rescheduling every batch inside the serving daemon) owns one
/// across rounds, which amortises even the *initial* random population
/// and first-generation buffer warm-up — the remaining ~1.4k allocations
/// per GA run — to (near) zero; `perf_baseline` asserts that bound.
#[derive(Debug)]
pub struct GaPool {
    population: Vec<Chromosome>,
    next: Vec<Chromosome>,
    fitness: Vec<f64>,
    /// Per-individual evaluation state for `population` (fitness +
    /// completion times), double-buffered with `next_evals` in lockstep
    /// with the population buffers so children can be delta-evaluated
    /// against their parents' retained completion times.
    evals: Vec<EvalSlot>,
    next_evals: Vec<EvalSlot>,
    /// The compiled fitness program, re-lowered from the live snapshot at
    /// the start of every round (buffers reused across rounds).
    kernel: FitnessKernel,
    wheel: RouletteWheel,
    elites: Vec<usize>,
    spare: Chromosome,
    scratch: ScratchPool,
}

impl Default for GaPool {
    fn default() -> Self {
        GaPool {
            population: Vec::new(),
            next: Vec::new(),
            fitness: Vec::new(),
            evals: Vec::new(),
            next_evals: Vec::new(),
            kernel: FitnessKernel::default(),
            wheel: RouletteWheel::new(),
            elites: Vec::new(),
            spare: Chromosome::from_genes(Vec::new()),
            scratch: ScratchPool::default(),
        }
    }
}

/// How one individual of the incoming generation gets its fitness.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Plan {
    /// Replay the whole chromosome from the base availability plane.
    Full,
    /// Byte-identical copy of `population[parent]` (elites, and children
    /// that drew neither crossover nor mutation): inherit its fitness and
    /// completion times outright.
    Inherit { parent: usize },
    /// Differs from `population[parent]` only at genes `from..n` (the
    /// crossover cut / mutation index tracked by the operators): patch
    /// the parent's evaluation instead of replaying from scratch.
    Delta { parent: usize, from: usize },
}

/// Evaluation state of one individual: its fitness, the per-job
/// completion times backing delta evaluation of its children, and the
/// plan/index wiring for the next parallel evaluation sweep.
#[derive(Debug)]
struct EvalSlot {
    /// Position of this slot's genome in its population buffer (slots are
    /// evaluated out of order across worker chunks).
    idx: usize,
    plan: Plan,
    fitness: f64,
    /// Completion time of every job (batch-position indexed); only valid
    /// when `fitness` is finite.
    cts: Vec<Time>,
}

impl Default for EvalSlot {
    fn default() -> Self {
        EvalSlot {
            idx: 0,
            plan: Plan::Full,
            fitness: f64::INFINITY,
            cts: Vec::new(),
        }
    }
}

/// Truncates or pads `slots` to exactly `len` recycled entries.
fn resize_slots(slots: &mut Vec<EvalSlot>, len: usize) {
    slots.truncate(len);
    while slots.len() < len {
        slots.push(EvalSlot::default());
    }
}

/// Mirrors the slots' fitness values into the flat vector consumed by
/// the roulette wheel, elitism and the best-index reduction (and returned
/// by [`evolve_population`]).
fn sync_fitness(fitness: &mut Vec<f64>, slots: &[EvalSlot]) {
    fitness.clear();
    fitness.extend(slots.iter().map(|s| s.fitness));
}

/// Runs one parallel evaluation sweep: every slot's genome (found via
/// `slot.idx` in `genomes`) is evaluated per its plan against the
/// compiled kernel. `parents` carries the previous generation's genomes
/// and slots for the inherit/delta paths; plans referencing a
/// non-finite parent (whose completion times are invalid) fall back to a
/// full replay. Results are thread-count-invariant: each slot is written
/// by exactly one worker and the pooled scratch never influences values.
fn eval_generation(
    kernel: &FitnessKernel,
    genomes: &[Chromosome],
    slots: &mut [EvalSlot],
    parents: Option<(&[Chromosome], &[EvalSlot])>,
    scratch: &ScratchPool,
) {
    slots.par_iter_mut().for_each_init(
        || scratch.acquire(),
        |guard, slot| {
            let genes = genomes[slot.idx].genes();
            slot.fitness = match (slot.plan, parents) {
                (Plan::Inherit { parent }, Some((_, pe))) if pe[parent].fitness.is_finite() => {
                    slot.cts.clear();
                    slot.cts.extend_from_slice(&pe[parent].cts);
                    pe[parent].fitness
                }
                (Plan::Delta { parent, from }, Some((pg, pe)))
                    if pe[parent].fitness.is_finite() =>
                {
                    kernel.evaluate_delta(
                        genes,
                        pg[parent].genes(),
                        &pe[parent].cts,
                        from,
                        &mut slot.cts,
                        &mut guard.buf,
                    )
                }
                _ => kernel.evaluate_full(genes, &mut slot.cts, &mut guard.buf),
            };
        },
    );
}

/// Recycled per-chunk kernel scratch (the flat free-time planes the
/// compiled kernel replays schedules into). Each parallel chunk checks a
/// buffer out at `for_each_init` time and its drop guard checks it back
/// in, so a warm pool serves every generation of every round without
/// allocating. Scratch contents never influence results — every
/// evaluation fully initialises the slices it reads — so recycling is
/// invisible to the digest.
#[derive(Debug, Default)]
struct ScratchPool(Mutex<Vec<KernelScratch>>);

impl ScratchPool {
    fn acquire(&self) -> ScratchGuard<'_> {
        ScratchGuard {
            pool: self,
            buf: self.0.lock().pop().unwrap_or_default(),
        }
    }
}

/// A checked-out scratch buffer; returns itself to the pool on drop.
struct ScratchGuard<'p> {
    pool: &'p ScratchPool,
    buf: KernelScratch,
}

impl Drop for ScratchGuard<'_> {
    fn drop(&mut self) {
        self.pool.0.lock().push(std::mem::take(&mut self.buf));
    }
}

impl GaPool {
    /// An empty pool; buffers warm up over the first run and are reused
    /// verbatim afterwards.
    pub fn new() -> GaPool {
        GaPool::default()
    }
}

/// Evolves `initial` over `params.generations` generations and returns the
/// best solution seen. The initial population is padded with random
/// feasible chromosomes (or truncated) to `params.population`.
///
/// Single-job batches are solved exactly by enumeration — the GA could
/// only ever rediscover the best site, so the engine skips straight to it.
///
/// Determinism: all stochastic choices flow from `rng`; fitness evaluation
/// is data-parallel but side-effect-free.
pub fn evolve<R: Rng + ?Sized>(
    ctx: &MapCtx,
    base_avail: &[NodeAvailability],
    initial: Vec<Chromosome>,
    params: &GaParams,
    kind: FitnessKind,
    risk: Option<&RiskWeights>,
    rng: &mut R,
) -> GaResult {
    let mut pool = GaPool::new();
    evolve_with_pool(ctx, base_avail, initial, params, kind, risk, rng, &mut pool)
}

/// Like [`evolve`], but also returns the final population and its fitness
/// values — the building block of the island-model GA
/// ([`crate::islands`]), which keeps populations alive across migration
/// epochs.
pub fn evolve_population<R: Rng + ?Sized>(
    ctx: &MapCtx,
    base_avail: &[NodeAvailability],
    initial: Vec<Chromosome>,
    params: &GaParams,
    kind: FitnessKind,
    risk: Option<&RiskWeights>,
    rng: &mut R,
) -> (GaResult, Vec<Chromosome>, Vec<f64>) {
    let mut pool = GaPool::new();
    let r = evolve_with_pool(ctx, base_avail, initial, params, kind, risk, rng, &mut pool);
    if ctx.n_jobs() == 1 {
        // The exact single-job path never touches the pool.
        let population = vec![r.best.clone()];
        let fitness = vec![r.best_fitness];
        return (r, population, fitness);
    }
    (r, pool.population, pool.fitness)
}

/// The pooled core of [`evolve`]: identical behaviour (bit for bit — the
/// RNG consumption does not depend on the pool's warmth), but every
/// buffer lives in `pool` and survives the call for reuse by the next
/// scheduling round.
#[allow(clippy::too_many_arguments)] // the pooled variant of evolve's already-wide signature
pub fn evolve_with_pool<R: Rng + ?Sized>(
    ctx: &MapCtx,
    base_avail: &[NodeAvailability],
    initial: Vec<Chromosome>,
    params: &GaParams,
    kind: FitnessKind,
    risk: Option<&RiskWeights>,
    rng: &mut R,
    pool: &mut GaPool,
) -> GaResult {
    params.validate().expect("GA parameters must be valid");
    let n = ctx.n_jobs();
    assert!(n > 0, "cannot evolve an empty batch");

    if n == 1 {
        return solve_single_job(ctx, base_avail, params, kind, risk);
    }

    let GaPool {
        population,
        next,
        fitness,
        evals,
        next_evals,
        kernel,
        wheel,
        elites,
        spare,
        scratch,
    } = pool;
    let scratch = &*scratch;
    // A population-size change between rounds just resizes the buffers.
    population.truncate(params.population);
    next.truncate(params.population);

    // Seed chromosomes overwrite recycled slots (clone_from reuses the
    // slot's gene allocation); random fill re-randomizes in place. Both
    // consume exactly the RNG draws the cold path did.
    let mut seeded = 0;
    for c in initial {
        if seeded == params.population {
            break;
        }
        if c.len() != n {
            continue;
        }
        match population.get_mut(seeded) {
            Some(slot) => slot.clone_from(&c),
            None => population.push(c),
        }
        seeded += 1;
    }
    while seeded < params.population {
        match population.get_mut(seeded) {
            Some(slot) => slot.randomize_from(&ctx.candidates, rng),
            None => population.push(Chromosome::random(&ctx.candidates, rng)),
        }
        seeded += 1;
    }

    // Lower this round's snapshot into the flat kernel (buffers reused
    // across rounds; any grid/trust/availability change since the last
    // round is picked up here).
    kernel.recompile(ctx, base_avail, kind, risk, params.flow_weight);
    resize_slots(evals, params.population);
    resize_slots(next_evals, params.population);

    // Generation 0 (seeded + random individuals) has no parents: full
    // replays only.
    for (i, slot) in evals.iter_mut().enumerate() {
        slot.idx = i;
        slot.plan = Plan::Full;
    }
    eval_generation(kernel, population, evals, None, scratch);
    sync_fitness(fitness, evals);
    let (mut best, mut best_fitness) = current_best(population, fitness);
    let mut trajectory = Vec::with_capacity(params.generations + 1);
    trajectory.push(best_fitness);
    let mut stall = 0usize;

    // Double-buffered generation state: `next` is the other population
    // buffer (swapped in each generation, so chromosome slots — and their
    // gene vectors, via `clone_from` — are recycled), `wheel` owns the
    // cumulative selection table, `elites` the elite-index scratch, and
    // `spare` absorbs the unplaced second child when the non-elite count
    // is odd. Once the pool's buffers are warm, a whole run allocates
    // nothing beyond the returned result.
    for _ in 0..params.generations {
        wheel.rebuild(fitness);
        elite_indices_into(fitness, params.elitism, elites);
        // All slots must exist up front so children can be built in
        // place; the placeholders are allocation-free and only ever
        // constructed while the pool warms up.
        while next.len() < params.population {
            next.push(Chromosome::from_genes(Vec::new()));
        }
        // Elite splice by index: clone the elites into the head of the
        // recycled buffer (clone_from reuses each slot's gene allocation);
        // their evaluations are inherited outright, never recomputed.
        let mut filled = 0;
        for &e in elites.iter() {
            next[filled].clone_from(&population[e]);
            let slot = &mut next_evals[filled];
            slot.idx = filled;
            slot.plan = Plan::Inherit { parent: e };
            filled += 1;
        }
        while filled < params.population {
            let pa = wheel.spin(rng);
            let pb = wheel.spin(rng);
            // Copy both parents into their destination slots (the odd
            // tail child lands in `spare` — it still consumes its RNG
            // draws, exactly like the discarded child did before), then
            // cross and mutate in place, tracking the lowest touched
            // gene so evaluation can patch instead of replay.
            let has_second = filled + 1 < params.population;
            let (head, tail) = next.split_at_mut(filled + 1);
            let ca = &mut head[filled];
            let cb = if has_second {
                &mut tail[0]
            } else {
                &mut *spare
            };
            ca.clone_from(&population[pa]);
            cb.clone_from(&population[pb]);
            let mut from_a = n;
            let mut from_b = n;
            if rng.gen::<f64>() < params.crossover_prob {
                if let Some(cut) = crossover_in_place_tracked(ca, cb, rng) {
                    from_a = cut;
                    from_b = cut;
                }
            }
            if rng.gen::<f64>() < params.mutation_prob {
                if let Some(j) = mutate_tracked(ca, &ctx.candidates, rng) {
                    from_a = from_a.min(j);
                }
            }
            if rng.gen::<f64>() < params.mutation_prob {
                if let Some(j) = mutate_tracked(cb, &ctx.candidates, rng) {
                    from_b = from_b.min(j);
                }
            }
            let plan_for = |parent: usize, from: usize| {
                if from < n {
                    Plan::Delta { parent, from }
                } else {
                    Plan::Inherit { parent }
                }
            };
            let slot = &mut next_evals[filled];
            slot.idx = filled;
            slot.plan = plan_for(pa, from_a);
            if has_second {
                let slot = &mut next_evals[filled + 1];
                slot.idx = filled + 1;
                slot.plan = plan_for(pb, from_b);
            }
            filled += if has_second { 2 } else { 1 };
        }
        // Evaluate the incoming generation against the outgoing one
        // (parents' genomes + completion times back the delta path),
        // then promote it.
        eval_generation(kernel, next, next_evals, Some((population, evals)), scratch);
        std::mem::swap(population, next);
        std::mem::swap(evals, next_evals);
        sync_fitness(fitness, evals);
        let (gen_bi, gen_fit) = best_index(fitness);
        if gen_fit < best_fitness {
            // clone_from reuses `best`'s gene allocation — improvements
            // cost no heap traffic once the pool is warm.
            best.clone_from(&population[gen_bi]);
            best_fitness = gen_fit;
            stall = 0;
        } else {
            stall += 1;
        }
        trajectory.push(best_fitness);
        if let Some(limit) = params.stall_limit {
            if stall >= limit {
                break;
            }
        }
    }

    GaResult {
        best,
        best_fitness,
        trajectory,
    }
}

/// Exact solution for a single-job batch: try every candidate site.
fn solve_single_job(
    ctx: &MapCtx,
    base_avail: &[NodeAvailability],
    params: &GaParams,
    kind: FitnessKind,
    risk: Option<&RiskWeights>,
) -> GaResult {
    let mut scratch = Vec::with_capacity(base_avail.len());
    let mut best: Option<(Chromosome, f64)> = None;
    for &s in &ctx.candidates[0] {
        let c = Chromosome::from_genes(vec![s as u16]);
        let f = evaluate_with_scratch(
            ctx,
            base_avail,
            &mut scratch,
            &c,
            kind,
            risk,
            params.flow_weight,
        );
        if best.as_ref().is_none_or(|(_, bf)| f < *bf) {
            best = Some((c, f));
        }
    }
    let (best, best_fitness) = best.expect("single job has at least one candidate");
    GaResult {
        best,
        best_fitness,
        trajectory: vec![best_fitness; params.generations + 1],
    }
}

/// The best individual of a population. Tie-breaking is explicit: among
/// equal-fitness individuals the **lowest index** wins — guaranteed by the
/// deterministic `indexed_min_by` tree reduction rather than left to scan
/// order, so the result is bit-identical at every thread count.
fn current_best(population: &[Chromosome], fitness: &[f64]) -> (Chromosome, f64) {
    let (bi, bf) = best_index(fitness);
    (population[bi].clone(), bf)
}

/// Index and value of the minimal fitness (lowest index wins ties).
fn best_index(fitness: &[f64]) -> (usize, f64) {
    fitness
        .par_iter()
        .map(|&f| f)
        .indexed_min_by(|a, b| a.total_cmp(b))
        .expect("population is non-empty")
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridsec_core::etc::EtcMatrix;
    use gridsec_core::rng::{stream, Stream};
    use gridsec_core::Time;

    /// 6 jobs × 3 identical single-node sites; optimum spreads the load.
    fn ctx() -> (MapCtx, Vec<NodeAvailability>) {
        let n = 6;
        let m = 3;
        let mut etc = Vec::new();
        for j in 0..n {
            for _ in 0..m {
                etc.push(10.0 * (j + 1) as f64);
            }
        }
        let ctx = MapCtx {
            etc: EtcMatrix::from_raw(n, m, etc),
            widths: vec![1; n],
            arrivals: vec![Time::ZERO; n],
            candidates: vec![(0..m).collect(); n],
            now: Time::ZERO,
            commit_order: vec![],
        };
        let avail = vec![NodeAvailability::new(1, Time::ZERO); m];
        (ctx, avail)
    }

    fn small_params() -> GaParams {
        GaParams::default()
            .with_population(40)
            .with_generations(60)
            .with_seed(11)
    }

    #[test]
    fn ga_finds_balanced_schedule() {
        let (ctx, avail) = ctx();
        let mut rng = stream(11, Stream::Genetic);
        let r = evolve(
            &ctx,
            &avail,
            vec![],
            &small_params(),
            FitnessKind::Makespan,
            None,
            &mut rng,
        );
        // Work totals 10+20+…+60 = 210 over 3 sites → lower bound 70.
        // The GA should find a schedule at or near it (optimum = 70).
        assert!(r.best_fitness <= 80.0, "fitness {}", r.best_fitness);
        assert!(r.best.is_feasible(&ctx.candidates));
    }

    #[test]
    fn trajectory_is_monotone_nonincreasing_with_elitism() {
        let (ctx, avail) = ctx();
        let mut rng = stream(12, Stream::Genetic);
        let r = evolve(
            &ctx,
            &avail,
            vec![],
            &small_params(),
            FitnessKind::Makespan,
            None,
            &mut rng,
        );
        assert_eq!(r.trajectory.len(), 61);
        assert!(r.trajectory.windows(2).all(|w| w[1] <= w[0]));
        assert_eq!(*r.trajectory.last().unwrap(), r.best_fitness);
    }

    #[test]
    fn seeded_population_cannot_be_worse_than_seed() {
        let (ctx, avail) = ctx();
        // A deliberately good seed: round-robin.
        let seed_chrom = Chromosome::from_genes(vec![0, 1, 2, 0, 1, 2]);
        let seed_fit =
            crate::fitness::evaluate(&ctx, &avail, &seed_chrom, FitnessKind::Makespan, None);
        let mut rng = stream(13, Stream::Genetic);
        let r = evolve(
            &ctx,
            &avail,
            vec![seed_chrom],
            &small_params().with_generations(5),
            FitnessKind::Makespan,
            None,
            &mut rng,
        );
        assert!(r.best_fitness <= seed_fit);
    }

    #[test]
    fn deterministic_given_rng() {
        let (ctx, avail) = ctx();
        let run = |seed| {
            let mut rng = stream(seed, Stream::Genetic);
            evolve(
                &ctx,
                &avail,
                vec![],
                &small_params(),
                FitnessKind::Makespan,
                None,
                &mut rng,
            )
        };
        let a = run(5);
        let b = run(5);
        assert_eq!(a, b);
    }

    #[test]
    fn wrong_length_seeds_are_dropped() {
        let (ctx, avail) = ctx();
        let mut rng = stream(14, Stream::Genetic);
        let bad = Chromosome::from_genes(vec![0, 1]); // length 2 ≠ 6
        let r = evolve(
            &ctx,
            &avail,
            vec![bad],
            &small_params().with_generations(1),
            FitnessKind::Makespan,
            None,
            &mut rng,
        );
        assert_eq!(r.best.len(), 6);
    }

    #[test]
    fn zero_generations_returns_initial_best() {
        let (ctx, avail) = ctx();
        let mut rng = stream(15, Stream::Genetic);
        let r = evolve(
            &ctx,
            &avail,
            vec![],
            &small_params().with_generations(0),
            FitnessKind::Makespan,
            None,
            &mut rng,
        );
        assert_eq!(r.trajectory.len(), 1);
        assert!(r.best_fitness.is_finite());
    }

    #[test]
    fn single_job_is_solved_exactly() {
        // One job, three sites with different speeds: exact best must be
        // the fastest site, regardless of RNG.
        let etc = EtcMatrix::from_raw(1, 3, vec![30.0, 10.0, 20.0]);
        let ctx = MapCtx {
            etc,
            widths: vec![1],
            arrivals: vec![Time::ZERO],
            candidates: vec![vec![0, 1, 2]],
            now: Time::ZERO,
            commit_order: vec![],
        };
        let avail = vec![NodeAvailability::new(1, Time::ZERO); 3];
        let mut rng = stream(16, Stream::Genetic);
        let r = evolve(
            &ctx,
            &avail,
            vec![],
            &small_params(),
            FitnessKind::Makespan,
            None,
            &mut rng,
        );
        assert_eq!(r.best.site_of(0), 1);
        assert_eq!(r.trajectory.len(), 61);
    }

    #[test]
    fn current_best_breaks_ties_toward_lowest_index() {
        // Three distinct chromosomes share the minimal fitness; the lowest
        // index must win at every thread count (an earlier implementation
        // relied on scan order).
        let population: Vec<Chromosome> = (0..120)
            .map(|i| Chromosome::from_genes(vec![(i % 4) as u16; 3]))
            .collect();
        let mut fitness = vec![50.0; 120];
        fitness[17] = 10.0;
        fitness[71] = 10.0; // beyond one reduction leaf
        fitness[99] = 10.0;
        for threads in [1, 2, 4] {
            let pool = rayon::ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .unwrap();
            let (best, fit) = pool.install(|| current_best(&population, &fitness));
            assert_eq!(fit, 10.0);
            assert_eq!(best, population[17], "thread count {threads}");
        }
    }

    #[test]
    fn current_best_handles_all_infinite_fitness() {
        let population: Vec<Chromosome> = (0..3).map(|_| Chromosome::from_genes(vec![0])).collect();
        let fitness = vec![f64::INFINITY; 3];
        let (best, fit) = current_best(&population, &fitness);
        assert_eq!(fit, f64::INFINITY);
        assert_eq!(best, population[0]);
    }

    #[test]
    fn pooled_evolve_is_bit_identical_to_cold_runs() {
        // One pool reused over several rounds (different seeds, so
        // different populations) must reproduce each cold run exactly —
        // the pool only changes *where* buffers live, never RNG draws.
        let (ctx, avail) = ctx();
        let params = small_params().with_generations(20);
        let mut pool = GaPool::new();
        for seed in [5u64, 6, 7] {
            let mut cold_rng = stream(seed, Stream::Genetic);
            let cold = evolve(
                &ctx,
                &avail,
                vec![],
                &params,
                FitnessKind::Makespan,
                None,
                &mut cold_rng,
            );
            let mut warm_rng = stream(seed, Stream::Genetic);
            let warm = evolve_with_pool(
                &ctx,
                &avail,
                vec![],
                &params,
                FitnessKind::Makespan,
                None,
                &mut warm_rng,
                &mut pool,
            );
            assert_eq!(cold, warm, "seed {seed}");
        }
    }

    #[test]
    fn pool_survives_population_size_changes() {
        let (ctx, avail) = ctx();
        let mut pool = GaPool::new();
        for pop in [40usize, 12, 30] {
            let params = small_params().with_population(pop).with_generations(8);
            let mut rng = stream(9, Stream::Genetic);
            let warm = evolve_with_pool(
                &ctx,
                &avail,
                vec![],
                &params,
                FitnessKind::Makespan,
                None,
                &mut rng,
                &mut pool,
            );
            let mut cold_rng = stream(9, Stream::Genetic);
            let cold = evolve(
                &ctx,
                &avail,
                vec![],
                &params,
                FitnessKind::Makespan,
                None,
                &mut cold_rng,
            );
            assert_eq!(cold, warm, "population {pop}");
        }
    }

    #[test]
    fn stall_limit_stops_early() {
        let (ctx, avail) = ctx();
        let mut params = small_params();
        params.generations = 500;
        params.stall_limit = Some(5);
        let mut rng = stream(17, Stream::Genetic);
        let r = evolve(
            &ctx,
            &avail,
            vec![],
            &params,
            FitnessKind::Makespan,
            None,
            &mut rng,
        );
        assert!(
            r.trajectory.len() < 501,
            "expected early stop, got {} generations",
            r.trajectory.len() - 1
        );
    }
}
