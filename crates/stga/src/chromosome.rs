//! Chromosome encoding (paper Fig. 4).
//!
//! A chromosome is an array indexed by *batch position*; the element is
//! the site assigned to that job. Genes are always drawn from the job's
//! candidate-site list (the security-driven filter), so every chromosome
//! in a population is feasible by construction; [`Chromosome::repair`]
//! restores feasibility after history adaptation.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// A job→site assignment vector (gene `i` = site index of batch job `i`).
#[derive(Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Chromosome {
    genes: Vec<u16>,
}

// Manual Clone so `clone_from` reuses the destination's gene allocation —
// the GA's elite splice clones into recycled population slots every
// generation (derived Clone would always allocate afresh).
impl Clone for Chromosome {
    fn clone(&self) -> Self {
        Chromosome {
            genes: self.genes.clone(),
        }
    }

    fn clone_from(&mut self, source: &Self) {
        self.genes.clone_from(&source.genes);
    }
}

impl Chromosome {
    /// Wraps a raw gene vector.
    pub fn from_genes(genes: Vec<u16>) -> Self {
        Chromosome { genes }
    }

    /// A uniformly random feasible chromosome: each gene sampled from that
    /// job's candidate list.
    ///
    /// # Panics
    /// Panics if any candidate list is empty (engine-validated batches
    /// always have candidates).
    pub fn random<R: Rng + ?Sized>(candidates: &[Vec<usize>], rng: &mut R) -> Self {
        let mut c = Chromosome { genes: Vec::new() };
        c.randomize_from(candidates, rng);
        c
    }

    /// Re-randomizes this chromosome in place, reusing its gene
    /// allocation — the population pool's replacement for
    /// [`Chromosome::random`] when refilling recycled slots. Consumes the
    /// exact same RNG sequence (one `gen_range` per gene, in order), so a
    /// pooled evolve run is bit-identical to a cold one.
    ///
    /// # Panics
    /// Panics if any candidate list is empty.
    pub fn randomize_from<R: Rng + ?Sized>(&mut self, candidates: &[Vec<usize>], rng: &mut R) {
        self.genes.clear();
        self.genes.extend(candidates.iter().map(|c| {
            assert!(!c.is_empty(), "every job needs at least one candidate");
            c[rng.gen_range(0..c.len())] as u16
        }));
    }

    /// Number of genes (batch size).
    pub fn len(&self) -> usize {
        self.genes.len()
    }

    /// Whether the chromosome is empty.
    pub fn is_empty(&self) -> bool {
        self.genes.is_empty()
    }

    /// The site index for batch job `i`.
    #[inline]
    pub fn site_of(&self, i: usize) -> usize {
        self.genes[i] as usize
    }

    /// Immutable gene view.
    pub fn genes(&self) -> &[u16] {
        &self.genes
    }

    /// Mutable gene view (used by the genetic operators).
    pub(crate) fn genes_mut(&mut self) -> &mut [u16] {
        &mut self.genes
    }

    /// Adapts this chromosome to a (possibly different-sized) batch:
    /// truncates extra genes, extends missing ones randomly, and replaces
    /// any gene that is not in the job's candidate list with a random
    /// candidate. This is how history entries from earlier batches seed
    /// the current population.
    pub fn repair<R: Rng + ?Sized>(&self, candidates: &[Vec<usize>], rng: &mut R) -> Chromosome {
        let genes = candidates
            .iter()
            .enumerate()
            .map(|(i, c)| {
                assert!(!c.is_empty(), "every job needs at least one candidate");
                match self.genes.get(i) {
                    Some(&g) if c.contains(&(g as usize)) => g,
                    _ => c[rng.gen_range(0..c.len())] as u16,
                }
            })
            .collect();
        Chromosome { genes }
    }

    /// Whether every gene is drawn from its candidate list.
    pub fn is_feasible(&self, candidates: &[Vec<usize>]) -> bool {
        self.genes.len() == candidates.len()
            && self
                .genes
                .iter()
                .zip(candidates)
                .all(|(&g, c)| c.contains(&(g as usize)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridsec_core::rng::{stream, Stream};

    fn cands() -> Vec<Vec<usize>> {
        vec![vec![0, 1, 2], vec![1], vec![0, 2]]
    }

    #[test]
    fn random_is_feasible() {
        let mut rng = stream(1, Stream::Genetic);
        for _ in 0..100 {
            let c = Chromosome::random(&cands(), &mut rng);
            assert!(c.is_feasible(&cands()));
            assert_eq!(c.site_of(1), 1); // only candidate
        }
    }

    #[test]
    fn repair_fixes_infeasible_genes() {
        let mut rng = stream(2, Stream::Genetic);
        let bad = Chromosome::from_genes(vec![7, 0, 1]);
        let fixed = bad.repair(&cands(), &mut rng);
        assert!(fixed.is_feasible(&cands()));
    }

    #[test]
    fn repair_adapts_length() {
        let mut rng = stream(3, Stream::Genetic);
        // Too short: extended.
        let short = Chromosome::from_genes(vec![0]);
        let fixed = short.repair(&cands(), &mut rng);
        assert_eq!(fixed.len(), 3);
        assert!(fixed.is_feasible(&cands()));
        // Too long: truncated.
        let long = Chromosome::from_genes(vec![0, 1, 2, 1, 0]);
        let fixed = long.repair(&cands(), &mut rng);
        assert_eq!(fixed.len(), 3);
        assert!(fixed.is_feasible(&cands()));
    }

    #[test]
    fn repair_preserves_feasible_genes() {
        let mut rng = stream(4, Stream::Genetic);
        let ok = Chromosome::from_genes(vec![2, 1, 0]);
        let fixed = ok.repair(&cands(), &mut rng);
        assert_eq!(fixed, ok);
    }

    #[test]
    fn feasibility_checks_length() {
        let c = Chromosome::from_genes(vec![0, 1]);
        assert!(!c.is_feasible(&cands()));
    }
}
