//! Small statistics toolkit used by reports, benches and EXPERIMENTS.md.

use serde::{Deserialize, Serialize};

/// Summary statistics of a sample.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Sample size.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation (n − 1 denominator; 0 for n < 2).
    pub std_dev: f64,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
    /// Median (50th percentile).
    pub median: f64,
}

impl Summary {
    /// Computes summary statistics; returns `None` for an empty sample.
    pub fn of(sample: &[f64]) -> Option<Summary> {
        if sample.is_empty() {
            return None;
        }
        let n = sample.len();
        let mean = mean(sample);
        let std_dev = std_dev(sample);
        let mut sorted: Vec<f64> = sample.to_vec();
        sorted.sort_by(f64::total_cmp);
        Some(Summary {
            n,
            mean,
            std_dev,
            min: sorted[0],
            max: sorted[n - 1],
            median: percentile_sorted(&sorted, 50.0),
        })
    }

    /// Half-width of the ~95 % confidence interval of the mean (normal
    /// approximation, `1.96 σ / √n`).
    pub fn ci95_half_width(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            1.96 * self.std_dev / (self.n as f64).sqrt()
        }
    }
}

/// Arithmetic mean (0 for an empty slice).
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Sample variance with `n − 1` denominator (0 for fewer than 2 points).
pub fn variance(xs: &[f64]) -> f64 {
    let n = xs.len();
    if n < 2 {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (n - 1) as f64
}

/// Sample standard deviation.
pub fn std_dev(xs: &[f64]) -> f64 {
    variance(xs).sqrt()
}

/// Weighted mean; returns 0 when total weight is 0.
pub fn weighted_mean(xs: &[f64], ws: &[f64]) -> f64 {
    assert_eq!(xs.len(), ws.len(), "value/weight length mismatch");
    let wsum: f64 = ws.iter().sum();
    if wsum == 0.0 {
        return 0.0;
    }
    xs.iter().zip(ws).map(|(x, w)| x * w).sum::<f64>() / wsum
}

/// Percentile (0–100) by linear interpolation over an *unsorted* sample.
pub fn percentile(xs: &[f64], p: f64) -> f64 {
    let mut sorted: Vec<f64> = xs.to_vec();
    sorted.sort_by(f64::total_cmp);
    percentile_sorted(&sorted, p)
}

fn percentile_sorted(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    if sorted.len() == 1 {
        return sorted[0];
    }
    let p = p.clamp(0.0, 100.0);
    let rank = p / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let frac = rank - lo as f64;
    sorted[lo] * (1.0 - frac) + sorted[hi] * frac
}

/// Online mean/variance accumulator (Welford's algorithm) — constant-memory
/// streaming statistics for long simulations.
#[derive(Debug, Clone, Default)]
pub struct Welford {
    n: u64,
    mean: f64,
    m2: f64,
}

impl Welford {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Folds in one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Running mean (0 when empty).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Running sample variance (n − 1 denominator).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Running sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }
}

/// Fixed-width histogram over `[lo, hi)` with `bins` buckets; values outside
/// the range clamp to the edge buckets.
#[derive(Debug, Clone)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
}

impl Histogram {
    /// Creates a histogram; `bins ≥ 1`, `lo < hi`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Histogram {
        assert!(bins >= 1, "histogram needs at least one bin");
        assert!(lo < hi, "histogram range must be non-empty");
        Histogram {
            lo,
            hi,
            counts: vec![0; bins],
        }
    }

    /// Adds an observation.
    pub fn push(&mut self, x: f64) {
        let bins = self.counts.len();
        let idx = if x <= self.lo {
            0
        } else if x >= self.hi {
            bins - 1
        } else {
            (((x - self.lo) / (self.hi - self.lo)) * bins as f64) as usize
        };
        self.counts[idx.min(bins - 1)] += 1;
    }

    /// Bucket counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Total observations.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_variance_known_values() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&xs) - 5.0).abs() < 1e-12);
        // Sample variance of this classic set is 32/7.
        assert!((variance(&xs) - 32.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn empty_and_singleton() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(variance(&[3.0]), 0.0);
        assert!(Summary::of(&[]).is_none());
        let s = Summary::of(&[5.0]).unwrap();
        assert_eq!(s.median, 5.0);
        assert_eq!(s.ci95_half_width(), 0.0);
    }

    #[test]
    fn percentiles_interpolate() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&xs, 0.0), 1.0);
        assert_eq!(percentile(&xs, 100.0), 4.0);
        assert!((percentile(&xs, 50.0) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn weighted_mean_matches() {
        assert_eq!(weighted_mean(&[1.0, 3.0], &[1.0, 1.0]), 2.0);
        assert_eq!(weighted_mean(&[1.0, 3.0], &[3.0, 1.0]), 1.5);
        assert_eq!(weighted_mean(&[1.0], &[0.0]), 0.0);
    }

    #[test]
    fn welford_agrees_with_batch() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut w = Welford::new();
        for &x in &xs {
            w.push(x);
        }
        assert_eq!(w.count(), 8);
        assert!((w.mean() - mean(&xs)).abs() < 1e-12);
        assert!((w.variance() - variance(&xs)).abs() < 1e-12);
    }

    #[test]
    fn histogram_buckets_and_clamps() {
        let mut h = Histogram::new(0.0, 10.0, 5);
        h.push(-1.0); // clamps to bucket 0
        h.push(0.5);
        h.push(9.9);
        h.push(42.0); // clamps to last bucket
        assert_eq!(h.total(), 4);
        assert_eq!(h.counts()[0], 2);
        assert_eq!(h.counts()[4], 2);
    }

    #[test]
    fn summary_fields() {
        let s = Summary::of(&[1.0, 2.0, 3.0]).unwrap();
        assert_eq!(s.n, 3);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 3.0);
        assert_eq!(s.median, 2.0);
        assert!(s.ci95_half_width() > 0.0);
    }
}
