//! Batch schedules: the output of one scheduling round.

use crate::error::{Error, Result};
use crate::grid::Grid;
use crate::job::{Job, JobId};
use crate::site::SiteId;
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};

/// One job→site decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Assignment {
    /// The job being placed.
    pub job: JobId,
    /// The chosen site.
    pub site: SiteId,
}

/// The result of scheduling one batch: an ordered list of assignments.
///
/// Order matters: the simulator commits assignments in list order, and
/// list-scheduling heuristics produce a meaningful dispatch order (e.g.
/// Min-Min emits the minimum-completion-time job first).
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct BatchSchedule {
    /// Assignments in dispatch order.
    pub assignments: Vec<Assignment>,
}

impl BatchSchedule {
    /// An empty schedule.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a schedule from `(job, site)` pairs.
    pub fn from_pairs(pairs: impl IntoIterator<Item = (JobId, SiteId)>) -> Self {
        BatchSchedule {
            assignments: pairs
                .into_iter()
                .map(|(job, site)| Assignment { job, site })
                .collect(),
        }
    }

    /// Appends an assignment.
    pub fn push(&mut self, job: JobId, site: SiteId) {
        self.assignments.push(Assignment { job, site });
    }

    /// Number of assignments.
    pub fn len(&self) -> usize {
        self.assignments.len()
    }

    /// Whether the schedule is empty.
    pub fn is_empty(&self) -> bool {
        self.assignments.is_empty()
    }

    /// The site assigned to `job`, if any (the first assignment when the
    /// job is replicated).
    ///
    /// This is a linear scan — right for one-off queries. Callers that
    /// query many jobs against the same schedule should build a
    /// [`ScheduleIndex`] once via [`BatchSchedule::index`].
    pub fn site_of(&self, job: JobId) -> Option<SiteId> {
        self.assignments
            .iter()
            .find(|a| a.job == job)
            .map(|a| a.site)
    }

    /// Builds a job→sites hash index over this schedule for O(1) repeated
    /// queries (`site_of` is O(assignments) per call).
    pub fn index(&self) -> ScheduleIndex {
        ScheduleIndex::build(self)
    }

    /// Validates this schedule against a batch and a grid:
    ///
    /// * every batch job is assigned exactly once, and nothing else is;
    /// * every referenced site exists;
    /// * every job fits (width ≤ site nodes) on its assigned site.
    pub fn validate(&self, batch: &[Job], grid: &Grid) -> Result<()> {
        if self.assignments.len() != batch.len() {
            return Err(Error::IncompleteSchedule {
                expected: batch.len(),
                assigned: self.assignments.len(),
            });
        }
        let by_id: HashMap<JobId, &Job> = batch.iter().map(|j| (j.id, j)).collect();
        let mut seen: HashSet<JobId> = HashSet::with_capacity(batch.len());
        for a in &self.assignments {
            let Some(&job) = by_id.get(&a.job) else {
                return Err(Error::UnknownJob(a.job.0));
            };
            if !seen.insert(a.job) {
                return Err(Error::IncompleteSchedule {
                    expected: batch.len(),
                    assigned: seen.len(),
                });
            }
            let site = grid.get(a.site).ok_or(Error::UnknownSite(a.site.0))?;
            if !site.fits_width(job.width) {
                return Err(Error::WidthExceedsSite {
                    job: job.id.0,
                    width: job.width,
                    site_nodes: site.nodes,
                });
            }
        }
        Ok(())
    }
}

/// A job→sites hash index over one [`BatchSchedule`]: O(1) lookups for
/// callers that query the same schedule repeatedly (dispatch bookkeeping,
/// replication-aware validation, property suites). Holds every site a job
/// was assigned to, in assignment order, so replicated schedules are
/// fully represented.
///
/// The index is a snapshot — it does not track later mutations of the
/// schedule it was built from.
#[derive(Debug, Clone, Default)]
pub struct ScheduleIndex {
    sites: HashMap<JobId, Vec<SiteId>>,
}

impl ScheduleIndex {
    /// Builds the index in one pass over the assignments.
    pub fn build(schedule: &BatchSchedule) -> ScheduleIndex {
        let mut sites: HashMap<JobId, Vec<SiteId>> =
            HashMap::with_capacity(schedule.assignments.len());
        for a in &schedule.assignments {
            sites.entry(a.job).or_default().push(a.site);
        }
        ScheduleIndex { sites }
    }

    /// The site assigned to `job` (first assignment when replicated) —
    /// identical to [`BatchSchedule::site_of`], in O(1).
    pub fn site_of(&self, job: JobId) -> Option<SiteId> {
        self.sites.get(&job).map(|s| s[0])
    }

    /// Every site `job` was assigned to, in assignment order (empty slice
    /// when the job is not in the schedule).
    pub fn sites_of(&self, job: JobId) -> &[SiteId] {
        self.sites.get(&job).map_or(&[], |s| s.as_slice())
    }

    /// Number of distinct jobs in the schedule.
    pub fn n_jobs(&self) -> usize {
        self.sites.len()
    }

    /// Whether the schedule had no assignments.
    pub fn is_empty(&self) -> bool {
        self.sites.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::site::Site;
    use crate::time::Time;

    fn setup() -> (Vec<Job>, Grid) {
        let jobs = vec![
            Job::builder(0).arrival(Time::ZERO).build().unwrap(),
            Job::builder(1).width(4).build().unwrap(),
        ];
        let grid = Grid::new(vec![
            Site::builder(0).nodes(8).build().unwrap(),
            Site::builder(1).nodes(2).build().unwrap(),
        ])
        .unwrap();
        (jobs, grid)
    }

    #[test]
    fn valid_schedule_passes() {
        let (jobs, grid) = setup();
        let s = BatchSchedule::from_pairs([(JobId(0), SiteId(1)), (JobId(1), SiteId(0))]);
        assert!(s.validate(&jobs, &grid).is_ok());
        assert_eq!(s.site_of(JobId(1)), Some(SiteId(0)));
        assert_eq!(s.site_of(JobId(9)), None);
    }

    #[test]
    fn missing_job_fails() {
        let (jobs, grid) = setup();
        let s = BatchSchedule::from_pairs([(JobId(0), SiteId(0))]);
        assert!(matches!(
            s.validate(&jobs, &grid),
            Err(Error::IncompleteSchedule { .. })
        ));
    }

    #[test]
    fn duplicate_job_fails() {
        let (jobs, grid) = setup();
        let s = BatchSchedule::from_pairs([(JobId(0), SiteId(0)), (JobId(0), SiteId(1))]);
        assert!(s.validate(&jobs, &grid).is_err());
    }

    #[test]
    fn unknown_site_fails() {
        let (jobs, grid) = setup();
        let s = BatchSchedule::from_pairs([(JobId(0), SiteId(7)), (JobId(1), SiteId(0))]);
        assert!(matches!(
            s.validate(&jobs, &grid),
            Err(Error::UnknownSite(7))
        ));
    }

    #[test]
    fn foreign_job_fails() {
        let (jobs, grid) = setup();
        let s = BatchSchedule::from_pairs([(JobId(5), SiteId(0)), (JobId(1), SiteId(0))]);
        assert!(matches!(
            s.validate(&jobs, &grid),
            Err(Error::UnknownJob(5))
        ));
    }

    #[test]
    fn width_overflow_fails() {
        let (jobs, grid) = setup();
        // Job 1 has width 4, site 1 has 2 nodes.
        let s = BatchSchedule::from_pairs([(JobId(0), SiteId(0)), (JobId(1), SiteId(1))]);
        assert!(matches!(
            s.validate(&jobs, &grid),
            Err(Error::WidthExceedsSite { .. })
        ));
    }

    #[test]
    fn push_and_len() {
        let mut s = BatchSchedule::new();
        assert!(s.is_empty());
        s.push(JobId(0), SiteId(0));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn index_matches_linear_site_of() {
        let s = BatchSchedule::from_pairs([
            (JobId(4), SiteId(1)),
            (JobId(0), SiteId(0)),
            (JobId(2), SiteId(1)),
        ]);
        let idx = s.index();
        for j in 0..6 {
            assert_eq!(idx.site_of(JobId(j)), s.site_of(JobId(j)), "job {j}");
        }
        assert_eq!(idx.n_jobs(), 3);
        assert!(!idx.is_empty());
        assert!(BatchSchedule::new().index().is_empty());
    }

    #[test]
    fn index_keeps_replicas_in_assignment_order() {
        // Job 1 replicated on sites 2 then 0: site_of must return the
        // first (matching the linear scan), sites_of both in order.
        let s = BatchSchedule::from_pairs([
            (JobId(1), SiteId(2)),
            (JobId(3), SiteId(1)),
            (JobId(1), SiteId(0)),
        ]);
        let idx = s.index();
        assert_eq!(idx.site_of(JobId(1)), Some(SiteId(2)));
        assert_eq!(idx.site_of(JobId(1)), s.site_of(JobId(1)));
        assert_eq!(idx.sites_of(JobId(1)), &[SiteId(2), SiteId(0)]);
        assert_eq!(idx.sites_of(JobId(3)), &[SiteId(1)]);
        assert_eq!(idx.sites_of(JobId(9)), &[] as &[SiteId]);
    }
}
