//! Batch schedules: the output of one scheduling round.

use crate::error::{Error, Result};
use crate::grid::Grid;
use crate::job::{Job, JobId};
use crate::site::SiteId;
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};

/// One job→site decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Assignment {
    /// The job being placed.
    pub job: JobId,
    /// The chosen site.
    pub site: SiteId,
}

/// The result of scheduling one batch: an ordered list of assignments.
///
/// Order matters: the simulator commits assignments in list order, and
/// list-scheduling heuristics produce a meaningful dispatch order (e.g.
/// Min-Min emits the minimum-completion-time job first).
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct BatchSchedule {
    /// Assignments in dispatch order.
    pub assignments: Vec<Assignment>,
}

impl BatchSchedule {
    /// An empty schedule.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a schedule from `(job, site)` pairs.
    pub fn from_pairs(pairs: impl IntoIterator<Item = (JobId, SiteId)>) -> Self {
        BatchSchedule {
            assignments: pairs
                .into_iter()
                .map(|(job, site)| Assignment { job, site })
                .collect(),
        }
    }

    /// Appends an assignment.
    pub fn push(&mut self, job: JobId, site: SiteId) {
        self.assignments.push(Assignment { job, site });
    }

    /// Number of assignments.
    pub fn len(&self) -> usize {
        self.assignments.len()
    }

    /// Whether the schedule is empty.
    pub fn is_empty(&self) -> bool {
        self.assignments.is_empty()
    }

    /// The site assigned to `job`, if any.
    pub fn site_of(&self, job: JobId) -> Option<SiteId> {
        self.assignments
            .iter()
            .find(|a| a.job == job)
            .map(|a| a.site)
    }

    /// Validates this schedule against a batch and a grid:
    ///
    /// * every batch job is assigned exactly once, and nothing else is;
    /// * every referenced site exists;
    /// * every job fits (width ≤ site nodes) on its assigned site.
    pub fn validate(&self, batch: &[Job], grid: &Grid) -> Result<()> {
        if self.assignments.len() != batch.len() {
            return Err(Error::IncompleteSchedule {
                expected: batch.len(),
                assigned: self.assignments.len(),
            });
        }
        let by_id: HashMap<JobId, &Job> = batch.iter().map(|j| (j.id, j)).collect();
        let mut seen: HashSet<JobId> = HashSet::with_capacity(batch.len());
        for a in &self.assignments {
            let Some(&job) = by_id.get(&a.job) else {
                return Err(Error::UnknownJob(a.job.0));
            };
            if !seen.insert(a.job) {
                return Err(Error::IncompleteSchedule {
                    expected: batch.len(),
                    assigned: seen.len(),
                });
            }
            let site = grid.get(a.site).ok_or(Error::UnknownSite(a.site.0))?;
            if !site.fits_width(job.width) {
                return Err(Error::WidthExceedsSite {
                    job: job.id.0,
                    width: job.width,
                    site_nodes: site.nodes,
                });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::site::Site;
    use crate::time::Time;

    fn setup() -> (Vec<Job>, Grid) {
        let jobs = vec![
            Job::builder(0).arrival(Time::ZERO).build().unwrap(),
            Job::builder(1).width(4).build().unwrap(),
        ];
        let grid = Grid::new(vec![
            Site::builder(0).nodes(8).build().unwrap(),
            Site::builder(1).nodes(2).build().unwrap(),
        ])
        .unwrap();
        (jobs, grid)
    }

    #[test]
    fn valid_schedule_passes() {
        let (jobs, grid) = setup();
        let s = BatchSchedule::from_pairs([(JobId(0), SiteId(1)), (JobId(1), SiteId(0))]);
        assert!(s.validate(&jobs, &grid).is_ok());
        assert_eq!(s.site_of(JobId(1)), Some(SiteId(0)));
        assert_eq!(s.site_of(JobId(9)), None);
    }

    #[test]
    fn missing_job_fails() {
        let (jobs, grid) = setup();
        let s = BatchSchedule::from_pairs([(JobId(0), SiteId(0))]);
        assert!(matches!(
            s.validate(&jobs, &grid),
            Err(Error::IncompleteSchedule { .. })
        ));
    }

    #[test]
    fn duplicate_job_fails() {
        let (jobs, grid) = setup();
        let s = BatchSchedule::from_pairs([(JobId(0), SiteId(0)), (JobId(0), SiteId(1))]);
        assert!(s.validate(&jobs, &grid).is_err());
    }

    #[test]
    fn unknown_site_fails() {
        let (jobs, grid) = setup();
        let s = BatchSchedule::from_pairs([(JobId(0), SiteId(7)), (JobId(1), SiteId(0))]);
        assert!(matches!(
            s.validate(&jobs, &grid),
            Err(Error::UnknownSite(7))
        ));
    }

    #[test]
    fn foreign_job_fails() {
        let (jobs, grid) = setup();
        let s = BatchSchedule::from_pairs([(JobId(5), SiteId(0)), (JobId(1), SiteId(0))]);
        assert!(matches!(
            s.validate(&jobs, &grid),
            Err(Error::UnknownJob(5))
        ));
    }

    #[test]
    fn width_overflow_fails() {
        let (jobs, grid) = setup();
        // Job 1 has width 4, site 1 has 2 nodes.
        let s = BatchSchedule::from_pairs([(JobId(0), SiteId(0)), (JobId(1), SiteId(1))]);
        assert!(matches!(
            s.validate(&jobs, &grid),
            Err(Error::WidthExceedsSite { .. })
        ));
    }

    #[test]
    fn push_and_len() {
        let mut s = BatchSchedule::new();
        assert!(s.is_empty());
        s.push(JobId(0), SiteId(0));
        assert_eq!(s.len(), 1);
    }
}
