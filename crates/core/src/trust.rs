//! Fuzzy-logic trust index: deriving site security levels from
//! operational evidence.
//!
//! The paper's §1 notes that `SL` "could … be a weighted sum of several
//! system security parameters (e.g., job execution history, security
//! levels of defense tools employed)" and cites the authors' fuzzy-logic
//! trust model (Song, Hwang & Macwan, *Fuzzy Trust Integration for
//! Security Enforcement in Grid Computing*, NPC 2004). This module
//! implements that derivation so `SL` need not be hand-assigned:
//!
//! 1. Two input signals per site, each in `[0, 1]`:
//!    * **defense capability** — strength of the deployed defenses
//!      (firewall, IDS, patch level), and
//!    * **reputation** — observed behaviour (job success rate, absence of
//!      IDS alerts), maintained online by [`ReputationTracker`].
//! 2. Each input is fuzzified over three triangular membership sets
//!    (*low*, *medium*, *high*).
//! 3. A 3×3 rule base maps input sets to output sets.
//! 4. Product (Larsen) inference with centroid weighting defuzzifies the
//!    output into the scalar trust index used as the site's `SL`. With
//!    the standard triangular partition this reduces to a bilinear
//!    interpolation of the rule table, so the index is monotone in both
//!    inputs.
//!
//! The index is monotone in both inputs and spans the paper's `SL` range.

use serde::{Deserialize, Serialize};

/// A triangular fuzzy membership function over `[0, 1]`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Triangle {
    /// Left foot (membership 0).
    pub a: f64,
    /// Peak (membership 1).
    pub b: f64,
    /// Right foot (membership 0).
    pub c: f64,
}

impl Triangle {
    /// Creates a triangle; requires `a ≤ b ≤ c`.
    ///
    /// # Panics
    /// Panics if the ordering is violated.
    pub fn new(a: f64, b: f64, c: f64) -> Triangle {
        assert!(a <= b && b <= c, "triangle needs a ≤ b ≤ c");
        Triangle { a, b, c }
    }

    /// Membership degree of `x`.
    pub fn membership(&self, x: f64) -> f64 {
        if x < self.a || x > self.c {
            0.0
        } else if x == self.b {
            1.0
        } else if x < self.b {
            if self.b == self.a {
                1.0
            } else {
                (x - self.a) / (self.b - self.a)
            }
        } else if self.c == self.b {
            1.0
        } else {
            (self.c - x) / (self.c - self.b)
        }
    }

    /// The peak position (used as the centroid approximation).
    pub fn center(&self) -> f64 {
        self.b
    }
}

/// The three linguistic levels used for all variables.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Level {
    /// Low membership set.
    Low,
    /// Medium membership set.
    Medium,
    /// High membership set.
    High,
}

/// Standard partition of `[0, 1]` into low/medium/high triangles.
fn partition() -> [(Level, Triangle); 3] {
    [
        (Level::Low, Triangle::new(0.0, 0.0, 0.5)),
        (Level::Medium, Triangle::new(0.0, 0.5, 1.0)),
        (Level::High, Triangle::new(0.5, 1.0, 1.0)),
    ]
}

/// Mamdani rule base: `(defense, reputation) → trust`.
///
/// Conservative by design: trust is high only when *both* signals are
/// strong; a bad reputation caps trust regardless of defenses (a
/// well-defended site that keeps destroying jobs should not be trusted).
fn rule(defense: Level, reputation: Level) -> Level {
    use Level::*;
    match (defense, reputation) {
        (High, High) => High,
        (High, Medium) | (Medium, High) => Medium,
        (Medium, Medium) => Medium,
        (Low, High) | (High, Low) => Low,
        (Low, Medium) | (Medium, Low) => Low,
        (Low, Low) => Low,
    }
}

/// Output centroids for defuzzification.
fn output_center(level: Level) -> f64 {
    match level {
        Level::Low => 0.2,
        Level::Medium => 0.55,
        Level::High => 0.9,
    }
}

/// Computes the fuzzy trust index from defense capability and reputation
/// (both clamped to `[0, 1]`). The result lies in `[0.2, 0.9]` — spanning
/// essentially the paper's `SL ~ U[0.4, 1.0]` operating range.
///
/// ```
/// use gridsec_core::trust::trust_index;
/// let strong = trust_index(0.95, 0.95);
/// let weak = trust_index(0.1, 0.2);
/// assert!(strong > 0.8 && weak < 0.3);
/// ```
pub fn trust_index(defense: f64, reputation: f64) -> f64 {
    let d = defense.clamp(0.0, 1.0);
    let r = reputation.clamp(0.0, 1.0);
    let parts = partition();
    let mut num = 0.0;
    let mut den = 0.0;
    for &(dl, dt) in &parts {
        let md = dt.membership(d);
        if md == 0.0 {
            continue;
        }
        for &(rl, rt) in &parts {
            let mr = rt.membership(r);
            if mr == 0.0 {
                continue;
            }
            // Product (Larsen) activation, centroid-weighted aggregation:
            // with a sum-to-one triangular partition this interpolates
            // the rule table bilinearly, guaranteeing monotonicity.
            let w = md * mr;
            let out = rule(dl, rl);
            num += w * output_center(out);
            den += w;
        }
    }
    if den == 0.0 {
        0.2 // fully out-of-range inputs default to minimal trust
    } else {
        num / den
    }
}

/// Online reputation from observed job outcomes with exponential decay,
/// the "job execution history" input of the trust index.
///
/// Each observation is a success (1) or failure (0); the reputation is an
/// exponentially-weighted success rate, starting from an optimistic prior.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReputationTracker {
    value: f64,
    decay: f64,
}

impl ReputationTracker {
    /// Creates a tracker with the given decay factor in `(0, 1)` (weight
    /// of history vs the newest observation) and an optimistic prior of
    /// 1.0.
    ///
    /// # Panics
    /// Panics unless `0 < decay < 1`.
    pub fn new(decay: f64) -> ReputationTracker {
        assert!(
            decay > 0.0 && decay < 1.0,
            "decay must be in the open interval (0, 1)"
        );
        ReputationTracker { value: 1.0, decay }
    }

    /// Records one job outcome.
    pub fn observe(&mut self, success: bool) {
        let x = if success { 1.0 } else { 0.0 };
        self.value = self.decay * self.value + (1.0 - self.decay) * x;
    }

    /// The current reputation in `[0, 1]`.
    pub fn reputation(&self) -> f64 {
        self.value
    }

    /// Convenience: the trust index of this reputation combined with a
    /// static defense capability.
    pub fn trust_with_defense(&self, defense: f64) -> f64 {
        trust_index(defense, self.value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn triangle_membership_shape() {
        let t = Triangle::new(0.0, 0.5, 1.0);
        assert_eq!(t.membership(0.5), 1.0);
        assert_eq!(t.membership(0.0), 0.0);
        assert_eq!(t.membership(1.0), 0.0);
        assert!((t.membership(0.25) - 0.5).abs() < 1e-12);
        assert!((t.membership(0.75) - 0.5).abs() < 1e-12);
        assert_eq!(t.membership(-0.1), 0.0);
        assert_eq!(t.membership(1.1), 0.0);
    }

    #[test]
    fn shoulder_triangles() {
        let left = Triangle::new(0.0, 0.0, 0.5);
        assert_eq!(left.membership(0.0), 1.0);
        assert!((left.membership(0.25) - 0.5).abs() < 1e-12);
        let right = Triangle::new(0.5, 1.0, 1.0);
        assert_eq!(right.membership(1.0), 1.0);
    }

    #[test]
    #[should_panic(expected = "a ≤ b ≤ c")]
    fn bad_triangle_rejected() {
        let _ = Triangle::new(0.5, 0.2, 1.0);
    }

    #[test]
    fn trust_index_extremes() {
        assert!(trust_index(1.0, 1.0) > 0.85);
        assert!(trust_index(0.0, 0.0) < 0.25);
    }

    #[test]
    fn trust_index_monotone_in_both_inputs() {
        let grid: Vec<f64> = (0..=10).map(|i| i as f64 / 10.0).collect();
        for &r in &grid {
            let mut prev = -1.0;
            for &d in &grid {
                let t = trust_index(d, r);
                assert!(t >= prev - 1e-9, "non-monotone in defense at ({d}, {r})");
                prev = t;
            }
        }
        for &d in &grid {
            let mut prev = -1.0;
            for &r in &grid {
                let t = trust_index(d, r);
                assert!(t >= prev - 1e-9, "non-monotone in reputation at ({d}, {r})");
                prev = t;
            }
        }
    }

    #[test]
    fn bad_reputation_caps_trust() {
        // Strong defenses but terrible history: low trust.
        assert!(trust_index(1.0, 0.0) < 0.4);
    }

    #[test]
    fn trust_index_within_output_range() {
        for i in 0..=20 {
            for j in 0..=20 {
                let t = trust_index(i as f64 / 20.0, j as f64 / 20.0);
                assert!((0.2 - 1e-9..=0.9 + 1e-9).contains(&t), "t = {t}");
            }
        }
    }

    #[test]
    fn inputs_clamped() {
        assert_eq!(trust_index(5.0, 5.0), trust_index(1.0, 1.0));
        assert_eq!(trust_index(-1.0, -2.0), trust_index(0.0, 0.0));
    }

    #[test]
    fn reputation_tracks_and_decays() {
        let mut r = ReputationTracker::new(0.9);
        assert_eq!(r.reputation(), 1.0);
        for _ in 0..50 {
            r.observe(false);
        }
        assert!(r.reputation() < 0.05);
        for _ in 0..100 {
            r.observe(true);
        }
        assert!(r.reputation() > 0.9);
    }

    #[test]
    fn reputation_feeds_trust() {
        let mut r = ReputationTracker::new(0.8);
        let fresh = r.trust_with_defense(0.9);
        for _ in 0..30 {
            r.observe(false);
        }
        let burned = r.trust_with_defense(0.9);
        assert!(burned < fresh);
    }

    #[test]
    #[should_panic(expected = "open interval")]
    fn decay_bounds_enforced() {
        let _ = ReputationTracker::new(1.0);
    }
}
