//! Grid resource sites.
//!
//! A *site* is one administrative resource pool (a cluster or supercomputer
//! partition) containing `nodes` identical processors of relative speed
//! `speed`, and advertising a **security level** `SL` (paper: uniform in
//! `[0.4, 1.0]`), e.g. maintained by a local intrusion-detection system.

use crate::error::{Error, Result};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Index of a site within its [`Grid`](crate::Grid).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default,
)]
pub struct SiteId(pub usize);

impl fmt::Display for SiteId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "S{}", self.0)
    }
}

/// One Grid resource site.
///
/// ```
/// use gridsec_core::Site;
/// let site = Site::builder(0)
///     .nodes(16)
///     .speed(2.0)
///     .security_level(0.8)
///     .build()
///     .unwrap();
/// assert_eq!(site.nodes, 16);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Site {
    /// Index of this site in the grid.
    pub id: SiteId,
    /// Number of identical nodes.
    pub nodes: u32,
    /// Relative processing speed of each node (reference node = 1.0).
    pub speed: f64,
    /// Security level `SL` offered to remote jobs.
    pub security_level: f64,
}

impl Site {
    /// Starts building a site with defaults (`nodes = 1`, `speed = 1.0`,
    /// `SL = 1.0`).
    pub fn builder(id: usize) -> SiteBuilder {
        SiteBuilder::new(id)
    }

    /// Aggregate processing power of the site (`nodes × speed`).
    #[inline]
    pub fn power(&self) -> f64 {
        f64::from(self.nodes) * self.speed
    }

    /// Whether a job of the given width fits on this site at all.
    #[inline]
    pub fn fits_width(&self, width: u32) -> bool {
        width <= self.nodes
    }
}

/// Builder for [`Site`] with validation at [`SiteBuilder::build`].
#[derive(Debug, Clone)]
pub struct SiteBuilder {
    id: usize,
    nodes: u32,
    speed: f64,
    security_level: f64,
}

impl SiteBuilder {
    fn new(id: usize) -> Self {
        SiteBuilder {
            id,
            nodes: 1,
            speed: 1.0,
            security_level: 1.0,
        }
    }

    /// Sets the node count (must be ≥ 1).
    pub fn nodes(mut self, n: u32) -> Self {
        self.nodes = n;
        self
    }

    /// Sets the per-node relative speed (must be positive and finite).
    pub fn speed(mut self, v: f64) -> Self {
        self.speed = v;
        self
    }

    /// Sets the security level (must lie in `[0, 1]`).
    pub fn security_level(mut self, sl: f64) -> Self {
        self.security_level = sl;
        self
    }

    /// Validates and constructs the [`Site`].
    pub fn build(self) -> Result<Site> {
        if self.nodes == 0 {
            return Err(Error::invalid("nodes", "a site must have at least 1 node"));
        }
        if !(self.speed.is_finite() && self.speed > 0.0) {
            return Err(Error::invalid(
                "speed",
                format!("speed must be positive and finite, got {}", self.speed),
            ));
        }
        if !(0.0..=1.0).contains(&self.security_level) {
            return Err(Error::invalid(
                "security_level",
                format!("SL must be in [0, 1], got {}", self.security_level),
            ));
        }
        Ok(Site {
            id: SiteId(self.id),
            nodes: self.nodes,
            speed: self.speed,
            security_level: self.security_level,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_defaults() {
        let s = Site::builder(3).build().unwrap();
        assert_eq!(s.id, SiteId(3));
        assert_eq!(s.nodes, 1);
        assert_eq!(s.speed, 1.0);
        assert_eq!(s.security_level, 1.0);
    }

    #[test]
    fn power_is_nodes_times_speed() {
        let s = Site::builder(0).nodes(8).speed(2.5).build().unwrap();
        assert_eq!(s.power(), 20.0);
    }

    #[test]
    fn fits_width() {
        let s = Site::builder(0).nodes(8).build().unwrap();
        assert!(s.fits_width(1));
        assert!(s.fits_width(8));
        assert!(!s.fits_width(9));
    }

    #[test]
    fn invalid_sites_rejected() {
        assert!(Site::builder(0).nodes(0).build().is_err());
        assert!(Site::builder(0).speed(0.0).build().is_err());
        assert!(Site::builder(0).speed(-1.0).build().is_err());
        assert!(Site::builder(0).security_level(1.01).build().is_err());
    }

    #[test]
    fn site_id_display() {
        assert_eq!(SiteId(5).to_string(), "S5");
    }
}
