//! Expected-Time-to-Compute (ETC) matrices and node-availability tracking.
//!
//! Batch-mode mapping heuristics (Min-Min, Sufferage, …) and the GA fitness
//! function all reason about *estimated completion times*:
//!
//! ```text
//! CT(j, s) = earliest_start(s, width(j)) + ETC(j, s)
//! ```
//!
//! [`EtcMatrix`] holds the pure execution-time part (`work / speed`, or
//! `+∞` where the job does not fit), and [`NodeAvailability`] tracks when a
//! site's nodes become free so that `earliest_start` can be computed and
//! updated as assignments are committed. The same availability structure is
//! used by the simulator for actual dispatch, so heuristic estimates and
//! simulated execution agree by construction.

use crate::grid::Grid;
use crate::job::Job;
use crate::time::Time;
use serde::{Deserialize, Serialize};

/// Dense jobs × sites matrix of execution times.
///
/// Entry `(j, s)` is the time job `j` (by *batch position*, not [`JobId`])
/// needs on site `s`, or `f64::INFINITY` when the job's width exceeds the
/// site's node count.
///
/// [`JobId`]: crate::JobId
///
/// ```
/// use gridsec_core::{EtcMatrix, Grid, Job, Site};
/// let grid = Grid::new(vec![
///     Site::builder(0).nodes(4).speed(2.0).build().unwrap(),
///     Site::builder(1).nodes(1).speed(1.0).build().unwrap(),
/// ]).unwrap();
/// let jobs = vec![Job::builder(0).work(100.0).width(2).build().unwrap()];
/// let etc = EtcMatrix::build(&jobs, &grid);
/// assert_eq!(etc.get(0, 0), 50.0);          // fits, speed 2
/// assert!(etc.get(0, 1).is_infinite());     // width 2 > 1 node
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EtcMatrix {
    n_jobs: usize,
    n_sites: usize,
    data: Vec<f64>,
}

impl EtcMatrix {
    /// Builds the ETC matrix for a batch of jobs over a grid.
    pub fn build(jobs: &[Job], grid: &Grid) -> EtcMatrix {
        let n_jobs = jobs.len();
        let n_sites = grid.len();
        let mut data = Vec::with_capacity(n_jobs * n_sites);
        for job in jobs {
            for site in grid.sites() {
                if site.fits_width(job.width) {
                    data.push(job.work / site.speed);
                } else {
                    data.push(f64::INFINITY);
                }
            }
        }
        EtcMatrix {
            n_jobs,
            n_sites,
            data,
        }
    }

    /// Constructs a matrix from raw row-major data (used by tests and the
    /// history table).
    ///
    /// # Panics
    /// Panics if `data.len() != n_jobs * n_sites`.
    pub fn from_raw(n_jobs: usize, n_sites: usize, data: Vec<f64>) -> EtcMatrix {
        assert_eq!(
            data.len(),
            n_jobs * n_sites,
            "ETC data length must be n_jobs * n_sites"
        );
        EtcMatrix {
            n_jobs,
            n_sites,
            data,
        }
    }

    /// Number of jobs (rows).
    #[inline]
    pub fn n_jobs(&self) -> usize {
        self.n_jobs
    }

    /// Number of sites (columns).
    #[inline]
    pub fn n_sites(&self) -> usize {
        self.n_sites
    }

    /// Execution time of batch-job `j` on site `s`.
    #[inline]
    pub fn get(&self, j: usize, s: usize) -> f64 {
        self.data[j * self.n_sites + s]
    }

    /// The row of execution times for batch-job `j`.
    #[inline]
    pub fn row(&self, j: usize) -> &[f64] {
        &self.data[j * self.n_sites..(j + 1) * self.n_sites]
    }

    /// The raw row-major data (used for history-table similarity).
    #[inline]
    pub fn raw(&self) -> &[f64] {
        &self.data
    }

    /// Site index with the smallest execution time for job `j` (ignoring
    /// availability), or `None` if the job fits nowhere.
    pub fn fastest_site(&self, j: usize) -> Option<usize> {
        let row = self.row(j);
        let (mut best, mut best_t) = (None, f64::INFINITY);
        for (s, &t) in row.iter().enumerate() {
            if t < best_t {
                best_t = t;
                best = Some(s);
            }
        }
        best
    }
}

/// Sorted multiset of node free-times for one site.
///
/// A job of width `w` can start at the `w`-th smallest free time (all times
/// clamped below by "now"). Committing an assignment takes the `w`
/// earliest-free nodes and marks them busy until the finish time. This is
/// the aggressive (no-backfilling) reservation model; the simulator uses the
/// identical structure so estimates match execution.
#[derive(Debug, PartialEq, Serialize, Deserialize)]
pub struct NodeAvailability {
    /// Free instants, maintained in ascending order.
    free: Vec<Time>,
}

impl Clone for NodeAvailability {
    fn clone(&self) -> Self {
        NodeAvailability {
            free: self.free.clone(),
        }
    }

    /// Reuses the existing buffer — the GA fitness loop resets a scratch
    /// copy millions of times per run, and this keeps it allocation-free.
    fn clone_from(&mut self, source: &Self) {
        self.free.clone_from(&source.free);
    }
}

impl NodeAvailability {
    /// All `nodes` nodes free at time `at`.
    pub fn new(nodes: u32, at: Time) -> NodeAvailability {
        NodeAvailability {
            free: vec![at; nodes as usize],
        }
    }

    /// Restores a site from a saved free-time multiset (one entry per
    /// node). Sorts defensively so callers can pass times in any order —
    /// the invariant is ascending order, not insertion order.
    pub fn from_times(mut times: Vec<Time>) -> NodeAvailability {
        times.sort_unstable();
        NodeAvailability { free: times }
    }

    /// Number of nodes tracked.
    #[inline]
    pub fn nodes(&self) -> usize {
        self.free.len()
    }

    /// Earliest instant at which `width` nodes are simultaneously free, no
    /// earlier than `not_before`. Returns `None` if `width` exceeds the node
    /// count.
    pub fn earliest_start(&self, width: u32, not_before: Time) -> Option<Time> {
        let w = width as usize;
        if w == 0 || w > self.free.len() {
            return None;
        }
        Some(self.free[w - 1].at_least(not_before))
    }

    /// Commits a job of `width` nodes finishing at `finish`: the `width`
    /// earliest-free nodes become busy until `finish`.
    ///
    /// # Panics
    /// Panics if `width` exceeds the node count (schedules are validated
    /// before commitment).
    pub fn commit(&mut self, width: u32, finish: Time) {
        let w = width as usize;
        assert!(
            w >= 1 && w <= self.free.len(),
            "commit width {w} out of range for {} nodes",
            self.free.len()
        );
        for t in &mut self.free[..w] {
            *t = finish;
        }
        self.free.sort_unstable();
    }

    /// The earliest free time over all nodes (site "ready time" for
    /// width-1 work, the scalar the history table stores).
    #[inline]
    pub fn ready_time(&self) -> Time {
        self.free.first().copied().unwrap_or(Time::ZERO)
    }

    /// The latest free time (when the whole site drains).
    #[inline]
    pub fn drain_time(&self) -> Time {
        self.free.last().copied().unwrap_or(Time::ZERO)
    }

    /// Number of nodes free at instant `t`.
    pub fn free_at(&self, t: Time) -> usize {
        self.free.iter().filter(|&&ft| ft <= t).count()
    }

    /// The sorted free-time multiset as a flat slice (ascending).
    ///
    /// This is the snapshot accessor used to lower availability into flat
    /// structure-of-arrays planes (`gridsec-stga`'s fitness kernel): a
    /// kernel copies these times into one contiguous buffer per evaluation
    /// and performs the identical `earliest_start`/`commit` arithmetic on
    /// the raw slice.
    #[inline]
    pub fn free_times(&self) -> &[Time] {
        &self.free
    }
}

/// Estimated completion time of a job on a site: earliest start (given
/// availability and the job's arrival/now floor) plus ETC entry.
///
/// Returns `None` when the job does not fit on the site.
pub fn completion_time(
    etc: &EtcMatrix,
    avail: &NodeAvailability,
    batch_idx: usize,
    site_idx: usize,
    width: u32,
    not_before: Time,
) -> Option<Time> {
    let exec = etc.get(batch_idx, site_idx);
    if !exec.is_finite() {
        return None;
    }
    let start = avail.earliest_start(width, not_before)?;
    Some(start + Time::new(exec))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::site::Site;

    fn grid() -> Grid {
        Grid::new(vec![
            Site::builder(0).nodes(2).speed(1.0).build().unwrap(),
            Site::builder(1).nodes(4).speed(2.0).build().unwrap(),
        ])
        .unwrap()
    }

    #[test]
    fn etc_build_scales_and_masks() {
        let jobs = vec![
            Job::builder(0).work(100.0).width(1).build().unwrap(),
            Job::builder(1).work(100.0).width(3).build().unwrap(),
        ];
        let etc = EtcMatrix::build(&jobs, &grid());
        assert_eq!(etc.get(0, 0), 100.0);
        assert_eq!(etc.get(0, 1), 50.0);
        assert!(etc.get(1, 0).is_infinite());
        assert_eq!(etc.get(1, 1), 50.0);
        assert_eq!(etc.fastest_site(0), Some(1));
        assert_eq!(etc.fastest_site(1), Some(1));
    }

    #[test]
    fn fastest_site_none_when_nothing_fits() {
        let etc = EtcMatrix::from_raw(1, 2, vec![f64::INFINITY, f64::INFINITY]);
        assert_eq!(etc.fastest_site(0), None);
    }

    #[test]
    #[should_panic(expected = "n_jobs * n_sites")]
    fn from_raw_checks_shape() {
        let _ = EtcMatrix::from_raw(2, 2, vec![1.0; 3]);
    }

    #[test]
    fn availability_earliest_start() {
        let mut a = NodeAvailability::new(4, Time::ZERO);
        assert_eq!(a.earliest_start(1, Time::ZERO), Some(Time::ZERO));
        assert_eq!(a.earliest_start(4, Time::ZERO), Some(Time::ZERO));
        assert_eq!(a.earliest_start(5, Time::ZERO), None);
        a.commit(2, Time::new(10.0));
        // Two nodes busy until 10, two free now.
        assert_eq!(a.earliest_start(1, Time::ZERO), Some(Time::ZERO));
        assert_eq!(a.earliest_start(2, Time::ZERO), Some(Time::ZERO));
        assert_eq!(a.earliest_start(3, Time::ZERO), Some(Time::new(10.0)));
        assert_eq!(a.earliest_start(4, Time::ZERO), Some(Time::new(10.0)));
        // not_before floor applies.
        assert_eq!(a.earliest_start(1, Time::new(5.0)), Some(Time::new(5.0)));
    }

    #[test]
    fn availability_commit_takes_earliest_nodes() {
        let mut a = NodeAvailability::new(2, Time::ZERO);
        a.commit(1, Time::new(100.0));
        a.commit(1, Time::new(50.0));
        // Nodes free at 50 and 100.
        assert_eq!(a.ready_time(), Time::new(50.0));
        assert_eq!(a.drain_time(), Time::new(100.0));
        assert_eq!(a.free_at(Time::new(60.0)), 1);
        assert_eq!(a.free_at(Time::new(100.0)), 2);
    }

    #[test]
    fn completion_time_combines_start_and_exec() {
        let jobs = vec![Job::builder(0).work(100.0).width(2).build().unwrap()];
        let g = grid();
        let etc = EtcMatrix::build(&jobs, &g);
        let mut a = NodeAvailability::new(4, Time::ZERO);
        a.commit(3, Time::new(20.0));
        // Width-2 job on site 1 (speed 2): start when 2 nodes free = 20, +50.
        let ct = completion_time(&etc, &a, 0, 1, 2, Time::ZERO).unwrap();
        assert_eq!(ct, Time::new(70.0));
        // Site 0 has 2 nodes but our availability snapshot is for site 1;
        // a non-fitting entry returns None.
        let a0 = NodeAvailability::new(2, Time::ZERO);
        assert!(completion_time(&etc, &a0, 0, 0, 2, Time::ZERO).is_some());
    }

    #[test]
    fn free_times_exposes_sorted_snapshot() {
        let mut a = NodeAvailability::new(3, Time::ZERO);
        a.commit(2, Time::new(7.0));
        assert_eq!(
            a.free_times(),
            &[Time::ZERO, Time::new(7.0), Time::new(7.0)]
        );
    }

    #[test]
    fn zero_width_has_no_start() {
        let a = NodeAvailability::new(4, Time::ZERO);
        assert_eq!(a.earliest_start(0, Time::ZERO), None);
    }
}
