//! Performance metrics (paper §4.1).
//!
//! The six metrics reported by the paper, with their exact definitions:
//!
//! * **Makespan** — `max_i { c_i }` over job completion times.
//! * **Average response time** — `Σ (c_i − a_i) / N` (completion minus
//!   arrival).
//! * **Slowdown ratio** (Eq. 3) — average response time divided by the
//!   average of `c_i − b_i` (completion minus *start*), i.e. response over
//!   in-service time; ≥ 1, and large when jobs queue for long.
//! * **N_risk** — number of jobs that ever ran on a site whose `SL` was
//!   below their `SD`.
//! * **N_fail** — number of jobs that actually failed (and were rescheduled
//!   on a safe site); bounded above by `N_risk`.
//! * **Site utilisation** — percentage of a site's processing power
//!   allocated to user jobs over the simulation horizon (failed attempts
//!   consume power and count).

use crate::job::JobId;
use crate::site::SiteId;
use crate::time::Time;
use serde::{Deserialize, Serialize};

/// Final record of one job's journey through the system.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobOutcome {
    /// The job.
    pub id: JobId,
    /// Submission instant `a_i`.
    pub arrival: Time,
    /// First dispatch start `b_i` (start of the first attempt).
    pub first_start: Time,
    /// Final completion `c_i` (successful attempt's finish).
    pub completion: Time,
    /// Site of the successful attempt.
    pub final_site: SiteId,
    /// Whether any attempt ran on a site with `SL < SD`.
    pub risk_taken: bool,
    /// Number of failed attempts before success.
    pub failures: u32,
}

/// Accumulates job outcomes and per-site busy time during a simulation.
#[derive(Debug, Clone)]
pub struct MetricsCollector {
    outcomes: Vec<JobOutcome>,
    /// Busy node-seconds per site (includes time consumed by failed
    /// attempts — that power was allocated to user jobs).
    busy_node_seconds: Vec<f64>,
    site_nodes: Vec<u32>,
    site_speeds: Vec<f64>,
}

impl MetricsCollector {
    /// Creates a collector for a grid described by per-site node counts and
    /// speeds (in site-id order).
    pub fn new(site_nodes: Vec<u32>, site_speeds: Vec<f64>) -> Self {
        let n = site_nodes.len();
        assert_eq!(n, site_speeds.len(), "nodes/speeds length mismatch");
        MetricsCollector {
            outcomes: Vec::new(),
            busy_node_seconds: vec![0.0; n],
            site_nodes,
            site_speeds,
        }
    }

    /// Records node-seconds consumed on a site by one (possibly failed)
    /// attempt: `width × duration`.
    pub fn record_busy(&mut self, site: SiteId, width: u32, duration: Time) {
        self.busy_node_seconds[site.0] += f64::from(width) * duration.seconds();
    }

    /// Records a completed job.
    pub fn record_outcome(&mut self, outcome: JobOutcome) {
        self.outcomes.push(outcome);
    }

    /// Number of completed jobs so far.
    pub fn completed(&self) -> usize {
        self.outcomes.len()
    }

    /// Immutable view of the recorded outcomes.
    pub fn outcomes(&self) -> &[JobOutcome] {
        &self.outcomes
    }

    /// Produces the final report. `horizon` is the utilisation denominator
    /// interval; pass `None` to use the makespan.
    pub fn report(&self, horizon: Option<Time>) -> Report {
        let n = self.outcomes.len();
        if n == 0 {
            return Report::empty(self.site_nodes.len());
        }
        let makespan = self
            .outcomes
            .iter()
            .map(|o| o.completion)
            .max()
            .unwrap_or(Time::ZERO);
        let horizon = horizon.unwrap_or(makespan);
        let sum_response: f64 = self
            .outcomes
            .iter()
            .map(|o| (o.completion - o.arrival).seconds())
            .sum();
        let sum_service: f64 = self
            .outcomes
            .iter()
            .map(|o| (o.completion - o.first_start).seconds())
            .sum();
        let sum_wait: f64 = self
            .outcomes
            .iter()
            .map(|o| (o.first_start - o.arrival).seconds())
            .sum();
        let avg_response = sum_response / n as f64;
        let avg_service = sum_service / n as f64;
        let avg_wait = sum_wait / n as f64;
        let slowdown_ratio = if sum_service > 0.0 {
            sum_response / sum_service
        } else {
            1.0
        };
        let n_risk = self.outcomes.iter().filter(|o| o.risk_taken).count();
        let n_fail = self.outcomes.iter().filter(|o| o.failures > 0).count();
        let denom = horizon.seconds().max(f64::MIN_POSITIVE);
        let site_utilization: Vec<f64> = self
            .busy_node_seconds
            .iter()
            .zip(&self.site_nodes)
            .map(|(&busy, &nodes)| 100.0 * busy / (f64::from(nodes) * denom))
            .collect();
        let total_busy: f64 = self.busy_node_seconds.iter().sum();
        let total_nodes: f64 = self.site_nodes.iter().map(|&x| f64::from(x)).sum();
        let overall_utilization = 100.0 * total_busy / (total_nodes * denom);
        let utilization_fairness = jain_fairness(&site_utilization);
        Report {
            n_jobs: n,
            makespan,
            avg_response,
            avg_service,
            avg_wait,
            slowdown_ratio,
            n_risk,
            n_fail,
            site_utilization,
            overall_utilization,
            utilization_fairness,
        }
    }

    /// Per-site relative speeds (used by reports that weight by power).
    pub fn site_speeds(&self) -> &[f64] {
        &self.site_speeds
    }
}

/// The paper's §4.1 metric set for one simulation run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Report {
    /// Number of completed jobs.
    pub n_jobs: usize,
    /// `max c_i`.
    pub makespan: Time,
    /// `Σ (c_i − a_i) / N` in seconds.
    pub avg_response: f64,
    /// `Σ (c_i − b_i) / N` in seconds (the paper's Eq. 3 denominator).
    pub avg_service: f64,
    /// `Σ (b_i − a_i) / N` in seconds (queueing delay).
    pub avg_wait: f64,
    /// Eq. (3): `avg_response / avg_service`.
    pub slowdown_ratio: f64,
    /// Jobs that ever ran on a site with `SL < SD`.
    pub n_risk: usize,
    /// Jobs with at least one failed attempt (`n_fail ≤ n_risk`).
    pub n_fail: usize,
    /// Per-site utilisation percentages.
    pub site_utilization: Vec<f64>,
    /// Grid-wide utilisation percentage.
    pub overall_utilization: f64,
    /// Jain's fairness index over per-site utilisations: 1.0 = perfectly
    /// balanced, `1/n` = all load on one of `n` sites. Quantifies the
    /// paper's Fig. 9 balance comparison.
    #[serde(default = "default_fairness")]
    pub utilization_fairness: f64,
}

fn default_fairness() -> f64 {
    1.0
}

/// Jain's fairness index `(Σx)² / (n·Σx²)`; 1.0 for an empty or all-zero
/// vector by convention.
pub fn jain_fairness(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 1.0;
    }
    let sum: f64 = xs.iter().sum();
    let sum_sq: f64 = xs.iter().map(|x| x * x).sum();
    if sum_sq == 0.0 {
        1.0
    } else {
        (sum * sum) / (xs.len() as f64 * sum_sq)
    }
}

impl Report {
    fn empty(n_sites: usize) -> Report {
        Report {
            n_jobs: 0,
            makespan: Time::ZERO,
            avg_response: 0.0,
            avg_service: 0.0,
            avg_wait: 0.0,
            slowdown_ratio: 1.0,
            n_risk: 0,
            n_fail: 0,
            site_utilization: vec![0.0; n_sites],
            overall_utilization: 0.0,
            utilization_fairness: 1.0,
        }
    }

    /// The makespan ratio α of this report relative to a baseline (Table 2:
    /// `α = makespan / makespan_STGA`).
    pub fn alpha_vs(&self, baseline: &Report) -> f64 {
        self.makespan.seconds() / baseline.makespan.seconds().max(f64::MIN_POSITIVE)
    }

    /// The response-time ratio β relative to a baseline (Table 2).
    pub fn beta_vs(&self, baseline: &Report) -> f64 {
        self.avg_response / baseline.avg_response.max(f64::MIN_POSITIVE)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome(id: u64, a: f64, b: f64, c: f64, risk: bool, fails: u32) -> JobOutcome {
        JobOutcome {
            id: JobId(id),
            arrival: Time::new(a),
            first_start: Time::new(b),
            completion: Time::new(c),
            final_site: SiteId(0),
            risk_taken: risk,
            failures: fails,
        }
    }

    #[test]
    fn empty_report() {
        let c = MetricsCollector::new(vec![4, 8], vec![1.0, 2.0]);
        let r = c.report(None);
        assert_eq!(r.n_jobs, 0);
        assert_eq!(r.makespan, Time::ZERO);
        assert_eq!(r.slowdown_ratio, 1.0);
        assert_eq!(r.site_utilization.len(), 2);
    }

    #[test]
    fn metrics_match_hand_computation() {
        let mut c = MetricsCollector::new(vec![2], vec![1.0]);
        // Job 0: arrive 0, start 0, done 10. Job 1: arrive 0, start 10, done 20.
        c.record_outcome(outcome(0, 0.0, 0.0, 10.0, false, 0));
        c.record_outcome(outcome(1, 0.0, 10.0, 20.0, true, 1));
        c.record_busy(SiteId(0), 1, Time::new(10.0));
        c.record_busy(SiteId(0), 1, Time::new(10.0));
        let r = c.report(None);
        assert_eq!(r.n_jobs, 2);
        assert_eq!(r.makespan, Time::new(20.0));
        assert_eq!(r.avg_response, 15.0); // (10 + 20)/2
        assert_eq!(r.avg_service, 10.0); // (10 + 10)/2
        assert_eq!(r.avg_wait, 5.0); // (0 + 10)/2
        assert!((r.slowdown_ratio - 1.5).abs() < 1e-12);
        assert_eq!(r.n_risk, 1);
        assert_eq!(r.n_fail, 1);
        // 20 busy node-seconds of 2 nodes × 20 s = 40 → 50%.
        assert!((r.site_utilization[0] - 50.0).abs() < 1e-12);
        assert!((r.overall_utilization - 50.0).abs() < 1e-12);
    }

    #[test]
    fn jain_fairness_values() {
        assert_eq!(jain_fairness(&[]), 1.0);
        assert_eq!(jain_fairness(&[0.0, 0.0]), 1.0);
        assert!((jain_fairness(&[50.0, 50.0, 50.0]) - 1.0).abs() < 1e-12);
        // All load on one of four sites → 1/4.
        assert!((jain_fairness(&[80.0, 0.0, 0.0, 0.0]) - 0.25).abs() < 1e-12);
        let mixed = jain_fairness(&[90.0, 30.0]);
        assert!(mixed > 0.5 && mixed < 1.0);
    }

    #[test]
    fn nfail_bounded_by_nrisk_in_practice() {
        let mut c = MetricsCollector::new(vec![1], vec![1.0]);
        c.record_outcome(outcome(0, 0.0, 0.0, 5.0, true, 0));
        c.record_outcome(outcome(1, 0.0, 0.0, 5.0, true, 1));
        let r = c.report(None);
        assert!(r.n_fail <= r.n_risk);
    }

    #[test]
    fn explicit_horizon_rescales_utilization() {
        let mut c = MetricsCollector::new(vec![1], vec![1.0]);
        c.record_outcome(outcome(0, 0.0, 0.0, 10.0, false, 0));
        c.record_busy(SiteId(0), 1, Time::new(10.0));
        let r = c.report(Some(Time::new(40.0)));
        assert!((r.site_utilization[0] - 25.0).abs() < 1e-12);
    }

    #[test]
    fn table2_ratios() {
        let mut c1 = MetricsCollector::new(vec![1], vec![1.0]);
        c1.record_outcome(outcome(0, 0.0, 0.0, 100.0, false, 0));
        let base = c1.report(None);
        let mut c2 = MetricsCollector::new(vec![1], vec![1.0]);
        c2.record_outcome(outcome(0, 0.0, 0.0, 130.0, false, 0));
        let other = c2.report(None);
        assert!((other.alpha_vs(&base) - 1.3).abs() < 1e-12);
        assert!((other.beta_vs(&base) - 1.3).abs() < 1e-12);
    }
}
