//! Jobs: atomic units of Grid work.
//!
//! The paper models a job as *"an atomic unit of program execution that is
//! neither malleable nor moldable"*: it arrives at some instant, requires a
//! fixed number of nodes (`width`), performs a fixed amount of work, and
//! carries a **security demand** `SD` that the hosting site's security level
//! must meet for risk-free execution.

use crate::error::{Error, Result};
use crate::time::Time;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a job, unique within one workload.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default,
)]
pub struct JobId(pub u64);

impl fmt::Display for JobId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "J{}", self.0)
    }
}

/// An independent, non-malleable Grid job.
///
/// `work` is expressed in *reference seconds*: the execution time on a site
/// of speed 1.0. A site of speed `v` executes the job in `work / v` seconds.
///
/// ```
/// use gridsec_core::{Job, Time};
/// let job = Job::builder(3)
///     .arrival(Time::new(10.0))
///     .work(600.0)
///     .width(4)
///     .security_demand(0.75)
///     .build()
///     .unwrap();
/// assert_eq!(job.width, 4);
/// assert!((job.security_demand - 0.75).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Job {
    /// Unique identifier.
    pub id: JobId,
    /// Instant the job was submitted to the Grid.
    pub arrival: Time,
    /// Number of nodes the job occupies while running.
    pub width: u32,
    /// Work in reference seconds (runtime on a speed-1.0 node set).
    pub work: f64,
    /// Security demand `SD` (paper: uniform in `[0.6, 0.9]`).
    pub security_demand: f64,
}

impl Job {
    /// Starts building a job with the given id and library defaults
    /// (`arrival = 0`, `width = 1`, `work = 1.0`, `SD = 0.6`).
    pub fn builder(id: u64) -> JobBuilder {
        JobBuilder::new(id)
    }

    /// Execution time of this job on a site with relative speed `speed`.
    ///
    /// # Panics
    /// Panics (debug) if `speed` is non-positive; validated sites always
    /// have positive speed.
    #[inline]
    pub fn exec_time(&self, speed: f64) -> Time {
        debug_assert!(speed > 0.0, "site speed must be positive");
        Time::new(self.work / speed)
    }
}

/// Builder for [`Job`] with validation at [`JobBuilder::build`].
#[derive(Debug, Clone)]
pub struct JobBuilder {
    id: u64,
    arrival: Time,
    width: u32,
    work: f64,
    security_demand: f64,
}

impl JobBuilder {
    fn new(id: u64) -> Self {
        JobBuilder {
            id,
            arrival: Time::ZERO,
            width: 1,
            work: 1.0,
            security_demand: 0.6,
        }
    }

    /// Sets the submission instant.
    pub fn arrival(mut self, t: Time) -> Self {
        self.arrival = t;
        self
    }

    /// Sets the node width (must be ≥ 1).
    pub fn width(mut self, w: u32) -> Self {
        self.width = w;
        self
    }

    /// Sets the work in reference seconds (must be positive and finite).
    pub fn work(mut self, w: f64) -> Self {
        self.work = w;
        self
    }

    /// Sets the security demand (must lie in `[0, 1]`).
    pub fn security_demand(mut self, sd: f64) -> Self {
        self.security_demand = sd;
        self
    }

    /// Validates and constructs the [`Job`].
    pub fn build(self) -> Result<Job> {
        if self.width == 0 {
            return Err(Error::invalid("width", "job width must be at least 1"));
        }
        if !(self.work.is_finite() && self.work > 0.0) {
            return Err(Error::invalid(
                "work",
                format!("work must be positive and finite, got {}", self.work),
            ));
        }
        if !(0.0..=1.0).contains(&self.security_demand) {
            return Err(Error::invalid(
                "security_demand",
                format!("SD must be in [0, 1], got {}", self.security_demand),
            ));
        }
        if self.arrival < Time::ZERO {
            return Err(Error::invalid("arrival", "arrival must be non-negative"));
        }
        Ok(Job {
            id: JobId(self.id),
            arrival: self.arrival,
            width: self.width,
            work: self.work,
            security_demand: self.security_demand,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_defaults() {
        let j = Job::builder(1).build().unwrap();
        assert_eq!(j.id, JobId(1));
        assert_eq!(j.arrival, Time::ZERO);
        assert_eq!(j.width, 1);
        assert_eq!(j.work, 1.0);
    }

    #[test]
    fn exec_time_scales_with_speed() {
        let j = Job::builder(1).work(100.0).build().unwrap();
        assert_eq!(j.exec_time(1.0), Time::new(100.0));
        assert_eq!(j.exec_time(2.0), Time::new(50.0));
        assert_eq!(j.exec_time(0.5), Time::new(200.0));
    }

    #[test]
    fn zero_width_rejected() {
        assert!(Job::builder(1).width(0).build().is_err());
    }

    #[test]
    fn nonpositive_work_rejected() {
        assert!(Job::builder(1).work(0.0).build().is_err());
        assert!(Job::builder(1).work(-5.0).build().is_err());
        assert!(Job::builder(1).work(f64::INFINITY).build().is_err());
    }

    #[test]
    fn sd_out_of_range_rejected() {
        assert!(Job::builder(1).security_demand(1.5).build().is_err());
        assert!(Job::builder(1).security_demand(-0.1).build().is_err());
        assert!(Job::builder(1).security_demand(0.0).build().is_ok());
        assert!(Job::builder(1).security_demand(1.0).build().is_ok());
    }

    #[test]
    fn negative_arrival_rejected() {
        assert!(Job::builder(1).arrival(Time::new(-1.0)).build().is_err());
    }

    #[test]
    fn job_id_display() {
        assert_eq!(JobId(42).to_string(), "J42");
    }
}
