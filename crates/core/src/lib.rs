//! # gridsec-core
//!
//! Core model types for security-driven Grid job scheduling, reproducing the
//! system model of *Song, Kwok & Hwang, "Security-Driven Heuristics and A
//! Fast Genetic Algorithm for Trusted Grid Job Scheduling", IPDPS 2005*.
//!
//! This crate defines the vocabulary shared by every other `gridsec` crate:
//!
//! * [`Job`] — an atomic, non-malleable unit of work with an arrival time,
//!   node width, reference workload and a **security demand** `SD`.
//! * [`Site`] / [`Grid`] — heterogeneous multi-node resource sites, each
//!   advertising a **security level** `SL` and a relative speed.
//! * [`SecurityModel`] — the exponential failure law of the paper's Eq. (1):
//!   `P(fail) = 1 − exp(−λ·(SD − SL))` when `SD > SL`, else `0`.
//! * [`RiskMode`] — the three operating modes (*secure*, *risky*,
//!   *f-risky*) that gate which sites a scheduler may use for a job.
//! * [`EtcMatrix`] — Expected-Time-to-Compute matrices as used by the
//!   batch-mode mapping heuristics of Braun et al. and Maheswaran et al.
//! * [`BatchSchedule`] — a job→site assignment for one scheduling round.
//! * [`metrics`] — the exact performance metrics of the paper's §4.1
//!   (makespan, average response time, slowdown ratio Eq. (3), `N_risk`,
//!   `N_fail`, per-site utilisation).
//!
//! Everything is deterministic given a seed; see [`rng`].

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod error;
pub mod etc;
pub mod grid;
pub mod job;
pub mod metrics;
pub mod rng;
pub mod schedule;
pub mod security;
pub mod site;
pub mod stats;
pub mod time;
pub mod trust;

pub use error::{Error, Result};
pub use etc::EtcMatrix;
pub use grid::Grid;
pub use job::{Job, JobBuilder, JobId};
pub use schedule::{Assignment, BatchSchedule, ScheduleIndex};
pub use security::{FailureDetection, RiskMode, SecurityModel};
pub use site::{Site, SiteBuilder, SiteId};
pub use time::Time;
