//! Simulated time.
//!
//! All times are simulated seconds held in an `f64`. The [`Time`] newtype
//! provides a total order (via [`f64::total_cmp`]) so times can live in
//! binary heaps and B-tree keys, plus saturating/validated arithmetic that
//! keeps NaNs out of the simulation.

use std::cmp::Ordering;
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A point in (or duration of) simulated time, in seconds.
///
/// `Time` is a thin wrapper over `f64` that implements `Ord` using
/// [`f64::total_cmp`], making it safe to use as a priority in event queues.
/// Construction via [`Time::new`] rejects NaN; the arithmetic operators
/// preserve finiteness for finite inputs.
///
/// ```
/// use gridsec_core::Time;
/// let a = Time::new(3.0);
/// let b = Time::new(4.5);
/// assert!(a < b);
/// assert_eq!((a + b).seconds(), 7.5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Time(f64);

// JSON has no literal for IEEE infinities (serde_json emits `null`), so
// Time serialises finite values as plain numbers and the `INFINITY`
// sentinel as an explicit `null`, and accepts both back.
impl serde::Serialize for Time {
    fn serialize<S: serde::Serializer>(&self, s: S) -> std::result::Result<S::Ok, S::Error> {
        if self.0.is_finite() {
            s.serialize_f64(self.0)
        } else {
            s.serialize_none()
        }
    }
}

impl<'de> serde::Deserialize<'de> for Time {
    fn deserialize<D: serde::Deserializer<'de>>(d: D) -> std::result::Result<Self, D::Error> {
        let v = Option::<f64>::deserialize(d)?;
        match v {
            Some(x) => Time::try_new(x).ok_or_else(|| serde::de::Error::custom("NaN time")),
            None => Ok(Time::INFINITY),
        }
    }
}

impl Time {
    /// The zero instant / zero duration.
    pub const ZERO: Time = Time(0.0);
    /// A time later than any finite time; used as "never"/sentinel.
    pub const INFINITY: Time = Time(f64::INFINITY);

    /// Creates a `Time` from seconds.
    ///
    /// # Panics
    /// Panics if `seconds` is NaN (a NaN time would silently corrupt event
    /// ordering).
    #[inline]
    pub fn new(seconds: f64) -> Self {
        assert!(!seconds.is_nan(), "Time cannot be NaN");
        Time(seconds)
    }

    /// Creates a `Time` from seconds, returning `None` on NaN.
    #[inline]
    pub fn try_new(seconds: f64) -> Option<Self> {
        if seconds.is_nan() {
            None
        } else {
            Some(Time(seconds))
        }
    }

    /// The raw number of seconds.
    #[inline]
    pub fn seconds(self) -> f64 {
        self.0
    }

    /// Whether this time is finite (not the `INFINITY` sentinel).
    #[inline]
    pub fn is_finite(self) -> bool {
        self.0.is_finite()
    }

    /// Element-wise maximum.
    #[inline]
    pub fn max(self, other: Time) -> Time {
        if self >= other {
            self
        } else {
            other
        }
    }

    /// Element-wise minimum.
    #[inline]
    pub fn min(self, other: Time) -> Time {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// Clamps to be no earlier than `floor`.
    #[inline]
    pub fn at_least(self, floor: Time) -> Time {
        self.max(floor)
    }

    /// Convenience constructor: `n` hours.
    #[inline]
    pub fn hours(n: f64) -> Time {
        Time::new(n * 3600.0)
    }

    /// Convenience constructor: `n` days.
    #[inline]
    pub fn days(n: f64) -> Time {
        Time::new(n * 86_400.0)
    }
}

impl Eq for Time {}

impl PartialOrd for Time {
    #[inline]
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Time {
    #[inline]
    fn cmp(&self, other: &Self) -> Ordering {
        self.0.total_cmp(&other.0)
    }
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.0)
    }
}

impl Add for Time {
    type Output = Time;
    #[inline]
    fn add(self, rhs: Time) -> Time {
        Time::new(self.0 + rhs.0)
    }
}

impl AddAssign for Time {
    #[inline]
    fn add_assign(&mut self, rhs: Time) {
        *self = *self + rhs;
    }
}

impl Sub for Time {
    type Output = Time;
    #[inline]
    fn sub(self, rhs: Time) -> Time {
        Time::new(self.0 - rhs.0)
    }
}

impl SubAssign for Time {
    #[inline]
    fn sub_assign(&mut self, rhs: Time) {
        *self = *self - rhs;
    }
}

impl Mul<f64> for Time {
    type Output = Time;
    #[inline]
    fn mul(self, rhs: f64) -> Time {
        Time::new(self.0 * rhs)
    }
}

impl Div<f64> for Time {
    type Output = Time;
    #[inline]
    fn div(self, rhs: f64) -> Time {
        Time::new(self.0 / rhs)
    }
}

impl Sum for Time {
    fn sum<I: Iterator<Item = Time>>(iter: I) -> Time {
        iter.fold(Time::ZERO, |a, b| a + b)
    }
}

impl From<f64> for Time {
    #[inline]
    fn from(v: f64) -> Self {
        Time::new(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_is_total() {
        let mut v = [Time::new(3.0), Time::ZERO, Time::INFINITY, Time::new(1.5)];
        v.sort();
        assert_eq!(v[0], Time::ZERO);
        assert_eq!(v[1], Time::new(1.5));
        assert_eq!(v[2], Time::new(3.0));
        assert_eq!(v[3], Time::INFINITY);
    }

    #[test]
    fn arithmetic_behaves() {
        let a = Time::new(10.0);
        let b = Time::new(4.0);
        assert_eq!((a + b).seconds(), 14.0);
        assert_eq!((a - b).seconds(), 6.0);
        assert_eq!((a * 2.0).seconds(), 20.0);
        assert_eq!((a / 2.0).seconds(), 5.0);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_rejected() {
        let _ = Time::new(f64::NAN);
    }

    #[test]
    fn try_new_filters_nan() {
        assert!(Time::try_new(f64::NAN).is_none());
        assert_eq!(Time::try_new(2.0), Some(Time::new(2.0)));
    }

    #[test]
    fn min_max_at_least() {
        let a = Time::new(1.0);
        let b = Time::new(2.0);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
        assert_eq!(a.at_least(b), b);
        assert_eq!(b.at_least(a), b);
    }

    #[test]
    fn sum_and_units() {
        let total: Time = vec![Time::new(1.0), Time::new(2.0)].into_iter().sum();
        assert_eq!(total, Time::new(3.0));
        assert_eq!(Time::hours(1.0).seconds(), 3600.0);
        assert_eq!(Time::days(1.0).seconds(), 86_400.0);
    }

    #[test]
    fn infinity_is_not_finite() {
        assert!(!Time::INFINITY.is_finite());
        assert!(Time::ZERO.is_finite());
    }
}
