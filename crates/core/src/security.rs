//! The security / trust model of the paper's §2.
//!
//! * [`SecurityModel`] implements Eq. (1): the probability that a job with
//!   security demand `SD` fails on a site with security level `SL`.
//! * [`RiskMode`] implements the three operational modes of Fig. 3:
//!   *secure*, *risky*, and *f-risky*.
//! * [`FailureDetection`] decides **when** in a job's execution a sampled
//!   failure manifests (the paper leaves this open; see DESIGN.md §3).

use crate::error::{Error, Result};
use crate::site::Site;
use serde::{Deserialize, Serialize};

/// The exponential failure law of Eq. (1).
///
/// ```text
/// P(fail) = 0                        if SD ≤ SL
///         = 1 − exp(−λ (SD − SL))    if SD > SL
/// ```
///
/// The paper does not fix λ; the library default is
/// [`SecurityModel::DEFAULT_LAMBDA`] (see DESIGN.md for the calibration
/// argument). The model is intentionally pluggable — `SL`/`SD` may come from
/// IDS output or fuzzy-trust indices; the scheduler only consumes
/// probabilities.
///
/// ```
/// use gridsec_core::SecurityModel;
/// let m = SecurityModel::new(3.0).unwrap();
/// assert_eq!(m.fail_probability(0.6, 0.8), 0.0);       // SD ≤ SL: safe
/// assert!(m.fail_probability(0.9, 0.4) > 0.7);          // large gap: risky
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SecurityModel {
    lambda: f64,
}

impl SecurityModel {
    /// Default risk coefficient λ = 3.0 (spans P(fail) ∈ [0, 0.78) over the
    /// paper's SD/SL distributions; see DESIGN.md §3).
    pub const DEFAULT_LAMBDA: f64 = 3.0;

    /// Creates a model with risk coefficient `lambda > 0`.
    pub fn new(lambda: f64) -> Result<Self> {
        if !(lambda.is_finite() && lambda > 0.0) {
            return Err(Error::invalid(
                "lambda",
                format!("λ must be positive and finite, got {lambda}"),
            ));
        }
        Ok(SecurityModel { lambda })
    }

    /// The risk coefficient λ.
    #[inline]
    pub fn lambda(&self) -> f64 {
        self.lambda
    }

    /// Eq. (1): probability that a job with demand `sd` fails on a site of
    /// level `sl`.
    #[inline]
    pub fn fail_probability(&self, sd: f64, sl: f64) -> f64 {
        if sd <= sl {
            0.0
        } else {
            1.0 - (-self.lambda * (sd - sl)).exp()
        }
    }

    /// Probability of failing on the given site.
    #[inline]
    pub fn fail_probability_on(&self, sd: f64, site: &Site) -> f64 {
        self.fail_probability(sd, site.security_level)
    }

    /// The largest `SD − SL` gap whose failure probability is still ≤ `f`.
    ///
    /// Useful for reasoning about the f-risky mode: a site is admissible iff
    /// `SD − SL ≤ max_gap_for(f)`. Returns `+∞` for `f ≥ 1`.
    pub fn max_gap_for(&self, f: f64) -> f64 {
        if f >= 1.0 {
            f64::INFINITY
        } else if f <= 0.0 {
            0.0
        } else {
            -(1.0 - f).ln() / self.lambda
        }
    }

    /// Expected number of *executions* (1 + expected retries under
    /// independent retries at the same probability). Used by risk-aware
    /// fitness ablations; not by the paper's base STGA.
    pub fn expected_attempts(&self, sd: f64, sl: f64) -> f64 {
        let p = self.fail_probability(sd, sl);
        if p >= 1.0 {
            f64::INFINITY
        } else {
            1.0 / (1.0 - p)
        }
    }
}

impl Default for SecurityModel {
    fn default() -> Self {
        SecurityModel {
            lambda: Self::DEFAULT_LAMBDA,
        }
    }
}

/// The three risk modes of §2 / Fig. 3.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum RiskMode {
    /// Only sites with `SD ≤ SL` are admissible ("conservative").
    Secure,
    /// Every site is admissible ("aggressive"; the classical heuristics).
    Risky,
    /// Sites with `P(fail) ≤ f` are admissible; `FRisky(0.0) ≡ Secure`,
    /// `FRisky(1.0) ≡ Risky`.
    FRisky(f64),
}

impl RiskMode {
    /// The paper's chosen operating point `f = 0.5` (from the Fig. 7a
    /// sweep, whose minimum falls in 0.5–0.6).
    pub const PAPER_F: f64 = 0.5;

    /// Whether a site is admissible for a job with demand `sd` under this
    /// mode.
    #[inline]
    pub fn admits(&self, model: &SecurityModel, sd: f64, site: &Site) -> bool {
        match *self {
            RiskMode::Secure => sd <= site.security_level,
            RiskMode::Risky => true,
            RiskMode::FRisky(f) => model.fail_probability_on(sd, site) <= f,
        }
    }

    /// The risk tolerance as a probability (`Secure → 0`, `Risky → 1`).
    #[inline]
    pub fn tolerance(&self) -> f64 {
        match *self {
            RiskMode::Secure => 0.0,
            RiskMode::Risky => 1.0,
            RiskMode::FRisky(f) => f,
        }
    }

    /// Validates an `FRisky` tolerance.
    pub fn f_risky(f: f64) -> Result<RiskMode> {
        if !(0.0..=1.0).contains(&f) {
            return Err(Error::invalid(
                "f",
                format!("risk tolerance must be in [0, 1], got {f}"),
            ));
        }
        Ok(RiskMode::FRisky(f))
    }

    /// Short label used by reports and bench output.
    pub fn label(&self) -> String {
        match *self {
            RiskMode::Secure => "Secure".to_string(),
            RiskMode::Risky => "Risky".to_string(),
            RiskMode::FRisky(f) => format!("{f:.1}-Risky"),
        }
    }
}

/// When during execution a sampled failure manifests (see DESIGN.md §3).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub enum FailureDetection {
    /// The job consumes its full execution time, then is found corrupted.
    AtEnd,
    /// The failure manifests at a uniformly-sampled fraction of the runtime
    /// (default): the site time up to that point is wasted.
    #[default]
    UniformFraction,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn site(sl: f64) -> Site {
        Site::builder(0).security_level(sl).build().unwrap()
    }

    #[test]
    fn eq1_boundary_and_monotonicity() {
        let m = SecurityModel::new(3.0).unwrap();
        assert_eq!(m.fail_probability(0.5, 0.5), 0.0);
        assert_eq!(m.fail_probability(0.5, 0.9), 0.0);
        let p1 = m.fail_probability(0.7, 0.6);
        let p2 = m.fail_probability(0.9, 0.6);
        assert!(p1 > 0.0 && p2 > p1 && p2 < 1.0);
        // Known value: 1 - e^{-3*0.1}
        assert!((p1 - (1.0 - (-0.3f64).exp())).abs() < 1e-12);
    }

    #[test]
    fn lambda_validation() {
        assert!(SecurityModel::new(0.0).is_err());
        assert!(SecurityModel::new(-1.0).is_err());
        assert!(SecurityModel::new(f64::NAN).is_err());
        assert!(SecurityModel::new(1e-9).is_ok());
    }

    #[test]
    fn max_gap_inverts_eq1() {
        let m = SecurityModel::new(3.0).unwrap();
        for f in [0.1, 0.3, 0.5, 0.9] {
            let gap = m.max_gap_for(f);
            let p = m.fail_probability(0.5 + gap, 0.5);
            assert!((p - f).abs() < 1e-9, "f={f} p={p}");
        }
        assert_eq!(m.max_gap_for(0.0), 0.0);
        assert_eq!(m.max_gap_for(1.0), f64::INFINITY);
    }

    #[test]
    fn secure_mode_admits_only_safe_sites() {
        let m = SecurityModel::default();
        assert!(RiskMode::Secure.admits(&m, 0.6, &site(0.6)));
        assert!(RiskMode::Secure.admits(&m, 0.6, &site(0.9)));
        assert!(!RiskMode::Secure.admits(&m, 0.7, &site(0.6)));
    }

    #[test]
    fn risky_mode_admits_everything() {
        let m = SecurityModel::default();
        assert!(RiskMode::Risky.admits(&m, 0.9, &site(0.0)));
    }

    #[test]
    fn f_risky_interpolates() {
        let m = SecurityModel::new(3.0).unwrap();
        // Gap 0.5 → P(fail) ≈ 0.7769.
        let s = site(0.4);
        assert!(!RiskMode::FRisky(0.5).admits(&m, 0.9, &s));
        assert!(RiskMode::FRisky(0.8).admits(&m, 0.9, &s));
        // f = 0 behaves like Secure; f = 1 like Risky.
        assert!(!RiskMode::FRisky(0.0).admits(&m, 0.9, &s));
        assert!(RiskMode::FRisky(1.0).admits(&m, 0.9, &s));
    }

    #[test]
    fn f_risky_validation_and_labels() {
        assert!(RiskMode::f_risky(1.5).is_err());
        assert!(RiskMode::f_risky(0.5).is_ok());
        assert_eq!(RiskMode::Secure.label(), "Secure");
        assert_eq!(RiskMode::FRisky(0.5).label(), "0.5-Risky");
        assert_eq!(RiskMode::Risky.tolerance(), 1.0);
    }

    #[test]
    fn expected_attempts() {
        let m = SecurityModel::new(3.0).unwrap();
        assert_eq!(m.expected_attempts(0.5, 0.9), 1.0);
        let p = m.fail_probability(0.9, 0.4);
        let e = m.expected_attempts(0.9, 0.4);
        assert!((e - 1.0 / (1.0 - p)).abs() < 1e-12);
    }
}
