//! The Grid: an ordered collection of [`Site`]s.

use crate::error::{Error, Result};
use crate::job::Job;
use crate::security::RiskMode;
use crate::security::SecurityModel;
use crate::site::{Site, SiteId};
use serde::{Deserialize, Serialize};

/// A validated, immutable collection of sites forming the Grid.
///
/// Site ids are required to be dense (`Site k` has `id == k`), which lets the
/// rest of the library index by `SiteId` without hashing.
///
/// ```
/// use gridsec_core::{Grid, Site};
/// let grid = Grid::new(vec![
///     Site::builder(0).nodes(16).security_level(0.9).build().unwrap(),
///     Site::builder(1).nodes(8).security_level(0.5).build().unwrap(),
/// ]).unwrap();
/// assert_eq!(grid.len(), 2);
/// assert_eq!(grid.max_nodes(), 16);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Grid {
    sites: Vec<Site>,
}

impl Grid {
    /// Builds a grid, checking that the site list is non-empty and densely
    /// indexed.
    pub fn new(sites: Vec<Site>) -> Result<Grid> {
        if sites.is_empty() {
            return Err(Error::invalid("sites", "a grid needs at least one site"));
        }
        for (k, s) in sites.iter().enumerate() {
            if s.id.0 != k {
                return Err(Error::invalid(
                    "sites",
                    format!("site at position {k} has id {} (ids must be dense)", s.id),
                ));
            }
        }
        Ok(Grid { sites })
    }

    /// Number of sites.
    #[inline]
    pub fn len(&self) -> usize {
        self.sites.len()
    }

    /// Whether the grid is empty (never true for a validated grid).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.sites.is_empty()
    }

    /// The site with the given id.
    ///
    /// # Panics
    /// Panics if `id` is out of range; ids originating from this grid are
    /// always valid.
    #[inline]
    pub fn site(&self, id: SiteId) -> &Site {
        &self.sites[id.0]
    }

    /// Checked lookup.
    #[inline]
    pub fn get(&self, id: SiteId) -> Option<&Site> {
        self.sites.get(id.0)
    }

    /// Iterates over all sites in id order.
    pub fn sites(&self) -> impl Iterator<Item = &Site> {
        self.sites.iter()
    }

    /// All site ids in order.
    pub fn site_ids(&self) -> impl Iterator<Item = SiteId> + '_ {
        (0..self.sites.len()).map(SiteId)
    }

    /// Largest node count over all sites (the widest schedulable job).
    pub fn max_nodes(&self) -> u32 {
        self.sites.iter().map(|s| s.nodes).max().unwrap_or(0)
    }

    /// Total processing power (Σ nodes × speed).
    pub fn total_power(&self) -> f64 {
        self.sites.iter().map(Site::power).sum()
    }

    /// Highest security level offered by any site.
    pub fn max_security_level(&self) -> f64 {
        self.sites
            .iter()
            .map(|s| s.security_level)
            .fold(0.0, f64::max)
    }

    /// Sites on which `job` fits *and* is admissible under `mode` according
    /// to `model` (the security-driven site filter of §2).
    ///
    /// Returns an empty vector when no site qualifies — callers apply their
    /// fallback policy (see `gridsec-heuristics`).
    pub fn admissible_sites(
        &self,
        job: &Job,
        mode: RiskMode,
        model: &SecurityModel,
    ) -> Vec<SiteId> {
        self.sites
            .iter()
            .filter(|s| s.fits_width(job.width) && mode.admits(model, job.security_demand, s))
            .map(|s| s.id)
            .collect()
    }

    /// Security levels of all sites, in id order.
    pub fn security_levels(&self) -> impl Iterator<Item = f64> + '_ {
        self.sites.iter().map(|s| s.security_level)
    }

    /// Order-sensitive fingerprint of the grid's security snapshot (node
    /// counts, speeds, security levels). Two grids with equal fingerprints
    /// produce identical security-overhead/risk lowerings, so schedulers can
    /// key compiled kernels and cached risk-weight tables on this value and
    /// rebuild only when trust re-rating or reconfiguration changes it.
    pub fn security_fingerprint(&self) -> u64 {
        let mut acc = 0xcbf2_9ce4_8422_2325u64 ^ self.sites.len() as u64;
        let mut mix = |bits: u64| {
            acc = (acc.rotate_left(13) ^ bits).wrapping_mul(0x1000_0000_01b3);
        };
        for s in &self.sites {
            mix(s.nodes as u64);
            mix(s.speed.to_bits());
            mix(s.security_level.to_bits());
        }
        acc
    }

    /// Sites on which the job fits by width alone (risk ignored).
    pub fn fitting_sites(&self, job: &Job) -> Vec<SiteId> {
        self.sites
            .iter()
            .filter(|s| s.fits_width(job.width))
            .map(|s| s.id)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::security::SecurityModel;

    fn grid3() -> Grid {
        Grid::new(vec![
            Site::builder(0)
                .nodes(16)
                .speed(1.0)
                .security_level(0.9)
                .build()
                .unwrap(),
            Site::builder(1)
                .nodes(8)
                .speed(2.0)
                .security_level(0.5)
                .build()
                .unwrap(),
            Site::builder(2)
                .nodes(4)
                .speed(4.0)
                .security_level(0.7)
                .build()
                .unwrap(),
        ])
        .unwrap()
    }

    #[test]
    fn dense_ids_enforced() {
        let bad = vec![Site::builder(1).build().unwrap()];
        assert!(Grid::new(bad).is_err());
        assert!(Grid::new(vec![]).is_err());
    }

    #[test]
    fn aggregates() {
        let g = grid3();
        assert_eq!(g.len(), 3);
        assert_eq!(g.max_nodes(), 16);
        assert_eq!(g.total_power(), 16.0 + 16.0 + 16.0);
        assert!((g.max_security_level() - 0.9).abs() < 1e-12);
    }

    #[test]
    fn fitting_sites_respects_width() {
        let g = grid3();
        let wide = Job::builder(0).width(10).build().unwrap();
        assert_eq!(g.fitting_sites(&wide), vec![SiteId(0)]);
        let narrow = Job::builder(1).width(2).build().unwrap();
        assert_eq!(g.fitting_sites(&narrow).len(), 3);
    }

    #[test]
    fn security_fingerprint_tracks_snapshot_changes() {
        let g = grid3();
        assert_eq!(g.security_fingerprint(), grid3().security_fingerprint());
        let levels: Vec<f64> = g.security_levels().collect();
        assert_eq!(levels, vec![0.9, 0.5, 0.7]);
        // Changing any site's security level changes the fingerprint.
        let mut sites: Vec<Site> = g.sites().cloned().collect();
        sites[1].security_level = 0.51;
        let g2 = Grid::new(sites).unwrap();
        assert_ne!(g.security_fingerprint(), g2.security_fingerprint());
        // So does changing a node count.
        let mut sites: Vec<Site> = g.sites().cloned().collect();
        sites[0].nodes = 17;
        let g3 = Grid::new(sites).unwrap();
        assert_ne!(g.security_fingerprint(), g3.security_fingerprint());
    }

    #[test]
    fn admissible_sites_secure_mode() {
        let g = grid3();
        let model = SecurityModel::new(3.0).unwrap();
        let job = Job::builder(0).security_demand(0.6).build().unwrap();
        let secure = g.admissible_sites(&job, RiskMode::Secure, &model);
        // SL ≥ 0.6 → sites 0 (0.9) and 2 (0.7).
        assert_eq!(secure, vec![SiteId(0), SiteId(2)]);
        let risky = g.admissible_sites(&job, RiskMode::Risky, &model);
        assert_eq!(risky.len(), 3);
    }
}
