//! Error types shared across the `gridsec` crates.

use std::fmt;

/// Convenience alias over [`Error`].
pub type Result<T> = std::result::Result<T, Error>;

/// Errors produced by model construction and schedule validation.
#[derive(Debug, Clone, PartialEq)]
pub enum Error {
    /// A parameter was outside its documented domain.
    InvalidParameter {
        /// Name of the offending parameter.
        name: &'static str,
        /// Human-readable description of the violation.
        message: String,
    },
    /// A schedule referenced a job that is not part of the batch.
    UnknownJob(u64),
    /// A schedule referenced a site that is not part of the grid.
    UnknownSite(usize),
    /// A job was assigned to a site with fewer nodes than the job's width.
    WidthExceedsSite {
        /// Job identifier.
        job: u64,
        /// Required node count.
        width: u32,
        /// Nodes available at the target site.
        site_nodes: u32,
    },
    /// A batch schedule did not cover every job exactly once.
    IncompleteSchedule {
        /// Number of jobs expected.
        expected: usize,
        /// Number of jobs actually assigned.
        assigned: usize,
    },
    /// A workload trace could not be parsed.
    TraceParse {
        /// 1-based line number of the failure.
        line: usize,
        /// Description of the problem.
        message: String,
    },
    /// The grid has no site that can run the given job under the given mode.
    NoFeasibleSite(u64),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::InvalidParameter { name, message } => {
                write!(f, "invalid parameter `{name}`: {message}")
            }
            Error::UnknownJob(id) => write!(f, "schedule references unknown job {id}"),
            Error::UnknownSite(id) => write!(f, "schedule references unknown site {id}"),
            Error::WidthExceedsSite {
                job,
                width,
                site_nodes,
            } => write!(
                f,
                "job {job} needs {width} nodes but target site has only {site_nodes}"
            ),
            Error::IncompleteSchedule { expected, assigned } => write!(
                f,
                "schedule covers {assigned} of {expected} jobs in the batch"
            ),
            Error::TraceParse { line, message } => {
                write!(f, "trace parse error at line {line}: {message}")
            }
            Error::NoFeasibleSite(id) => {
                write!(
                    f,
                    "no feasible site for job {id} under the active risk mode"
                )
            }
        }
    }
}

impl std::error::Error for Error {}

impl Error {
    /// Shorthand for an [`Error::InvalidParameter`].
    pub fn invalid(name: &'static str, message: impl Into<String>) -> Self {
        Error::InvalidParameter {
            name,
            message: message.into(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = Error::invalid("lambda", "must be positive");
        assert!(e.to_string().contains("lambda"));
        assert!(e.to_string().contains("positive"));

        let e = Error::WidthExceedsSite {
            job: 7,
            width: 32,
            site_nodes: 16,
        };
        assert!(e.to_string().contains("32"));
        assert!(e.to_string().contains("16"));
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(Error::UnknownJob(1), Error::UnknownJob(1));
        assert_ne!(Error::UnknownJob(1), Error::UnknownJob(2));
    }
}
