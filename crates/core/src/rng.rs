//! Deterministic random-number streams.
//!
//! Every stochastic component of the library (workload generation, security
//! assignment, failure sampling, GA operators) draws from its own
//! independent ChaCha8 stream derived from a single experiment seed. This
//! makes every figure and test exactly reproducible and lets components be
//! re-ordered without perturbing each other's randomness.

use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Mixes a 64-bit value (SplitMix64 finaliser) — used for seed derivation.
#[inline]
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Well-known stream tags so call sites don't collide by accident.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stream {
    /// Workload shape (arrivals, widths, runtimes).
    Workload,
    /// Security-demand assignment to jobs.
    SecurityDemand,
    /// Security-level assignment to sites.
    SecurityLevel,
    /// Failure sampling during simulation.
    Failure,
    /// GA population initialisation and operators.
    Genetic,
    /// Anything else; carries a caller-chosen sub-tag.
    Custom(u64),
}

impl Stream {
    fn tag(self) -> u64 {
        match self {
            Stream::Workload => 1,
            Stream::SecurityDemand => 2,
            Stream::SecurityLevel => 3,
            Stream::Failure => 4,
            Stream::Genetic => 5,
            Stream::Custom(t) => 0x1000_0000_0000_0000 ^ t,
        }
    }
}

/// Derives the ChaCha8 RNG for `stream` from the experiment `seed`.
///
/// ```
/// use gridsec_core::rng::{stream, Stream};
/// use rand::Rng;
/// let mut a = stream(42, Stream::Workload);
/// let mut b = stream(42, Stream::Workload);
/// assert_eq!(a.gen::<u64>(), b.gen::<u64>()); // reproducible
/// ```
pub fn stream(seed: u64, stream: Stream) -> ChaCha8Rng {
    let mixed = splitmix64(seed ^ splitmix64(stream.tag()));
    ChaCha8Rng::seed_from_u64(mixed)
}

/// Derives a fresh `u64` sub-seed (for handing to nested components).
pub fn subseed(seed: u64, tag: u64) -> u64 {
    splitmix64(seed ^ splitmix64(tag.wrapping_mul(0xA24B_AED4_963E_E407)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn streams_are_reproducible() {
        let mut a = stream(7, Stream::Failure);
        let mut b = stream(7, Stream::Failure);
        for _ in 0..16 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn streams_are_independent() {
        let mut a = stream(7, Stream::Workload);
        let mut b = stream(7, Stream::Genetic);
        let xs: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = stream(1, Stream::Workload);
        let mut b = stream(2, Stream::Workload);
        assert_ne!(a.gen::<u64>(), b.gen::<u64>());
    }

    #[test]
    fn custom_streams_carry_tags() {
        let mut a = stream(1, Stream::Custom(10));
        let mut b = stream(1, Stream::Custom(11));
        assert_ne!(a.gen::<u64>(), b.gen::<u64>());
    }

    #[test]
    fn subseed_varies_with_tag() {
        assert_ne!(subseed(1, 0), subseed(1, 1));
        assert_eq!(subseed(9, 3), subseed(9, 3));
    }
}
