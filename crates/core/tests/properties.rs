//! Property-based tests for the core model: availability reservation,
//! the failure law, ETC construction and the metrics identities.

use gridsec_core::etc::{EtcMatrix, NodeAvailability};
use gridsec_core::metrics::{JobOutcome, MetricsCollector};
use gridsec_core::{Grid, Job, JobId, RiskMode, SecurityModel, Site, SiteId, Time};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn fail_probability_is_a_probability(
        lambda in 0.01f64..50.0,
        sd in 0.0f64..=1.0,
        sl in 0.0f64..=1.0,
    ) {
        let m = SecurityModel::new(lambda).unwrap();
        let p = m.fail_probability(sd, sl);
        // p may round to exactly 1.0 for large λ·gap in f64.
        prop_assert!((0.0..=1.0).contains(&p));
        if sd <= sl {
            prop_assert_eq!(p, 0.0);
        } else {
            prop_assert!(p > 0.0);
        }
    }

    #[test]
    fn fail_probability_monotone_in_gap(
        lambda in 0.01f64..50.0,
        sl in 0.0f64..0.5,
        gap1 in 0.0f64..0.25,
        gap2 in 0.25f64..0.5,
    ) {
        let m = SecurityModel::new(lambda).unwrap();
        let p1 = m.fail_probability(sl + gap1, sl);
        let p2 = m.fail_probability(sl + gap2, sl);
        prop_assert!(p2 >= p1);
    }

    #[test]
    fn f_risky_admission_matches_gap_inverse(
        lambda in 0.1f64..20.0,
        f in 0.01f64..0.99,
        sd in 0.0f64..=1.0,
        sl in 0.0f64..=1.0,
    ) {
        let m = SecurityModel::new(lambda).unwrap();
        let site = Site::builder(0).security_level(sl).build().unwrap();
        let admitted = RiskMode::FRisky(f).admits(&m, sd, &site);
        let by_gap = sd - sl <= m.max_gap_for(f) + 1e-12;
        prop_assert_eq!(admitted, by_gap);
    }

    #[test]
    fn availability_commit_preserves_sortedness_and_capacity(
        commits in prop::collection::vec((1u32..=8, 0.0f64..10_000.0), 0..40),
    ) {
        let mut a = NodeAvailability::new(8, Time::ZERO);
        for (w, finish) in commits {
            let before = a.nodes();
            a.commit(w, Time::new(finish));
            prop_assert_eq!(a.nodes(), before);
            // ready ≤ drain always.
            prop_assert!(a.ready_time() <= a.drain_time());
        }
    }

    #[test]
    fn earliest_start_monotone_in_width(
        commits in prop::collection::vec((1u32..=8, 0.0f64..1_000.0), 0..20),
        not_before in 0.0f64..500.0,
    ) {
        let mut a = NodeAvailability::new(8, Time::ZERO);
        for (w, finish) in commits {
            a.commit(w, Time::new(finish));
        }
        let nb = Time::new(not_before);
        let mut prev = Time::ZERO;
        for w in 1..=8u32 {
            let s = a.earliest_start(w, nb).unwrap();
            prop_assert!(s >= nb);
            prop_assert!(s >= prev, "wider jobs can't start earlier");
            prev = s;
        }
        prop_assert!(a.earliest_start(9, nb).is_none());
    }

    #[test]
    fn etc_matrix_entries_match_manual_computation(
        works in prop::collection::vec(1.0f64..10_000.0, 1..10),
        speeds in prop::collection::vec(0.5f64..8.0, 1..6),
    ) {
        let jobs: Vec<Job> = works
            .iter()
            .enumerate()
            .map(|(i, &w)| Job::builder(i as u64).work(w).build().unwrap())
            .collect();
        let grid = Grid::new(
            speeds
                .iter()
                .enumerate()
                .map(|(i, &v)| Site::builder(i).speed(v).nodes(2).build().unwrap())
                .collect(),
        )
        .unwrap();
        let etc = EtcMatrix::build(&jobs, &grid);
        for (j, &w) in works.iter().enumerate() {
            for (s, &v) in speeds.iter().enumerate() {
                prop_assert!((etc.get(j, s) - w / v).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn metrics_identities_hold(
        outcomes in prop::collection::vec(
            (0.0f64..1_000.0, 0.0f64..1_000.0, 1.0f64..1_000.0, any::<bool>(), 0u32..3),
            1..50,
        ),
    ) {
        let mut c = MetricsCollector::new(vec![4], vec![1.0]);
        for (i, (arrival, wait, service, risk_raw, fails)) in outcomes.iter().enumerate() {
            // failures imply risk taken (the model invariant the engine
            // maintains); mirror it here.
            let risk = *risk_raw || *fails > 0;
            let a = *arrival;
            let b = a + wait;
            let done = b + service;
            c.record_outcome(JobOutcome {
                id: JobId(i as u64),
                arrival: Time::new(a),
                first_start: Time::new(b),
                completion: Time::new(done),
                final_site: SiteId(0),
                risk_taken: risk,
                failures: *fails,
            });
        }
        let r = c.report(None);
        prop_assert!(r.n_fail <= r.n_risk);
        prop_assert!(r.slowdown_ratio >= 1.0 - 1e-9);
        prop_assert!(r.avg_response + 1e-9 >= r.avg_service);
        prop_assert!((r.avg_response - (r.avg_wait + r.avg_service)).abs() < 1e-6);
    }

    #[test]
    fn time_ordering_consistent_with_f64(
        a in -1.0e12f64..1.0e12,
        b in -1.0e12f64..1.0e12,
    ) {
        let ta = Time::new(a);
        let tb = Time::new(b);
        prop_assert_eq!(ta < tb, a < b);
        prop_assert_eq!(ta == tb, a == b);
        prop_assert_eq!(ta.max(tb).seconds(), a.max(b));
    }
}
