//! History-table cost: Eq. 2 similarity and LRU lookup at Table-1 scale
//! (150 entries), plus insert-with-eviction.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gridsec_stga::chromosome::Chromosome;
use gridsec_stga::history::{eq2_similarity, similarity, BatchSignature, HistoryTable};

fn sig(tag: u64, jobs: usize, sites: usize) -> BatchSignature {
    let f = |i: usize| ((tag as usize * 31 + i * 7) % 100) as f64;
    BatchSignature {
        ready_times: (0..sites).map(f).collect(),
        etc: (0..jobs * sites).map(f).collect(),
        demands: (0..jobs).map(|i| 0.6 + 0.3 * (f(i) / 100.0)).collect(),
    }
}

fn bench_similarity(c: &mut Criterion) {
    let mut group = c.benchmark_group("similarity");
    for &k in &[20usize, 240, 2_400] {
        let a: Vec<f64> = (0..k).map(|i| i as f64).collect();
        let b: Vec<f64> = (0..k).map(|i| (i as f64) * 1.01).collect();
        group.bench_with_input(BenchmarkId::new("normalised", k), &k, |bch, _| {
            bch.iter(|| similarity(&a, &b));
        });
        group.bench_with_input(BenchmarkId::new("eq2_literal", k), &k, |bch, _| {
            bch.iter(|| eq2_similarity(&a, &b));
        });
    }
    group.finish();
}

fn bench_table(c: &mut Criterion) {
    let mut group = c.benchmark_group("history_table");
    // Table-1 scale: 150 entries, 15-job × 12-site signatures.
    let mut table = HistoryTable::new(150);
    for t in 0..150u64 {
        table.insert(sig(t, 15, 12), Chromosome::from_genes(vec![0; 15]));
    }
    let query = sig(3, 15, 12);
    group.bench_function("lookup_150_entries", |b| {
        b.iter(|| table.lookup(&query, 0.8, 100));
    });
    group.bench_function("insert_with_eviction", |b| {
        let mut t2 = table.clone();
        let mut n = 1000u64;
        b.iter(|| {
            n += 1;
            t2.insert(sig(n, 15, 12), Chromosome::from_genes(vec![0; 15]));
        });
    });
    group.finish();
}

criterion_group!(benches, bench_similarity, bench_table);
criterion_main!(benches);
