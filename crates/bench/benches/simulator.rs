//! Simulator throughput: events per second of the discrete-event engine
//! under a cheap scheduler, and the cost of ETC construction.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gridsec_bench::{psa_setup, psa_sim_config};
use gridsec_core::EtcMatrix;
use gridsec_sim::scheduler::EarliestCompletion;
use gridsec_sim::simulate;

fn bench_engine(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulator_throughput");
    group.sample_size(10);
    for &n in &[200usize, 1_000, 5_000] {
        let w = psa_setup(n, 13);
        let config = psa_sim_config(13);
        group.bench_with_input(BenchmarkId::new("mct_full_sim", n), &n, |b, _| {
            b.iter(|| {
                simulate(&w.jobs, &w.grid, &mut EarliestCompletion, &config).expect("drains")
            });
        });
    }
    group.finish();
}

fn bench_etc(c: &mut Criterion) {
    let mut group = c.benchmark_group("etc_construction");
    for &n in &[100usize, 1_000, 10_000] {
        let w = psa_setup(n, 17);
        group.bench_with_input(BenchmarkId::new("build", n), &n, |b, _| {
            b.iter(|| EtcMatrix::build(&w.jobs, &w.grid));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_engine, bench_etc);
criterion_main!(benches);
