//! Scaled-down versions of the paper's figure experiments, wired into
//! `cargo bench` so every figure's code path is exercised and timed.
//! Full-scale regeneration lives in the `fig*`/`table2` binaries.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gridsec_bench::{make_stga, nas_setup, nas_sim_config, psa_setup, psa_sim_config};
use gridsec_core::RiskMode;
use gridsec_heuristics::{MinMin, Sufferage};
use gridsec_sim::simulate;

const N_PSA: usize = 150;
const N_NAS: usize = 300;

fn fig7a_quick(c: &mut Criterion) {
    let w = psa_setup(N_PSA, 3);
    let config = psa_sim_config(3);
    let mut group = c.benchmark_group("fig7a_quick");
    group.sample_size(10);
    for &f in &[0.0, 0.5, 1.0] {
        group.bench_with_input(
            BenchmarkId::new("minmin_f", format!("{f:.1}")),
            &f,
            |b, _| {
                b.iter(|| {
                    simulate(
                        &w.jobs,
                        &w.grid,
                        &mut MinMin::new(RiskMode::FRisky(f)),
                        &config,
                    )
                    .expect("drains")
                });
            },
        );
    }
    group.finish();
}

fn fig7b_quick(c: &mut Criterion) {
    let w = psa_setup(N_PSA, 5);
    let config = psa_sim_config(5);
    let mut group = c.benchmark_group("fig7b_quick");
    group.sample_size(10);
    for &g in &[10usize, 50] {
        group.bench_with_input(BenchmarkId::new("stga_gens", g), &g, |b, _| {
            b.iter(|| {
                let mut stga = make_stga(&w.jobs, &w.grid, 5, g, 8).expect("params");
                simulate(&w.jobs, &w.grid, &mut stga, &config).expect("drains")
            });
        });
    }
    group.finish();
}

fn fig8_quick(c: &mut Criterion) {
    let w = nas_setup(N_NAS, 7);
    let config = nas_sim_config(7);
    let mut group = c.benchmark_group("fig8_fig9_table2_quick");
    group.sample_size(10);
    group.bench_function("minmin_secure_nas", |b| {
        b.iter(|| {
            simulate(
                &w.jobs,
                &w.grid,
                &mut MinMin::new(RiskMode::Secure),
                &config,
            )
            .expect("drains")
        });
    });
    group.bench_function("sufferage_risky_nas", |b| {
        b.iter(|| {
            simulate(
                &w.jobs,
                &w.grid,
                &mut Sufferage::new(RiskMode::Risky),
                &config,
            )
            .expect("drains")
        });
    });
    group.bench_function("stga_nas", |b| {
        b.iter(|| {
            let mut stga = make_stga(&w.jobs, &w.grid, 7, 25, 15).expect("params");
            simulate(&w.jobs, &w.grid, &mut stga, &config).expect("drains")
        });
    });
    group.finish();
}

fn fig10_quick(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig10_quick");
    group.sample_size(10);
    for &n in &[100usize, 300] {
        let w = psa_setup(n, 9);
        let config = psa_sim_config(9);
        group.bench_with_input(BenchmarkId::new("sufferage_frisky_scale", n), &n, |b, _| {
            b.iter(|| {
                simulate(
                    &w.jobs,
                    &w.grid,
                    &mut Sufferage::new(RiskMode::FRisky(0.5)),
                    &config,
                )
                .expect("drains")
            });
        });
    }
    group.finish();
}

criterion_group!(benches, fig7a_quick, fig7b_quick, fig8_quick, fig10_quick);
criterion_main!(benches);
