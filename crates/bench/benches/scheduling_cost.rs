//! Per-batch scheduling cost: the paper's "fastness" claim (§3).
//!
//! Measures how long one scheduling round takes for each algorithm at
//! realistic batch sizes. The STGA's cost is dominated by `generations ×
//! population` fitness evaluations; the heuristics are quadratic in the
//! batch size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gridsec_bench::psa_setup;
use gridsec_core::etc::NodeAvailability;
use gridsec_core::{RiskMode, SecurityModel, Time};
use gridsec_heuristics::{MinMin, Sufferage};
use gridsec_sim::{BatchJob, BatchScheduler, GridView};
use gridsec_stga::{GaParams, Stga, StgaParams};

fn batch_of(n: usize, seed: u64) -> (Vec<BatchJob>, gridsec_workloads_grid::GridBundle) {
    let w = psa_setup(n.max(1), seed);
    let batch = w.jobs[..n]
        .iter()
        .cloned()
        .map(|job| BatchJob {
            job,
            secure_only: false,
        })
        .collect();
    let avail = w
        .grid
        .sites()
        .map(|s| NodeAvailability::new(s.nodes, Time::ZERO))
        .collect();
    (
        batch,
        gridsec_workloads_grid::GridBundle {
            grid: w.grid,
            avail,
        },
    )
}

/// Local helper types so the bench owns grid + availability together.
mod gridsec_workloads_grid {
    use gridsec_core::etc::NodeAvailability;
    use gridsec_core::Grid;

    pub struct GridBundle {
        pub grid: Grid,
        pub avail: Vec<NodeAvailability>,
    }
}

fn bench_schedulers(c: &mut Criterion) {
    let mut group = c.benchmark_group("per_batch_scheduling_cost");
    group.sample_size(10);
    for &n in &[8usize, 32, 128] {
        let (batch, bundle) = batch_of(n, 7);
        let view = || GridView {
            grid: &bundle.grid,
            avail: &bundle.avail,
            now: Time::ZERO,
            model: SecurityModel::default(),
        };

        group.bench_with_input(BenchmarkId::new("min_min", n), &n, |b, _| {
            let mut s = MinMin::new(RiskMode::FRisky(0.5));
            b.iter(|| s.schedule(&batch, &view()));
        });
        group.bench_with_input(BenchmarkId::new("sufferage", n), &n, |b, _| {
            let mut s = Sufferage::new(RiskMode::FRisky(0.5));
            b.iter(|| s.schedule(&batch, &view()));
        });
        group.bench_with_input(BenchmarkId::new("stga_100gen", n), &n, |b, _| {
            let params = StgaParams {
                ga: GaParams::default().with_seed(7),
                ..StgaParams::default()
            };
            let mut s = Stga::new(params).expect("valid params");
            b.iter(|| s.schedule(&batch, &view()));
        });
        group.bench_with_input(BenchmarkId::new("stga_25gen", n), &n, |b, _| {
            let params = StgaParams {
                ga: GaParams::default().with_generations(25).with_seed(7),
                ..StgaParams::default()
            };
            let mut s = Stga::new(params).expect("valid params");
            b.iter(|| s.schedule(&batch, &view()));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_schedulers);
criterion_main!(benches);
