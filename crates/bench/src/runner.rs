//! Experiment plumbing: workload setup, scheduler roster, single-run and
//! parallel multi-seed replication execution, and JSON records.

use gridsec_core::rng::subseed;
use gridsec_core::{Grid, Job, Result, RiskMode, Time};
use gridsec_heuristics::{MinMin, Sufferage};
use gridsec_sim::{simulate, BatchScheduler, SimConfig, SimOutput};
use gridsec_stga::{GaParams, Stga, StgaParams};
use gridsec_workloads::{NasConfig, NasWorkload, PsaConfig, PsaWorkload};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// The PSA batch period (Table 1 gives none; DESIGN.md §3: 1000 s ≈ 8
/// jobs per batch at the 0.008/s arrival rate).
pub const PSA_INTERVAL: f64 = 1_000.0;
/// The NAS batch period (DESIGN.md §3: hourly batches ≈ 15 jobs each).
pub const NAS_INTERVAL: f64 = 3_600.0;

/// Builds the PSA workload of Table 1 at the given size.
pub fn psa_setup(n_jobs: usize, seed: u64) -> PsaWorkload {
    PsaConfig::default()
        .with_n_jobs(n_jobs)
        .with_seed(seed)
        .generate()
        .expect("valid PSA defaults")
}

/// Simulator configuration used by every PSA experiment.
pub fn psa_sim_config(seed: u64) -> SimConfig {
    SimConfig::default()
        .with_interval(Time::new(PSA_INTERVAL))
        .with_seed(subseed(seed, 0xFA11))
}

/// Builds the NAS workload of Table 1 at the given size.
pub fn nas_setup(n_jobs: usize, seed: u64) -> NasWorkload {
    NasConfig::default()
        .with_n_jobs(n_jobs)
        .with_seed(seed)
        .generate()
        .expect("valid NAS defaults")
}

/// Simulator configuration used by every NAS experiment.
pub fn nas_sim_config(seed: u64) -> SimConfig {
    SimConfig::default()
        .with_interval(Time::new(NAS_INTERVAL))
        .with_seed(subseed(seed, 0xFA11))
}

/// Builds a trained STGA: Table 1 parameters, history warmed on the first
/// `training_jobs` of the workload with the expected batch size.
pub fn make_stga(
    jobs: &[Job],
    grid: &Grid,
    seed: u64,
    generations: usize,
    expected_batch: usize,
) -> Result<Stga> {
    let params = StgaParams {
        ga: GaParams::default()
            .with_generations(generations)
            .with_seed(subseed(seed, 0x57A6)),
        ..StgaParams::default()
    };
    let mut stga = Stga::new(params)?;
    stga.train(jobs, grid, expected_batch.max(1))?;
    Ok(stga)
}

/// The paper's seven-algorithm roster (Fig. 8 order): the six
/// security-driven heuristics plus a trained STGA.
pub fn paper_schedulers(
    jobs: &[Job],
    grid: &Grid,
    seed: u64,
    expected_batch: usize,
) -> Vec<Box<dyn BatchScheduler>> {
    let mut v: Vec<Box<dyn BatchScheduler>> = vec![
        Box::new(MinMin::new(RiskMode::Secure)),
        Box::new(MinMin::new(RiskMode::FRisky(RiskMode::PAPER_F))),
        Box::new(MinMin::new(RiskMode::Risky)),
        Box::new(Sufferage::new(RiskMode::Secure)),
        Box::new(Sufferage::new(RiskMode::FRisky(RiskMode::PAPER_F))),
        Box::new(Sufferage::new(RiskMode::Risky)),
    ];
    let stga = make_stga(jobs, grid, seed, 100, expected_batch).expect("valid STGA parameters");
    v.push(Box::new(stga));
    v
}

/// Runs one scheduler over one workload and prints its summary line.
pub fn run_one(
    jobs: &[Job],
    grid: &Grid,
    scheduler: &mut dyn BatchScheduler,
    config: &SimConfig,
) -> SimOutput {
    let out = simulate(jobs, grid, scheduler, config).expect("simulation must drain");
    println!("{}", out.summary());
    out
}

/// Derives the seed list for `--reps` replications: replication 0 keeps
/// the base seed (so a single-rep run is bit-identical to the plain run),
/// later replications use independent subseeds.
pub fn replication_seeds(base: u64, reps: usize) -> Vec<u64> {
    (0..reps.max(1))
        .map(|r| {
            if r == 0 {
                base
            } else {
                subseed(base, r as u64)
            }
        })
        .collect()
}

/// Fans one run per seed out over the thread pool. The output order
/// matches `seeds` regardless of thread count, so replicated sweeps are as
/// deterministic as their single-seed counterparts.
pub fn replicate<T: Send>(seeds: &[u64], run: impl Fn(u64) -> T + Sync) -> Vec<T> {
    seeds.par_iter().map(|&s| run(s)).collect()
}

/// Mean metrics over a set of replicated runs, for the `--reps` tables.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MetricMeans {
    /// Number of replications averaged.
    pub reps: usize,
    /// Mean makespan (seconds).
    pub makespan: f64,
    /// Mean number of failed (rescheduled) jobs.
    pub n_fail: f64,
    /// Mean number of risky dispatches.
    pub n_risk: f64,
    /// Mean slowdown ratio.
    pub slowdown: f64,
    /// Mean average response time (seconds).
    pub avg_response: f64,
}

impl MetricMeans {
    /// Averages the metrics of `outputs` (which must be non-empty).
    pub fn of<'a>(outputs: impl IntoIterator<Item = &'a SimOutput>) -> MetricMeans {
        let mut m = MetricMeans {
            reps: 0,
            makespan: 0.0,
            n_fail: 0.0,
            n_risk: 0.0,
            slowdown: 0.0,
            avg_response: 0.0,
        };
        for o in outputs {
            m.reps += 1;
            m.makespan += o.metrics.makespan.seconds();
            m.n_fail += o.metrics.n_fail as f64;
            m.n_risk += o.metrics.n_risk as f64;
            m.slowdown += o.metrics.slowdown_ratio;
            m.avg_response += o.metrics.avg_response;
        }
        assert!(m.reps > 0, "cannot average zero replications");
        let n = m.reps as f64;
        m.makespan /= n;
        m.n_fail /= n;
        m.n_risk /= n;
        m.slowdown /= n;
        m.avg_response /= n;
        m
    }
}

/// A named experiment result for the JSON dump.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExperimentRecord {
    /// Experiment identifier ("fig8", "table2", …).
    pub experiment: String,
    /// Free-form parameter description (e.g. "N=1000 f=0.5").
    pub params: String,
    /// The run output.
    pub output: SimOutput,
}

impl ExperimentRecord {
    /// Creates a record.
    pub fn new(experiment: &str, params: impl Into<String>, output: SimOutput) -> Self {
        ExperimentRecord {
            experiment: experiment.to_string(),
            params: params.into(),
            output,
        }
    }
}

/// Writes records as pretty JSON if a path was requested.
pub fn maybe_dump(path: &Option<String>, records: &[ExperimentRecord]) {
    if let Some(p) = path {
        let json = serde_json::to_string_pretty(records).expect("records serialise");
        std::fs::write(p, json).expect("write JSON dump");
        println!("[wrote {p}]");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn psa_setup_respects_size_and_seed() {
        let w = psa_setup(50, 1);
        assert_eq!(w.jobs.len(), 50);
        assert_eq!(w.grid.len(), 20);
        let w2 = psa_setup(50, 1);
        assert_eq!(w.jobs, w2.jobs);
    }

    #[test]
    fn nas_setup_builds_12_sites() {
        let w = nas_setup(100, 1);
        assert_eq!(w.grid.len(), 12);
        assert_eq!(w.jobs.len(), 100);
    }

    #[test]
    fn roster_is_seven_strong() {
        let w = psa_setup(30, 2);
        let roster = paper_schedulers(&w.jobs, &w.grid, 2, 8);
        assert_eq!(roster.len(), 7);
        assert_eq!(roster[6].name(), "STGA");
    }

    #[test]
    fn quick_end_to_end_run() {
        let w = psa_setup(30, 3);
        let mut s = MinMin::new(RiskMode::Risky);
        let out = run_one(&w.jobs, &w.grid, &mut s, &psa_sim_config(3));
        assert_eq!(out.metrics.n_jobs, 30);
    }

    #[test]
    fn replication_seeds_keep_the_base_first() {
        assert_eq!(replication_seeds(7, 1), vec![7]);
        let s = replication_seeds(7, 4);
        assert_eq!(s.len(), 4);
        assert_eq!(s[0], 7);
        let mut unique = s.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), 4, "replication seeds must be distinct");
    }

    #[test]
    fn replicate_preserves_seed_order() {
        let seeds = replication_seeds(11, 5);
        let outs = replicate(&seeds, |s| {
            let w = psa_setup(20, s);
            let mut sched = MinMin::new(RiskMode::Risky);
            simulate(&w.jobs, &w.grid, &mut sched, &psa_sim_config(s))
                .expect("simulation must drain")
        });
        assert_eq!(outs.len(), 5);
        // Slot 0 is the plain single-seed run, bit for bit.
        let w = psa_setup(20, 11);
        let mut sched = MinMin::new(RiskMode::Risky);
        let direct = simulate(&w.jobs, &w.grid, &mut sched, &psa_sim_config(11)).unwrap();
        assert_eq!(outs[0].metrics, direct.metrics);
    }

    #[test]
    fn metric_means_average() {
        let seeds = replication_seeds(3, 3);
        let outs = replicate(&seeds, |s| {
            let w = psa_setup(25, s);
            let mut sched = MinMin::new(RiskMode::Risky);
            simulate(&w.jobs, &w.grid, &mut sched, &psa_sim_config(s)).unwrap()
        });
        let m = MetricMeans::of(&outs);
        assert_eq!(m.reps, 3);
        let hand: f64 = outs
            .iter()
            .map(|o| o.metrics.makespan.seconds())
            .sum::<f64>()
            / 3.0;
        assert!((m.makespan - hand).abs() < 1e-9);
    }
}
