//! Experiment plumbing: workload setup, scheduler roster, single-run
//! execution and JSON records.

use gridsec_core::rng::subseed;
use gridsec_core::{Grid, Job, Result, RiskMode, Time};
use gridsec_heuristics::{MinMin, Sufferage};
use gridsec_sim::{simulate, BatchScheduler, SimConfig, SimOutput};
use gridsec_stga::{GaParams, Stga, StgaParams};
use gridsec_workloads::{NasConfig, NasWorkload, PsaConfig, PsaWorkload};
use serde::{Deserialize, Serialize};

/// The PSA batch period (Table 1 gives none; DESIGN.md §3: 1000 s ≈ 8
/// jobs per batch at the 0.008/s arrival rate).
pub const PSA_INTERVAL: f64 = 1_000.0;
/// The NAS batch period (DESIGN.md §3: hourly batches ≈ 15 jobs each).
pub const NAS_INTERVAL: f64 = 3_600.0;

/// Builds the PSA workload of Table 1 at the given size.
pub fn psa_setup(n_jobs: usize, seed: u64) -> PsaWorkload {
    PsaConfig::default()
        .with_n_jobs(n_jobs)
        .with_seed(seed)
        .generate()
        .expect("valid PSA defaults")
}

/// Simulator configuration used by every PSA experiment.
pub fn psa_sim_config(seed: u64) -> SimConfig {
    SimConfig::default()
        .with_interval(Time::new(PSA_INTERVAL))
        .with_seed(subseed(seed, 0xFA11))
}

/// Builds the NAS workload of Table 1 at the given size.
pub fn nas_setup(n_jobs: usize, seed: u64) -> NasWorkload {
    NasConfig::default()
        .with_n_jobs(n_jobs)
        .with_seed(seed)
        .generate()
        .expect("valid NAS defaults")
}

/// Simulator configuration used by every NAS experiment.
pub fn nas_sim_config(seed: u64) -> SimConfig {
    SimConfig::default()
        .with_interval(Time::new(NAS_INTERVAL))
        .with_seed(subseed(seed, 0xFA11))
}

/// Builds a trained STGA: Table 1 parameters, history warmed on the first
/// `training_jobs` of the workload with the expected batch size.
pub fn make_stga(
    jobs: &[Job],
    grid: &Grid,
    seed: u64,
    generations: usize,
    expected_batch: usize,
) -> Result<Stga> {
    let params = StgaParams {
        ga: GaParams::default()
            .with_generations(generations)
            .with_seed(subseed(seed, 0x57A6)),
        ..StgaParams::default()
    };
    let mut stga = Stga::new(params)?;
    stga.train(jobs, grid, expected_batch.max(1))?;
    Ok(stga)
}

/// The paper's seven-algorithm roster (Fig. 8 order): the six
/// security-driven heuristics plus a trained STGA.
pub fn paper_schedulers(
    jobs: &[Job],
    grid: &Grid,
    seed: u64,
    expected_batch: usize,
) -> Vec<Box<dyn BatchScheduler>> {
    let mut v: Vec<Box<dyn BatchScheduler>> = vec![
        Box::new(MinMin::new(RiskMode::Secure)),
        Box::new(MinMin::new(RiskMode::FRisky(RiskMode::PAPER_F))),
        Box::new(MinMin::new(RiskMode::Risky)),
        Box::new(Sufferage::new(RiskMode::Secure)),
        Box::new(Sufferage::new(RiskMode::FRisky(RiskMode::PAPER_F))),
        Box::new(Sufferage::new(RiskMode::Risky)),
    ];
    let stga = make_stga(jobs, grid, seed, 100, expected_batch).expect("valid STGA parameters");
    v.push(Box::new(stga));
    v
}

/// Runs one scheduler over one workload and prints its summary line.
pub fn run_one(
    jobs: &[Job],
    grid: &Grid,
    scheduler: &mut dyn BatchScheduler,
    config: &SimConfig,
) -> SimOutput {
    let out = simulate(jobs, grid, scheduler, config).expect("simulation must drain");
    println!("{}", out.summary());
    out
}

/// A named experiment result for the JSON dump.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExperimentRecord {
    /// Experiment identifier ("fig8", "table2", …).
    pub experiment: String,
    /// Free-form parameter description (e.g. "N=1000 f=0.5").
    pub params: String,
    /// The run output.
    pub output: SimOutput,
}

impl ExperimentRecord {
    /// Creates a record.
    pub fn new(experiment: &str, params: impl Into<String>, output: SimOutput) -> Self {
        ExperimentRecord {
            experiment: experiment.to_string(),
            params: params.into(),
            output,
        }
    }
}

/// Writes records as pretty JSON if a path was requested.
pub fn maybe_dump(path: &Option<String>, records: &[ExperimentRecord]) {
    if let Some(p) = path {
        let json = serde_json::to_string_pretty(records).expect("records serialise");
        std::fs::write(p, json).expect("write JSON dump");
        println!("[wrote {p}]");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn psa_setup_respects_size_and_seed() {
        let w = psa_setup(50, 1);
        assert_eq!(w.jobs.len(), 50);
        assert_eq!(w.grid.len(), 20);
        let w2 = psa_setup(50, 1);
        assert_eq!(w.jobs, w2.jobs);
    }

    #[test]
    fn nas_setup_builds_12_sites() {
        let w = nas_setup(100, 1);
        assert_eq!(w.grid.len(), 12);
        assert_eq!(w.jobs.len(), 100);
    }

    #[test]
    fn roster_is_seven_strong() {
        let w = psa_setup(30, 2);
        let roster = paper_schedulers(&w.jobs, &w.grid, 2, 8);
        assert_eq!(roster.len(), 7);
        assert_eq!(roster[6].name(), "STGA");
    }

    #[test]
    fn quick_end_to_end_run() {
        let w = psa_setup(30, 3);
        let mut s = MinMin::new(RiskMode::Risky);
        let out = run_one(&w.jobs, &w.grid, &mut s, &psa_sim_config(3));
        assert_eq!(out.metrics.n_jobs, 30);
    }
}
