//! Minimal command-line handling shared by the figure binaries.

/// Options common to every experiment binary.
#[derive(Debug, Clone)]
pub struct BenchArgs {
    /// Scale workloads down for a fast smoke run.
    pub quick: bool,
    /// Experiment seed.
    pub seed: u64,
    /// Optional path for a JSON dump of the results.
    pub json: Option<String>,
    /// Worker threads for parallel sections (`None` = the rayon default:
    /// `RAYON_NUM_THREADS` or all available cores).
    pub threads: Option<usize>,
    /// Independent replications per configuration (seeds derived from
    /// `seed`; replications run in parallel on the thread pool).
    pub reps: usize,
}

impl Default for BenchArgs {
    fn default() -> Self {
        BenchArgs {
            quick: false,
            seed: 2005,
            json: None,
            threads: None,
            reps: 1,
        }
    }
}

impl BenchArgs {
    /// Parses `--quick`, `--seed <u64>`, `--json <path>`, `--threads <n>`
    /// and `--reps <n>` from the process arguments, then applies
    /// `--threads` to the global thread pool; unknown arguments abort
    /// with a usage message.
    pub fn parse() -> BenchArgs {
        let out = Self::parse_from(std::env::args().skip(1));
        out.apply_threads();
        out
    }

    /// Parses from an explicit argument iterator (testable).
    pub fn parse_from<I: IntoIterator<Item = String>>(args: I) -> BenchArgs {
        let mut out = BenchArgs::default();
        let mut it = args.into_iter();
        while let Some(a) = it.next() {
            match a.as_str() {
                "--quick" => out.quick = true,
                "--seed" => {
                    let v = it.next().unwrap_or_else(|| usage("--seed needs a value"));
                    out.seed = v.parse().unwrap_or_else(|_| usage("--seed must be a u64"));
                }
                "--json" => {
                    out.json = Some(it.next().unwrap_or_else(|| usage("--json needs a path")));
                }
                "--threads" => {
                    let v = it
                        .next()
                        .unwrap_or_else(|| usage("--threads needs a value"));
                    let n: usize = v
                        .parse()
                        .unwrap_or_else(|_| usage("--threads must be a positive integer"));
                    if n == 0 {
                        usage("--threads must be a positive integer");
                    }
                    out.threads = Some(n);
                }
                "--reps" => {
                    let v = it.next().unwrap_or_else(|| usage("--reps needs a value"));
                    let n: usize = v
                        .parse()
                        .unwrap_or_else(|_| usage("--reps must be a positive integer"));
                    if n == 0 {
                        usage("--reps must be a positive integer");
                    }
                    out.reps = n;
                }
                "--help" | "-h" => usage(""),
                other => usage(&format!("unknown argument `{other}`")),
            }
        }
        out
    }

    /// For binaries that have no replicated mode: warns loudly when
    /// `--reps` was passed, so a single-replication table is never
    /// mistaken for a mean.
    pub fn warn_unused_reps(&self, bin: &str) {
        if self.reps > 1 {
            eprintln!(
                "warning: `{bin}` has no replicated mode; --reps {} ignored, \
                 running a single replication",
                self.reps
            );
        }
    }

    /// Sizes the global rayon pool to `--threads`, if given. Must run
    /// before the first parallel section (`parse` calls it for you).
    pub fn apply_threads(&self) {
        if let Some(n) = self.threads {
            rayon::ThreadPoolBuilder::new()
                .num_threads(n)
                .build_global()
                .expect("--threads must be applied before any parallel work");
        }
    }
}

fn usage(msg: &str) -> ! {
    if !msg.is_empty() {
        eprintln!("error: {msg}");
    }
    eprintln!(
        "usage: <bin> [--quick] [--seed <u64>] [--json <path>] [--threads <n>] [--reps <n>]\n\
         \n\
         --threads <n>  worker threads for parallel sections\n\
         \x20              (default: RAYON_NUM_THREADS or all available cores)\n\
         --reps <n>     independent replications per configuration, run in\n\
         \x20              parallel and averaged (default: 1)"
    );
    std::process::exit(if msg.is_empty() { 0 } else { 2 });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(args: &[&str]) -> BenchArgs {
        BenchArgs::parse_from(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn defaults() {
        let a = v(&[]);
        assert!(!a.quick);
        assert_eq!(a.seed, 2005);
        assert!(a.json.is_none());
        assert!(a.threads.is_none());
        assert_eq!(a.reps, 1);
    }

    #[test]
    fn parses_flags() {
        let a = v(&[
            "--quick",
            "--seed",
            "42",
            "--json",
            "out.json",
            "--threads",
            "3",
            "--reps",
            "5",
        ]);
        assert!(a.quick);
        assert_eq!(a.seed, 42);
        assert_eq!(a.json.as_deref(), Some("out.json"));
        assert_eq!(a.threads, Some(3));
        assert_eq!(a.reps, 5);
    }
}
