//! Minimal command-line handling shared by the figure binaries.

/// Options common to every experiment binary.
#[derive(Debug, Clone)]
pub struct BenchArgs {
    /// Scale workloads down for a fast smoke run.
    pub quick: bool,
    /// Experiment seed.
    pub seed: u64,
    /// Optional path for a JSON dump of the results.
    pub json: Option<String>,
}

impl Default for BenchArgs {
    fn default() -> Self {
        BenchArgs {
            quick: false,
            seed: 2005,
            json: None,
        }
    }
}

impl BenchArgs {
    /// Parses `--quick`, `--seed <u64>` and `--json <path>` from the
    /// process arguments; unknown arguments abort with a usage message.
    pub fn parse() -> BenchArgs {
        Self::parse_from(std::env::args().skip(1))
    }

    /// Parses from an explicit argument iterator (testable).
    pub fn parse_from<I: IntoIterator<Item = String>>(args: I) -> BenchArgs {
        let mut out = BenchArgs::default();
        let mut it = args.into_iter();
        while let Some(a) = it.next() {
            match a.as_str() {
                "--quick" => out.quick = true,
                "--seed" => {
                    let v = it.next().unwrap_or_else(|| usage("--seed needs a value"));
                    out.seed = v.parse().unwrap_or_else(|_| usage("--seed must be a u64"));
                }
                "--json" => {
                    out.json = Some(it.next().unwrap_or_else(|| usage("--json needs a path")));
                }
                "--help" | "-h" => usage(""),
                other => usage(&format!("unknown argument `{other}`")),
            }
        }
        out
    }
}

fn usage(msg: &str) -> ! {
    if !msg.is_empty() {
        eprintln!("error: {msg}");
    }
    eprintln!("usage: <bin> [--quick] [--seed <u64>] [--json <path>]");
    std::process::exit(if msg.is_empty() { 0 } else { 2 });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(args: &[&str]) -> BenchArgs {
        BenchArgs::parse_from(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn defaults() {
        let a = v(&[]);
        assert!(!a.quick);
        assert_eq!(a.seed, 2005);
        assert!(a.json.is_none());
    }

    #[test]
    fn parses_flags() {
        let a = v(&["--quick", "--seed", "42", "--json", "out.json"]);
        assert!(a.quick);
        assert_eq!(a.seed, 42);
        assert_eq!(a.json.as_deref(), Some("out.json"));
    }
}
