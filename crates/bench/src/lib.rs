//! # gridsec-bench
//!
//! Experiment harness regenerating every table and figure of the paper's
//! evaluation (§4). One binary per artefact:
//!
//! | binary      | artefact  | what it prints                                        |
//! |-------------|-----------|-------------------------------------------------------|
//! | `fig7a`     | Fig. 7(a) | makespan vs risk threshold `f` (PSA, N = 1000)        |
//! | `fig7b`     | Fig. 7(b) | STGA makespan vs GA iterations (PSA, N = 1000)        |
//! | `fig8`      | Fig. 8    | makespan, N_fail/N_risk, slowdown, response (NAS)     |
//! | `fig9`      | Fig. 9    | per-site utilisation, 12 NAS sites × 7 algorithms     |
//! | `table2`    | Table 2   | α, β ratios and ranking vs the STGA (NAS)             |
//! | `fig10`     | Fig. 10   | PSA scaling, N ∈ {1000, 2000, 5000, 10000}            |
//! | `fig5`      | Fig. 5    | GA-vs-STGA convergence trajectories                   |
//! | `ablations` | DESIGN §6 | λ sweep, failure-timing, history knobs                |
//! | `perf_baseline` | BENCH_PR3.json | hot-path wall-clock + allocation baseline    |
//! | `loadgen`   | BENCH_PR4.json | load generator for the `gridsec-serve` daemon    |
//!
//! Every figure binary accepts `--quick` (scaled-down workloads for smoke
//! runs), `--seed <u64>`, `--json <path>` (machine-readable dump used to
//! fill EXPERIMENTS.md), and `--threads <n>` (worker threads for the
//! parallel sections); `fig8` and `fig10` additionally honour `--reps <n>`
//! (independent replications fanned out over the thread pool — see
//! [`replicate`]; the other binaries warn and ignore it). `loadgen` has
//! its own flags (`--help`): workload/rate/policy/scheduler selection, a
//! `--bench-suite` mode and the CI `--smoke` mode. Criterion
//! micro-benches live under `benches/`.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod args;
pub mod runner;
pub mod table;

pub use args::BenchArgs;
pub use runner::{
    make_stga, maybe_dump, nas_setup, nas_sim_config, paper_schedulers, psa_setup, psa_sim_config,
    replicate, replication_seeds, run_one, ExperimentRecord, MetricMeans,
};
pub use table::{format_row, print_header, AsciiTable};
