//! Plain-text table/row formatting for experiment output.

/// A simple fixed-width ASCII table builder.
#[derive(Debug, Clone)]
pub struct AsciiTable {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl AsciiTable {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(headers: Vec<S>) -> AsciiTable {
        AsciiTable {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header arity).
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) -> &mut Self {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row arity must match headers"
        );
        self.rows.push(cells);
        self
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let ncols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let sep: String = widths
            .iter()
            .map(|w| "-".repeat(w + 2))
            .collect::<Vec<_>>()
            .join("+");
        let fmt_row = |cells: &[String]| -> String {
            (0..ncols)
                .map(|i| format!(" {:>width$} ", cells[i], width = widths[i]))
                .collect::<Vec<_>>()
                .join("|")
        };
        out.push_str(&fmt_row(&self.headers));
        out.push('\n');
        out.push_str(&sep);
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }

    /// Prints the table to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Formats a number compactly (engineering style for big magnitudes).
pub fn fmt_num(x: f64) -> String {
    let a = x.abs();
    if a >= 1e6 {
        format!("{:.3}e6", x / 1e6)
    } else if a >= 1e4 {
        format!("{:.1}", x)
    } else if a >= 1.0 {
        format!("{:.2}", x)
    } else {
        format!("{:.4}", x)
    }
}

/// Prints a section header.
pub fn print_header(title: &str) {
    println!("\n=== {title} ===");
}

/// One formatted row helper used by figure binaries.
pub fn format_row(label: &str, values: &[f64]) -> String {
    let cells: Vec<String> = values.iter().map(|&v| fmt_num(v)).collect();
    format!("{label:<24} {}", cells.join("  "))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = AsciiTable::new(vec!["alg", "makespan"]);
        t.row(vec!["Min-Min", "123.4"]);
        t.row(vec!["STGA", "99.9"]);
        let r = t.render();
        assert!(r.contains("Min-Min"));
        assert!(r.contains("STGA"));
        let lines: Vec<&str> = r.lines().collect();
        assert_eq!(lines.len(), 4);
        // All rows equal width.
        assert_eq!(lines[0].len(), lines[2].len());
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_checked() {
        let mut t = AsciiTable::new(vec!["a", "b"]);
        t.row(vec!["only-one"]);
    }

    #[test]
    fn fmt_num_ranges() {
        assert_eq!(fmt_num(2_500_000.0), "2.500e6");
        assert_eq!(fmt_num(12345.0), "12345.0");
        assert_eq!(fmt_num(3.17159), "3.17");
        assert_eq!(fmt_num(0.125), "0.1250");
    }

    #[test]
    fn format_row_joins() {
        let r = format_row("x", &[1.0, 2.0]);
        assert!(r.starts_with('x'));
        assert!(r.contains("1.00") && r.contains("2.00"));
    }
}
