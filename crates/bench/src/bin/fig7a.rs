//! Fig. 7(a): makespan of Min-Min f-risky and Sufferage f-risky as the
//! risk threshold `f` sweeps 0 → 1 (PSA workload, N = 1000).
//!
//! The paper observes two concave curves with minima around f ≈ 0.5–0.6,
//! motivating its choice of f = 0.5.

use gridsec_bench::{maybe_dump, psa_setup, psa_sim_config, run_one, AsciiTable, BenchArgs};
use gridsec_bench::{print_header, ExperimentRecord};
use gridsec_core::RiskMode;
use gridsec_heuristics::{MinMin, Sufferage};

fn main() {
    let args = BenchArgs::parse();
    args.warn_unused_reps("fig7a");
    let n = if args.quick { 200 } else { 1000 };
    let w = psa_setup(n, args.seed);
    let config = psa_sim_config(args.seed);
    print_header(&format!("Fig. 7(a): makespan vs f (PSA, N = {n})"));

    let fs: Vec<f64> = (0..=10).map(|i| i as f64 / 10.0).collect();
    let mut table = AsciiTable::new(vec!["f", "Min-Min f-Risky", "Sufferage f-Risky"]);
    let mut records = Vec::new();
    for &f in &fs {
        let mode = RiskMode::FRisky(f);
        let mm = run_one(&w.jobs, &w.grid, &mut MinMin::new(mode), &config);
        let sf = run_one(&w.jobs, &w.grid, &mut Sufferage::new(mode), &config);
        table.row(vec![
            format!("{f:.1}"),
            format!("{:.0}", mm.metrics.makespan.seconds()),
            format!("{:.0}", sf.metrics.makespan.seconds()),
        ]);
        records.push(ExperimentRecord::new(
            "fig7a",
            format!("f={f:.1} minmin"),
            mm,
        ));
        records.push(ExperimentRecord::new(
            "fig7a",
            format!("f={f:.1} sufferage"),
            sf,
        ));
    }
    println!();
    table.print();
    maybe_dump(&args.json, &records);
}
