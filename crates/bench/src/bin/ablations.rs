//! Ablation benches for the design knobs DESIGN.md §3/§6 calls out:
//!
//! 1. failure-law λ sweep (the paper never fixes λ);
//! 2. failure-detection timing (at-end vs uniform-fraction);
//! 3. STGA history-table capacity;
//! 4. STGA similarity threshold;
//! 5. population seeding mix (history / heuristics on-off).

use gridsec_bench::{print_header, psa_setup, psa_sim_config, run_one, AsciiTable, BenchArgs};
use gridsec_core::rng::subseed;
use gridsec_core::{FailureDetection, RiskMode, Time};
use gridsec_heuristics::MinMin;
use gridsec_sim::simulate;
use gridsec_stga::{GaParams, Stga, StgaParams};

fn main() {
    let args = BenchArgs::parse();
    args.warn_unused_reps("ablations");
    let n = if args.quick { 200 } else { 1000 };
    let w = psa_setup(n, args.seed);

    print_header("Ablation 1: failure-law λ sweep (Min-Min Risky, PSA)");
    let mut t = AsciiTable::new(vec!["lambda", "makespan (s)", "Nfail", "Nrisk"]);
    for lambda in [0.5, 1.0, 3.0, 6.0, 12.0] {
        let config = psa_sim_config(args.seed)
            .with_lambda(lambda)
            .expect("positive λ");
        let out = run_one(&w.jobs, &w.grid, &mut MinMin::new(RiskMode::Risky), &config);
        t.row(vec![
            format!("{lambda:.1}"),
            format!("{:.3e}", out.metrics.makespan.seconds()),
            out.metrics.n_fail.to_string(),
            out.metrics.n_risk.to_string(),
        ]);
    }
    t.print();

    print_header("Ablation 2: failure-detection timing (Min-Min Risky, PSA)");
    let mut t = AsciiTable::new(vec!["detection", "makespan (s)", "avg response (s)"]);
    for (label, fd) in [
        ("at-end", FailureDetection::AtEnd),
        ("uniform-fraction", FailureDetection::UniformFraction),
    ] {
        let config = psa_sim_config(args.seed).with_failure_detection(fd);
        let out = run_one(&w.jobs, &w.grid, &mut MinMin::new(RiskMode::Risky), &config);
        t.row(vec![
            label.to_string(),
            format!("{:.3e}", out.metrics.makespan.seconds()),
            format!("{:.3e}", out.metrics.avg_response),
        ]);
    }
    t.print();

    let gens = if args.quick { 30 } else { 100 };
    let ga = GaParams::default()
        .with_generations(gens)
        .with_seed(subseed(args.seed, 0x57A6));

    print_header("Ablation 3: STGA history-table capacity");
    let mut t = AsciiTable::new(vec!["capacity", "makespan (s)", "scheduler time (s)"]);
    for cap in [1usize, 25, 150, 600] {
        let params = StgaParams {
            ga,
            table_capacity: cap,
            ..StgaParams::default()
        };
        let mut stga = Stga::new(params).expect("valid params");
        stga.train(&w.jobs, &w.grid, 8).expect("training");
        let out = run_one(&w.jobs, &w.grid, &mut stga, &psa_sim_config(args.seed));
        t.row(vec![
            cap.to_string(),
            format!("{:.3e}", out.metrics.makespan.seconds()),
            format!("{:.3}", out.scheduler_seconds),
        ]);
    }
    t.print();

    print_header("Ablation 4: STGA similarity threshold");
    let mut t = AsciiTable::new(vec!["threshold", "makespan (s)"]);
    for th in [0.5, 0.8, 0.95, 0.999] {
        let params = StgaParams {
            ga,
            similarity_threshold: th,
            ..StgaParams::default()
        };
        let mut stga = Stga::new(params).expect("valid params");
        stga.train(&w.jobs, &w.grid, 8).expect("training");
        let out = run_one(&w.jobs, &w.grid, &mut stga, &psa_sim_config(args.seed));
        t.row(vec![
            format!("{th:.3}"),
            format!("{:.3e}", out.metrics.makespan.seconds()),
        ]);
    }
    t.print();

    print_header("Ablation 5: population seeding mix");
    let mut t = AsciiTable::new(vec!["history", "heuristics", "makespan (s)"]);
    for (hist_frac, heur) in [(0.5, true), (0.5, false), (0.0, true), (0.0, false)] {
        let params = StgaParams {
            ga,
            history_fraction: hist_frac,
            heuristic_seeds: heur,
            ..StgaParams::default()
        };
        let mut stga = Stga::new(params).expect("valid params");
        if hist_frac > 0.0 {
            stga.train(&w.jobs, &w.grid, 8).expect("training");
        }
        let out = simulate(&w.jobs, &w.grid, &mut stga, &psa_sim_config(args.seed))
            .expect("simulation drains");
        println!("{}", out.summary());
        t.row(vec![
            if hist_frac > 0.0 { "on" } else { "off" }.to_string(),
            if heur { "on" } else { "off" }.to_string(),
            format!("{:.3e}", out.metrics.makespan.seconds()),
        ]);
    }
    t.print();

    print_header("Ablation 6: DFTS-style replication of risky placements");
    let mut t = AsciiTable::new(vec![
        "threshold",
        "makespan (s)",
        "Nfail",
        "backups",
        "util (%)",
    ]);
    {
        let config = psa_sim_config(args.seed).with_lambda(8.0).expect("λ > 0");
        let out = run_one(&w.jobs, &w.grid, &mut MinMin::new(RiskMode::Risky), &config);
        t.row(vec![
            "off".to_string(),
            format!("{:.3e}", out.metrics.makespan.seconds()),
            out.metrics.n_fail.to_string(),
            "0".to_string(),
            format!("{:.1}", out.metrics.overall_utilization),
        ]);
        for threshold in [0.8, 0.5, 0.2] {
            let config = config.clone().with_max_replicas(2);
            let mut s = gridsec_sim::Replicated::new(MinMin::new(RiskMode::Risky), threshold);
            let out = run_one(&w.jobs, &w.grid, &mut s, &config);
            t.row(vec![
                format!("{threshold:.1}"),
                format!("{:.3e}", out.metrics.makespan.seconds()),
                out.metrics.n_fail.to_string(),
                out.replica_dispatches.to_string(),
                format!("{:.1}", out.metrics.overall_utilization),
            ]);
        }
    }
    t.print();

    print_header("Ablation 7: execution-time estimate error (paper §5 future work)");
    let mut t = AsciiTable::new(vec!["estimates", "Min-Min (s)", "STGA (s)"]);
    for (label, model) in [
        ("exact", gridsec_sim::EstimateModel::Exact),
        (
            "±25%",
            gridsec_sim::EstimateModel::Multiplicative { err: 0.25 },
        ),
        (
            "±2x",
            gridsec_sim::EstimateModel::Multiplicative { err: 1.0 },
        ),
        (
            "constant",
            gridsec_sim::EstimateModel::Constant { work: 150_000.0 },
        ),
    ] {
        let config = psa_sim_config(args.seed).with_estimates(model);
        let mm = run_one(
            &w.jobs,
            &w.grid,
            &mut MinMin::new(RiskMode::FRisky(0.5)),
            &config,
        );
        let mut stga = Stga::new(StgaParams {
            ga,
            ..StgaParams::default()
        })
        .expect("valid params");
        stga.train(&w.jobs, &w.grid, 8).expect("training");
        let st = run_one(&w.jobs, &w.grid, &mut stga, &config);
        t.row(vec![
            label.to_string(),
            format!("{:.3e}", mm.metrics.makespan.seconds()),
            format!("{:.3e}", st.metrics.makespan.seconds()),
        ]);
    }
    t.print();

    print_header("Ablation 8: single-population GA vs island-model GA (one batch)");
    {
        use gridsec_core::etc::NodeAvailability;
        use gridsec_core::SecurityModel;
        use gridsec_heuristics::common::{Fallback, MapCtx};
        use gridsec_sim::{BatchJob, GridView};
        use gridsec_stga::fitness::FitnessKind;
        use gridsec_stga::{evolve, evolve_islands, IslandParams};

        let batch_n = if args.quick { 24 } else { 64 };
        let batch: Vec<BatchJob> = w.jobs[..batch_n]
            .iter()
            .cloned()
            .map(|job| BatchJob {
                job,
                secure_only: false,
            })
            .collect();
        let avail: Vec<NodeAvailability> = w
            .grid
            .sites()
            .map(|s| NodeAvailability::new(s.nodes, Time::ZERO))
            .collect();
        let view = GridView {
            grid: &w.grid,
            avail: &avail,
            now: Time::ZERO,
            model: SecurityModel::default(),
        };
        let ctx = MapCtx::build(&batch, &view, RiskMode::Risky, Fallback::default());
        let mut t = AsciiTable::new(vec!["engine", "batch fitness (s)", "wall time (ms)"]);
        let t0 = std::time::Instant::now();
        let mut rng = gridsec_core::rng::stream(args.seed, gridsec_core::rng::Stream::Genetic);
        let single = evolve(
            &ctx,
            &avail,
            vec![],
            &ga.with_population(200),
            FitnessKind::Makespan,
            None,
            &mut rng,
        );
        let single_ms = t0.elapsed().as_millis();
        t.row(vec![
            "single population (200)".to_string(),
            format!("{:.0}", single.best_fitness),
            single_ms.to_string(),
        ]);
        let t0 = std::time::Instant::now();
        let islands = evolve_islands(
            &ctx,
            &avail,
            vec![],
            &IslandParams {
                ga: ga.with_population(50),
                islands: 4,
                epochs: 5,
                migrants: 2,
            },
            FitnessKind::Makespan,
            None,
        );
        let island_ms = t0.elapsed().as_millis();
        t.row(vec![
            "4 islands x 50".to_string(),
            format!("{:.0}", islands.best_fitness),
            island_ms.to_string(),
        ]);
        t.print();
    }

    // Sanity horizon check: everything above used the default horizon.
    let _ = Time::INFINITY;
}
