//! `loadgen` — load generator and end-to-end harness for the
//! `gridsec-serve` daemon.
//!
//! Three modes:
//!
//! * **Replay** (default): spawn a daemon in-process on an ephemeral port
//!   (or target `--host <addr>`), replay a PSA/NAS/SWF workload through
//!   the NDJSON wire protocol at `--rate <jobs/sec>` (default: as fast as
//!   the daemon accepts), then report sustained jobs/sec, round-latency
//!   and batch-size distributions, and validate the returned schedule.
//! * **`--bench-suite`**: the PR 4 benchmark — {Min-Min, STGA} × {1, 4}
//!   scheduler threads over the same replay, written to `BENCH_PR4.json`
//!   (`--json` overrides the path).
//! * **`--smoke`**: the CI end-to-end check — a 50-job SWF slice
//!   (generated, written as SWF, parsed back) replayed against a daemon
//!   on an ephemeral port; asserts the schedule validates, the metrics
//!   frame round-trips through JSON, and the committed schedule is
//!   bit-identical to the in-process engine for the same seed, workload
//!   and batch policy.
//!
//! ```console
//! loadgen --workload psa --jobs 400 --scheduler stga --policy hybrid:16 --threads 4
//! loadgen --bench-suite --json BENCH_PR4.json
//! loadgen --smoke
//! loadgen --host 127.0.0.1:7070 --workload swf:trace.swf --rate 50
//! ```

use gridsec_core::{BatchSchedule, Grid, Job, RiskMode, Site, Time};
use gridsec_heuristics::{MinMin, Sufferage};
use gridsec_serve::{Client, Daemon, DaemonOptions, OnlineSession, QueryWhat, Request, Response};
use gridsec_sim::scheduler::EarliestCompletion;
use gridsec_sim::{simulate, BatchJob, BatchPolicy, BatchScheduler, GridView, SimConfig};
use gridsec_stga::{GaParams, Stga, StgaParams};
use gridsec_workloads::{swf, NasConfig, PsaConfig};
use serde::{Deserialize, Serialize};
use std::time::{Duration, Instant};

/// Scheduler thread counts measured by `--bench-suite`.
const SUITE_THREADS: [usize; 2] = [1, 4];

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match Options::parse(&args) {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("error: {msg}");
            usage();
            std::process::exit(2);
        }
    };
    let code = if opts.smoke {
        run_smoke(&opts)
    } else if opts.bench_suite {
        run_bench_suite(&opts)
    } else {
        run_replay(&opts)
    };
    std::process::exit(code);
}

fn usage() {
    eprintln!(
        "usage: loadgen [--workload psa|nas|swf:<path>] [--jobs <n>] [--seed <u64>]\n\
         \x20              [--scheduler mct|minmin|sufferage|stga] [--policy periodic:<secs>|count:<k>|hybrid:<k>]\n\
         \x20              [--rate <jobs-per-sec>] [--threads <n>] [--host <addr>]\n\
         \x20              [--bench-suite] [--smoke] [--json <path>] [--quick]"
    );
}

/// Command-line options.
struct Options {
    workload: String,
    jobs: usize,
    seed: u64,
    scheduler: String,
    policy: String,
    rate: Option<f64>,
    threads: Option<usize>,
    host: Option<String>,
    bench_suite: bool,
    smoke: bool,
    json: Option<String>,
    quick: bool,
}

impl Options {
    fn parse(args: &[String]) -> Result<Options, String> {
        let mut o = Options {
            workload: "psa".into(),
            jobs: 400,
            seed: 2005,
            scheduler: "minmin".into(),
            policy: "hybrid:16".into(),
            rate: None,
            threads: None,
            host: None,
            bench_suite: false,
            smoke: false,
            json: None,
            quick: false,
        };
        let mut it = args.iter();
        while let Some(a) = it.next() {
            let mut value = |name: &str| {
                it.next()
                    .cloned()
                    .ok_or_else(|| format!("{name} needs a value"))
            };
            match a.as_str() {
                "--workload" => o.workload = value("--workload")?,
                "--jobs" => {
                    o.jobs = value("--jobs")?
                        .parse()
                        .map_err(|_| "--jobs must be an integer".to_string())?
                }
                "--seed" => {
                    o.seed = value("--seed")?
                        .parse()
                        .map_err(|_| "--seed must be a u64".to_string())?
                }
                "--scheduler" => o.scheduler = value("--scheduler")?,
                "--policy" => o.policy = value("--policy")?,
                "--rate" => {
                    let r: f64 = value("--rate")?
                        .parse()
                        .map_err(|_| "--rate must be a number".to_string())?;
                    if !(r.is_finite() && r > 0.0) {
                        return Err("--rate must be positive".into());
                    }
                    o.rate = Some(r);
                }
                "--threads" => {
                    let n: usize = value("--threads")?
                        .parse()
                        .map_err(|_| "--threads must be a positive integer".to_string())?;
                    if n == 0 {
                        return Err("--threads must be a positive integer".into());
                    }
                    o.threads = Some(n);
                }
                "--host" => o.host = Some(value("--host")?),
                "--bench-suite" => o.bench_suite = true,
                "--smoke" => o.smoke = true,
                "--json" => o.json = Some(value("--json")?),
                "--quick" => o.quick = true,
                "--help" | "-h" => {
                    usage();
                    std::process::exit(0);
                }
                other => return Err(format!("unknown argument `{other}`")),
            }
        }
        Ok(o)
    }
}

/// Parses `periodic:<secs>` / `count:<k>` / `hybrid:<k>` into the sim
/// policy plus the scheduling interval.
fn parse_policy(text: &str, default_interval: f64) -> Result<(BatchPolicy, Time), String> {
    let mut parts = text.split(':');
    let kind = parts.next().unwrap_or("");
    let arg = parts.next();
    match kind {
        "periodic" => {
            let secs: f64 = arg
                .unwrap_or("1000")
                .parse()
                .map_err(|_| "periodic:<secs> needs a number".to_string())?;
            Ok((BatchPolicy::Periodic, Time::new(secs)))
        }
        "count" => {
            let k: usize = arg
                .ok_or("count:<k> needs a count")?
                .parse()
                .map_err(|_| "count:<k> needs an integer".to_string())?;
            Ok((BatchPolicy::CountTriggered(k), Time::new(default_interval)))
        }
        "hybrid" => {
            let k: usize = arg
                .ok_or("hybrid:<k> needs a count")?
                .parse()
                .map_err(|_| "hybrid:<k> needs an integer".to_string())?;
            Ok((BatchPolicy::Hybrid(k), Time::new(default_interval)))
        }
        other => Err(format!("unknown policy `{other}`")),
    }
}

/// Builds the named scheduler. `threads` wraps it in a dedicated rayon
/// pool so the daemon's parallel sections use exactly that many workers.
fn build_scheduler(
    name: &str,
    seed: u64,
    quick: bool,
    threads: Option<usize>,
) -> Result<Box<dyn BatchScheduler + Send>, String> {
    let base: Box<dyn BatchScheduler + Send> = match name {
        "mct" => Box::new(EarliestCompletion),
        "minmin" => Box::new(MinMin::new(RiskMode::Risky)),
        "sufferage" => Box::new(Sufferage::new(RiskMode::Risky)),
        "stga" => {
            let (population, generations) = if quick { (40, 20) } else { (100, 50) };
            Box::new(
                Stga::new(StgaParams {
                    ga: GaParams::default()
                        .with_population(population)
                        .with_generations(generations)
                        .with_seed(seed),
                    ..StgaParams::default()
                })
                .map_err(|e| e.to_string())?,
            )
        }
        other => return Err(format!("unknown scheduler `{other}`")),
    };
    match threads {
        None => Ok(base),
        Some(n) => {
            let pool = rayon::ThreadPoolBuilder::new()
                .num_threads(n)
                .build()
                .map_err(|e| e.to_string())?;
            Ok(Box::new(Pooled { pool, inner: base }))
        }
    }
}

/// Runs the wrapped scheduler inside a dedicated thread pool, pinning the
/// parallelism of its rayon sections regardless of the global pool.
struct Pooled {
    pool: rayon::ThreadPool,
    inner: Box<dyn BatchScheduler + Send>,
}

impl BatchScheduler for Pooled {
    fn name(&self) -> String {
        self.inner.name()
    }

    fn schedule(&mut self, batch: &[BatchJob], view: &GridView<'_>) -> BatchSchedule {
        let Pooled { pool, inner } = self;
        pool.install(|| inner.schedule(batch, view))
    }
}

/// Materialises the workload: jobs (sorted by arrival) + grid.
fn build_workload(spec: &str, n: usize, seed: u64) -> Result<(Vec<Job>, Grid), String> {
    let (mut jobs, grid) = if let Some(path) = spec.strip_prefix("swf:") {
        let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        let records = swf::parse(&text).map_err(|e| e.to_string())?;
        let mut jobs =
            swf::to_jobs(&records, &swf::ConvertOptions::default()).map_err(|e| e.to_string())?;
        jobs.truncate(n);
        let grid = NasConfig::default().grid().map_err(|e| e.to_string())?;
        (jobs, grid)
    } else {
        match spec {
            "psa" => {
                let w = PsaConfig::default()
                    .with_n_jobs(n)
                    .with_seed(seed)
                    .generate()
                    .map_err(|e| e.to_string())?;
                (w.jobs, w.grid)
            }
            "nas" => {
                let w = NasConfig::default()
                    .with_n_jobs(n)
                    .with_seed(seed)
                    .generate()
                    .map_err(|e| e.to_string())?;
                (w.jobs, w.grid)
            }
            other => return Err(format!("unknown workload `{other}`")),
        }
    };
    // The daemon's virtual clock needs non-decreasing arrivals; ties keep
    // id order so the replay is deterministic.
    jobs.sort_by(|a, b| a.arrival.cmp(&b.arrival).then(a.id.cmp(&b.id)));
    Ok((jobs, grid))
}

/// One replay's measurements.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct ReplayReport {
    scheduler: String,
    threads: usize,
    jobs: usize,
    /// Wall-clock seconds from first submit to drained.
    replay_secs: f64,
    /// Jobs per wall-clock second sustained over the replay.
    jobs_per_sec: f64,
    rounds: usize,
    /// Mean wall-clock microseconds per scheduling round.
    round_micros_mean: f64,
    /// Largest single round, microseconds.
    round_micros_max: f64,
    /// Seconds spent inside the scheduler over the whole replay.
    scheduler_seconds: f64,
    batch_size_mean: f64,
    batch_size_max: usize,
    /// Virtual makespan of the served schedule.
    makespan: f64,
    /// The served schedule covered every job exactly once on a fitting
    /// site.
    schedule_valid: bool,
}

/// Replays `jobs` through a daemon (spawned in-process unless `host`
/// targets an external one) and measures throughput.
#[allow(clippy::too_many_arguments)] // an experiment entry point, not a library API
fn replay(
    jobs: &[Job],
    grid: &Grid,
    scheduler_name: &str,
    threads: Option<usize>,
    policy: BatchPolicy,
    interval: Time,
    seed: u64,
    quick: bool,
    rate: Option<f64>,
    host: Option<&str>,
) -> Result<
    (
        ReplayReport,
        Vec<gridsec_serve::Placed>,
        gridsec_serve::ServeMetrics,
    ),
    String,
> {
    let config = SimConfig::default()
        .with_interval(interval)
        .with_batch_policy(policy)
        .with_seed(seed);
    let (daemon, addr) = match host {
        Some(h) => (None, h.parse().map_err(|_| format!("bad --host `{h}`"))?),
        None => {
            let scheduler = build_scheduler(scheduler_name, seed, quick, threads)?;
            let session =
                OnlineSession::new(grid.clone(), scheduler, &config).map_err(|e| e.to_string())?;
            let d = Daemon::spawn(session, "127.0.0.1:0", DaemonOptions::default())
                .map_err(|e| e.to_string())?;
            let addr = d.addr();
            (Some(d), addr)
        }
    };
    let mut client = Client::connect(addr).map_err(|e| e.to_string())?;

    let pace = rate.map(|r| Duration::from_secs_f64(1.0 / r));
    let t0 = Instant::now();
    let mut sent = 0usize;
    for chunk in jobs.chunks(if pace.is_some() { 1 } else { 10 }) {
        if let Some(gap) = pace {
            let due = t0 + gap * sent as u32;
            let now = Instant::now();
            if due > now {
                std::thread::sleep(due - now);
            }
        }
        match client
            .send(&Request::Submit {
                jobs: chunk.to_vec(),
            })
            .map_err(|e| e.to_string())?
        {
            Response::Accepted { .. } => sent += chunk.len(),
            other => return Err(format!("submit rejected: {other:?}")),
        }
    }
    match client.send(&Request::Drain).map_err(|e| e.to_string())? {
        Response::Drained { .. } => {}
        other => return Err(format!("drain failed: {other:?}")),
    }
    let replay_secs = t0.elapsed().as_secs_f64();

    let metrics = match client
        .send(&Request::Query {
            what: QueryWhat::Metrics,
        })
        .map_err(|e| e.to_string())?
    {
        Response::Metrics { metrics } => metrics,
        other => return Err(format!("metrics failed: {other:?}")),
    };
    let assignments = match client
        .send(&Request::Query {
            what: QueryWhat::Schedule,
        })
        .map_err(|e| e.to_string())?
    {
        Response::Schedule { assignments } => assignments,
        other => return Err(format!("query failed: {other:?}")),
    };
    if let Some(d) = daemon {
        match client.send(&Request::Shutdown).map_err(|e| e.to_string())? {
            Response::Bye => {}
            other => return Err(format!("shutdown failed: {other:?}")),
        }
        d.join();
    }

    // Validate coverage: every job exactly once, on a fitting site.
    let schedule = BatchSchedule::from_pairs(assignments.iter().map(|p| (p.job, p.site)));
    let schedule_valid = schedule.validate(jobs, grid).is_ok();

    let n_rounds = metrics.round_nanos.len().max(1) as f64;
    let micros: Vec<f64> = metrics
        .round_nanos
        .iter()
        .map(|&n| n as f64 / 1e3)
        .collect();
    let report = ReplayReport {
        scheduler: scheduler_name.to_string(),
        threads: threads.unwrap_or(0),
        jobs: sent,
        replay_secs,
        jobs_per_sec: sent as f64 / replay_secs.max(1e-9),
        rounds: metrics.rounds,
        round_micros_mean: micros.iter().sum::<f64>() / n_rounds,
        round_micros_max: micros.iter().copied().fold(0.0, f64::max),
        scheduler_seconds: metrics.scheduler_seconds,
        batch_size_mean: metrics.batch_sizes.iter().sum::<usize>() as f64
            / metrics.batch_sizes.len().max(1) as f64,
        batch_size_max: metrics.batch_sizes.iter().copied().max().unwrap_or(0),
        makespan: metrics.max_completion.seconds(),
        schedule_valid,
    };
    Ok((report, assignments, metrics))
}

fn print_report(r: &ReplayReport) {
    println!(
        "{:<10} threads={:<2} jobs={:<6} wall={:>7.3}s  {:>9.1} jobs/s  rounds={:<4} \
         round µs mean={:>9.1} max={:>9.1}  batch mean={:>5.1} max={:<4} valid={}",
        r.scheduler,
        r.threads,
        r.jobs,
        r.replay_secs,
        r.jobs_per_sec,
        r.rounds,
        r.round_micros_mean,
        r.round_micros_max,
        r.batch_size_mean,
        r.batch_size_max,
        r.schedule_valid,
    );
}

fn run_replay(opts: &Options) -> i32 {
    let n = if opts.quick {
        opts.jobs.min(120)
    } else {
        opts.jobs
    };
    let (jobs, grid) = match build_workload(&opts.workload, n, opts.seed) {
        Ok(x) => x,
        Err(e) => {
            eprintln!("error: {e}");
            return 1;
        }
    };
    let (policy, interval) = match parse_policy(&opts.policy, 1_000.0) {
        Ok(x) => x,
        Err(e) => {
            eprintln!("error: {e}");
            return 1;
        }
    };
    match &opts.host {
        Some(h) => println!(
            "loadgen: {} jobs ({}) against {h} (the daemon's scheduler/policy apply)",
            jobs.len(),
            opts.workload,
        ),
        None => println!(
            "loadgen: {} jobs ({}) on {} sites, policy {}, scheduler {}",
            jobs.len(),
            opts.workload,
            grid.len(),
            opts.policy,
            opts.scheduler
        ),
    }
    let scheduler_label = if opts.host.is_some() {
        "remote"
    } else {
        opts.scheduler.as_str()
    };
    match replay(
        &jobs,
        &grid,
        scheduler_label,
        opts.threads,
        policy,
        interval,
        opts.seed,
        opts.quick,
        opts.rate,
        opts.host.as_deref(),
    ) {
        Ok((report, _, _)) => {
            print_report(&report);
            if !report.schedule_valid {
                eprintln!("error: served schedule failed validation");
                return 1;
            }
            if let Some(path) = &opts.json {
                let json = serde_json::to_string_pretty(&report).expect("report serialises");
                std::fs::write(path, json).expect("write report");
                println!("[wrote {path}]");
            }
            0
        }
        Err(e) => {
            eprintln!("error: {e}");
            1
        }
    }
}

/// The whole `BENCH_PR4.json` document.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct SuiteReport {
    schema: String,
    command: String,
    host_available_parallelism: usize,
    workload: String,
    jobs: usize,
    policy: String,
    seed: u64,
    note: String,
    configs: Vec<ReplayReport>,
}

fn run_bench_suite(opts: &Options) -> i32 {
    let n = if opts.quick { 120 } else { opts.jobs };
    let (jobs, grid) = match build_workload(&opts.workload, n, opts.seed) {
        Ok(x) => x,
        Err(e) => {
            eprintln!("error: {e}");
            return 1;
        }
    };
    let (policy, interval) = match parse_policy(&opts.policy, 1_000.0) {
        Ok(x) => x,
        Err(e) => {
            eprintln!("error: {e}");
            return 1;
        }
    };
    let host = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    println!(
        "loadgen bench suite: {} jobs ({}) on {} sites, policy {}, schedulers \
         [minmin, stga] × threads {:?} (host parallelism {host})",
        jobs.len(),
        opts.workload,
        grid.len(),
        opts.policy,
        SUITE_THREADS,
    );
    let mut configs = Vec::new();
    for scheduler in ["minmin", "stga"] {
        for threads in SUITE_THREADS {
            match replay(
                &jobs,
                &grid,
                scheduler,
                Some(threads),
                policy,
                interval,
                opts.seed,
                opts.quick,
                None,
                None,
            ) {
                Ok((report, _, _)) => {
                    print_report(&report);
                    if !report.schedule_valid {
                        eprintln!("error: {scheduler} @ {threads} produced an invalid schedule");
                        return 1;
                    }
                    configs.push(report);
                }
                Err(e) => {
                    eprintln!("error: {scheduler} @ {threads}: {e}");
                    return 1;
                }
            }
        }
    }
    let report = SuiteReport {
        schema: "gridsec-loadgen/v1".to_string(),
        command: format!(
            "loadgen --bench-suite --workload {} --jobs {} --policy {} --seed {}{}",
            opts.workload,
            n,
            opts.policy,
            opts.seed,
            if opts.quick { " --quick" } else { "" }
        ),
        host_available_parallelism: host,
        workload: opts.workload.clone(),
        jobs: n,
        policy: opts.policy.clone(),
        seed: opts.seed,
        note: "Replay over loopback TCP against an in-process gridsec-serve daemon \
               (virtual clock, as-fast-as-possible submission). jobs_per_sec is sustained \
               end-to-end throughput (wire + batching + scheduling); round µs is \
               scheduler wall-clock per round. Thread counts pin a dedicated rayon pool \
               around the scheduler; on a single-core host the 4-thread rows measure \
               pool overhead, not speedup."
            .to_string(),
        configs,
    };
    let path = opts.json.clone().unwrap_or_else(|| "BENCH_PR4.json".into());
    let json = serde_json::to_string_pretty(&report).expect("report serialises");
    std::fs::write(&path, json).expect("write suite report");
    println!("[wrote {path}]");
    0
}

/// The CI end-to-end smoke: a 50-job SWF slice through the full wire
/// path, cross-checked bit for bit against the in-process engine.
fn run_smoke(opts: &Options) -> i32 {
    // Generate a PSA slice, round-trip it through the SWF text format
    // (write → parse → convert), and serve it on a fully trusted grid so
    // the engine comparison is failure-free.
    let w = match PsaConfig::default()
        .with_n_jobs(50)
        .with_seed(opts.seed)
        .generate()
    {
        Ok(w) => w,
        Err(e) => {
            eprintln!("error: {e}");
            return 1;
        }
    };
    let swf_text = swf::write(&w.jobs);
    let records = match swf::parse(&swf_text) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: SWF re-parse failed: {e}");
            return 1;
        }
    };
    let mut jobs = match swf::to_jobs(&records, &swf::ConvertOptions::default()) {
        Ok(j) => j,
        Err(e) => {
            eprintln!("error: SWF conversion failed: {e}");
            return 1;
        }
    };
    jobs.sort_by(|a, b| a.arrival.cmp(&b.arrival).then(a.id.cmp(&b.id)));
    let sites: Vec<Site> = w
        .grid
        .sites()
        .map(|s| {
            let mut s = s.clone();
            s.security_level = 1.0;
            s
        })
        .collect();
    let grid = Grid::new(sites).expect("grid stays valid");
    let (policy, interval) = (BatchPolicy::Hybrid(8), Time::new(1_000.0));

    // Reference: the in-process engine on identical inputs.
    let config = SimConfig::default()
        .with_interval(interval)
        .with_batch_policy(policy)
        .with_seed(opts.seed)
        .with_timeline();
    let mut reference = MinMin::new(RiskMode::Risky);
    let engine = match simulate(&jobs, &grid, &mut reference, &config) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: engine reference run failed: {e}");
            return 1;
        }
    };
    let spans = engine.timeline.as_ref().expect("timeline recorded");

    // The served run, over real TCP on an ephemeral port.
    let (report, assignments, metrics) = match replay(
        &jobs, &grid, "minmin", None, policy, interval, opts.seed, false, None, None,
    ) {
        Ok(x) => x,
        Err(e) => {
            eprintln!("error: {e}");
            return 1;
        }
    };
    print_report(&report);
    if !report.schedule_valid {
        eprintln!("error: served schedule failed validation");
        return 1;
    }
    if assignments.len() != spans.len() {
        eprintln!(
            "error: daemon committed {} assignments, engine dispatched {}",
            assignments.len(),
            spans.len()
        );
        return 1;
    }
    for (i, (p, s)) in assignments.iter().zip(spans.spans().iter()).enumerate() {
        if p.job != s.job || p.site != s.site || p.start != s.start || p.end != s.end {
            eprintln!("error: dispatch {i} diverged: daemon {p:?} vs engine {s:?}");
            return 1;
        }
    }
    // The metrics frame must round-trip through the wire encoding
    // losslessly (it already crossed TCP once to get here).
    let frame = gridsec_serve::protocol::encode(&Response::Metrics {
        metrics: metrics.clone(),
    });
    match serde_json::from_str::<Response>(frame.trim()) {
        Ok(Response::Metrics { metrics: back }) if back == metrics => {}
        other => {
            eprintln!("error: metrics did not round-trip through JSON: {other:?}");
            return 1;
        }
    }
    println!(
        "smoke OK: {} jobs, {} rounds, schedule bit-identical to the engine, metrics round-trip",
        report.jobs, report.rounds
    );
    0
}
