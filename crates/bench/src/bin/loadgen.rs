//! `loadgen` — load generator and end-to-end harness for the
//! `gridsec-serve` daemon.
//!
//! Three modes:
//!
//! * **Replay** (default): spawn a daemon in-process on an ephemeral port
//!   (or target `--host <addr>`), replay a PSA/NAS/SWF workload through
//!   the NDJSON wire protocol at `--rate <jobs/sec>` (default: as fast as
//!   the daemon accepts), then report sustained jobs/sec, round-latency
//!   and batch-size distributions, and validate the returned schedule.
//! * **`--bench-suite`**: the serving benchmark — {Min-Min, STGA-kernel}
//!   × {1, 4} scheduler threads over the same replay (the `stga-kernel`
//!   row measures the PR 6 compiled-fitness path end to end: jobs/sec and
//!   mean round µs), written to `BENCH_PR4.json` (`--json` overrides the
//!   path; the PR 6 artifact embeds it in `BENCH_PR6.json`).
//! * **`--smoke`**: the CI end-to-end check — a 50-job SWF slice
//!   (generated, written as SWF, parsed back) replayed against a daemon
//!   on an ephemeral port; asserts the schedule validates, the metrics
//!   frame round-trips through JSON, and the committed schedule is
//!   bit-identical to the in-process engine for the same seed, workload
//!   and batch policy.
//!
//! * **`--shard-suite`**: the PR 5 benchmark — {Min-Min, STGA} ×
//!   {1, 2, 4} grid shards over the same replay (multi-tenant: each job
//!   is routed to a shard it is eligible on), written to
//!   `BENCH_PR5.json`.
//!
//! * **`--reshard-suite`**: the PR 8 benchmark — {Min-Min, STGA} ×
//!   {1→2, 2→1, 2→4} live reshards halfway through the replay (drain
//!   barrier, state transfer, session respawn, atomic plan swap),
//!   reporting barrier cost and migration volume, written to
//!   `BENCH_PR8.json`. `--reshard-smoke` is the CI slice: a 2-shard
//!   daemon split to 4 under load, schedules validated on the final
//!   topology.
//!
//! ```console
//! loadgen --workload psa --jobs 400 --scheduler stga --policy hybrid:16 --threads 4
//! loadgen --shards 4 --scheduler minmin
//! loadgen --wall-clock --rate 200 --max-pending 32
//! loadgen --bench-suite --json BENCH_PR4.json
//! loadgen --shard-suite --json BENCH_PR5.json
//! loadgen --smoke
//! loadgen --host 127.0.0.1:7070 --workload swf:trace.swf --rate 50
//! ```

use gridsec_core::{BatchSchedule, Grid, Job, RiskMode, Site, Time};
use gridsec_heuristics::{MinMin, Sufferage};
use gridsec_serve::{
    Client, ClockMode, Daemon, DaemonOptions, OnlineSession, Placed, QueryWhat, Request, Response,
    ServeMetrics, SessionFactory, ShardSpec,
};
use gridsec_sim::scheduler::EarliestCompletion;
use gridsec_sim::{
    simulate, BatchJob, BatchPolicy, BatchScheduler, GridView, InjectionKind, InjectionStream,
    Scenario, ScenarioRunner, ShardPlan, SimConfig,
};
use gridsec_stga::{GaParams, Stga, StgaParams};
use gridsec_workloads::{swf, NasConfig, PsaConfig};
use serde::{Deserialize, Serialize};
use std::time::{Duration, Instant};

/// Scheduler thread counts measured by `--bench-suite`.
const SUITE_THREADS: [usize; 2] = [1, 4];

/// Shard counts measured by `--shard-suite`.
const SUITE_SHARDS: [usize; 3] = [1, 2, 4];

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match Options::parse(&args) {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("error: {msg}");
            usage();
            std::process::exit(2);
        }
    };
    let code = if opts.serve_connections_daemon {
        run_connections_daemon()
    } else if opts.connections.is_some() || opts.connections_suite {
        run_connections(&opts)
    } else if opts.smoke {
        run_smoke(&opts)
    } else if opts.reshard_smoke {
        run_reshard_smoke(&opts)
    } else if opts.bench_suite {
        run_bench_suite(&opts)
    } else if opts.shard_suite {
        run_shard_suite(&opts)
    } else if opts.reshard_suite {
        run_reshard_suite(&opts)
    } else if opts.scenario.is_some() {
        run_scenario(&opts)
    } else {
        run_replay(&opts)
    };
    std::process::exit(code);
}

fn usage() {
    eprintln!(
        "usage: loadgen [--workload psa|nas|swf:<path>] [--jobs <n>] [--seed <u64>]\n\
         \x20              [--scheduler mct|minmin|sufferage|stga] [--policy periodic:<secs>|count:<k>|hybrid:<k>]\n\
         \x20              [--rate <jobs-per-sec>] [--threads <n>] [--host <addr>]\n\
         \x20              [--shards <n>] [--wall-clock] [--max-pending <n>]\n\
         \x20              [--scenario <spec.json>] [--scrape-metrics]\n\
         \x20              [--connections <n>] [--connections-suite]\n\
         \x20              [--bench-suite] [--shard-suite] [--reshard-suite]\n\
         \x20              [--smoke] [--reshard-smoke] [--json <path>] [--quick]\n\
         \n\
         --scenario replays a chaos scenario spec (`gridsec example-scenario`)\n\
         through the daemon: virtual clock cross-checks the committed timeline\n\
         bit for bit against the in-process engine; --wall-clock is the soak\n\
         mode, asserting the zero-lost-jobs ledger under real-time churn.\n\
         --scrape-metrics additionally binds an ephemeral metrics listener and\n\
         scrapes the Prometheus-style exposition page mid-soak, asserting the\n\
         required metric families are present and parseable.\n\
         With --bench-suite, --scenario adds churn-vs-quiet rows to the report."
    );
}

/// Command-line options.
#[derive(Clone)]
struct Options {
    workload: String,
    jobs: usize,
    seed: u64,
    scheduler: String,
    policy: String,
    rate: Option<f64>,
    threads: Option<usize>,
    host: Option<String>,
    shards: usize,
    wall_clock: bool,
    max_pending: Option<usize>,
    bench_suite: bool,
    shard_suite: bool,
    reshard_suite: bool,
    smoke: bool,
    reshard_smoke: bool,
    json: Option<String>,
    quick: bool,
    scenario: Option<String>,
    /// C10k mode: drive this many concurrent connections (an epoll
    /// client engine mirroring the daemon's own event loop) against an
    /// in-process daemon and report jobs/s + per-request RTT p99.
    connections: Option<usize>,
    /// The PR 10 benchmark: `--connections` rows at 1, 100 and 10000,
    /// written to `BENCH_PR10.json`.
    connections_suite: bool,
    /// Hidden child mode: serve the `--connections` benchmark daemon in
    /// this process (spawned by the parent so 10k connections' two fd
    /// ends split across two `RLIMIT_NOFILE` budgets).
    serve_connections_daemon: bool,
    /// Scrape the daemon's Prometheus-style exposition page mid-soak and
    /// assert the required metric families are present and parseable
    /// (scenario mode only).
    scrape_metrics: bool,
    /// `--policy` was given explicitly (scenario mode then overrides the
    /// spec's batching with it — e.g. a fast count trigger for bounded
    /// wall-clock soaks).
    policy_explicit: bool,
}

impl Options {
    fn parse(args: &[String]) -> Result<Options, String> {
        let mut o = Options {
            workload: "psa".into(),
            jobs: 400,
            seed: 2005,
            scheduler: "minmin".into(),
            policy: "hybrid:16".into(),
            rate: None,
            threads: None,
            host: None,
            shards: 1,
            wall_clock: false,
            max_pending: None,
            bench_suite: false,
            shard_suite: false,
            reshard_suite: false,
            smoke: false,
            reshard_smoke: false,
            json: None,
            quick: false,
            scenario: None,
            connections: None,
            connections_suite: false,
            serve_connections_daemon: false,
            scrape_metrics: false,
            policy_explicit: false,
        };
        let mut it = args.iter();
        while let Some(a) = it.next() {
            let mut value = |name: &str| {
                it.next()
                    .cloned()
                    .ok_or_else(|| format!("{name} needs a value"))
            };
            match a.as_str() {
                "--workload" => o.workload = value("--workload")?,
                "--jobs" => {
                    o.jobs = value("--jobs")?
                        .parse()
                        .map_err(|_| "--jobs must be an integer".to_string())?
                }
                "--seed" => {
                    o.seed = value("--seed")?
                        .parse()
                        .map_err(|_| "--seed must be a u64".to_string())?
                }
                "--scheduler" => o.scheduler = value("--scheduler")?,
                "--policy" => {
                    o.policy = value("--policy")?;
                    o.policy_explicit = true;
                }
                "--rate" => {
                    let r: f64 = value("--rate")?
                        .parse()
                        .map_err(|_| "--rate must be a number".to_string())?;
                    if !(r.is_finite() && r > 0.0) {
                        return Err("--rate must be positive".into());
                    }
                    o.rate = Some(r);
                }
                "--threads" => {
                    let n: usize = value("--threads")?
                        .parse()
                        .map_err(|_| "--threads must be a positive integer".to_string())?;
                    if n == 0 {
                        return Err("--threads must be a positive integer".into());
                    }
                    o.threads = Some(n);
                }
                "--host" => o.host = Some(value("--host")?),
                "--shards" => {
                    let n: usize = value("--shards")?
                        .parse()
                        .map_err(|_| "--shards must be a positive integer".to_string())?;
                    if n == 0 {
                        return Err("--shards must be a positive integer".into());
                    }
                    o.shards = n;
                }
                "--wall-clock" => o.wall_clock = true,
                "--max-pending" => {
                    let n: usize = value("--max-pending")?
                        .parse()
                        .map_err(|_| "--max-pending must be a positive integer".to_string())?;
                    if n == 0 {
                        return Err("--max-pending must be a positive integer".into());
                    }
                    o.max_pending = Some(n);
                }
                "--bench-suite" => o.bench_suite = true,
                "--shard-suite" => o.shard_suite = true,
                "--reshard-suite" => o.reshard_suite = true,
                "--smoke" => o.smoke = true,
                "--reshard-smoke" => o.reshard_smoke = true,
                "--json" => o.json = Some(value("--json")?),
                "--quick" => o.quick = true,
                "--connections" => {
                    let n: usize = value("--connections")?
                        .parse()
                        .map_err(|_| "--connections must be a positive integer".to_string())?;
                    if n == 0 {
                        return Err("--connections must be a positive integer".into());
                    }
                    o.connections = Some(n);
                }
                "--connections-suite" => o.connections_suite = true,
                "--serve-connections-daemon" => o.serve_connections_daemon = true,
                "--scenario" => o.scenario = Some(value("--scenario")?),
                "--scrape-metrics" => o.scrape_metrics = true,
                "--help" | "-h" => {
                    usage();
                    std::process::exit(0);
                }
                other => return Err(format!("unknown argument `{other}`")),
            }
        }
        if o.max_pending.is_some() && !o.wall_clock && o.host.is_none() {
            return Err(
                "--max-pending needs --wall-clock: a virtual-clock replay cannot make \
                 progress on busy frames (only timer rounds drain a full queue)"
                    .into(),
            );
        }
        Ok(o)
    }
}

/// Parses `periodic:<secs>` / `count:<k>` / `hybrid:<k>` into the sim
/// policy plus the scheduling interval.
fn parse_policy(text: &str, default_interval: f64) -> Result<(BatchPolicy, Time), String> {
    let mut parts = text.split(':');
    let kind = parts.next().unwrap_or("");
    let arg = parts.next();
    match kind {
        "periodic" => {
            let secs: f64 = arg
                .unwrap_or("1000")
                .parse()
                .map_err(|_| "periodic:<secs> needs a number".to_string())?;
            Ok((BatchPolicy::Periodic, Time::new(secs)))
        }
        "count" => {
            let k: usize = arg
                .ok_or("count:<k> needs a count")?
                .parse()
                .map_err(|_| "count:<k> needs an integer".to_string())?;
            Ok((BatchPolicy::CountTriggered(k), Time::new(default_interval)))
        }
        "hybrid" => {
            let k: usize = arg
                .ok_or("hybrid:<k> needs a count")?
                .parse()
                .map_err(|_| "hybrid:<k> needs an integer".to_string())?;
            Ok((BatchPolicy::Hybrid(k), Time::new(default_interval)))
        }
        other => Err(format!("unknown policy `{other}`")),
    }
}

/// Builds the named scheduler. `threads` wraps it in a dedicated rayon
/// pool so the daemon's parallel sections use exactly that many workers.
fn build_scheduler(
    name: &str,
    seed: u64,
    quick: bool,
    threads: Option<usize>,
) -> Result<Box<dyn BatchScheduler + Send>, String> {
    let base: Box<dyn BatchScheduler + Send> = match name {
        "mct" => Box::new(EarliestCompletion),
        "minmin" => Box::new(MinMin::new(RiskMode::Risky)),
        "sufferage" => Box::new(Sufferage::new(RiskMode::Risky)),
        // `stga-kernel` is the same scheduler — since PR 6 the STGA's
        // fitness path *is* the compiled kernel — kept as an explicit
        // label so suite rows name the eval path they measured.
        "stga" | "stga-kernel" => {
            let (population, generations) = if quick { (40, 20) } else { (100, 50) };
            Box::new(
                Stga::new(StgaParams {
                    ga: GaParams::default()
                        .with_population(population)
                        .with_generations(generations)
                        .with_seed(seed),
                    ..StgaParams::default()
                })
                .map_err(|e| e.to_string())?,
            )
        }
        other => return Err(format!("unknown scheduler `{other}`")),
    };
    match threads {
        None => Ok(base),
        Some(n) => {
            let pool = rayon::ThreadPoolBuilder::new()
                .num_threads(n)
                .build()
                .map_err(|e| e.to_string())?;
            Ok(Box::new(Pooled { pool, inner: base }))
        }
    }
}

/// Runs the wrapped scheduler inside a dedicated thread pool, pinning the
/// parallelism of its rayon sections regardless of the global pool.
struct Pooled {
    pool: rayon::ThreadPool,
    inner: Box<dyn BatchScheduler + Send>,
}

impl BatchScheduler for Pooled {
    fn name(&self) -> String {
        self.inner.name()
    }

    fn schedule(&mut self, batch: &[BatchJob], view: &GridView<'_>) -> BatchSchedule {
        let Pooled { pool, inner } = self;
        pool.install(|| inner.schedule(batch, view))
    }
}

/// Materialises the workload: jobs (sorted by arrival) + grid.
fn build_workload(spec: &str, n: usize, seed: u64) -> Result<(Vec<Job>, Grid), String> {
    let (mut jobs, grid) = if let Some(path) = spec.strip_prefix("swf:") {
        let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        let records = swf::parse(&text).map_err(|e| e.to_string())?;
        let mut jobs =
            swf::to_jobs(&records, &swf::ConvertOptions::default()).map_err(|e| e.to_string())?;
        jobs.truncate(n);
        let grid = NasConfig::default().grid().map_err(|e| e.to_string())?;
        (jobs, grid)
    } else {
        match spec {
            "psa" => {
                let w = PsaConfig::default()
                    .with_n_jobs(n)
                    .with_seed(seed)
                    .generate()
                    .map_err(|e| e.to_string())?;
                (w.jobs, w.grid)
            }
            "nas" => {
                let w = NasConfig::default()
                    .with_n_jobs(n)
                    .with_seed(seed)
                    .generate()
                    .map_err(|e| e.to_string())?;
                (w.jobs, w.grid)
            }
            other => return Err(format!("unknown workload `{other}`")),
        }
    };
    // The daemon's virtual clock needs non-decreasing arrivals; ties keep
    // id order so the replay is deterministic.
    jobs.sort_by(|a, b| a.arrival.cmp(&b.arrival).then(a.id.cmp(&b.id)));
    Ok((jobs, grid))
}

/// One replay's measurements.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct ReplayReport {
    scheduler: String,
    threads: usize,
    /// Site-disjoint grid shards the daemon served (1 = unsharded).
    shards: usize,
    /// Busy frames the submitter retried (bounded-queue backpressure).
    busy_retries: usize,
    jobs: usize,
    /// Wall-clock seconds from first submit to drained.
    replay_secs: f64,
    /// Jobs per wall-clock second sustained over the replay.
    jobs_per_sec: f64,
    rounds: usize,
    /// Mean wall-clock microseconds per scheduling round.
    round_micros_mean: f64,
    /// 99th-percentile round, microseconds (nearest-rank over the replay).
    #[serde(default)]
    round_micros_p99: f64,
    /// Largest single round, microseconds.
    round_micros_max: f64,
    /// Daemon-side median round, microseconds: the daemon's own log2
    /// histogram (`round_nanos_hist`), which survives the bounded recent
    /// window — serving-side truth next to the client-side percentiles.
    #[serde(default)]
    daemon_round_micros_p50: f64,
    /// Daemon-side 99th-percentile round, microseconds (same histogram;
    /// the estimate is the bucket upper bound, within 2× of true).
    #[serde(default)]
    daemon_round_micros_p99: f64,
    /// Seconds spent inside the scheduler over the whole replay.
    scheduler_seconds: f64,
    batch_size_mean: f64,
    batch_size_max: usize,
    /// Virtual makespan of the served schedule.
    makespan: f64,
    /// The served schedule covered every job exactly once on a fitting
    /// site.
    schedule_valid: bool,
}

/// How a replay runs: the scheduler/daemon configuration around the job
/// stream.
struct ReplayConfig<'a> {
    scheduler: &'a str,
    threads: Option<usize>,
    policy: BatchPolicy,
    interval: Time,
    seed: u64,
    quick: bool,
    rate: Option<f64>,
    host: Option<&'a str>,
    shards: usize,
    wall_clock: bool,
    max_pending: Option<usize>,
}

/// Per-shard views queried after a replay (shard order).
struct ShardViews {
    schedules: Vec<Vec<Placed>>,
    metrics: Vec<ServeMetrics>,
}

/// Deterministically assigns a job to one of the shards it is eligible
/// on (round-robin by job id over the candidates) — the multi-tenant
/// replay's tenancy function.
fn assign_shard(plan: &ShardPlan, grid: &Grid, job: &Job) -> Result<usize, String> {
    let eligible = plan.eligible_shards(grid, job);
    if eligible.is_empty() {
        return Err(format!("job {} fits no site on any shard", job.id));
    }
    Ok(eligible[job.id.0 as usize % eligible.len()])
}

/// Replays `jobs` through a daemon (spawned in-process unless `host`
/// targets an external one) and measures throughput. With `shards > 1`
/// the daemon is sharded and every job is routed explicitly to a shard
/// it is eligible on; with a bounded queue the submitter retries typed
/// `busy` frames until the daemon's timer rounds make room.
fn replay(
    jobs: &[Job],
    grid: &Grid,
    cfg: &ReplayConfig<'_>,
) -> Result<(ReplayReport, Vec<Placed>, ServeMetrics, ShardViews), String> {
    let config = SimConfig::default()
        .with_interval(cfg.interval)
        .with_batch_policy(cfg.policy)
        .with_seed(cfg.seed);
    let options = DaemonOptions {
        clock: if cfg.wall_clock {
            ClockMode::WallClock
        } else {
            ClockMode::Virtual
        },
        max_pending: cfg.max_pending,
        ..DaemonOptions::default()
    };
    let plan = ShardPlan::contiguous(grid, cfg.shards).map_err(|e| e.to_string())?;
    let (daemon, addr) = match cfg.host {
        Some(h) => (None, h.parse().map_err(|_| format!("bad --host `{h}`"))?),
        None => {
            let shard_specs: Result<Vec<ShardSpec>, String> = (0..cfg.shards)
                .map(|k| {
                    let sub = plan.subgrid(grid, k).map_err(|e| e.to_string())?;
                    // Per-shard seeds decorrelate the GA streams without
                    // breaking determinism.
                    let scheduler = build_scheduler(
                        cfg.scheduler,
                        cfg.seed + k as u64,
                        cfg.quick,
                        cfg.threads,
                    )?;
                    let session =
                        OnlineSession::new(sub, scheduler, &config).map_err(|e| e.to_string())?;
                    Ok(ShardSpec::new(session))
                })
                .collect();
            let d = Daemon::spawn_sharded(
                grid.clone(),
                plan.clone(),
                shard_specs?,
                "127.0.0.1:0",
                options,
            )
            .map_err(|e| e.to_string())?;
            let addr = d.addr();
            (Some(d), addr)
        }
    };
    let mut client = Client::connect(addr).map_err(|e| e.to_string())?;

    // Tag each job with its target shard (None = the daemon derives it;
    // always the case for a 1-shard replay, so the PR 4 path is measured
    // unchanged).
    let tagged: Vec<(Option<usize>, &Job)> = if cfg.shards > 1 {
        jobs.iter()
            .map(|j| Ok((Some(assign_shard(&plan, grid, j)?), j)))
            .collect::<Result<_, String>>()?
    } else {
        jobs.iter().map(|j| (None, j)).collect()
    };

    let pace = cfg.rate.map(|r| Duration::from_secs_f64(1.0 / r));
    let chunk_limit = if pace.is_some() { 1 } else { 10 };
    let t0 = Instant::now();
    let mut sent = 0usize;
    let mut busy_retries = 0usize;
    let mut i = 0usize;
    while i < tagged.len() {
        // A chunk is a run of consecutive jobs bound for the same shard.
        let shard = tagged[i].0;
        let mut end = i + 1;
        while end < tagged.len() && end - i < chunk_limit && tagged[end].0 == shard {
            end += 1;
        }
        if let Some(gap) = pace {
            let due = t0 + gap * sent as u32;
            let now = Instant::now();
            if due > now {
                std::thread::sleep(due - now);
            }
        }
        let mut pending: Vec<Job> = tagged[i..end].iter().map(|(_, j)| (*j).clone()).collect();
        loop {
            match client
                .send(&Request::Submit {
                    jobs: pending.clone(),
                    shard,
                    tenant: None,
                })
                .map_err(|e| e.to_string())?
            {
                Response::Accepted { jobs: n, .. } => {
                    sent += n;
                    break;
                }
                Response::Busy { jobs: accepted, .. } => {
                    // The accepted prefix is in; retry the rest after the
                    // daemon's timer rounds free the queue.
                    sent += accepted;
                    pending.drain(..accepted);
                    busy_retries += 1;
                    std::thread::sleep(Duration::from_millis(2));
                }
                other => return Err(format!("submit rejected: {other:?}")),
            }
        }
        i = end;
    }
    match client.send(&Request::Drain).map_err(|e| e.to_string())? {
        Response::Drained { .. } => {}
        other => return Err(format!("drain failed: {other:?}")),
    }
    let replay_secs = t0.elapsed().as_secs_f64();

    let metrics = match client
        .send(&Request::Query {
            what: QueryWhat::Metrics,
            shard: None,
        })
        .map_err(|e| e.to_string())?
    {
        Response::Metrics { metrics } => metrics,
        other => return Err(format!("metrics failed: {other:?}")),
    };
    let assignments = match client
        .send(&Request::Query {
            what: QueryWhat::Schedule,
            shard: None,
        })
        .map_err(|e| e.to_string())?
    {
        Response::Schedule { assignments } => assignments,
        other => return Err(format!("query failed: {other:?}")),
    };
    // Per-shard views (the daemon tells us how many shards it serves, so
    // this works against --host daemons too).
    let n_shards = match client
        .send(&Request::Query {
            what: QueryWhat::Shards,
            shard: None,
        })
        .map_err(|e| e.to_string())?
    {
        Response::Shards { shards } => shards.len(),
        other => return Err(format!("shards query failed: {other:?}")),
    };
    let mut views = ShardViews {
        schedules: Vec::with_capacity(n_shards),
        metrics: Vec::with_capacity(n_shards),
    };
    for k in 0..n_shards {
        match client
            .send(&Request::Query {
                what: QueryWhat::Schedule,
                shard: Some(k),
            })
            .map_err(|e| e.to_string())?
        {
            Response::Schedule { assignments } => views.schedules.push(assignments),
            other => return Err(format!("shard {k} schedule failed: {other:?}")),
        }
        match client
            .send(&Request::Query {
                what: QueryWhat::Metrics,
                shard: Some(k),
            })
            .map_err(|e| e.to_string())?
        {
            Response::Metrics { metrics } => views.metrics.push(metrics),
            other => return Err(format!("shard {k} metrics failed: {other:?}")),
        }
    }
    if let Some(d) = daemon {
        match client.send(&Request::Shutdown).map_err(|e| e.to_string())? {
            Response::Bye => {}
            other => return Err(format!("shutdown failed: {other:?}")),
        }
        d.join();
    }

    // Validate coverage: every job exactly once, on a fitting site.
    let schedule = BatchSchedule::from_pairs(assignments.iter().map(|p| (p.job, p.site)));
    let schedule_valid = schedule.validate(jobs, grid).is_ok();

    let n_rounds = metrics.round_nanos.len().max(1) as f64;
    let micros: Vec<f64> = metrics
        .round_nanos
        .iter()
        .map(|&n| n as f64 / 1e3)
        .collect();
    let report = ReplayReport {
        scheduler: cfg.scheduler.to_string(),
        threads: cfg.threads.unwrap_or(0),
        shards: n_shards,
        busy_retries,
        jobs: sent,
        replay_secs,
        jobs_per_sec: sent as f64 / replay_secs.max(1e-9),
        rounds: metrics.rounds,
        round_micros_mean: micros.iter().sum::<f64>() / n_rounds,
        round_micros_p99: percentile(&micros, 0.99),
        round_micros_max: micros.iter().copied().fold(0.0, f64::max),
        daemon_round_micros_p50: metrics.round_nanos_hist.p50() as f64 / 1e3,
        daemon_round_micros_p99: metrics.round_nanos_hist.p99() as f64 / 1e3,
        scheduler_seconds: metrics.scheduler_seconds,
        batch_size_mean: metrics.batch_sizes.iter().sum::<usize>() as f64
            / metrics.batch_sizes.len().max(1) as f64,
        batch_size_max: metrics.batch_sizes.iter().copied().max().unwrap_or(0),
        makespan: metrics.max_completion.seconds(),
        schedule_valid,
    };
    Ok((report, assignments, metrics, views))
}

/// Nearest-rank percentile (`q` in [0, 1]) of an unsorted sample.
fn percentile(sample: &[f64], q: f64) -> f64 {
    if sample.is_empty() {
        return 0.0;
    }
    let mut sorted = sample.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

fn print_report(r: &ReplayReport) {
    println!(
        "{:<10} threads={:<2} shards={:<2} jobs={:<6} wall={:>7.3}s  {:>9.1} jobs/s  rounds={:<4} \
         round µs mean={:>9.1} p99={:>9.1} max={:>9.1}  daemon µs p50={:>9.1} p99={:>9.1}  \
         batch mean={:>5.1} max={:<4} valid={}",
        r.scheduler,
        r.threads,
        r.shards,
        r.jobs,
        r.replay_secs,
        r.jobs_per_sec,
        r.rounds,
        r.round_micros_mean,
        r.round_micros_p99,
        r.round_micros_max,
        r.daemon_round_micros_p50,
        r.daemon_round_micros_p99,
        r.batch_size_mean,
        r.batch_size_max,
        r.schedule_valid,
    );
}

fn run_replay(opts: &Options) -> i32 {
    let n = if opts.quick {
        opts.jobs.min(120)
    } else {
        opts.jobs
    };
    let (jobs, grid) = match build_workload(&opts.workload, n, opts.seed) {
        Ok(x) => x,
        Err(e) => {
            eprintln!("error: {e}");
            return 1;
        }
    };
    let (policy, interval) = match parse_policy(&opts.policy, 1_000.0) {
        Ok(x) => x,
        Err(e) => {
            eprintln!("error: {e}");
            return 1;
        }
    };
    match &opts.host {
        Some(h) => println!(
            "loadgen: {} jobs ({}) against {h} (the daemon's scheduler/policy apply)",
            jobs.len(),
            opts.workload,
        ),
        None => println!(
            "loadgen: {} jobs ({}) on {} sites, policy {}, scheduler {}",
            jobs.len(),
            opts.workload,
            grid.len(),
            opts.policy,
            opts.scheduler
        ),
    }
    let scheduler_label = if opts.host.is_some() {
        "remote"
    } else {
        opts.scheduler.as_str()
    };
    match replay(
        &jobs,
        &grid,
        &ReplayConfig {
            scheduler: scheduler_label,
            threads: opts.threads,
            policy,
            interval,
            seed: opts.seed,
            quick: opts.quick,
            rate: opts.rate,
            host: opts.host.as_deref(),
            shards: opts.shards,
            wall_clock: opts.wall_clock,
            max_pending: opts.max_pending,
        },
    ) {
        Ok((report, _, _, _)) => {
            print_report(&report);
            if !report.schedule_valid {
                eprintln!("error: served schedule failed validation");
                return 1;
            }
            if report.busy_retries > 0 {
                println!("backpressure: {} busy retries", report.busy_retries);
            }
            if let Some(path) = &opts.json {
                let json = serde_json::to_string_pretty(&report).expect("report serialises");
                std::fs::write(path, json).expect("write report");
                println!("[wrote {path}]");
            }
            0
        }
        Err(e) => {
            eprintln!("error: {e}");
            1
        }
    }
}

/// The subset of a `gridsec` scenario spec loadgen needs: the grid, the
/// batching config, and the scenario program. The spec's `scheduler`
/// field is ignored — loadgen's own `--scheduler` flag picks the
/// scheduler, so one spec file drives every suite row.
#[derive(Debug, Clone, Deserialize)]
struct ScenarioFile {
    grid: ScenarioGrid,
    #[serde(default)]
    sim: SimConfig,
    scenario: Scenario,
}

/// Grid selection inside a scenario spec (mirrors the CLI's grammar).
#[derive(Debug, Clone, Deserialize)]
#[serde(tag = "kind", rename_all = "snake_case")]
enum ScenarioGrid {
    Sites {
        sites: Vec<Site>,
    },
    Psa {
        #[serde(default)]
        config: PsaConfig,
    },
    Nas {
        #[serde(default)]
        config: NasConfig,
    },
}

fn load_scenario(path: &str) -> Result<(Grid, SimConfig, Scenario), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let file: ScenarioFile =
        serde_json::from_str(&text).map_err(|e| format!("invalid scenario spec {path}: {e}"))?;
    let grid = match file.grid {
        ScenarioGrid::Sites { sites } => Grid::new(sites).map_err(|e| e.to_string())?,
        ScenarioGrid::Psa { config } => config.generate().map_err(|e| e.to_string())?.grid,
        ScenarioGrid::Nas { config } => config.grid().map_err(|e| e.to_string())?,
    };
    Ok((grid, file.sim, file.scenario))
}

/// What a scenario replay produced alongside the throughput report.
struct ScenarioViews {
    per_shard: Vec<Vec<Placed>>,
    metrics: ServeMetrics,
    busy_retries: usize,
}

/// Replays a compiled injection stream through a daemon frame by frame:
/// arrivals are routed to the shard the stream slicer assigns them
/// (round-robin by id over the eligible shards), site events and trust
/// re-ratings become `fail_site` / `rejoin_site` / `reconfigure` frames.
/// Virtual-clock daemons honour the injection instants; wall-clock
/// daemons stamp their own (the soak mode). Typed `busy` frames are
/// retried until the queue drains.
fn replay_scenario(
    stream: &InjectionStream,
    grid: &Grid,
    plan: &ShardPlan,
    config: &SimConfig,
    scheduler: &str,
    opts: &Options,
) -> Result<(ReplayReport, ScenarioViews), String> {
    let n_shards = plan.n_shards();
    let options = DaemonOptions {
        clock: if opts.wall_clock {
            ClockMode::WallClock
        } else {
            ClockMode::Virtual
        },
        max_pending: opts.max_pending,
        metrics_addr: opts.scrape_metrics.then(|| "127.0.0.1:0".to_string()),
        ..DaemonOptions::default()
    };
    let shard_specs: Result<Vec<ShardSpec>, String> = (0..n_shards)
        .map(|k| {
            let sub = plan.subgrid(grid, k).map_err(|e| e.to_string())?;
            let sched = build_scheduler(scheduler, opts.seed + k as u64, opts.quick, opts.threads)?;
            let session = OnlineSession::new(sub, sched, config).map_err(|e| e.to_string())?;
            Ok(ShardSpec::new(session))
        })
        .collect();
    let daemon = Daemon::spawn_sharded(
        grid.clone(),
        plan.clone(),
        shard_specs?,
        "127.0.0.1:0",
        options,
    )
    .map_err(|e| e.to_string())?;
    let mut client = Client::connect(daemon.addr()).map_err(|e| e.to_string())?;

    // Wall-clock frames carry no instants (the daemon stamps its own
    // monotonic clock); virtual frames replay the compiled timestamps.
    let instant = |at| if opts.wall_clock { None } else { Some(at) };
    let t0 = Instant::now();
    let mut sent = 0usize;
    let mut busy_retries = 0usize;
    for inj in &stream.events {
        match &inj.kind {
            InjectionKind::Arrive(job) => {
                let eligible = plan.eligible_shards(grid, job);
                if eligible.is_empty() {
                    continue; // typed-rejected by the engine as well
                }
                let shard = Some(eligible[job.id.0 as usize % eligible.len()]);
                loop {
                    match client
                        .send(&Request::Submit {
                            jobs: vec![job.clone()],
                            shard,
                            tenant: None,
                        })
                        .map_err(|e| e.to_string())?
                    {
                        Response::Accepted { jobs: n, .. } => {
                            sent += n;
                            break;
                        }
                        Response::Busy { .. } => {
                            busy_retries += 1;
                            std::thread::sleep(Duration::from_millis(2));
                        }
                        other => return Err(format!("submit rejected: {other:?}")),
                    }
                }
            }
            InjectionKind::SiteFail(site) => {
                match client
                    .send(&Request::FailSite {
                        site: site.0,
                        at: instant(inj.at),
                    })
                    .map_err(|e| e.to_string())?
                {
                    Response::SiteFailed { .. } => {}
                    other => return Err(format!("fail_site rejected: {other:?}")),
                }
            }
            InjectionKind::SiteRejoin(site) => {
                match client
                    .send(&Request::RejoinSite {
                        site: site.0,
                        at: instant(inj.at),
                    })
                    .map_err(|e| e.to_string())?
                {
                    Response::SiteRejoined { .. } => {}
                    other => return Err(format!("rejoin_site rejected: {other:?}")),
                }
            }
            InjectionKind::SetTrust(levels) => {
                match client
                    .send(&Request::Reconfigure {
                        security_levels: levels.clone(),
                        shard: None,
                        at: instant(inj.at),
                    })
                    .map_err(|e| e.to_string())?
                {
                    Response::Reconfigured { .. } => {}
                    other => return Err(format!("reconfigure rejected: {other:?}")),
                }
            }
        }
    }
    // Mid-soak scrape: the injection stream is fully fed but the daemon
    // is still live and scheduling — exactly what a Prometheus collector
    // would see.
    if opts.scrape_metrics {
        let addr = daemon
            .metrics_addr()
            .ok_or("scrape requested but the daemon bound no metrics listener")?;
        scrape_and_check(addr)?;
        println!("metrics scrape OK: all required families present and parseable");
    }
    match client.send(&Request::Drain).map_err(|e| e.to_string())? {
        Response::Drained { .. } => {}
        other => return Err(format!("drain failed: {other:?}")),
    }
    let replay_secs = t0.elapsed().as_secs_f64();
    let metrics = match client
        .send(&Request::Query {
            what: QueryWhat::Metrics,
            shard: None,
        })
        .map_err(|e| e.to_string())?
    {
        Response::Metrics { metrics } => metrics,
        other => return Err(format!("metrics failed: {other:?}")),
    };
    let mut per_shard = Vec::with_capacity(n_shards);
    for k in 0..n_shards {
        match client
            .send(&Request::Query {
                what: QueryWhat::Schedule,
                shard: Some(k),
            })
            .map_err(|e| e.to_string())?
        {
            Response::Schedule { assignments } => per_shard.push(assignments),
            other => return Err(format!("shard {k} schedule failed: {other:?}")),
        }
    }
    match client.send(&Request::Shutdown).map_err(|e| e.to_string())? {
        Response::Bye => {}
        other => return Err(format!("shutdown failed: {other:?}")),
    }
    daemon.join();

    let n_rounds = metrics.round_nanos.len().max(1) as f64;
    let micros: Vec<f64> = metrics
        .round_nanos
        .iter()
        .map(|&n| n as f64 / 1e3)
        .collect();
    let report = ReplayReport {
        scheduler: scheduler.to_string(),
        threads: opts.threads.unwrap_or(0),
        shards: n_shards,
        busy_retries,
        jobs: sent,
        replay_secs,
        jobs_per_sec: sent as f64 / replay_secs.max(1e-9),
        rounds: metrics.rounds,
        round_micros_mean: micros.iter().sum::<f64>() / n_rounds,
        round_micros_p99: percentile(&micros, 0.99),
        round_micros_max: micros.iter().copied().fold(0.0, f64::max),
        daemon_round_micros_p50: metrics.round_nanos_hist.p50() as f64 / 1e3,
        daemon_round_micros_p99: metrics.round_nanos_hist.p99() as f64 / 1e3,
        scheduler_seconds: metrics.scheduler_seconds,
        batch_size_mean: metrics.batch_sizes.iter().sum::<usize>() as f64
            / metrics.batch_sizes.len().max(1) as f64,
        batch_size_max: metrics.batch_sizes.iter().copied().max().unwrap_or(0),
        makespan: metrics.max_completion.seconds(),
        // Coverage is asserted by the caller (ledger + engine
        // cross-check); the flat job-coverage validator does not apply
        // under churn, where requeued jobs legitimately commit twice.
        schedule_valid: true,
    };
    Ok((
        report,
        ScenarioViews {
            per_shard,
            metrics,
            busy_retries,
        },
    ))
}

/// Scrapes the daemon's exposition page and asserts it parses (every
/// sample line is `name[{labels}] value` with a finite value) and that
/// the required metric families are present.
fn scrape_and_check(addr: std::net::SocketAddr) -> Result<(), String> {
    use std::io::Read as _;
    let mut stream = std::net::TcpStream::connect(addr).map_err(|e| e.to_string())?;
    let mut text = String::new();
    stream
        .read_to_string(&mut text)
        .map_err(|e| e.to_string())?;
    let mut samples = 0usize;
    for line in text.lines() {
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (_, value) = line
            .rsplit_once(' ')
            .ok_or_else(|| format!("malformed exposition line: {line:?}"))?;
        let v: f64 = value
            .parse()
            .map_err(|_| format!("non-numeric sample value in line: {line:?}"))?;
        if !v.is_finite() {
            return Err(format!("non-finite sample value in line: {line:?}"));
        }
        samples += 1;
    }
    if samples == 0 {
        return Err("exposition page carried no samples".into());
    }
    for family in [
        "gridsec_jobs_submitted_total",
        "gridsec_rounds_total",
        "gridsec_round_nanos_bucket",
        "gridsec_pending",
    ] {
        if !text.lines().any(|l| l.starts_with(family)) {
            return Err(format!("metric family `{family}` missing from exposition"));
        }
    }
    Ok(())
}

/// The zero-lost-jobs ledger over a daemon's aggregated metrics: every
/// submitted job is scheduled or still pending, and the churn counters
/// match the injection stream.
fn assert_scenario_ledger(
    metrics: &ServeMetrics,
    stream: &InjectionStream,
    submitted: usize,
) -> Result<(), String> {
    if metrics.jobs_submitted != submitted {
        return Err(format!(
            "daemon accepted {} jobs, loadgen sent {submitted}",
            metrics.jobs_submitted
        ));
    }
    if metrics.jobs_submitted != metrics.jobs_scheduled + metrics.pending {
        return Err(format!(
            "ledger does not balance: {} submitted != {} scheduled + {} pending",
            metrics.jobs_submitted, metrics.jobs_scheduled, metrics.pending
        ));
    }
    let fails = stream
        .events
        .iter()
        .filter(|e| matches!(e.kind, InjectionKind::SiteFail(_)))
        .count();
    let rejoins = stream
        .events
        .iter()
        .filter(|e| matches!(e.kind, InjectionKind::SiteRejoin(_)))
        .count();
    if metrics.sites_failed != fails || metrics.sites_rejoined != rejoins {
        return Err(format!(
            "churn counters diverge: daemon saw {}/{} fail/rejoin, stream has {fails}/{rejoins}",
            metrics.sites_failed, metrics.sites_rejoined
        ));
    }
    Ok(())
}

/// `--scenario`: replay a chaos spec through the daemon. Virtual clock
/// additionally proves the committed timeline bit-identical to the
/// in-process engine, shard by shard; wall clock is the soak mode and
/// asserts the accounting only (real-time churn is timing-dependent).
fn run_scenario(opts: &Options) -> i32 {
    let path = opts.scenario.as_deref().expect("checked by the dispatcher");
    let (grid, mut config, scenario) = match load_scenario(path) {
        Ok(x) => x,
        Err(e) => {
            eprintln!("error: {e}");
            return 1;
        }
    };
    if opts.policy_explicit {
        // An explicit --policy overrides the spec's batching — e.g.
        // `--policy count:4` keeps a wall-clock soak bounded where the
        // spec's periodic interval would mean 30 real seconds per round.
        match parse_policy(&opts.policy, config.schedule_interval.seconds()) {
            Ok((policy, interval)) => {
                config = config.with_batch_policy(policy).with_interval(interval);
            }
            Err(e) => {
                eprintln!("error: {e}");
                return 1;
            }
        }
    }
    let stream = match scenario.compile(&grid) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: {e}");
            return 1;
        }
    };
    let plan = match ShardPlan::contiguous(&grid, opts.shards) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("error: {e}");
            return 1;
        }
    };
    println!(
        "loadgen scenario: {} injections ({} arrivals) on {} sites × {} shard(s), \
         scheduler {}, {} clock",
        stream.events.len(),
        stream.n_jobs(),
        grid.len(),
        opts.shards,
        opts.scheduler,
        if opts.wall_clock { "wall" } else { "virtual" },
    );
    let (report, views) =
        match replay_scenario(&stream, &grid, &plan, &config, &opts.scheduler, opts) {
            Ok(x) => x,
            Err(e) => {
                eprintln!("error: {e}");
                return 1;
            }
        };
    print_report(&report);
    if views.busy_retries > 0 {
        println!("backpressure: {} busy retries", views.busy_retries);
    }
    if let Err(e) = assert_scenario_ledger(&views.metrics, &stream, report.jobs) {
        eprintln!("error: {e}");
        return 1;
    }
    println!(
        "ledger OK: {} submitted = {} scheduled + {} pending; churn {} fail / {} rejoin, \
         {} requeued, {} busy rejections",
        views.metrics.jobs_submitted,
        views.metrics.jobs_scheduled,
        views.metrics.pending,
        views.metrics.sites_failed,
        views.metrics.sites_rejoined,
        views.metrics.jobs_requeued,
        views.metrics.busy_rejections,
    );
    if !opts.wall_clock {
        // Engine cross-check: each shard's committed timeline must be
        // bit-identical to a scenario runner replaying that shard's
        // slice on the shard's subgrid.
        for (k, daemon_schedule) in views.per_shard.iter().enumerate() {
            let slice = stream.slice_for_shard(&plan, &grid, k);
            let sub = plan.subgrid(&grid, k).expect("plan matches grid");
            let scheduler =
                match build_scheduler(&opts.scheduler, opts.seed + k as u64, opts.quick, None) {
                    Ok(s) => s,
                    Err(e) => {
                        eprintln!("error: {e}");
                        return 1;
                    }
                };
            let outcome =
                match ScenarioRunner::new(sub, scheduler, &config).and_then(|r| r.run(&slice)) {
                    Ok(o) => o,
                    Err(e) => {
                        eprintln!("error: engine replay of shard {k}: {e}");
                        return 1;
                    }
                };
            if !outcome.fully_accounted() {
                eprintln!("error: engine ledger for shard {k} does not balance");
                return 1;
            }
            let translated: Vec<Placed> = outcome
                .timeline
                .iter()
                .map(|&c| {
                    let mut p = Placed::from(c);
                    p.site = plan.to_global(k, p.site);
                    p
                })
                .collect();
            if *daemon_schedule != translated {
                eprintln!(
                    "error: shard {k} daemon timeline diverged from the engine \
                     ({} vs {} commits)",
                    daemon_schedule.len(),
                    translated.len()
                );
                return 1;
            }
        }
        println!(
            "equivalence OK: daemon timeline bit-identical to the engine on all {} shard(s)",
            views.per_shard.len()
        );
    } else {
        println!("soak OK: no lost jobs under wall-clock churn");
    }
    if let Some(path) = &opts.json {
        let json = serde_json::to_string_pretty(&report).expect("report serialises");
        std::fs::write(path, json).expect("write report");
        println!("[wrote {path}]");
    }
    0
}

/// The whole `BENCH_PR4.json` document.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct SuiteReport {
    schema: String,
    command: String,
    host_available_parallelism: usize,
    workload: String,
    jobs: usize,
    policy: String,
    seed: u64,
    note: String,
    configs: Vec<ReplayReport>,
}

fn run_bench_suite(opts: &Options) -> i32 {
    let n = if opts.quick { 120 } else { opts.jobs };
    let (jobs, grid) = match build_workload(&opts.workload, n, opts.seed) {
        Ok(x) => x,
        Err(e) => {
            eprintln!("error: {e}");
            return 1;
        }
    };
    let (policy, interval) = match parse_policy(&opts.policy, 1_000.0) {
        Ok(x) => x,
        Err(e) => {
            eprintln!("error: {e}");
            return 1;
        }
    };
    let host = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    println!(
        "loadgen bench suite: {} jobs ({}) on {} sites, policy {}, schedulers \
         [minmin, stga-kernel] × threads {:?} (host parallelism {host})",
        jobs.len(),
        opts.workload,
        grid.len(),
        opts.policy,
        SUITE_THREADS,
    );
    let mut configs = Vec::new();
    for scheduler in ["minmin", "stga-kernel"] {
        for threads in SUITE_THREADS {
            match replay(
                &jobs,
                &grid,
                &ReplayConfig {
                    scheduler,
                    threads: Some(threads),
                    policy,
                    interval,
                    seed: opts.seed,
                    quick: opts.quick,
                    rate: None,
                    host: None,
                    shards: 1,
                    wall_clock: false,
                    max_pending: None,
                },
            ) {
                Ok((report, _, _, _)) => {
                    print_report(&report);
                    if !report.schedule_valid {
                        eprintln!("error: {scheduler} @ {threads} produced an invalid schedule");
                        return 1;
                    }
                    configs.push(report);
                }
                Err(e) => {
                    eprintln!("error: {scheduler} @ {threads}: {e}");
                    return 1;
                }
            }
        }
    }
    // Scenario rows: the same daemon under the spec's churn program and
    // under a quieted copy (faults and trust storms stripped), so the
    // report quantifies what churn costs in jobs/s and p99 round latency.
    if let Some(path) = &opts.scenario {
        let (grid, config, scenario) = match load_scenario(path) {
            Ok(x) => x,
            Err(e) => {
                eprintln!("error: {e}");
                return 1;
            }
        };
        let quiet = Scenario {
            faults: Vec::new(),
            trust: Vec::new(),
            ..scenario.clone()
        };
        let plan = match ShardPlan::contiguous(&grid, 1) {
            Ok(p) => p,
            Err(e) => {
                eprintln!("error: {e}");
                return 1;
            }
        };
        let row_opts = Options {
            shards: 1,
            wall_clock: false,
            max_pending: None,
            ..opts.clone()
        };
        for scheduler in ["minmin", "stga-kernel"] {
            for (label, scn) in [("churn", &scenario), ("quiet", &quiet)] {
                let stream = match scn.compile(&grid) {
                    Ok(s) => s,
                    Err(e) => {
                        eprintln!("error: {e}");
                        return 1;
                    }
                };
                match replay_scenario(&stream, &grid, &plan, &config, scheduler, &row_opts) {
                    Ok((mut report, views)) => {
                        if let Err(e) = assert_scenario_ledger(&views.metrics, &stream, report.jobs)
                        {
                            eprintln!("error: {scheduler} ({label}): {e}");
                            return 1;
                        }
                        report.scheduler = format!("{scheduler} ({label})");
                        print_report(&report);
                        configs.push(report);
                    }
                    Err(e) => {
                        eprintln!("error: {scheduler} ({label}): {e}");
                        return 1;
                    }
                }
            }
        }
    }
    let report = SuiteReport {
        schema: "gridsec-loadgen/v3".to_string(),
        command: format!(
            "loadgen --bench-suite --workload {} --jobs {} --policy {} --seed {}{}{}",
            opts.workload,
            n,
            opts.policy,
            opts.seed,
            if opts.quick { " --quick" } else { "" },
            match &opts.scenario {
                Some(p) => format!(" --scenario {p}"),
                None => String::new(),
            }
        ),
        host_available_parallelism: host,
        workload: opts.workload.clone(),
        jobs: n,
        policy: opts.policy.clone(),
        seed: opts.seed,
        note: "Replay over loopback TCP against an in-process gridsec-serve daemon \
               (virtual clock, as-fast-as-possible submission). jobs_per_sec is sustained \
               end-to-end throughput (wire + batching + scheduling); round µs is \
               scheduler wall-clock per round. Thread counts pin a dedicated rayon pool \
               around the scheduler; on a single-core host the 4-thread rows measure \
               pool overhead, not speedup."
            .to_string(),
        configs,
    };
    let path = opts.json.clone().unwrap_or_else(|| "BENCH_PR4.json".into());
    let json = serde_json::to_string_pretty(&report).expect("report serialises");
    std::fs::write(&path, json).expect("write suite report");
    println!("[wrote {path}]");
    0
}

/// The PR 5 benchmark: {Min-Min, STGA} × {1, 2, 4} shards over the same
/// multi-tenant replay, written to `BENCH_PR5.json`.
fn run_shard_suite(opts: &Options) -> i32 {
    let n = if opts.quick { 120 } else { opts.jobs };
    let (jobs, grid) = match build_workload(&opts.workload, n, opts.seed) {
        Ok(x) => x,
        Err(e) => {
            eprintln!("error: {e}");
            return 1;
        }
    };
    let (policy, interval) = match parse_policy(&opts.policy, 1_000.0) {
        Ok(x) => x,
        Err(e) => {
            eprintln!("error: {e}");
            return 1;
        }
    };
    let host = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    println!(
        "loadgen shard suite: {} jobs ({}) on {} sites, policy {}, schedulers \
         [minmin, stga] × shards {:?} (host parallelism {host})",
        jobs.len(),
        opts.workload,
        grid.len(),
        opts.policy,
        SUITE_SHARDS,
    );
    let mut configs = Vec::new();
    for scheduler in ["minmin", "stga"] {
        for shards in SUITE_SHARDS {
            match replay(
                &jobs,
                &grid,
                &ReplayConfig {
                    scheduler,
                    threads: opts.threads,
                    policy,
                    interval,
                    seed: opts.seed,
                    quick: opts.quick,
                    rate: None,
                    host: None,
                    shards,
                    wall_clock: false,
                    max_pending: None,
                },
            ) {
                Ok((report, _, metrics, views)) => {
                    print_report(&report);
                    if !report.schedule_valid {
                        eprintln!("error: {scheduler} @ {shards} produced an invalid schedule");
                        return 1;
                    }
                    // The aggregated counters must be the per-shard sums.
                    let merged = ServeMetrics::merge(&views.metrics);
                    if merged != metrics {
                        eprintln!(
                            "error: {scheduler} @ {shards}: aggregated metrics diverge from \
                             the per-shard sums"
                        );
                        return 1;
                    }
                    configs.push(report);
                }
                Err(e) => {
                    eprintln!("error: {scheduler} @ {shards}: {e}");
                    return 1;
                }
            }
        }
    }
    let report = SuiteReport {
        schema: "gridsec-loadgen/v2".to_string(),
        command: format!(
            "loadgen --shard-suite --workload {} --jobs {} --policy {} --seed {}{}",
            opts.workload,
            n,
            opts.policy,
            opts.seed,
            if opts.quick { " --quick" } else { "" }
        ),
        host_available_parallelism: host,
        workload: opts.workload.clone(),
        jobs: n,
        policy: opts.policy.clone(),
        seed: opts.seed,
        note: "Multi-tenant replay over loopback TCP against an in-process sharded \
               gridsec-serve daemon (virtual clock, as-fast-as-possible submission; each \
               job explicitly routed to a shard it is eligible on, round-robin by id over \
               the candidates). Shard counts partition the grid site-disjointly, one \
               scheduling thread per shard; on a single-core host the multi-shard rows \
               measure routing + thread overhead, on a multi-core host they measure \
               concurrent-round speedup. jobs_per_sec is sustained end-to-end throughput \
               (wire + routing + batching + scheduling)."
            .to_string(),
        configs,
    };
    let path = opts.json.clone().unwrap_or_else(|| "BENCH_PR5.json".into());
    let json = serde_json::to_string_pretty(&report).expect("report serialises");
    std::fs::write(&path, json).expect("write suite report");
    println!("[wrote {path}]");
    0
}

/// The CI end-to-end smoke: a 50-job SWF slice through the full wire
/// path, cross-checked bit for bit against the in-process engine.
fn run_smoke(opts: &Options) -> i32 {
    // Generate a PSA slice, round-trip it through the SWF text format
    // (write → parse → convert), and serve it on a fully trusted grid so
    // the engine comparison is failure-free.
    let w = match PsaConfig::default()
        .with_n_jobs(50)
        .with_seed(opts.seed)
        .generate()
    {
        Ok(w) => w,
        Err(e) => {
            eprintln!("error: {e}");
            return 1;
        }
    };
    let swf_text = swf::write(&w.jobs);
    let records = match swf::parse(&swf_text) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: SWF re-parse failed: {e}");
            return 1;
        }
    };
    let mut jobs = match swf::to_jobs(&records, &swf::ConvertOptions::default()) {
        Ok(j) => j,
        Err(e) => {
            eprintln!("error: SWF conversion failed: {e}");
            return 1;
        }
    };
    jobs.sort_by(|a, b| a.arrival.cmp(&b.arrival).then(a.id.cmp(&b.id)));
    let sites: Vec<Site> = w
        .grid
        .sites()
        .map(|s| {
            let mut s = s.clone();
            s.security_level = 1.0;
            s
        })
        .collect();
    let grid = Grid::new(sites).expect("grid stays valid");
    let (policy, interval) = (BatchPolicy::Hybrid(8), Time::new(1_000.0));

    // Reference: the in-process engine on identical inputs.
    let config = SimConfig::default()
        .with_interval(interval)
        .with_batch_policy(policy)
        .with_seed(opts.seed)
        .with_timeline();
    let mut reference = MinMin::new(RiskMode::Risky);
    let engine = match simulate(&jobs, &grid, &mut reference, &config) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: engine reference run failed: {e}");
            return 1;
        }
    };
    let spans = engine.timeline.as_ref().expect("timeline recorded");

    // The served run, over real TCP on an ephemeral port.
    let smoke_config = |shards: usize| ReplayConfig {
        scheduler: "minmin",
        threads: None,
        policy,
        interval,
        seed: opts.seed,
        quick: false,
        rate: None,
        host: None,
        shards,
        wall_clock: false,
        max_pending: None,
    };
    let (report, assignments, metrics, _) = match replay(&jobs, &grid, &smoke_config(1)) {
        Ok(x) => x,
        Err(e) => {
            eprintln!("error: {e}");
            return 1;
        }
    };
    print_report(&report);
    if !report.schedule_valid {
        eprintln!("error: served schedule failed validation");
        return 1;
    }
    if assignments.len() != spans.len() {
        eprintln!(
            "error: daemon committed {} assignments, engine dispatched {}",
            assignments.len(),
            spans.len()
        );
        return 1;
    }
    for (i, (p, s)) in assignments.iter().zip(spans.spans().iter()).enumerate() {
        if p.job != s.job || p.site != s.site || p.start != s.start || p.end != s.end {
            eprintln!("error: dispatch {i} diverged: daemon {p:?} vs engine {s:?}");
            return 1;
        }
    }
    // The metrics frame must round-trip through the wire encoding
    // losslessly (it already crossed TCP once to get here).
    let frame = gridsec_serve::protocol::encode(&Response::Metrics {
        metrics: metrics.clone(),
    });
    match serde_json::from_str::<Response>(frame.trim()) {
        Ok(Response::Metrics { metrics: back }) if back == metrics => {}
        other => {
            eprintln!("error: metrics did not round-trip through JSON: {other:?}");
            return 1;
        }
    }
    println!(
        "smoke OK: {} jobs, {} rounds, schedule bit-identical to the engine, metrics round-trip",
        report.jobs, report.rounds
    );

    // Phase 2: the same workload against a 2-shard daemon. Each shard's
    // schedule must validate against its own subgrid, and the aggregated
    // metrics must equal the per-shard sums.
    let (report2, _, metrics2, views) = match replay(&jobs, &grid, &smoke_config(2)) {
        Ok(x) => x,
        Err(e) => {
            eprintln!("error: 2-shard replay: {e}");
            return 1;
        }
    };
    print_report(&report2);
    if !report2.schedule_valid {
        eprintln!("error: 2-shard served schedule failed validation");
        return 1;
    }
    let plan = ShardPlan::contiguous(&grid, 2).expect("2-shard plan over the smoke grid");
    for (k, shard_schedule) in views.schedules.iter().enumerate() {
        let sub = plan.subgrid(&grid, k).expect("subgrid");
        // The shard reports global site ids; validate on the subgrid
        // with local ids and just this shard's jobs.
        let local = BatchSchedule::from_pairs(shard_schedule.iter().map(|p| {
            let (shard, local_site) = plan.to_local(p.site).expect("known site");
            assert_eq!(shard, k, "shard {k} committed onto a foreign site");
            (p.job, local_site)
        }));
        let shard_jobs: Vec<Job> = jobs
            .iter()
            .filter(|j| assign_shard(&plan, &grid, j).expect("smoke jobs fit somewhere") == k)
            .cloned()
            .collect();
        if let Err(e) = local.validate(&shard_jobs, &sub) {
            eprintln!("error: shard {k} schedule failed validation: {e}");
            return 1;
        }
        if local.len() != shard_jobs.len() {
            eprintln!(
                "error: shard {k} committed {} assignments for {} jobs",
                local.len(),
                shard_jobs.len()
            );
            return 1;
        }
    }
    let merged = ServeMetrics::merge(&views.metrics);
    if merged != metrics2 {
        eprintln!("error: 2-shard aggregated metrics diverge from the per-shard sums");
        return 1;
    }
    println!(
        "smoke OK (2 shards): {} jobs across {} shards, per-shard schedules validate, \
         aggregated metrics equal the per-shard sums",
        report2.jobs,
        views.schedules.len()
    );
    0
}

/// What one elastic replay produced: the stream as actually submitted
/// (suffix re-stamped past the reshard barrier), the final-plan views,
/// and the wall-clock cost of the `reshard` frame round trip.
struct ReshardRun {
    jobs: Vec<Job>,
    metrics: ServeMetrics,
    global: Vec<Placed>,
    per_shard: Vec<Vec<Placed>>,
    jobs_migrated: usize,
    reshard_millis: f64,
}

/// Replays `jobs` through an elastic daemon with a live `from`→`to`
/// reshard halfway through the stream. The suffix is shifted past the
/// next periodic boundary after the last prefix arrival (the barrier
/// drain advances the shard clocks there), so the whole stream stays
/// admissible under the virtual clock.
#[allow(clippy::too_many_arguments)]
fn replay_resharded(
    jobs: &[Job],
    grid: &Grid,
    scheduler: &str,
    from: usize,
    to: usize,
    interval: Time,
    seed: u64,
    quick: bool,
) -> Result<ReshardRun, String> {
    let config = SimConfig::default()
        .with_interval(interval)
        .with_batch_policy(BatchPolicy::Periodic)
        .with_seed(seed);
    let plan1 = ShardPlan::contiguous(grid, from).map_err(|e| e.to_string())?;
    let plan2 = ShardPlan::contiguous(grid, to).map_err(|e| e.to_string())?;
    let shard_specs: Result<Vec<ShardSpec>, String> = (0..from)
        .map(|k| {
            let sub = plan1.subgrid(grid, k).map_err(|e| e.to_string())?;
            let sched = build_scheduler(scheduler, seed + k as u64, quick, None)?;
            let session = OnlineSession::new(sub, sched, &config).map_err(|e| e.to_string())?;
            Ok(ShardSpec::new(session))
        })
        .collect();
    let factory: SessionFactory = {
        let scheduler = scheduler.to_string();
        let config = config.clone();
        Box::new(move |ctx| {
            // Offset the seed so respawned GA streams stay decorrelated
            // from the originals while remaining deterministic.
            let sched = build_scheduler(&scheduler, seed + 7_000 + ctx.shard as u64, quick, None)?;
            OnlineSession::restore(ctx.subgrid, sched, &config, ctx.seed)
                .map(ShardSpec::new)
                .map_err(|e| e.to_string())
        })
    };
    let daemon = Daemon::spawn_elastic(
        grid.clone(),
        plan1.clone(),
        shard_specs?,
        factory,
        None,
        "127.0.0.1:0",
        DaemonOptions::default(),
    )
    .map_err(|e| e.to_string())?;
    let mut client = Client::connect(daemon.addr()).map_err(|e| e.to_string())?;

    // Re-stamp the suffix past the barrier, preserving its spacing.
    let mid = jobs.len() / 2;
    let max_prefix = jobs[..mid]
        .iter()
        .map(|j| j.arrival.seconds())
        .fold(0.0f64, f64::max);
    let base = ((max_prefix / interval.seconds()).floor() + 2.0) * interval.seconds();
    let mut stream: Vec<Job> = jobs.to_vec();
    if mid < stream.len() {
        let shift = (base - stream[mid].arrival.seconds()).max(0.0);
        for j in &mut stream[mid..] {
            j.arrival = Time::new(j.arrival.seconds() + shift);
        }
    }

    let submit = |client: &mut Client, plan: &ShardPlan, slice: &[Job]| -> Result<(), String> {
        for j in slice {
            let shard = assign_shard(plan, grid, j)?;
            match client
                .send(&Request::Submit {
                    jobs: vec![j.clone()],
                    shard: Some(shard),
                    tenant: None,
                })
                .map_err(|e| e.to_string())?
            {
                Response::Accepted { .. } => {}
                other => return Err(format!("submit rejected: {other:?}")),
            }
        }
        Ok(())
    };
    submit(&mut client, &plan1, &stream[..mid])?;
    let new_shards: Vec<Vec<usize>> = (0..to)
        .map(|k| plan2.sites_of(k).iter().map(|s| s.0).collect())
        .collect();
    let t0 = Instant::now();
    let jobs_migrated = match client
        .send(&Request::Reshard { shards: new_shards })
        .map_err(|e| e.to_string())?
    {
        Response::Resharded {
            shards,
            jobs_migrated,
            ..
        } => {
            if shards != to {
                return Err(format!("resharded to {shards} shards, wanted {to}"));
            }
            jobs_migrated
        }
        other => return Err(format!("reshard failed: {other:?}")),
    };
    let reshard_millis = t0.elapsed().as_secs_f64() * 1_000.0;
    submit(&mut client, &plan2, &stream[mid..])?;
    match client.send(&Request::Drain).map_err(|e| e.to_string())? {
        Response::Drained { .. } => {}
        other => return Err(format!("drain failed: {other:?}")),
    }
    let mut per_shard = Vec::with_capacity(to);
    for k in 0..to {
        match client
            .send(&Request::Query {
                what: QueryWhat::Schedule,
                shard: Some(k),
            })
            .map_err(|e| e.to_string())?
        {
            Response::Schedule { assignments } => per_shard.push(assignments),
            other => return Err(format!("per-shard query failed: {other:?}")),
        }
    }
    let global = match client
        .send(&Request::Query {
            what: QueryWhat::Schedule,
            shard: None,
        })
        .map_err(|e| e.to_string())?
    {
        Response::Schedule { assignments } => assignments,
        other => return Err(format!("schedule query failed: {other:?}")),
    };
    let metrics = match client
        .send(&Request::Query {
            what: QueryWhat::Metrics,
            shard: None,
        })
        .map_err(|e| e.to_string())?
    {
        Response::Metrics { metrics } => metrics,
        other => return Err(format!("metrics query failed: {other:?}")),
    };
    match client.send(&Request::Shutdown).map_err(|e| e.to_string())? {
        Response::Bye => {}
        other => return Err(format!("shutdown failed: {other:?}")),
    }
    daemon.join();
    Ok(ReshardRun {
        jobs: stream,
        metrics,
        global,
        per_shard,
        jobs_migrated,
        reshard_millis,
    })
}

/// Asserts a finished elastic replay lost nothing: the books balance,
/// the aggregated schedule covers every job exactly once on a fitting
/// site, and every post-swap shard commit respects the final plan.
fn check_reshard_run(run: &ReshardRun, grid: &Grid, to: usize) -> Result<(), String> {
    let m = &run.metrics;
    if m.jobs_submitted != run.jobs.len() || m.jobs_scheduled != run.jobs.len() || m.pending != 0 {
        return Err(format!(
            "ledger broken: {} submitted, {} scheduled, {} pending of {} jobs",
            m.jobs_submitted,
            m.jobs_scheduled,
            m.pending,
            run.jobs.len()
        ));
    }
    if m.reshards_completed != 1 {
        return Err(format!(
            "{} reshards recorded, wanted 1",
            m.reshards_completed
        ));
    }
    let schedule = BatchSchedule::from_pairs(run.global.iter().map(|p| (p.job, p.site)));
    schedule
        .validate(&run.jobs, grid)
        .map_err(|e| format!("aggregated schedule invalid: {e}"))?;
    let plan = ShardPlan::contiguous(grid, to).map_err(|e| e.to_string())?;
    for (k, shard) in run.per_shard.iter().enumerate() {
        for p in shard {
            if plan.shard_of(p.site) != Some(k) {
                return Err(format!(
                    "job {} committed to site {} outside shard {k}",
                    p.job, p.site
                ));
            }
        }
    }
    Ok(())
}

/// The CI reshard smoke: a 2-shard daemon split to 4 with half the
/// stream already in, under a periodic policy so pending state actually
/// migrates across the barrier. Schedules must validate on the final
/// topology and the ledger must balance.
fn run_reshard_smoke(opts: &Options) -> i32 {
    let (jobs, grid) = match build_workload("psa", 120, opts.seed) {
        Ok(x) => x,
        Err(e) => {
            eprintln!("error: {e}");
            return 1;
        }
    };
    let run = match replay_resharded(
        &jobs,
        &grid,
        "minmin",
        2,
        4,
        Time::new(1_000.0),
        opts.seed,
        true,
    ) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: reshard smoke: {e}");
            return 1;
        }
    };
    if let Err(e) = check_reshard_run(&run, &grid, 4) {
        eprintln!("error: reshard smoke: {e}");
        return 1;
    }
    println!(
        "reshard smoke OK: {} jobs across a 2→4 split ({} migrated, barrier {:.1} ms), \
         schedules validate on the final topology, ledger balanced",
        run.jobs.len(),
        run.jobs_migrated,
        run.reshard_millis,
    );
    0
}

/// One row of the `--reshard-suite` report.
#[derive(Serialize)]
struct ReshardRow {
    scheduler: String,
    from_shards: usize,
    to_shards: usize,
    jobs: usize,
    /// Pending/in-flight jobs whose owning shard changed at the barrier.
    jobs_migrated: usize,
    /// Wall-clock milliseconds for the `reshard` frame round trip
    /// (drain barrier + state transfer + session respawn + plan swap).
    reshard_millis: f64,
    rounds: usize,
    makespan: f64,
    schedule_valid: bool,
}

/// The `--reshard-suite` report written to `BENCH_PR8.json`.
#[derive(Serialize)]
struct ReshardSuiteReport {
    schema: String,
    command: String,
    workload: String,
    jobs: usize,
    seed: u64,
    note: String,
    rows: Vec<ReshardRow>,
}

/// The elastic-topology benchmark: {Min-Min, STGA} × {1→2, 2→1, 2→4}
/// live reshards halfway through the replay, reporting the barrier cost
/// and the migration volume, written to `BENCH_PR8.json`.
fn run_reshard_suite(opts: &Options) -> i32 {
    let n = if opts.quick { 120 } else { opts.jobs };
    let (jobs, grid) = match build_workload(&opts.workload, n, opts.seed) {
        Ok(x) => x,
        Err(e) => {
            eprintln!("error: {e}");
            return 1;
        }
    };
    println!(
        "loadgen reshard suite: {} jobs ({}) on {} sites, schedulers [minmin, stga] × \
         transitions [1→2, 2→1, 2→4]",
        jobs.len(),
        opts.workload,
        grid.len(),
    );
    let mut rows = Vec::new();
    for scheduler in ["minmin", "stga"] {
        for (from, to) in [(1usize, 2usize), (2, 1), (2, 4)] {
            let run = match replay_resharded(
                &jobs,
                &grid,
                scheduler,
                from,
                to,
                Time::new(1_000.0),
                opts.seed,
                opts.quick,
            ) {
                Ok(r) => r,
                Err(e) => {
                    eprintln!("error: {scheduler} {from}→{to}: {e}");
                    return 1;
                }
            };
            let valid = match check_reshard_run(&run, &grid, to) {
                Ok(()) => true,
                Err(e) => {
                    eprintln!("error: {scheduler} {from}→{to}: {e}");
                    return 1;
                }
            };
            println!(
                "  {scheduler:<7} {from}→{to}: {} migrated, barrier {:>7.1} ms, {} rounds",
                run.jobs_migrated, run.reshard_millis, run.metrics.rounds,
            );
            rows.push(ReshardRow {
                scheduler: scheduler.to_string(),
                from_shards: from,
                to_shards: to,
                jobs: run.jobs.len(),
                jobs_migrated: run.jobs_migrated,
                reshard_millis: run.reshard_millis,
                rounds: run.metrics.rounds,
                makespan: run.metrics.max_completion.seconds(),
                schedule_valid: valid,
            });
        }
    }
    let report = ReshardSuiteReport {
        schema: "gridsec-loadgen-reshard/v1".to_string(),
        command: format!(
            "loadgen --reshard-suite --workload {} --jobs {} --seed {}{}",
            opts.workload,
            n,
            opts.seed,
            if opts.quick { " --quick" } else { "" }
        ),
        workload: opts.workload.clone(),
        jobs: n,
        seed: opts.seed,
        note: "Elastic-topology replay over loopback TCP: half the stream is submitted, \
               the daemon reshards live at a drain barrier (state transfer + session \
               respawn + atomic plan swap), and the rest replays on the new topology. \
               reshard_millis is the wall-clock frame round trip; jobs_migrated counts \
               pending/in-flight jobs whose owning shard changed. Every row asserts the \
               zero-lost-jobs ledger and validates the final schedule."
            .to_string(),
        rows,
    };
    let path = opts.json.clone().unwrap_or_else(|| "BENCH_PR8.json".into());
    let json = serde_json::to_string_pretty(&report).expect("report serialises");
    std::fs::write(&path, json).expect("write suite report");
    println!("[wrote {path}]");
    0
}

// ---------------------------------------------------------------------
// `--connections` / `--connections-suite`: the C10k benchmark.
// ---------------------------------------------------------------------

/// One `--connections` row.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct ConnectionsReport {
    connections: usize,
    /// Lock-step requests completed per connection.
    requests_per_connection: usize,
    /// Jobs accepted end-to-end (wire + routing + shard enqueue).
    jobs: usize,
    /// Wall-clock seconds from the first request to the last reply.
    drive_secs: f64,
    jobs_per_sec: f64,
    /// Per-request round trip, microseconds.
    rtt_micros_p50: f64,
    rtt_micros_p99: f64,
    rtt_micros_max: f64,
    /// OS threads in the daemon process while all connections were live.
    /// Flat across rows — the event loop holds every connection on a
    /// fixed pool (the acceptance bound is ≤ 2 threads per 1000 idle
    /// connections; the pool is ~7 threads total at any scale).
    daemon_threads: usize,
    /// OS threads in the client-engine process (itself one epoll loop).
    client_threads: usize,
    /// Connections the daemon counted at peak (sanity: equals the row).
    daemon_connections: usize,
}

/// One lock-step client inside the engine's event loop.
struct DriveConn {
    stream: std::net::TcpStream,
    /// Bytes of the current request not yet written.
    out: Vec<u8>,
    out_pos: usize,
    /// Reply bytes accumulated up to (not yet including) a newline.
    line: Vec<u8>,
    /// Requests still to send after the in-flight one completes.
    remaining: usize,
    /// When the in-flight request's first byte was queued.
    sent_at: Instant,
    /// Completed round-trip times.
    rtts: Vec<Duration>,
    next_job: u64,
    shard: usize,
    want_write: bool,
    done: bool,
}

impl DriveConn {
    /// Queues the next submit frame (one job, explicit shard).
    fn arm(&mut self) {
        let job = Job::builder(self.next_job)
            .arrival(Time::new(0.0))
            .work(10.0)
            .security_demand(0.5)
            .build()
            .expect("static job validates");
        self.next_job += 1;
        let req = Request::Submit {
            jobs: vec![job],
            shard: Some(self.shard),
            tenant: None,
        };
        let mut frame = serde_json::to_string(&req).expect("request serialises");
        frame.push('\n');
        self.out = frame.into_bytes();
        self.out_pos = 0;
        self.sent_at = Instant::now();
    }
}

/// Drives `n` concurrent lock-step connections against `addr` with one
/// epoll loop (the client-side mirror of the daemon's event layer) and
/// returns the per-request RTTs. Each connection submits
/// `requests_per_connection` one-job frames with globally unique ids.
fn drive_connections(
    addr: std::net::SocketAddr,
    n: usize,
    requests_per_connection: usize,
    n_shards: usize,
) -> Result<Vec<DriveConn>, String> {
    use std::os::unix::io::AsRawFd as _;
    let poller = epoll::Poller::new().map_err(|e| format!("epoll: {e}"))?;
    let mut conns: Vec<DriveConn> = Vec::with_capacity(n);
    for i in 0..n {
        // Loopback connects are immediate; retry absorbs transient
        // accept-backlog overflow while the daemon catches up.
        let stream = loop {
            match std::net::TcpStream::connect(addr) {
                Ok(s) => break s,
                Err(_) => std::thread::sleep(Duration::from_millis(2)),
            }
        };
        stream
            .set_nonblocking(true)
            .map_err(|e| format!("set_nonblocking: {e}"))?;
        stream.set_nodelay(true).ok();
        let mut conn = DriveConn {
            stream,
            out: Vec::new(),
            out_pos: 0,
            line: Vec::new(),
            remaining: requests_per_connection - 1,
            sent_at: Instant::now(),
            rtts: Vec::with_capacity(requests_per_connection),
            next_job: (i * requests_per_connection) as u64,
            shard: i % n_shards,
            want_write: false,
            done: false,
        };
        conn.arm();
        poller
            .add(
                conn.stream.as_raw_fd(),
                i as u64,
                epoll::Interest::READ_WRITE,
            )
            .map_err(|e| format!("epoll add: {e}"))?;
        conn.want_write = true;
        conns.push(conn);
    }

    use std::io::{Read as _, Write as _};
    let mut events = epoll::Events::with_capacity(1024);
    let mut live = n;
    let mut scratch = [0u8; 16 * 1024];
    let deadline = Instant::now() + Duration::from_secs(600);
    while live > 0 {
        if Instant::now() > deadline {
            return Err(format!(
                "drive timed out with {live} connections unfinished"
            ));
        }
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .map_err(|e| format!("epoll wait: {e}"))?;
        for ev in events.iter() {
            let i = ev.key as usize;
            let conn = &mut conns[i];
            if conn.done {
                continue;
            }
            if ev.writable {
                while conn.out_pos < conn.out.len() {
                    match conn.stream.write(&conn.out[conn.out_pos..]) {
                        Ok(0) => return Err(format!("connection {i}: write returned 0")),
                        Ok(k) => conn.out_pos += k,
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                        Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                        Err(e) => return Err(format!("connection {i}: write: {e}")),
                    }
                }
            }
            if ev.readable {
                loop {
                    match conn.stream.read(&mut scratch) {
                        Ok(0) => return Err(format!("connection {i}: daemon closed early")),
                        Ok(k) => {
                            for &b in &scratch[..k] {
                                if b != b'\n' {
                                    conn.line.push(b);
                                    continue;
                                }
                                let resp: Response = serde_json::from_slice(&conn.line)
                                    .map_err(|e| format!("connection {i}: bad reply: {e}"))?;
                                if !matches!(resp, Response::Accepted { .. }) {
                                    return Err(format!("connection {i}: rejected: {resp:?}"));
                                }
                                conn.rtts.push(conn.sent_at.elapsed());
                                conn.line.clear();
                                if conn.remaining > 0 {
                                    conn.remaining -= 1;
                                    conn.arm();
                                } else {
                                    conn.done = true;
                                    live -= 1;
                                }
                            }
                        }
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                        Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                        Err(e) => return Err(format!("connection {i}: read: {e}")),
                    }
                    if conn.done {
                        break;
                    }
                }
            }
            // Re-arm write interest only while a request is unflushed —
            // level-triggered EPOLLOUT on an idle socket would spin.
            let want_write = !conn.done && conn.out_pos < conn.out.len();
            if want_write != conn.want_write {
                conn.want_write = want_write;
                let interest = if want_write {
                    epoll::Interest::READ_WRITE
                } else {
                    epoll::Interest::READ
                };
                poller
                    .modify(conn.stream.as_raw_fd(), i as u64, interest)
                    .map_err(|e| format!("epoll modify: {e}"))?;
            }
        }
    }
    Ok(conns)
}

/// OS threads of a live process (`/proc/<pid>/status`); 0 off-Linux.
fn process_threads_of(pid: u32) -> usize {
    std::fs::read_to_string(format!("/proc/{pid}/status"))
        .ok()
        .and_then(|s| {
            s.lines()
                .find(|l| l.starts_with("Threads:"))
                .and_then(|l| l.split_whitespace().nth(1)?.parse().ok())
        })
        .unwrap_or(0)
}

/// Shard count of the `--connections` benchmark daemon.
const CONNECTIONS_SHARDS: usize = 2;

/// The hidden child mode behind `--connections`: serve the benchmark
/// daemon in a process of its own. Both sides of 10 000 connections
/// cannot share one process under a 20 000-fd `RLIMIT_NOFILE` ceiling,
/// and a separate process also keeps the daemon's thread count honestly
/// measurable from the outside (`/proc/<pid>/status`). Prints the wire
/// and metrics addresses, then serves until the shutdown frame.
fn run_connections_daemon() -> i32 {
    let grid = Grid::new(vec![
        Site::builder(0).nodes(8).speed(1.0).build().unwrap(),
        Site::builder(1).nodes(8).speed(1.0).build().unwrap(),
    ])
    .expect("static grid validates");
    let config = SimConfig::default()
        .with_interval(Time::new(1_000.0))
        .with_batch_policy(BatchPolicy::Periodic);
    let plan = ShardPlan::contiguous(&grid, CONNECTIONS_SHARDS).expect("plan fits grid");
    let shards: Vec<ShardSpec> = (0..CONNECTIONS_SHARDS)
        .map(|k| {
            let sub = plan.subgrid(&grid, k).expect("plan fits grid");
            ShardSpec::new(
                OnlineSession::new(sub, Box::new(EarliestCompletion), &config)
                    .expect("session builds"),
            )
        })
        .collect();
    let daemon = match Daemon::spawn_sharded(
        grid,
        plan,
        shards,
        "127.0.0.1:0",
        DaemonOptions {
            metrics_addr: Some("127.0.0.1:0".into()),
            ..DaemonOptions::default()
        },
    ) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("error: benchmark daemon failed to start: {e}");
            return 1;
        }
    };
    println!("ADDR {}", daemon.addr());
    println!(
        "METRICS {}",
        daemon.metrics_addr().expect("metrics listener bound")
    );
    use std::io::Write as _;
    std::io::stdout().flush().ok();
    daemon.join(); // exits when the parent sends `shutdown`
    0
}

/// The benchmark daemon running in a child process. Killed on drop so
/// an errored row cannot leak a process.
struct DaemonChild {
    child: std::process::Child,
    addr: std::net::SocketAddr,
    metrics: std::net::SocketAddr,
}

impl Drop for DaemonChild {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

fn spawn_connections_daemon() -> Result<DaemonChild, String> {
    use std::io::BufRead as _;
    let exe = std::env::current_exe().map_err(|e| e.to_string())?;
    let mut child = std::process::Command::new(exe)
        .arg("--serve-connections-daemon")
        .stdout(std::process::Stdio::piped())
        .spawn()
        .map_err(|e| format!("cannot spawn benchmark daemon: {e}"))?;
    let stdout = child.stdout.take().expect("stdout piped");
    let mut lines = std::io::BufReader::new(stdout).lines();
    let mut read_addr = |tag: &str| -> Result<std::net::SocketAddr, String> {
        let line = lines
            .next()
            .ok_or_else(|| format!("daemon exited before printing {tag}"))?
            .map_err(|e| e.to_string())?;
        line.strip_prefix(tag)
            .and_then(|r| r.trim().parse().ok())
            .ok_or_else(|| format!("unexpected daemon banner line: {line:?}"))
    };
    let addr = read_addr("ADDR ")?;
    let metrics = read_addr("METRICS ")?;
    Ok(DaemonChild {
        child,
        addr,
        metrics,
    })
}

/// Reads the daemon's `gridsec_connections` gauge off its exposition
/// page — the cross-process stand-in for `Daemon::connections()`.
fn scrape_connections_gauge(addr: std::net::SocketAddr) -> Result<usize, String> {
    use std::io::Read as _;
    let mut stream = std::net::TcpStream::connect(addr).map_err(|e| e.to_string())?;
    let mut text = String::new();
    stream
        .read_to_string(&mut text)
        .map_err(|e| e.to_string())?;
    text.lines()
        .find_map(|l| l.strip_prefix("gridsec_connections "))
        .and_then(|v| v.trim().parse::<f64>().ok())
        .map(|v| v as usize)
        .ok_or_else(|| "exposition page lacks gridsec_connections".into())
}

/// One row: spawn a fresh benchmark daemon (own process), drive `n`
/// connections, collect RTTs.
fn connections_row(n: usize, requests_per_connection: usize) -> Result<ConnectionsReport, String> {
    let daemon = spawn_connections_daemon()?;

    let t0 = Instant::now();
    let conns = drive_connections(daemon.addr, n, requests_per_connection, CONNECTIONS_SHARDS)?;
    let drive_secs = t0.elapsed().as_secs_f64();
    // Everything is still connected: sample thread counts and the
    // daemon's own connection gauge at peak. The scrape itself rides a
    // separate listener, so it does not perturb the count.
    let daemon_threads = process_threads_of(daemon.child.id());
    let client_threads = process_threads_of(std::process::id());
    let daemon_connections = scrape_connections_gauge(daemon.metrics)?;

    let micros: Vec<f64> = conns
        .iter()
        .flat_map(|c| c.rtts.iter().map(|d| d.as_secs_f64() * 1e6))
        .collect();
    let jobs = micros.len();
    drop(conns); // close the engine's sockets before the shutdown client
    let mut client = Client::connect(daemon.addr).map_err(|e| e.to_string())?;
    match client.send(&Request::Shutdown).map_err(|e| e.to_string())? {
        Response::Bye => {}
        other => return Err(format!("shutdown failed: {other:?}")),
    }
    drop(daemon); // reaps the (already exiting) child

    Ok(ConnectionsReport {
        connections: n,
        requests_per_connection,
        jobs,
        drive_secs,
        jobs_per_sec: jobs as f64 / drive_secs.max(1e-9),
        rtt_micros_p50: percentile(&micros, 0.50),
        rtt_micros_p99: percentile(&micros, 0.99),
        rtt_micros_max: micros.iter().copied().fold(0.0, f64::max),
        daemon_threads,
        client_threads,
        daemon_connections,
    })
}

/// The whole `BENCH_PR10.json` document.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct ConnectionsSuiteReport {
    schema: String,
    command: String,
    host_available_parallelism: usize,
    note: String,
    rows: Vec<ConnectionsReport>,
}

fn print_connections_row(r: &ConnectionsReport) {
    println!(
        "connections={:<6} requests/conn={:<3} jobs={:<7} wall={:>7.3}s  {:>9.1} jobs/s  \
         rtt µs p50={:>8.1} p99={:>8.1} max={:>9.1}  daemon_threads={} client_threads={} \
         daemon_conns={}",
        r.connections,
        r.requests_per_connection,
        r.jobs,
        r.drive_secs,
        r.jobs_per_sec,
        r.rtt_micros_p50,
        r.rtt_micros_p99,
        r.rtt_micros_max,
        r.daemon_threads,
        r.client_threads,
        r.daemon_connections,
    );
}

fn run_connections(opts: &Options) -> i32 {
    // One client fd per connection in this process (the daemon's side
    // lives in the child, under its own limit): lift the nofile limit
    // up front so 10k rows don't hit EMFILE.
    let wanted = opts.connections.unwrap_or(10_000) as u64 + 512;
    match epoll::raise_nofile_limit(wanted) {
        Ok(limit) if limit < wanted => {
            eprintln!("warning: nofile limit {limit} < {wanted}; large rows may fail");
        }
        Ok(_) => {}
        Err(e) => eprintln!("warning: cannot raise nofile limit: {e}"),
    }
    let rows_spec: Vec<(usize, usize)> = if opts.connections_suite {
        // requests/conn scaled down as rows fan out, keeping each row's
        // total work (and runtime) comparable.
        vec![(1, 2000), (100, 40), (10_000, 4)]
    } else {
        let n = opts.connections.expect("checked by the dispatcher");
        vec![(n, if n >= 1000 { 4 } else { 40 })]
    };
    let mut rows = Vec::with_capacity(rows_spec.len());
    for (n, reqs) in rows_spec {
        match connections_row(n, reqs) {
            Ok(row) => {
                print_connections_row(&row);
                if row.daemon_connections != n {
                    eprintln!(
                        "error: daemon counted {} connections, expected {n}",
                        row.daemon_connections
                    );
                    return 1;
                }
                rows.push(row);
            }
            Err(e) => {
                eprintln!("error: connections={n}: {e}");
                return 1;
            }
        }
    }
    if opts.connections_suite || opts.json.is_some() {
        let host = std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1);
        let report = ConnectionsSuiteReport {
            schema: "gridsec-loadgen-connections/v1".to_string(),
            command: if opts.connections_suite {
                "loadgen --connections-suite".into()
            } else {
                format!("loadgen --connections {}", rows[0].connections)
            },
            host_available_parallelism: host,
            note: "Concurrent lock-step clients over loopback TCP against a 2-shard \
                   virtual-clock daemon (MCT, periodic batching — submits enqueue \
                   without scheduling rounds, so rows measure the connection layer, not \
                   the scheduler). The daemon runs in a child process so each side's \
                   socket fds count against its own RLIMIT_NOFILE budget at 10k \
                   connections; daemon_threads is scraped from /proc/<child>/status and \
                   stays a small constant across rows. The client engine is itself one \
                   epoll loop (client_threads), so client-side threads cannot mask \
                   daemon-side scaling."
                .to_string(),
            rows,
        };
        let path = opts
            .json
            .clone()
            .unwrap_or_else(|| "BENCH_PR10.json".into());
        let json = serde_json::to_string_pretty(&report).expect("report serialises");
        std::fs::write(&path, json).expect("write suite report");
        println!("[wrote {path}]");
    }
    0
}
