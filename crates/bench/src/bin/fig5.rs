//! Fig. 5: solution-quality trajectories of the conventional GA vs the
//! STGA on the same batch sequence — the STGA's history-seeded initial
//! population starts near the convergence point.
//!
//! We replay a sequence of similar PSA batches through both schedulers and
//! print each round's generation-0 (initial-population) best fitness and
//! final best fitness. Once the STGA's table holds similar batches, its
//! generation-0 quality approaches its final quality, while the
//! conventional GA keeps starting from scratch.

use gridsec_bench::{print_header, psa_setup, AsciiTable, BenchArgs};
use gridsec_core::etc::NodeAvailability;
use gridsec_core::{SecurityModel, Time};
use gridsec_sim::{BatchJob, BatchScheduler, GridView};
use gridsec_stga::{GaParams, StandardGa, Stga, StgaParams};

fn main() {
    let args = BenchArgs::parse();
    args.warn_unused_reps("fig5");
    let rounds = if args.quick { 4 } else { 10 };
    let batch_size = 12;
    let w = psa_setup(rounds * batch_size, args.seed);
    print_header("Fig. 5: initial-population quality, conventional GA vs STGA");

    let ga_params = GaParams::default()
        .with_population(if args.quick { 50 } else { 200 })
        .with_generations(if args.quick { 30 } else { 100 })
        .with_seed(args.seed);
    let mut ga = StandardGa::new(ga_params).expect("valid GA params");
    let mut stga = Stga::new(StgaParams {
        ga: ga_params,
        ..StgaParams::default()
    })
    .expect("valid STGA params");

    let avail: Vec<NodeAvailability> = w
        .grid
        .sites()
        .map(|s| NodeAvailability::new(s.nodes, Time::ZERO))
        .collect();

    let mut table = AsciiTable::new(vec![
        "round",
        "GA initial",
        "GA final",
        "STGA initial",
        "STGA final",
        "STGA head-start %",
    ]);
    for r in 0..rounds {
        // Similar batches: the same jobs with mildly shifted work, which is
        // exactly the temporal locality the STGA exploits.
        let batch: Vec<BatchJob> = w.jobs[r * batch_size..(r + 1) * batch_size]
            .iter()
            .cloned()
            .map(|job| BatchJob {
                job,
                secure_only: false,
            })
            .collect();
        let view = GridView {
            grid: &w.grid,
            avail: &avail,
            now: Time::ZERO,
            model: SecurityModel::default(),
        };
        let _ = ga.schedule(&batch, &view);
        let _ = stga.schedule(&batch, &view);
        let tga = ga.last_trajectory().expect("GA ran");
        let tst = stga.last_trajectory().expect("STGA ran");
        let head_start = 100.0 * (tga[0] - tst[0]) / tga[0];
        table.row(vec![
            (r + 1).to_string(),
            format!("{:.0}", tga[0]),
            format!("{:.0}", tga[tga.len() - 1]),
            format!("{:.0}", tst[0]),
            format!("{:.0}", tst[tst.len() - 1]),
            format!("{head_start:+.1}"),
        ]);
    }
    println!();
    table.print();
    println!(
        "\nhead-start = how much better the STGA's initial population is than\n\
         the conventional GA's random initial population (positive = better)."
    );
}
