//! Renders the JSON dumps produced by the figure binaries into one
//! markdown report — the machine-generated companion to EXPERIMENTS.md.
//!
//! ```console
//! cargo run -p gridsec-bench --bin summarize -- results/*.json > report.md
//! ```

use gridsec_bench::ExperimentRecord;
use std::collections::BTreeMap;

fn main() {
    let paths: Vec<String> = std::env::args().skip(1).collect();
    if paths.is_empty() {
        eprintln!("usage: summarize <results1.json> [results2.json ...]");
        std::process::exit(2);
    }
    let mut by_experiment: BTreeMap<String, Vec<ExperimentRecord>> = BTreeMap::new();
    for path in &paths {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("error: cannot read {path}: {e}");
                std::process::exit(1);
            }
        };
        let records: Vec<ExperimentRecord> = match serde_json::from_str(&text) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("error: {path} is not a results dump: {e}");
                std::process::exit(1);
            }
        };
        for r in records {
            by_experiment
                .entry(r.experiment.clone())
                .or_default()
                .push(r);
        }
    }

    println!("# GridSec experiment report\n");
    println!(
        "Generated from {} record file(s); every row is one full simulation.\n",
        paths.len()
    );
    for (experiment, records) in &by_experiment {
        println!("## {experiment}\n");
        println!(
            "| run | scheduler | makespan (s) | avg response (s) | slowdown | Nfail | Nrisk | util % | fairness | sched s |"
        );
        println!("|---|---|---|---|---|---|---|---|---|---|");
        for r in records {
            let m = &r.output.metrics;
            println!(
                "| {} | {} | {:.4e} | {:.4e} | {:.2} | {} | {} | {:.1} | {:.3} | {:.3} |",
                r.params,
                r.output.scheduler_name,
                m.makespan.seconds(),
                m.avg_response,
                m.slowdown_ratio,
                m.n_fail,
                m.n_risk,
                m.overall_utilization,
                m.utilization_fairness,
                r.output.scheduler_seconds,
            );
        }
        println!();
        // Per-experiment headline: best makespan and best slowdown.
        if let Some(best_ms) = records
            .iter()
            .min_by(|a, b| a.output.metrics.makespan.cmp(&b.output.metrics.makespan))
        {
            println!(
                "*Best makespan:* **{}** ({}) at {:.4e} s.",
                best_ms.output.scheduler_name,
                best_ms.params,
                best_ms.output.metrics.makespan.seconds()
            );
        }
        if let Some(best_sd) = records.iter().min_by(|a, b| {
            a.output
                .metrics
                .slowdown_ratio
                .total_cmp(&b.output.metrics.slowdown_ratio)
        }) {
            println!(
                "*Best slowdown:* **{}** ({}) at {:.2}.\n",
                best_sd.output.scheduler_name,
                best_sd.params,
                best_sd.output.metrics.slowdown_ratio
            );
        }
    }
}
