//! Fig. 7(b): STGA makespan as a function of the number of GA iterations
//! (PSA workload, N = 1000).
//!
//! The paper reports fluctuation below ~25 iterations, convergence onset
//! near 40, and a flat constant beyond ~50 — demonstrating that the
//! history-seeded STGA needs very few generations per round.

use gridsec_bench::{
    make_stga, maybe_dump, print_header, psa_setup, psa_sim_config, run_one, AsciiTable, BenchArgs,
    ExperimentRecord,
};

fn main() {
    let args = BenchArgs::parse();
    args.warn_unused_reps("fig7b");
    let n = if args.quick { 200 } else { 1000 };
    let w = psa_setup(n, args.seed);
    let config = psa_sim_config(args.seed);
    print_header(&format!(
        "Fig. 7(b): STGA makespan vs iterations (PSA, N = {n})"
    ));

    let gens: Vec<usize> = if args.quick {
        vec![0, 10, 25, 50, 100]
    } else {
        vec![0, 10, 25, 40, 50, 75, 100, 150, 200]
    };
    let mut table = AsciiTable::new(vec!["iterations", "makespan (s)", "scheduler time (s)"]);
    let mut records = Vec::new();
    for &g in &gens {
        let mut stga = make_stga(&w.jobs, &w.grid, args.seed, g, 8).expect("valid STGA params");
        let out = run_one(&w.jobs, &w.grid, &mut stga, &config);
        table.row(vec![
            g.to_string(),
            format!("{:.0}", out.metrics.makespan.seconds()),
            format!("{:.3}", out.scheduler_seconds),
        ]);
        records.push(ExperimentRecord::new(
            "fig7b",
            format!("generations={g}"),
            out,
        ));
    }
    println!();
    table.print();
    maybe_dump(&args.json, &records);
}
