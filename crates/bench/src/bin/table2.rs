//! Table 2: global comparison on the NAS trace — makespan ratio α and
//! response-time ratio β of every heuristic relative to the STGA, plus the
//! holistic ranking.

use gridsec_bench::{
    maybe_dump, nas_setup, nas_sim_config, paper_schedulers, print_header, run_one, AsciiTable,
    BenchArgs, ExperimentRecord,
};

fn main() {
    let args = BenchArgs::parse();
    args.warn_unused_reps("table2");
    let n = if args.quick { 1_000 } else { 16_000 };
    let w = nas_setup(n, args.seed);
    let config = nas_sim_config(args.seed);
    print_header(&format!(
        "Table 2: α/β ratios vs STGA on the NAS trace (N = {n})"
    ));

    let mut records = Vec::new();
    let mut results = Vec::new();
    for mut s in paper_schedulers(&w.jobs, &w.grid, args.seed, 15) {
        let out = run_one(&w.jobs, &w.grid, s.as_mut(), &config);
        records.push(ExperimentRecord::new(
            "table2",
            out.scheduler_name.clone(),
            out.clone(),
        ));
        results.push(out);
    }
    let stga = results
        .iter()
        .find(|o| o.scheduler_name == "STGA")
        .expect("roster includes the STGA")
        .clone();

    // Rank by α + β (holistic, smaller is better), STGA pinned first.
    let mut scored: Vec<(String, f64, f64)> = results
        .iter()
        .map(|o| {
            (
                o.scheduler_name.clone(),
                o.metrics.alpha_vs(&stga.metrics),
                o.metrics.beta_vs(&stga.metrics),
            )
        })
        .collect();
    let mut order: Vec<usize> = (0..scored.len()).collect();
    order.sort_by(|&a, &b| {
        let ka = scored[a].1 + scored[a].2;
        let kb = scored[b].1 + scored[b].2;
        ka.total_cmp(&kb)
    });
    let rank_of = |i: usize| order.iter().position(|&x| x == i).unwrap() + 1;

    let mut table = AsciiTable::new(vec!["heuristic", "alpha", "beta", "rank"]);
    for (i, (name, a, b)) in scored.iter().enumerate() {
        table.row(vec![
            name.clone(),
            format!("{a:.3}"),
            format!("{b:.3}"),
            ordinal(rank_of(i)),
        ]);
    }
    scored.sort_by(|x, y| (x.1 + x.2).total_cmp(&(y.1 + y.2)));
    println!();
    table.print();
    maybe_dump(&args.json, &records);
}

fn ordinal(n: usize) -> String {
    let suffix = match (n % 10, n % 100) {
        (1, 11) | (2, 12) | (3, 13) => "th",
        (1, _) => "st",
        (2, _) => "nd",
        (3, _) => "rd",
        _ => "th",
    };
    format!("{n}{suffix}")
}
