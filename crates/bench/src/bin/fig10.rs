//! Fig. 10: scaling the PSA workload over N ∈ {1000, 2000, 5000, 10000}
//! for the three best performers (Min-Min f-risky, Sufferage f-risky,
//! STGA) — (a) makespan, (b) N_fail / N_risk, (c) slowdown ratio,
//! (d) average response time.

use gridsec_bench::{
    make_stga, maybe_dump, print_header, psa_setup, psa_sim_config, replication_seeds, run_one,
    AsciiTable, BenchArgs, ExperimentRecord, MetricMeans,
};
use gridsec_core::RiskMode;
use gridsec_heuristics::{MinMin, Sufferage};
use gridsec_sim::{simulate, SimOutput};
use rayon::prelude::*;

const MODE: RiskMode = RiskMode::FRisky(RiskMode::PAPER_F);

/// The figure's three schedulers on one (N, seed) configuration, without
/// printing (replications run concurrently).
fn trio(n: usize, seed: u64) -> Vec<SimOutput> {
    let w = psa_setup(n, seed);
    let config = psa_sim_config(seed);
    let mut mm = MinMin::new(MODE);
    let mut sf = Sufferage::new(MODE);
    let mut stga = make_stga(&w.jobs, &w.grid, seed, 100, 8).expect("valid STGA params");
    vec![
        simulate(&w.jobs, &w.grid, &mut mm, &config).expect("simulation must drain"),
        simulate(&w.jobs, &w.grid, &mut sf, &config).expect("simulation must drain"),
        simulate(&w.jobs, &w.grid, &mut stga, &config).expect("simulation must drain"),
    ]
}

fn main() {
    let args = BenchArgs::parse();
    let sizes: Vec<usize> = if args.quick {
        vec![200, 500]
    } else {
        vec![1_000, 2_000, 5_000, 10_000]
    };
    if args.reps > 1 {
        run_replicated(&args, &sizes);
        return;
    }
    print_header(&format!("Fig. 10: PSA scaling, N in {sizes:?}"));

    let mode = MODE;
    let mut records: Vec<ExperimentRecord> = Vec::new();
    let mut rows: Vec<(usize, Vec<SimOutput>)> = Vec::new();
    for &n in &sizes {
        let w = psa_setup(n, args.seed);
        let config = psa_sim_config(args.seed);
        println!("\n-- N = {n} --");
        let mm = run_one(&w.jobs, &w.grid, &mut MinMin::new(mode), &config);
        let sf = run_one(&w.jobs, &w.grid, &mut Sufferage::new(mode), &config);
        let mut stga = make_stga(&w.jobs, &w.grid, args.seed, 100, 8).expect("valid STGA params");
        let st = run_one(&w.jobs, &w.grid, &mut stga, &config);
        for o in [&mm, &sf, &st] {
            records.push(ExperimentRecord::new(
                "fig10",
                format!("N={n} {}", o.scheduler_name),
                o.clone(),
            ));
        }
        rows.push((n, vec![mm, sf, st]));
    }

    for (title, f) in [
        (
            "(a) makespan (s)",
            metric_makespan as fn(&SimOutput) -> String,
        ),
        ("(b) Nfail / Nrisk", metric_fail_risk),
        ("(c) slowdown ratio", metric_slowdown),
        ("(d) avg response (s)", metric_response),
    ] {
        println!("\nFig. 10{title}");
        let mut table = AsciiTable::new(vec!["N", "Min-Min f-Risky", "Sufferage f-Risky", "STGA"]);
        for (n, outs) in &rows {
            table.row(vec![n.to_string(), f(&outs[0]), f(&outs[1]), f(&outs[2])]);
        }
        table.print();
    }
    maybe_dump(&args.json, &records);
}

/// `--reps R`: R independent replications per N, fanned out over the
/// thread pool, reported as means.
fn run_replicated(args: &BenchArgs, sizes: &[usize]) {
    print_header(&format!(
        "Fig. 10: PSA scaling, N in {sizes:?}, mean of {} replications",
        args.reps
    ));
    let seeds = replication_seeds(args.seed, args.reps);
    // One parallel task per (N, seed) pair: the pool load-balances the
    // mixed run lengths.
    let pairs: Vec<(usize, u64)> = sizes
        .iter()
        .flat_map(|&n| seeds.iter().map(move |&s| (n, s)))
        .collect();
    let runs: Vec<Vec<SimOutput>> = pairs.par_iter().map(|&(n, seed)| trio(n, seed)).collect();

    let mut records: Vec<ExperimentRecord> = Vec::new();
    for (pair, outs) in pairs.iter().zip(&runs) {
        for o in outs {
            records.push(ExperimentRecord::new(
                "fig10",
                format!("N={} seed={} {}", pair.0, pair.1, o.scheduler_name),
                o.clone(),
            ));
        }
    }

    type MeanFmt = fn(&MetricMeans) -> String;
    for (title, f) in [
        (
            "(a) makespan (s)",
            (|m| format!("{:.3e}", m.makespan)) as MeanFmt,
        ),
        ("(b) Nfail / Nrisk", |m| {
            format!("{:.1} / {:.1}", m.n_fail, m.n_risk)
        }),
        ("(c) slowdown ratio", |m| format!("{:.2}", m.slowdown)),
        ("(d) avg response (s)", |m| {
            format!("{:.3e}", m.avg_response)
        }),
    ] {
        println!("\nFig. 10{title}");
        let mut table = AsciiTable::new(vec!["N", "Min-Min f-Risky", "Sufferage f-Risky", "STGA"]);
        for &n in sizes {
            let mut cells = vec![n.to_string()];
            for algo in 0..3 {
                let m = MetricMeans::of(
                    pairs
                        .iter()
                        .zip(&runs)
                        .filter(|((pn, _), _)| *pn == n)
                        .map(|(_, outs)| &outs[algo]),
                );
                cells.push(f(&m));
            }
            table.row(cells);
        }
        table.print();
    }
    maybe_dump(&args.json, &records);
}

fn metric_makespan(o: &SimOutput) -> String {
    format!("{:.3e}", o.metrics.makespan.seconds())
}
fn metric_fail_risk(o: &SimOutput) -> String {
    format!("{} / {}", o.metrics.n_fail, o.metrics.n_risk)
}
fn metric_slowdown(o: &SimOutput) -> String {
    format!("{:.2}", o.metrics.slowdown_ratio)
}
fn metric_response(o: &SimOutput) -> String {
    format!("{:.3e}", o.metrics.avg_response)
}
