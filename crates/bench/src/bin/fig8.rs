//! Fig. 8: the seven-algorithm comparison on the NAS trace workload —
//! (a) makespan, (b) N_fail / N_risk, (c) slowdown ratio, (d) average
//! response time.

use gridsec_bench::{
    maybe_dump, nas_setup, nas_sim_config, paper_schedulers, print_header, run_one, AsciiTable,
    BenchArgs, ExperimentRecord,
};

fn main() {
    let args = BenchArgs::parse();
    let n = if args.quick { 1_000 } else { 16_000 };
    let w = nas_setup(n, args.seed);
    let config = nas_sim_config(args.seed);
    print_header(&format!(
        "Fig. 8: seven algorithms on the NAS trace (N = {n})"
    ));

    let mut records = Vec::new();
    let mut table = AsciiTable::new(vec![
        "algorithm",
        "makespan (s)",
        "Nfail",
        "Nrisk",
        "slowdown",
        "avg response (s)",
    ]);
    for mut s in paper_schedulers(&w.jobs, &w.grid, args.seed, 15) {
        let out = run_one(&w.jobs, &w.grid, s.as_mut(), &config);
        table.row(vec![
            out.scheduler_name.clone(),
            format!("{:.3e}", out.metrics.makespan.seconds()),
            out.metrics.n_fail.to_string(),
            out.metrics.n_risk.to_string(),
            format!("{:.2}", out.metrics.slowdown_ratio),
            format!("{:.3e}", out.metrics.avg_response),
        ]);
        records.push(ExperimentRecord::new(
            "fig8",
            out.scheduler_name.clone(),
            out,
        ));
    }
    println!();
    table.print();

    // The paper's headline claims, restated against this run.
    let find = |name: &str| {
        records
            .iter()
            .find(|r| r.output.scheduler_name == name)
            .map(|r| &r.output.metrics)
    };
    if let (Some(stga), Some(mm_risky), Some(mm_sec)) =
        (find("STGA"), find("Min-Min Risky"), find("Min-Min Secure"))
    {
        println!(
            "\nSTGA vs Min-Min Risky : makespan {:+.1}%  response {:+.1}%",
            100.0 * (mm_risky.makespan.seconds() / stga.makespan.seconds() - 1.0),
            100.0 * (mm_risky.avg_response / stga.avg_response - 1.0),
        );
        println!(
            "STGA vs Min-Min Secure: makespan {:+.1}%  response {:+.1}%",
            100.0 * (mm_sec.makespan.seconds() / stga.makespan.seconds() - 1.0),
            100.0 * (mm_sec.avg_response / stga.avg_response - 1.0),
        );
    }
    maybe_dump(&args.json, &records);
}
