//! Fig. 8: the seven-algorithm comparison on the NAS trace workload —
//! (a) makespan, (b) N_fail / N_risk, (c) slowdown ratio, (d) average
//! response time.

use gridsec_bench::{
    maybe_dump, nas_setup, nas_sim_config, paper_schedulers, print_header, replicate,
    replication_seeds, run_one, AsciiTable, BenchArgs, ExperimentRecord, MetricMeans,
};
use gridsec_sim::{simulate, SimOutput};

fn main() {
    let args = BenchArgs::parse();
    let n = if args.quick { 1_000 } else { 16_000 };
    if args.reps > 1 {
        run_replicated(&args, n);
        return;
    }
    let w = nas_setup(n, args.seed);
    let config = nas_sim_config(args.seed);
    print_header(&format!(
        "Fig. 8: seven algorithms on the NAS trace (N = {n})"
    ));

    let mut records = Vec::new();
    let mut table = AsciiTable::new(vec![
        "algorithm",
        "makespan (s)",
        "Nfail",
        "Nrisk",
        "slowdown",
        "avg response (s)",
    ]);
    for mut s in paper_schedulers(&w.jobs, &w.grid, args.seed, 15) {
        let out = run_one(&w.jobs, &w.grid, s.as_mut(), &config);
        table.row(vec![
            out.scheduler_name.clone(),
            format!("{:.3e}", out.metrics.makespan.seconds()),
            out.metrics.n_fail.to_string(),
            out.metrics.n_risk.to_string(),
            format!("{:.2}", out.metrics.slowdown_ratio),
            format!("{:.3e}", out.metrics.avg_response),
        ]);
        records.push(ExperimentRecord::new(
            "fig8",
            out.scheduler_name.clone(),
            out,
        ));
    }
    println!();
    table.print();

    // The paper's headline claims, restated against this run.
    let find = |name: &str| {
        records
            .iter()
            .find(|r| r.output.scheduler_name == name)
            .map(|r| &r.output.metrics)
    };
    if let (Some(stga), Some(mm_risky), Some(mm_sec)) =
        (find("STGA"), find("Min-Min Risky"), find("Min-Min Secure"))
    {
        println!(
            "\nSTGA vs Min-Min Risky : makespan {:+.1}%  response {:+.1}%",
            100.0 * (mm_risky.makespan.seconds() / stga.makespan.seconds() - 1.0),
            100.0 * (mm_risky.avg_response / stga.avg_response - 1.0),
        );
        println!(
            "STGA vs Min-Min Secure: makespan {:+.1}%  response {:+.1}%",
            100.0 * (mm_sec.makespan.seconds() / stga.makespan.seconds() - 1.0),
            100.0 * (mm_sec.avg_response / stga.avg_response - 1.0),
        );
    }
    maybe_dump(&args.json, &records);
}

/// `--reps R`: R independent replications (fresh workload + failure seeds
/// per replication) fanned out over the thread pool, reported as means.
fn run_replicated(args: &BenchArgs, n: usize) {
    print_header(&format!(
        "Fig. 8: seven algorithms on the NAS trace (N = {n}, mean of {} replications)",
        args.reps
    ));
    let seeds = replication_seeds(args.seed, args.reps);
    let runs: Vec<Vec<SimOutput>> = replicate(&seeds, |seed| {
        let w = nas_setup(n, seed);
        let config = nas_sim_config(seed);
        paper_schedulers(&w.jobs, &w.grid, seed, 15)
            .into_iter()
            .map(|mut s| {
                simulate(&w.jobs, &w.grid, s.as_mut(), &config).expect("simulation must drain")
            })
            .collect()
    });

    let mut records = Vec::new();
    let mut table = AsciiTable::new(vec![
        "algorithm",
        "makespan (s)",
        "Nfail",
        "Nrisk",
        "slowdown",
        "avg response (s)",
    ]);
    for i in 0..runs[0].len() {
        let m = MetricMeans::of(runs.iter().map(|r| &r[i]));
        table.row(vec![
            runs[0][i].scheduler_name.clone(),
            format!("{:.3e}", m.makespan),
            format!("{:.1}", m.n_fail),
            format!("{:.1}", m.n_risk),
            format!("{:.2}", m.slowdown),
            format!("{:.3e}", m.avg_response),
        ]);
        for (run, &seed) in runs.iter().zip(&seeds) {
            records.push(ExperimentRecord::new(
                "fig8",
                format!("{} seed={seed}", run[i].scheduler_name),
                run[i].clone(),
            ));
        }
    }
    println!();
    table.print();
    maybe_dump(&args.json, &records);
}
