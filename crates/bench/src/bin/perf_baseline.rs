//! Reproducible perf baseline: times the workspace's dominant parallel
//! workloads at 1, 2 and N threads, times the optimized hot paths
//! against their pre-refactor reference implementations, and writes the
//! whole report to `BENCH_PR6.json` (override with `--json <path>`).
//!
//! The three speedup workloads mirror where the paper's experiments spend
//! their time:
//!
//! 1. **STGA population fitness evaluation** — the GA hot path
//!    (`par_iter().map_init(evaluate_with_scratch)` over the population).
//! 2. **A fig5-style sweep** — conventional GA vs STGA over a sequence of
//!    PSA batches (whole-scheduler wall-clock, parallel fitness inside).
//! 3. **A multi-seed sim replication batch** — independent PSA
//!    simulations fanned out per seed, the outer loop of every averaged
//!    figure.
//!
//! The before/after section covers the optimized hot paths:
//!
//! * the GA evolve loop (double-buffered populations + reusable roulette
//!   table, and — since PR 6 — compiled-kernel fitness with parent-patch
//!   children, vs the old allocate-per-generation loop),
//! * the compiled fitness kernel (flat SoA replay vs the object-graph
//!   walk) and its delta (parent-patch) evaluation vs a full replay,
//! * Min-Min and Sufferage mapping (invalidation caching + deterministic
//!   parallel argmin vs the textbook O(n²·m) rescan),
//! * history-table lookup (bucketed by batch-size signature vs the
//!   linear scan),
//! * `BatchSchedule::site_of` (indexed vs linear queries).
//!
//! Every measurement asserts the optimized path's output is bit-identical
//! to its reference before reporting a time; every speedup workload is
//! checked for thread-count independence.
//!
//! Run `--quick` for a smoke-sized configuration (CI) and `--threads <n>`
//! to set the largest measured thread count.

use gridsec_bench::{psa_setup, replicate, replication_seeds, BenchArgs};
use gridsec_core::etc::{EtcMatrix, NodeAvailability};
use gridsec_core::rng::{stream, Stream};
use gridsec_core::{BatchSchedule, JobId, RiskMode, SecurityModel, SiteId, Time};
use gridsec_heuristics::common::MapCtx;
use gridsec_heuristics::mapping;
use gridsec_heuristics::MinMin;
use gridsec_sim::{simulate, BatchJob, BatchScheduler, GridView};
use gridsec_stga::fitness::{evaluate_with_scratch, FitnessKind, DEFAULT_FLOW_WEIGHT};
use gridsec_stga::history::{BatchSignature, HistoryTable};
use gridsec_stga::ops::{crossover, mutate};
use gridsec_stga::selection::{elite_indices, RouletteWheel};
use gridsec_stga::{
    evolve, evolve_with_pool, Chromosome, FitnessKernel, GaParams, GaPool, KernelScratch,
    StandardGa, Stga, StgaParams,
};
use rand::Rng;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Counts heap allocations so hot-path rows can report an exact,
/// noise-free allocation delta alongside wall-clock (the GA evolve loop's
/// win is chiefly allocation reuse, which 1-core wall-clock under-states).
struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

#[allow(unsafe_code)]
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// Allocations performed while running `work`.
fn count_allocs<R>(work: impl FnOnce() -> R) -> (u64, R) {
    let start = ALLOCATIONS.load(Ordering::Relaxed);
    let r = work();
    (ALLOCATIONS.load(Ordering::Relaxed) - start, r)
}

/// A low-level mapping entry point (Min-Min / Max-Min / Sufferage).
type MapFn = fn(&MapCtx, &mut [NodeAvailability]) -> Vec<(usize, usize)>;

/// One workload timed at one thread count.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct RunTiming {
    threads: usize,
    /// Best-of-two wall-clock seconds.
    secs: f64,
    /// `secs(1 thread) / secs(this run)`.
    speedup_vs_1_thread: f64,
}

/// The speedup curve of one workload.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct WorkloadReport {
    name: String,
    params: String,
    runs: Vec<RunTiming>,
    /// Result digests at every thread count matched the 1-thread run bit
    /// for bit.
    deterministic: bool,
}

/// One optimized hot path timed against its pre-refactor reference.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct HotPathReport {
    name: String,
    params: String,
    /// Best-of-two wall-clock seconds of the pre-refactor reference path.
    before_secs: f64,
    /// Best-of-two wall-clock seconds of the optimized path.
    after_secs: f64,
    /// `before_secs / after_secs`.
    speedup: f64,
    /// Heap allocations of one reference run (exact, noise-free).
    before_allocs: u64,
    /// Heap allocations of one optimized run.
    after_allocs: u64,
    /// `before_allocs / after_allocs`.
    alloc_ratio: f64,
    /// Output digests of both paths matched bit for bit.
    equivalent: bool,
    note: String,
}

/// The whole `BENCH_PR6.json` document.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct PerfReport {
    schema: String,
    command: String,
    host_available_parallelism: usize,
    thread_counts: Vec<usize>,
    workloads: Vec<WorkloadReport>,
    hot_paths: Vec<HotPathReport>,
    note: String,
}

/// Sizing knobs for full vs `--quick` runs.
struct Sizes {
    population: usize,
    eval_jobs: usize,
    eval_sites: usize,
    eval_iters: usize,
    sweep_rounds: usize,
    sweep_generations: usize,
    sweep_population: usize,
    rep_seeds: usize,
    rep_jobs: usize,
    ga_population: usize,
    ga_generations: usize,
    ga_jobs: usize,
    ga_sites: usize,
    map_jobs: usize,
    map_sites: usize,
    map_iters: usize,
    lookup_entries: usize,
    lookup_queries: usize,
    site_assignments: usize,
    site_queries: usize,
}

impl Sizes {
    fn new(quick: bool) -> Sizes {
        if quick {
            Sizes {
                population: 96,
                eval_jobs: 32,
                eval_sites: 12,
                eval_iters: 5,
                sweep_rounds: 3,
                sweep_generations: 15,
                sweep_population: 60,
                rep_seeds: 3,
                rep_jobs: 120,
                ga_population: 60,
                ga_generations: 12,
                ga_jobs: 16,
                ga_sites: 6,
                map_jobs: 40,
                map_sites: 8,
                map_iters: 2,
                lookup_entries: 150,
                lookup_queries: 40,
                site_assignments: 400,
                site_queries: 2_000,
            }
        } else {
            Sizes {
                population: 512,
                eval_jobs: 96,
                eval_sites: 20,
                eval_iters: 120,
                sweep_rounds: 8,
                sweep_generations: 80,
                sweep_population: 200,
                rep_seeds: 8,
                rep_jobs: 1_000,
                ga_population: 200,
                ga_generations: 60,
                ga_jobs: 32,
                ga_sites: 12,
                map_jobs: 160,
                map_sites: 16,
                map_iters: 3,
                lookup_entries: 150,
                lookup_queries: 300,
                site_assignments: 4_000,
                site_queries: 20_000,
            }
        }
    }
}

fn main() {
    let args = BenchArgs::parse();
    args.warn_unused_reps("perf_baseline");
    let sizes = Sizes::new(args.quick);
    let host = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let max_threads = args.threads.unwrap_or(host);
    let mut thread_counts: Vec<usize> = [1, 2, max_threads]
        .into_iter()
        .filter(|&t| t <= max_threads)
        .collect();
    thread_counts.sort_unstable();
    thread_counts.dedup();

    println!(
        "perf baseline: thread counts {thread_counts:?} (host parallelism {host}), seed {}{}",
        args.seed,
        if args.quick { ", quick" } else { "" },
    );

    let workloads: Vec<WorkloadReport> = vec![
        time_workload(
            "stga_fitness_eval",
            format!(
                "population={} jobs={} sites={} iters={}",
                sizes.population, sizes.eval_jobs, sizes.eval_sites, sizes.eval_iters
            ),
            &thread_counts,
            || fitness_eval_workload(&sizes, args.seed),
        ),
        time_workload(
            "fig5_sweep",
            format!(
                "rounds={} batch=12 population={} generations={}",
                sizes.sweep_rounds, sizes.sweep_population, sizes.sweep_generations
            ),
            &thread_counts,
            || fig5_sweep_workload(&sizes, args.seed),
        ),
        time_workload(
            "sim_replication_batch",
            format!("seeds={} psa_jobs={}", sizes.rep_seeds, sizes.rep_jobs),
            &thread_counts,
            || replication_workload(&sizes, args.seed),
        ),
        time_workload(
            "stga_kernel_eval",
            format!(
                "population={} jobs={} sites={} iters={}",
                sizes.population, sizes.eval_jobs, sizes.eval_sites, sizes.eval_iters
            ),
            &thread_counts,
            || kernel_eval_workload(&sizes, args.seed),
        ),
    ];

    println!("hot paths (optimized vs pre-refactor reference):");
    let hot_paths = vec![
        ga_evolve_hot_path(&sizes, args.seed),
        population_pool_hot_path(&sizes, args.seed),
        fitness_kernel_hot_path(&sizes, args.seed),
        delta_eval_hot_path(&sizes, args.seed),
        mapping_hot_path(
            "minmin_mapping",
            &sizes,
            args.seed,
            mapping::map_min_min,
            mapping::reference::map_min_min,
        ),
        mapping_hot_path(
            "sufferage_mapping",
            &sizes,
            args.seed,
            mapping::map_sufferage,
            mapping::reference::map_sufferage,
        ),
        history_lookup_hot_path(&sizes),
        site_of_hot_path(&sizes),
    ];

    let report = PerfReport {
        schema: "gridsec-perf-baseline/v3".to_string(),
        command: format!(
            "perf_baseline{} --seed {} --threads {max_threads}",
            if args.quick { " --quick" } else { "" },
            args.seed
        ),
        host_available_parallelism: host,
        thread_counts: thread_counts.clone(),
        workloads,
        hot_paths,
        note: "Wall-clock is best-of-two per thread count; speedups are relative to the \
               1-thread run, which executes the strictly sequential code path. Absolute \
               speedup is bounded by the host's available parallelism. Hot-path rows \
               time each rewrite against its retained pre-refactor reference on the \
               current pool, asserting bit-identical output first."
            .to_string(),
    };

    let path = args.json.clone().unwrap_or_else(|| "BENCH_PR6.json".into());
    let json = serde_json::to_string_pretty(&report).expect("report serialises");
    std::fs::write(&path, json).expect("write perf report");
    println!("[wrote {path}]");
}

/// Times `work` at every thread count (dedicated pools, best of two runs)
/// and verifies the result digest never changes.
fn time_workload(
    name: &str,
    params: String,
    thread_counts: &[usize],
    work: impl Fn() -> u64,
) -> WorkloadReport {
    let mut runs: Vec<RunTiming> = Vec::new();
    let mut digests: Vec<u64> = Vec::new();
    for &t in thread_counts {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(t)
            .build()
            .expect("pool builds");
        let mut best = f64::INFINITY;
        let mut digest = 0;
        for _ in 0..2 {
            let start = Instant::now();
            digest = pool.install(&work);
            best = best.min(start.elapsed().as_secs_f64());
        }
        digests.push(digest);
        let base = runs.first().map_or(best, |r: &RunTiming| r.secs);
        runs.push(RunTiming {
            threads: t,
            secs: best,
            speedup_vs_1_thread: base / best,
        });
        println!(
            "  {name:>22} @ {t} thread(s): {best:.3}s (x{:.2})",
            base / best
        );
    }
    let deterministic = digests.iter().all(|&d| d == digests[0]);
    assert!(
        deterministic,
        "{name}: results changed with thread count ({digests:?})"
    );
    WorkloadReport {
        name: name.to_string(),
        params,
        runs,
        deterministic,
    }
}

/// Folds a float sequence into an order-sensitive digest of exact bits.
fn digest_f64(acc: u64, x: f64) -> u64 {
    acc.rotate_left(7) ^ x.to_bits()
}

/// Workload 1: repeated rayon-parallel population fitness evaluation on a
/// synthetic batch — exactly the GA engine's `eval_all` hot path.
fn fitness_eval_workload(sizes: &Sizes, seed: u64) -> u64 {
    let n = sizes.eval_jobs;
    let m = sizes.eval_sites;
    let etc: Vec<f64> = (0..n * m).map(|i| 10.0 + ((i * 31) % 97) as f64).collect();
    let ctx = MapCtx {
        etc: EtcMatrix::from_raw(n, m, etc),
        widths: vec![1; n],
        arrivals: vec![Time::ZERO; n],
        candidates: vec![(0..m).collect(); n],
        now: Time::ZERO,
        commit_order: vec![],
    };
    let avail = vec![NodeAvailability::new(2, Time::ZERO); m];
    let mut rng = stream(seed, Stream::Genetic);
    let population: Vec<Chromosome> = (0..sizes.population)
        .map(|_| Chromosome::random(&ctx.candidates, &mut rng))
        .collect();

    let mut digest = 0;
    for _ in 0..sizes.eval_iters {
        let fitness: Vec<f64> = population
            .par_iter()
            .map_init(Vec::new, |scratch, c| {
                evaluate_with_scratch(
                    &ctx,
                    &avail,
                    scratch,
                    c,
                    FitnessKind::Makespan,
                    None,
                    DEFAULT_FLOW_WEIGHT,
                )
            })
            .collect();
        digest = fitness.iter().fold(digest, |a, &f| digest_f64(a, f));
    }
    digest
}

/// Workload 4 (PR 6): the same population evaluation as workload 1, but
/// through the compiled SoA kernel — the GA engine's current eval path.
/// [`time_workload`] asserts the digest is bit-identical at every thread
/// count, so this row doubles as the kernel's determinism smoke in CI.
fn kernel_eval_workload(sizes: &Sizes, seed: u64) -> u64 {
    let n = sizes.eval_jobs;
    let m = sizes.eval_sites;
    let etc: Vec<f64> = (0..n * m).map(|i| 10.0 + ((i * 31) % 97) as f64).collect();
    let ctx = MapCtx {
        etc: EtcMatrix::from_raw(n, m, etc),
        widths: vec![1; n],
        arrivals: vec![Time::ZERO; n],
        candidates: vec![(0..m).collect(); n],
        now: Time::ZERO,
        commit_order: vec![],
    };
    let avail = vec![NodeAvailability::new(2, Time::ZERO); m];
    let mut rng = stream(seed, Stream::Genetic);
    let population: Vec<Chromosome> = (0..sizes.population)
        .map(|_| Chromosome::random(&ctx.candidates, &mut rng))
        .collect();
    let kernel = FitnessKernel::compile(
        &ctx,
        &avail,
        FitnessKind::Makespan,
        None,
        DEFAULT_FLOW_WEIGHT,
    );

    let mut digest = 0;
    for _ in 0..sizes.eval_iters {
        let fitness: Vec<f64> = population
            .par_iter()
            .map_init(
                <(KernelScratch, Vec<Time>)>::default,
                |(scratch, cts), c| kernel.evaluate_full(c.genes(), cts, scratch),
            )
            .collect();
        digest = fitness.iter().fold(digest, |a, &f| digest_f64(a, f));
    }
    digest
}

/// Workload 2: the fig5 round loop — conventional GA and STGA scheduling
/// a sequence of similar PSA batches.
fn fig5_sweep_workload(sizes: &Sizes, seed: u64) -> u64 {
    let batch_size = 12;
    let w = psa_setup(sizes.sweep_rounds * batch_size, seed);
    let ga_params = GaParams::default()
        .with_population(sizes.sweep_population)
        .with_generations(sizes.sweep_generations)
        .with_seed(seed);
    let mut ga = StandardGa::new(ga_params).expect("valid GA params");
    let mut stga = Stga::new(StgaParams {
        ga: ga_params,
        ..StgaParams::default()
    })
    .expect("valid STGA params");
    let avail: Vec<NodeAvailability> = w
        .grid
        .sites()
        .map(|s| NodeAvailability::new(s.nodes, Time::ZERO))
        .collect();

    let mut digest = 0;
    for r in 0..sizes.sweep_rounds {
        let batch: Vec<BatchJob> = w.jobs[r * batch_size..(r + 1) * batch_size]
            .iter()
            .cloned()
            .map(|job| BatchJob {
                job,
                secure_only: false,
            })
            .collect();
        let view = GridView {
            grid: &w.grid,
            avail: &avail,
            now: Time::ZERO,
            model: SecurityModel::default(),
        };
        let _ = ga.schedule(&batch, &view);
        let _ = stga.schedule(&batch, &view);
        for t in [ga.last_trajectory(), stga.last_trajectory()] {
            let t = t.expect("scheduler ran");
            digest = digest_f64(digest, t[0]);
            digest = digest_f64(digest, t[t.len() - 1]);
        }
    }
    digest
}

/// Times `before` and `after` (best of two runs each), asserts their
/// digests match, and assembles the report row.
fn time_hot_path(
    name: &str,
    params: String,
    note: &str,
    before: impl Fn() -> u64,
    after: impl Fn() -> u64,
) -> HotPathReport {
    let measure = |work: &dyn Fn() -> u64| {
        let mut best = f64::INFINITY;
        let mut digest = 0;
        for _ in 0..2 {
            let start = Instant::now();
            digest = work();
            best = best.min(start.elapsed().as_secs_f64());
        }
        let (allocs, _) = count_allocs(work);
        (best, allocs, digest)
    };
    let (before_secs, before_allocs, before_digest) = measure(&before);
    let (after_secs, after_allocs, after_digest) = measure(&after);
    assert_eq!(
        before_digest, after_digest,
        "{name}: optimized path diverged from the reference"
    );
    let speedup = before_secs / after_secs;
    let alloc_ratio = before_allocs as f64 / (after_allocs.max(1)) as f64;
    println!(
        "  {name:>22}: before {before_secs:.4}s / {before_allocs} allocs, \
         after {after_secs:.4}s / {after_allocs} allocs (x{speedup:.2} time, x{alloc_ratio:.2} allocs)"
    );
    HotPathReport {
        name: name.to_string(),
        params,
        before_secs,
        after_secs,
        speedup,
        before_allocs,
        after_allocs,
        alloc_ratio,
        equivalent: true,
        note: note.to_string(),
    }
}

/// A deterministic synthetic mapping instance shared by the GA and
/// heuristic hot-path rows. Candidate lists are security-style
/// restricted (roughly half the sites per job, never empty) — the shape
/// `MapCtx::build` produces under the paper's risk modes, and the regime
/// where invalidation caching pays off.
fn hot_path_ctx(n: usize, m: usize) -> (MapCtx, Vec<NodeAvailability>) {
    let etc: Vec<f64> = (0..n * m)
        .map(|i| 5.0 + ((i * 131 + 17) % 251) as f64)
        .collect();
    let candidates: Vec<Vec<usize>> = (0..n)
        .map(|j| {
            let mut c: Vec<usize> = (0..m).filter(|&s| (j * 7 + s * 13) % 2 == 0).collect();
            if c.is_empty() {
                c.push(j % m);
            }
            c
        })
        .collect();
    let ctx = MapCtx {
        etc: EtcMatrix::from_raw(n, m, etc),
        widths: vec![1; n],
        arrivals: vec![Time::ZERO; n],
        candidates,
        now: Time::ZERO,
        commit_order: vec![],
    };
    let avail = vec![NodeAvailability::new(2, Time::ZERO); m];
    (ctx, avail)
}

/// A mapping instance in the paper's *multi-node* grid shape: 16-node
/// sites and job widths cycling 1..=8, so each commit reorders a
/// meaningful slice of a site's free-time vector. This is the regime the
/// compiled kernel's merge-rotate commit and delta evaluation target (the
/// PSA grids of the experiments have tens of nodes per site); the
/// GA/kernel hot-path rows use it, while the heuristic rows keep the
/// width-1 [`hot_path_ctx`] shape they have always measured.
fn wide_ctx(n: usize, m: usize) -> (MapCtx, Vec<NodeAvailability>) {
    let etc: Vec<f64> = (0..n * m)
        .map(|i| 5.0 + ((i * 131 + 17) % 251) as f64)
        .collect();
    let candidates: Vec<Vec<usize>> = (0..n)
        .map(|j| {
            let mut c: Vec<usize> = (0..m).filter(|&s| (j * 7 + s * 13) % 2 == 0).collect();
            if c.is_empty() {
                c.push(j % m);
            }
            c
        })
        .collect();
    let ctx = MapCtx {
        etc: EtcMatrix::from_raw(n, m, etc),
        widths: (0..n).map(|j| 1 + (j % 8) as u32).collect(),
        arrivals: vec![Time::ZERO; n],
        candidates,
        now: Time::ZERO,
        commit_order: vec![],
    };
    let avail = vec![NodeAvailability::new(16, Time::ZERO); m];
    (ctx, avail)
}

/// The pre-PR3 GA generation loop, reconstructed from the same public
/// building blocks: a fresh next-population `Vec`, a fresh roulette
/// table and a fresh elite-index `Vec` every generation, fitness
/// collected into a new buffer. RNG consumption is identical to
/// [`evolve`], so both produce the same result for the same seed.
fn old_evolve_digest(
    ctx: &MapCtx,
    avail: &[NodeAvailability],
    params: &GaParams,
    seed: u64,
) -> u64 {
    let mut rng = stream(seed, Stream::Genetic);
    let mut population: Vec<Chromosome> = Vec::new();
    while population.len() < params.population {
        population.push(Chromosome::random(&ctx.candidates, &mut rng));
    }
    let eval_all = |pop: &[Chromosome]| -> Vec<f64> {
        pop.par_iter()
            .map_init(Vec::new, |scratch, c| {
                evaluate_with_scratch(
                    ctx,
                    avail,
                    scratch,
                    c,
                    FitnessKind::Makespan,
                    None,
                    params.flow_weight,
                )
            })
            .collect()
    };
    let current_best = |fitness: &[f64]| {
        let mut bi = 0;
        for i in 1..fitness.len() {
            if fitness[i] < fitness[bi] {
                bi = i;
            }
        }
        bi
    };
    let mut fitness = eval_all(&population);
    let bi = current_best(&fitness);
    let mut best = population[bi].clone();
    let mut best_fitness = fitness[bi];
    let mut trajectory = vec![best_fitness];
    for _ in 0..params.generations {
        let wheel = RouletteWheel::build(&fitness);
        let mut next: Vec<Chromosome> = elite_indices(&fitness, params.elitism)
            .into_iter()
            .map(|i| population[i].clone())
            .collect();
        while next.len() < params.population {
            let pa = &population[wheel.spin(&mut rng)];
            let pb = &population[wheel.spin(&mut rng)];
            let (mut ca, mut cb) = if rng.gen::<f64>() < params.crossover_prob {
                crossover(pa, pb, &mut rng)
            } else {
                (pa.clone(), pb.clone())
            };
            if rng.gen::<f64>() < params.mutation_prob {
                mutate(&mut ca, &ctx.candidates, &mut rng);
            }
            if rng.gen::<f64>() < params.mutation_prob {
                mutate(&mut cb, &ctx.candidates, &mut rng);
            }
            next.push(ca);
            if next.len() < params.population {
                next.push(cb);
            }
        }
        population = next;
        fitness = eval_all(&population);
        let gi = current_best(&fitness);
        if fitness[gi] < best_fitness {
            best = population[gi].clone();
            best_fitness = fitness[gi];
        }
        trajectory.push(best_fitness);
    }
    let mut d = digest_f64(0, best_fitness);
    for &g in best.genes() {
        d = digest_f64(d, g as f64);
    }
    trajectory.iter().fold(d, |a, &t| digest_f64(a, t))
}

/// Hot path 1: the full GA evolve loop, double-buffered vs
/// allocate-per-generation.
fn ga_evolve_hot_path(sizes: &Sizes, seed: u64) -> HotPathReport {
    let (ctx, avail) = wide_ctx(sizes.ga_jobs, sizes.ga_sites);
    let params = GaParams::default()
        .with_population(sizes.ga_population)
        .with_generations(sizes.ga_generations)
        .with_seed(seed);
    time_hot_path(
        "ga_evolve_loop",
        format!(
            "population={} generations={} jobs={} sites={} nodes=16 widths=1..8",
            sizes.ga_population, sizes.ga_generations, sizes.ga_jobs, sizes.ga_sites
        ),
        "Double-buffered populations, recycled buffers, and (PR 6) compiled-kernel fitness \
         with inherit/delta plans for untouched and lightly-touched children vs the old \
         fresh-allocation generation loop over the object-graph evaluator.",
        || old_evolve_digest(&ctx, &avail, &params, seed),
        || {
            let mut rng = stream(seed, Stream::Genetic);
            let r = evolve(
                &ctx,
                &avail,
                vec![],
                &params,
                FitnessKind::Makespan,
                None,
                &mut rng,
            );
            let mut d = digest_f64(0, r.best_fitness);
            for &g in r.best.genes() {
                d = digest_f64(d, g as f64);
            }
            r.trajectory.iter().fold(d, |a, &t| digest_f64(a, t))
        },
    )
}

/// Hot path 1b (PR 4): the cross-round population pool. `before` runs
/// [`evolve`] with a cold pool per round — the daemon-before-PR4 shape,
/// where every scheduling round pays the initial random population and
/// buffer warm-up — and `after` reuses one [`GaPool`] across the same
/// rounds. Outputs are asserted bit-identical, and the warm path must cut
/// allocations by at least 4× (the ROADMAP's "amortise the remaining
/// ~1.4k allocations per GA run" item).
fn population_pool_hot_path(sizes: &Sizes, seed: u64) -> HotPathReport {
    let (ctx, avail) = hot_path_ctx(sizes.ga_jobs, sizes.ga_sites);
    let params = GaParams::default()
        .with_population(sizes.ga_population)
        .with_generations(sizes.ga_generations)
        .with_seed(seed);
    let rounds = 4;
    // The pool is warmed by one throwaway round before measurement — the
    // daemon's steady state, where every round reuses warm buffers.
    let warm_pool = std::cell::RefCell::new(GaPool::new());
    {
        let mut rng = stream(seed, Stream::Genetic);
        let _ = evolve_with_pool(
            &ctx,
            &avail,
            vec![],
            &params,
            FitnessKind::Makespan,
            None,
            &mut rng,
            &mut warm_pool.borrow_mut(),
        );
    }
    let digest_of = |r: &gridsec_stga::GaResult| {
        let mut d = digest_f64(0, r.best_fitness);
        for &g in r.best.genes() {
            d = digest_f64(d, g as f64);
        }
        r.trajectory.iter().fold(d, |a, &t| digest_f64(a, t))
    };
    let report = time_hot_path(
        "population_pool",
        format!(
            "rounds={rounds} population={} generations={} jobs={} sites={}",
            sizes.ga_population, sizes.ga_generations, sizes.ga_jobs, sizes.ga_sites
        ),
        "One GaPool reused across scheduling rounds (the long-lived daemon scheduler) vs \
         a cold pool per round: the initial random population and generation buffers are \
         recycled instead of reallocated.",
        || {
            let mut d = 0;
            for round in 0..rounds {
                let mut rng = stream(seed + round, Stream::Genetic);
                let r = evolve(
                    &ctx,
                    &avail,
                    vec![],
                    &params,
                    FitnessKind::Makespan,
                    None,
                    &mut rng,
                );
                d = digest_f64(d, digest_of(&r) as f64);
            }
            d
        },
        || {
            let mut pool = warm_pool.borrow_mut();
            let mut d = 0;
            for round in 0..rounds {
                let mut rng = stream(seed + round, Stream::Genetic);
                let r = evolve_with_pool(
                    &ctx,
                    &avail,
                    vec![],
                    &params,
                    FitnessKind::Makespan,
                    None,
                    &mut rng,
                    &mut pool,
                );
                d = digest_f64(d, digest_of(&r) as f64);
            }
            d
        },
    );
    assert!(
        report.after_allocs * 4 <= report.before_allocs,
        "population pool must cut allocations ≥ 4× (before {}, after {})",
        report.before_allocs,
        report.after_allocs
    );
    report
}

/// Hot path 1c (PR 6): raw population fitness evaluation — the compiled
/// SoA kernel's flat replay vs the object-graph walk over
/// `NodeAvailability` structs. One compile amortised over the whole
/// population, exactly the per-round shape inside the GA engine.
fn fitness_kernel_hot_path(sizes: &Sizes, seed: u64) -> HotPathReport {
    let (ctx, avail) = wide_ctx(sizes.eval_jobs, sizes.eval_sites);
    let mut rng = stream(seed, Stream::Genetic);
    let population: Vec<Chromosome> = (0..sizes.population)
        .map(|_| Chromosome::random(&ctx.candidates, &mut rng))
        .collect();
    let iters = sizes.eval_iters;
    time_hot_path(
        "fitness_kernel",
        format!(
            "population={} jobs={} sites={} nodes=16 widths=1..8 iters={}",
            sizes.population, sizes.eval_jobs, sizes.eval_sites, iters
        ),
        "Grid + trust + security snapshot lowered once into flat SoA planes (effective-time \
         table, floors, widths, base free-times); evaluation is index arithmetic over \
         slices vs rebuilding per-site availability objects per chromosome.",
        || {
            let mut scratch = Vec::new();
            let mut d = 0;
            for _ in 0..iters {
                for c in &population {
                    let f = evaluate_with_scratch(
                        &ctx,
                        &avail,
                        &mut scratch,
                        c,
                        FitnessKind::Makespan,
                        None,
                        DEFAULT_FLOW_WEIGHT,
                    );
                    d = digest_f64(d, f);
                }
            }
            d
        },
        || {
            let kernel = FitnessKernel::compile(
                &ctx,
                &avail,
                FitnessKind::Makespan,
                None,
                DEFAULT_FLOW_WEIGHT,
            );
            let mut scratch = KernelScratch::default();
            let mut cts = Vec::new();
            let mut d = 0;
            for _ in 0..iters {
                for c in &population {
                    let f = kernel.evaluate_full(c.genes(), &mut cts, &mut scratch);
                    d = digest_f64(d, f);
                }
            }
            d
        },
    )
}

/// Hot path 1d (PR 6): delta (parent-patch) evaluation of GA children vs
/// a full replay. Children are single-gene mutants of one finite parent —
/// the dominant child shape the tracked crossover/mutation operators
/// report — so the delta path only replays the jobs landing on the one or
/// two affected sites.
fn delta_eval_hot_path(sizes: &Sizes, seed: u64) -> HotPathReport {
    let (ctx, avail) = wide_ctx(sizes.eval_jobs, sizes.eval_sites);
    let kernel = FitnessKernel::compile(
        &ctx,
        &avail,
        FitnessKind::Makespan,
        None,
        DEFAULT_FLOW_WEIGHT,
    );
    let mut rng = stream(seed, Stream::Genetic);
    let parent = Chromosome::random(&ctx.candidates, &mut rng);
    let mut scratch = KernelScratch::default();
    let mut parent_cts = Vec::new();
    let pf = kernel.evaluate_full(parent.genes(), &mut parent_cts, &mut scratch);
    assert!(pf.is_finite(), "random parent must be feasible");
    let children: Vec<(usize, Vec<u16>)> = (0..sizes.population)
        .map(|_| {
            let j = rng.gen_range(0..ctx.n_jobs());
            let cands = &ctx.candidates[j];
            let mut genes = parent.genes().to_vec();
            genes[j] = cands[rng.gen_range(0..cands.len())] as u16;
            (j, genes)
        })
        .collect();
    let iters = sizes.eval_iters;
    time_hot_path(
        "delta_eval",
        format!(
            "children={} jobs={} sites={} nodes=16 widths=1..8 iters={}",
            sizes.population, sizes.eval_jobs, sizes.eval_sites, iters
        ),
        "Children differing from their parent at one tracked gene are patched from the \
         parent's retained completion times (only the affected sites' ready chains \
         replayed) vs replaying every job from the base availability plane.",
        || {
            let mut scratch = KernelScratch::default();
            let mut cts = Vec::new();
            let mut d = 0;
            for _ in 0..iters {
                for (_, genes) in &children {
                    d = digest_f64(d, kernel.evaluate_full(genes, &mut cts, &mut scratch));
                }
            }
            d
        },
        || {
            let mut scratch = KernelScratch::default();
            let mut cts = Vec::new();
            let mut d = 0;
            for _ in 0..iters {
                for &(j, ref genes) in &children {
                    let f = kernel.evaluate_delta(
                        genes,
                        parent.genes(),
                        &parent_cts,
                        j,
                        &mut cts,
                        &mut scratch,
                    );
                    d = digest_f64(d, f);
                }
            }
            d
        },
    )
}

/// Hot paths 2–3: one heuristic mapping loop, cached/parallel vs the
/// textbook rescan.
fn mapping_hot_path(
    name: &str,
    sizes: &Sizes,
    seed: u64,
    optimized: MapFn,
    textbook: MapFn,
) -> HotPathReport {
    let (ctx, avail) = hot_path_ctx(sizes.map_jobs, sizes.map_sites);
    let _ = seed;
    let iters = sizes.map_iters;
    let run = move |f: MapFn, ctx: &MapCtx, avail: &[NodeAvailability]| {
        let mut d = 0;
        for _ in 0..iters {
            let mut a = avail.to_vec();
            let mapping = f(ctx, &mut a);
            for (j, s) in mapping {
                d = digest_f64(d, (j * 1_000 + s) as f64);
            }
            for x in &a {
                d = digest_f64(d, x.ready_time().seconds());
            }
        }
        d
    };
    time_hot_path(
        name,
        format!(
            "jobs={} sites={} iters={}",
            sizes.map_jobs, sizes.map_sites, iters
        ),
        "Invalidation caching (recompute only jobs the committed site could affect) + \
         deterministic parallel argmin vs the O(n²·m) full rescan per round.",
        || run(textbook, &ctx, &avail),
        || run(optimized, &ctx, &avail),
    )
}

/// Hot path 4: history-table lookup, bucketed by batch-size signature vs
/// linear scan over all entries.
fn history_lookup_hot_path(sizes: &Sizes) -> HotPathReport {
    let sig = |tag: u64, jobs: usize, sites: usize| -> BatchSignature {
        let f = |i: usize| ((tag as usize * 31 + i * 7) % 100) as f64;
        BatchSignature {
            ready_times: (0..sites).map(f).collect(),
            etc: (0..jobs * sites).map(f).collect(),
            demands: (0..jobs).map(|i| 0.6 + 0.3 * (f(i) / 100.0)).collect(),
        }
    };
    // Table-1 capacity, entries spread over six batch-size classes — the
    // shape a long-running scheduler's table converges to.
    let dims = [
        (8usize, 8usize),
        (12, 8),
        (16, 8),
        (8, 12),
        (12, 12),
        (16, 12),
    ];
    let mut table = HistoryTable::new(sizes.lookup_entries);
    for t in 0..sizes.lookup_entries as u64 {
        let (jobs, sites) = dims[(t as usize) % dims.len()];
        table.insert(
            sig(t, jobs, sites),
            Chromosome::from_genes(vec![(t % 7) as u16; jobs]),
        );
    }
    let queries: Vec<BatchSignature> = (0..sizes.lookup_queries as u64)
        .map(|q| {
            let (jobs, sites) = dims[(q as usize) % dims.len()];
            sig(q * 3 + 1, jobs, sites)
        })
        .collect();
    let run = |linear: bool| {
        let mut t = table.clone();
        let mut d = 0;
        for q in &queries {
            let hits = if linear {
                t.lookup_linear(q, 0.8, 10)
            } else {
                t.lookup(q, 0.8, 10)
            };
            d = digest_f64(d, hits.len() as f64);
            for c in &hits {
                d = digest_f64(d, c.genes().first().copied().unwrap_or(0) as f64);
            }
        }
        d
    };
    time_hot_path(
        "history_lookup",
        format!(
            "entries={} queries={} dim_classes={}",
            sizes.lookup_entries,
            sizes.lookup_queries,
            dims.len()
        ),
        "Bucketed by batch-size signature with an exact length-ratio similarity bound \
         (skips whole buckets) vs scoring every entry.",
        || run(true),
        || run(false),
    )
}

/// Hot path 5: repeated `site_of` queries, indexed vs linear scan.
fn site_of_hot_path(sizes: &Sizes) -> HotPathReport {
    let schedule = BatchSchedule::from_pairs(
        (0..sizes.site_assignments as u64)
            .map(|i| (JobId(i * 7 % 9_973), SiteId((i % 31) as usize))),
    );
    let queries: Vec<JobId> = (0..sizes.site_queries as u64)
        .map(|q| JobId(q * 13 % 9_973))
        .collect();
    time_hot_path(
        "schedule_site_of",
        format!(
            "assignments={} queries={}",
            sizes.site_assignments, sizes.site_queries
        ),
        "ScheduleIndex built once (job→sites hash) vs a linear assignment scan per query.",
        || {
            let mut d = 0;
            for &q in &queries {
                let s = schedule.site_of(q).map_or(-1.0, |s| s.0 as f64);
                d = digest_f64(d, s);
            }
            d
        },
        || {
            let index = schedule.index();
            let mut d = 0;
            for &q in &queries {
                let s = index.site_of(q).map_or(-1.0, |s| s.0 as f64);
                d = digest_f64(d, s);
            }
            d
        },
    )
}

/// Workload 3: the outer replication loop of every averaged figure —
/// independent per-seed PSA simulations fanned out over the pool.
fn replication_workload(sizes: &Sizes, seed: u64) -> u64 {
    let seeds = replication_seeds(seed, sizes.rep_seeds);
    let outs = replicate(&seeds, |s| {
        let w = psa_setup(sizes.rep_jobs, s);
        let mut sched = MinMin::new(RiskMode::Risky);
        let config = gridsec_bench::psa_sim_config(s);
        simulate(&w.jobs, &w.grid, &mut sched, &config).expect("simulation must drain")
    });
    outs.iter().fold(0, |a, o| {
        digest_f64(
            digest_f64(a, o.metrics.makespan.seconds()),
            o.metrics.avg_response,
        )
    })
}
