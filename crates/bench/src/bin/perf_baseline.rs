//! Reproducible perf baseline: times the workspace's three dominant
//! parallel workloads at 1, 2 and N threads and writes the speedup curve
//! to `BENCH_PR2.json` (override with `--json <path>`).
//!
//! The three workloads mirror where the paper's experiments spend their
//! time:
//!
//! 1. **STGA population fitness evaluation** — the GA hot path
//!    (`par_iter().map_init(evaluate_with_scratch)` over the population).
//! 2. **A fig5-style sweep** — conventional GA vs STGA over a sequence of
//!    PSA batches (whole-scheduler wall-clock, parallel fitness inside).
//! 3. **A multi-seed sim replication batch** — independent PSA
//!    simulations fanned out per seed, the outer loop of every averaged
//!    figure.
//!
//! Every workload is also checked for thread-count independence: digests
//! of the results at 2 and N threads must be bit-identical to the
//! 1-thread run, which in turn executes the exact sequential code path of
//! the pre-pool shim.
//!
//! Run `--quick` for a smoke-sized configuration (CI) and `--threads <n>`
//! to set the largest measured thread count.

use gridsec_bench::{psa_setup, replicate, replication_seeds, BenchArgs};
use gridsec_core::etc::{EtcMatrix, NodeAvailability};
use gridsec_core::rng::{stream, Stream};
use gridsec_core::{RiskMode, SecurityModel, Time};
use gridsec_heuristics::common::MapCtx;
use gridsec_heuristics::MinMin;
use gridsec_sim::{simulate, BatchJob, BatchScheduler, GridView};
use gridsec_stga::fitness::{evaluate_with_scratch, FitnessKind, DEFAULT_FLOW_WEIGHT};
use gridsec_stga::{Chromosome, GaParams, StandardGa, Stga, StgaParams};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// One workload timed at one thread count.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct RunTiming {
    threads: usize,
    /// Best-of-two wall-clock seconds.
    secs: f64,
    /// `secs(1 thread) / secs(this run)`.
    speedup_vs_1_thread: f64,
}

/// The speedup curve of one workload.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct WorkloadReport {
    name: String,
    params: String,
    runs: Vec<RunTiming>,
    /// Result digests at every thread count matched the 1-thread run bit
    /// for bit.
    deterministic: bool,
}

/// The whole `BENCH_PR2.json` document.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct PerfReport {
    schema: String,
    command: String,
    host_available_parallelism: usize,
    thread_counts: Vec<usize>,
    workloads: Vec<WorkloadReport>,
    note: String,
}

/// Sizing knobs for full vs `--quick` runs.
struct Sizes {
    population: usize,
    eval_jobs: usize,
    eval_sites: usize,
    eval_iters: usize,
    sweep_rounds: usize,
    sweep_generations: usize,
    sweep_population: usize,
    rep_seeds: usize,
    rep_jobs: usize,
}

impl Sizes {
    fn new(quick: bool) -> Sizes {
        if quick {
            Sizes {
                population: 96,
                eval_jobs: 32,
                eval_sites: 12,
                eval_iters: 5,
                sweep_rounds: 3,
                sweep_generations: 15,
                sweep_population: 60,
                rep_seeds: 3,
                rep_jobs: 120,
            }
        } else {
            Sizes {
                population: 512,
                eval_jobs: 96,
                eval_sites: 20,
                eval_iters: 120,
                sweep_rounds: 8,
                sweep_generations: 80,
                sweep_population: 200,
                rep_seeds: 8,
                rep_jobs: 1_000,
            }
        }
    }
}

fn main() {
    let args = BenchArgs::parse();
    args.warn_unused_reps("perf_baseline");
    let sizes = Sizes::new(args.quick);
    let host = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let max_threads = args.threads.unwrap_or(host);
    let mut thread_counts: Vec<usize> = [1, 2, max_threads]
        .into_iter()
        .filter(|&t| t <= max_threads)
        .collect();
    thread_counts.sort_unstable();
    thread_counts.dedup();

    println!(
        "perf baseline: thread counts {thread_counts:?} (host parallelism {host}), seed {}{}",
        args.seed,
        if args.quick { ", quick" } else { "" },
    );

    let workloads: Vec<WorkloadReport> = vec![
        time_workload(
            "stga_fitness_eval",
            format!(
                "population={} jobs={} sites={} iters={}",
                sizes.population, sizes.eval_jobs, sizes.eval_sites, sizes.eval_iters
            ),
            &thread_counts,
            || fitness_eval_workload(&sizes, args.seed),
        ),
        time_workload(
            "fig5_sweep",
            format!(
                "rounds={} batch=12 population={} generations={}",
                sizes.sweep_rounds, sizes.sweep_population, sizes.sweep_generations
            ),
            &thread_counts,
            || fig5_sweep_workload(&sizes, args.seed),
        ),
        time_workload(
            "sim_replication_batch",
            format!("seeds={} psa_jobs={}", sizes.rep_seeds, sizes.rep_jobs),
            &thread_counts,
            || replication_workload(&sizes, args.seed),
        ),
    ];

    let report = PerfReport {
        schema: "gridsec-perf-baseline/v1".to_string(),
        command: format!(
            "perf_baseline{} --seed {} --threads {max_threads}",
            if args.quick { " --quick" } else { "" },
            args.seed
        ),
        host_available_parallelism: host,
        thread_counts: thread_counts.clone(),
        workloads,
        note: "Wall-clock is best-of-two per thread count; speedups are relative to the \
               1-thread run, which executes the strictly sequential code path. Absolute \
               speedup is bounded by the host's available parallelism."
            .to_string(),
    };

    let path = args.json.clone().unwrap_or_else(|| "BENCH_PR2.json".into());
    let json = serde_json::to_string_pretty(&report).expect("report serialises");
    std::fs::write(&path, json).expect("write perf report");
    println!("[wrote {path}]");
}

/// Times `work` at every thread count (dedicated pools, best of two runs)
/// and verifies the result digest never changes.
fn time_workload(
    name: &str,
    params: String,
    thread_counts: &[usize],
    work: impl Fn() -> u64,
) -> WorkloadReport {
    let mut runs: Vec<RunTiming> = Vec::new();
    let mut digests: Vec<u64> = Vec::new();
    for &t in thread_counts {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(t)
            .build()
            .expect("pool builds");
        let mut best = f64::INFINITY;
        let mut digest = 0;
        for _ in 0..2 {
            let start = Instant::now();
            digest = pool.install(&work);
            best = best.min(start.elapsed().as_secs_f64());
        }
        digests.push(digest);
        let base = runs.first().map_or(best, |r: &RunTiming| r.secs);
        runs.push(RunTiming {
            threads: t,
            secs: best,
            speedup_vs_1_thread: base / best,
        });
        println!(
            "  {name:>22} @ {t} thread(s): {best:.3}s (x{:.2})",
            base / best
        );
    }
    let deterministic = digests.iter().all(|&d| d == digests[0]);
    assert!(
        deterministic,
        "{name}: results changed with thread count ({digests:?})"
    );
    WorkloadReport {
        name: name.to_string(),
        params,
        runs,
        deterministic,
    }
}

/// Folds a float sequence into an order-sensitive digest of exact bits.
fn digest_f64(acc: u64, x: f64) -> u64 {
    acc.rotate_left(7) ^ x.to_bits()
}

/// Workload 1: repeated rayon-parallel population fitness evaluation on a
/// synthetic batch — exactly the GA engine's `eval_all` hot path.
fn fitness_eval_workload(sizes: &Sizes, seed: u64) -> u64 {
    let n = sizes.eval_jobs;
    let m = sizes.eval_sites;
    let etc: Vec<f64> = (0..n * m).map(|i| 10.0 + ((i * 31) % 97) as f64).collect();
    let ctx = MapCtx {
        etc: EtcMatrix::from_raw(n, m, etc),
        widths: vec![1; n],
        arrivals: vec![Time::ZERO; n],
        candidates: vec![(0..m).collect(); n],
        now: Time::ZERO,
        commit_order: vec![],
    };
    let avail = vec![NodeAvailability::new(2, Time::ZERO); m];
    let mut rng = stream(seed, Stream::Genetic);
    let population: Vec<Chromosome> = (0..sizes.population)
        .map(|_| Chromosome::random(&ctx.candidates, &mut rng))
        .collect();

    let mut digest = 0;
    for _ in 0..sizes.eval_iters {
        let fitness: Vec<f64> = population
            .par_iter()
            .map_init(Vec::new, |scratch, c| {
                evaluate_with_scratch(
                    &ctx,
                    &avail,
                    scratch,
                    c,
                    FitnessKind::Makespan,
                    None,
                    DEFAULT_FLOW_WEIGHT,
                )
            })
            .collect();
        digest = fitness.iter().fold(digest, |a, &f| digest_f64(a, f));
    }
    digest
}

/// Workload 2: the fig5 round loop — conventional GA and STGA scheduling
/// a sequence of similar PSA batches.
fn fig5_sweep_workload(sizes: &Sizes, seed: u64) -> u64 {
    let batch_size = 12;
    let w = psa_setup(sizes.sweep_rounds * batch_size, seed);
    let ga_params = GaParams::default()
        .with_population(sizes.sweep_population)
        .with_generations(sizes.sweep_generations)
        .with_seed(seed);
    let mut ga = StandardGa::new(ga_params).expect("valid GA params");
    let mut stga = Stga::new(StgaParams {
        ga: ga_params,
        ..StgaParams::default()
    })
    .expect("valid STGA params");
    let avail: Vec<NodeAvailability> = w
        .grid
        .sites()
        .map(|s| NodeAvailability::new(s.nodes, Time::ZERO))
        .collect();

    let mut digest = 0;
    for r in 0..sizes.sweep_rounds {
        let batch: Vec<BatchJob> = w.jobs[r * batch_size..(r + 1) * batch_size]
            .iter()
            .cloned()
            .map(|job| BatchJob {
                job,
                secure_only: false,
            })
            .collect();
        let view = GridView {
            grid: &w.grid,
            avail: &avail,
            now: Time::ZERO,
            model: SecurityModel::default(),
        };
        let _ = ga.schedule(&batch, &view);
        let _ = stga.schedule(&batch, &view);
        for t in [ga.last_trajectory(), stga.last_trajectory()] {
            let t = t.expect("scheduler ran");
            digest = digest_f64(digest, t[0]);
            digest = digest_f64(digest, t[t.len() - 1]);
        }
    }
    digest
}

/// Workload 3: the outer replication loop of every averaged figure —
/// independent per-seed PSA simulations fanned out over the pool.
fn replication_workload(sizes: &Sizes, seed: u64) -> u64 {
    let seeds = replication_seeds(seed, sizes.rep_seeds);
    let outs = replicate(&seeds, |s| {
        let w = psa_setup(sizes.rep_jobs, s);
        let mut sched = MinMin::new(RiskMode::Risky);
        let config = gridsec_bench::psa_sim_config(s);
        simulate(&w.jobs, &w.grid, &mut sched, &config).expect("simulation must drain")
    });
    outs.iter().fold(0, |a, o| {
        digest_f64(
            digest_f64(a, o.metrics.makespan.seconds()),
            o.metrics.avg_response,
        )
    })
}
