//! Exploration harness: compare the risky heuristics and the STGA on the
//! NAS workload across batch periods (env `INTERVALS`, comma-separated
//! seconds) and job counts (`N`), to locate the batch-size regime where
//! batch-global optimisation separates from greedy mapping.

use gridsec_bench::{make_stga, nas_setup, print_header, run_one};
use gridsec_core::rng::subseed;
use gridsec_core::{RiskMode, Time};
use gridsec_heuristics::{MinMin, Sufferage};
use gridsec_sim::SimConfig;

fn env_list(name: &str, default: &str) -> Vec<f64> {
    std::env::var(name)
        .unwrap_or_else(|_| default.to_string())
        .split(',')
        .map(|s| s.trim().parse().expect("numeric list"))
        .collect()
}

fn main() {
    let n: usize = std::env::var("N")
        .unwrap_or_else(|_| "16000".into())
        .parse()
        .expect("N must be usize");
    let seed: u64 = std::env::var("SEED")
        .unwrap_or_else(|_| "2005".into())
        .parse()
        .expect("SEED must be u64");
    let intervals = env_list("INTERVALS", "3600,14400");
    let w = nas_setup(n, seed);
    for &interval in &intervals {
        print_header(&format!("NAS N = {n}, batch period = {interval} s"));
        let config = SimConfig::default()
            .with_interval(Time::new(interval))
            .with_seed(subseed(seed, 0xFA11));
        let expected_batch = (n as f64 / (46.0 * 86_400.0) * interval).ceil() as usize;
        run_one(&w.jobs, &w.grid, &mut MinMin::new(RiskMode::Risky), &config);
        run_one(
            &w.jobs,
            &w.grid,
            &mut Sufferage::new(RiskMode::Risky),
            &config,
        );
        for &fw in &env_list("FLOW", "0.0001") {
            let stga = make_stga(&w.jobs, &w.grid, seed, 100, expected_batch.max(1))
                .expect("valid STGA params");
            let mut p = *stga.params();
            p.ga.flow_weight = fw;
            let history = stga.history().clone();
            let mut stga = gridsec_stga::Stga::with_history(p, history);
            print!("flow={fw:<8} ");
            run_one(&w.jobs, &w.grid, &mut stga, &config);
        }
    }
}
