//! Fig. 9: per-site utilisation (%) of the 12 NAS Grid sites under each
//! algorithm — (a) Min-Min × 3 modes, (b) Sufferage × 3 modes, (c) the
//! three best performers (Min-Min Risky, Sufferage Risky, STGA).

use gridsec_bench::{
    maybe_dump, nas_setup, nas_sim_config, paper_schedulers, print_header, run_one, AsciiTable,
    BenchArgs, ExperimentRecord,
};

fn main() {
    let args = BenchArgs::parse();
    args.warn_unused_reps("fig9");
    let n = if args.quick { 1_000 } else { 16_000 };
    let w = nas_setup(n, args.seed);
    let config = nas_sim_config(args.seed);
    print_header(&format!(
        "Fig. 9: site utilisation on the NAS trace (N = {n})"
    ));

    let mut records = Vec::new();
    let mut results = Vec::new();
    for mut s in paper_schedulers(&w.jobs, &w.grid, args.seed, 15) {
        let out = run_one(&w.jobs, &w.grid, s.as_mut(), &config);
        records.push(ExperimentRecord::new(
            "fig9",
            out.scheduler_name.clone(),
            out.clone(),
        ));
        results.push(out);
    }

    let mut headers = vec!["algorithm".to_string()];
    headers.extend((1..=w.grid.len()).map(|i| format!("S{i}")));
    headers.push("idle sites".to_string());
    headers.push("fairness".to_string());
    let mut table = AsciiTable::new(headers);
    for out in &results {
        let mut cells = vec![out.scheduler_name.clone()];
        let idle = out
            .metrics
            .site_utilization
            .iter()
            .filter(|&&u| u < 0.5)
            .count();
        cells.extend(
            out.metrics
                .site_utilization
                .iter()
                .map(|u| format!("{u:.0}%")),
        );
        cells.push(idle.to_string());
        cells.push(format!("{:.3}", out.metrics.utilization_fairness));
        table.row(cells);
    }
    println!();
    table.print();

    println!(
        "\nSite legend: S1–S4 are the 16-node sites, S5–S12 the 8-node sites;\n\
         security levels: {}",
        w.grid
            .sites()
            .map(|s| format!("{:.2}", s.security_level))
            .collect::<Vec<_>>()
            .join(" ")
    );
    maybe_dump(&args.json, &records);
}
