//! STGA history-table persistence across daemon restarts: a sharded
//! daemon snapshots each shard's history table to its own state file at
//! the shutdown barrier; a restarted daemon boots from those files and
//! resumes with every learned entry intact (the kill–restart–resume
//! round trip).

use gridsec_core::{Grid, Job, Site, Time};
use gridsec_serve::{
    Client, Daemon, DaemonOptions, OnlineSession, QueryWhat, Request, Response, ShardPersistence,
    ShardSpec,
};
use gridsec_sim::{BatchPolicy, ShardPlan, SimConfig};
use gridsec_stga::{BatchSignature, GaParams, SharedHistory, Stga, StgaParams};
use std::path::PathBuf;

fn grid() -> Grid {
    Grid::new(
        (0..4)
            .map(|i| {
                Site::builder(i)
                    .nodes(2)
                    .speed(1.0 + i as f64)
                    .security_level(1.0)
                    .build()
                    .unwrap()
            })
            .collect(),
    )
    .unwrap()
}

fn jobs(n: u64, offset: u64) -> Vec<Job> {
    (0..n)
        .map(|i| {
            Job::builder(offset + i)
                .arrival(Time::new(i as f64))
                .work(30.0 + 7.0 * (i % 5) as f64)
                .security_demand(0.5)
                .build()
                .unwrap()
        })
        .collect()
}

fn stga_with(history: SharedHistory, seed: u64) -> Stga {
    Stga::with_history(
        StgaParams {
            ga: GaParams::default()
                .with_population(16)
                .with_generations(8)
                .with_seed(seed),
            ..StgaParams::default()
        },
        history,
    )
}

/// Spawns a 2-shard STGA daemon whose shards persist to
/// `state_prefix.shard{k}.json`, returning the daemon and the live
/// history handles.
fn spawn(state_prefix: &std::path::Path, histories: [SharedHistory; 2]) -> Daemon {
    let grid = grid();
    let config = SimConfig::default()
        .with_interval(Time::new(10.0))
        .with_batch_policy(BatchPolicy::CountTriggered(3));
    let plan = ShardPlan::contiguous(&grid, 2).unwrap();
    let shards: Vec<ShardSpec> = histories
        .into_iter()
        .enumerate()
        .map(|(k, history)| {
            let sub = plan.subgrid(&grid, k).unwrap();
            let session =
                OnlineSession::new(sub, Box::new(stga_with(history.clone(), 5)), &config).unwrap();
            ShardSpec {
                session,
                persist: Some(ShardPersistence {
                    path: state_path(state_prefix, k),
                    snapshot: Box::new(move || history.to_json()),
                }),
                history: None,
            }
        })
        .collect();
    Daemon::spawn_sharded(grid, plan, shards, "127.0.0.1:0", DaemonOptions::default()).unwrap()
}

fn state_path(prefix: &std::path::Path, shard: usize) -> PathBuf {
    let mut p = prefix.to_path_buf();
    p.set_extension(format!("shard{shard}.json"));
    p
}

fn serve_batch(daemon: &Daemon, batch: &[Job]) {
    let mut client = Client::connect(daemon.addr()).unwrap();
    for (i, j) in batch.iter().enumerate() {
        match client
            .send(&Request::Submit {
                jobs: vec![j.clone()],
                shard: Some(i % 2),
                tenant: None,
            })
            .unwrap()
        {
            Response::Accepted { jobs: 1, .. } => {}
            other => panic!("submit failed: {other:?}"),
        }
    }
    match client.send(&Request::Drain).unwrap() {
        Response::Drained { jobs_scheduled, .. } => assert!(jobs_scheduled > 0),
        other => panic!("drain failed: {other:?}"),
    }
    match client
        .send(&Request::Query {
            what: QueryWhat::Shards,
            shard: None,
        })
        .unwrap()
    {
        Response::Shards { shards } => assert_eq!(shards.len(), 2),
        other => panic!("shards query failed: {other:?}"),
    }
    assert_eq!(client.send(&Request::Shutdown).unwrap(), Response::Bye);
}

#[test]
fn history_tables_survive_a_kill_restart_resume_cycle() {
    let prefix =
        std::env::temp_dir().join(format!("gridsec_state_persistence_{}", std::process::id()));

    // ---- First life: learn, then die (shutdown saves at the barrier).
    let histories = [SharedHistory::new(64), SharedHistory::new(64)];
    let handles = histories.clone();
    let daemon = spawn(&prefix, histories);
    serve_batch(&daemon, &jobs(12, 0));
    daemon.join();
    let first_len = [handles[0].len(), handles[1].len()];
    assert!(
        first_len[0] > 0 && first_len[1] > 0,
        "every shard's STGA must have recorded rounds: {first_len:?}"
    );

    // ---- The state files exist and are exact snapshots.
    let mut restored = Vec::new();
    for (k, &expected_len) in first_len.iter().enumerate() {
        let path = state_path(&prefix, k);
        let text = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("state file {} missing: {e}", path.display()));
        let table = SharedHistory::from_json(&text).expect("state file parses");
        assert_eq!(table.len(), expected_len, "shard {k} snapshot length");
        // Lookups survive: a permissive query returns the learned seeds.
        let probe = BatchSignature {
            ready_times: Vec::new(),
            etc: Vec::new(),
            demands: Vec::new(),
        };
        assert!(
            !table.lookup(&probe, 0.0, 8).is_empty(),
            "shard {k}: restored table must serve lookups"
        );
        restored.push(table);
    }

    // ---- Second life: boot from the files, serve more traffic.
    let histories = [restored[0].clone(), restored[1].clone()];
    let handles2 = histories.clone();
    let daemon = spawn(&prefix, histories);
    serve_batch(&daemon, &jobs(12, 1_000));
    daemon.join();
    for k in 0..2 {
        assert!(
            handles2[k].len() > first_len[k],
            "shard {k}: the restored table must keep growing (was {}, now {})",
            first_len[k],
            handles2[k].len()
        );
        // The re-saved state file reflects the second life.
        let text = std::fs::read_to_string(state_path(&prefix, k)).unwrap();
        let table = SharedHistory::from_json(&text).unwrap();
        assert_eq!(table.len(), handles2[k].len());
        let _ = std::fs::remove_file(state_path(&prefix, k));
    }
}
