//! The sharding-equivalence suite: sharded serving is *provably* just N
//! independent daemons glued behind one socket.
//!
//! Two claims, each pinned bit for bit over real TCP for
//! MCT / Min-Min / Sufferage / STGA under all three batch policies (CI
//! re-runs the suite under `RAYON_NUM_THREADS=1` and `=4`):
//!
//! 1. **One shard is the PR 4 daemon.** A `--shards 1` daemon commits
//!    exactly the schedule of the pre-sharding single-session daemon,
//!    which in turn is exactly the discrete-event engine's realised
//!    timeline (the golden cross-check regime: SL = 1.0, failure-free).
//! 2. **N shards are N solo daemons.** An N-shard virtual-clock run,
//!    with jobs explicitly routed to shards, commits per shard exactly
//!    what an independent single-shard daemon serving just that subgrid
//!    commits for the same job stream — and the aggregated metrics are
//!    the per-shard sums.
//!
//! Together these close the loop: engine ≡ 1-shard daemon, and sharding
//! never changes any shard's schedule, so every shard of a production
//! N-shard deployment still serves engine-exact schedules.

use gridsec_core::RiskMode;
use gridsec_core::{Grid, Job, Site, Time};
use gridsec_heuristics::{MinMin, Sufferage};
use gridsec_serve::{
    Client, Daemon, DaemonOptions, OnlineSession, Placed, QueryWhat, Request, Response, ShardSpec,
};
use gridsec_sim::scheduler::EarliestCompletion;
use gridsec_sim::{simulate, BatchPolicy, BatchScheduler, ShardPlan, SimConfig};
use gridsec_stga::{GaParams, Stga, StgaParams};
use gridsec_workloads::PsaConfig;

/// The PSA workload on a fully trusted grid (SL = 1.0 everywhere): the
/// schedulers still see realistic speeds/widths/arrivals, but no job can
/// fail, which is the regime where daemon == engine holds exactly.
fn workload(n: usize, seed: u64) -> (Vec<Job>, Grid) {
    let w = PsaConfig::default()
        .with_n_jobs(n)
        .with_seed(seed)
        .generate()
        .expect("valid PSA defaults");
    let sites: Vec<Site> = w
        .grid
        .sites()
        .map(|s| {
            let mut s = s.clone();
            s.security_level = 1.0;
            s
        })
        .collect();
    (w.jobs, Grid::new(sites).expect("grid stays valid"))
}

fn sim_config(policy: BatchPolicy) -> SimConfig {
    SimConfig::default()
        .with_interval(Time::new(1_000.0))
        .with_batch_policy(policy)
        .with_seed(77)
}

/// The four schedulers of the paper's comparison, built fresh per run so
/// every side of an equivalence carries identical internal state.
fn build_scheduler(name: &str, seed: u64) -> Box<dyn BatchScheduler + Send> {
    match name {
        "mct" => Box::new(EarliestCompletion),
        "minmin" => Box::new(MinMin::new(RiskMode::Risky)),
        "sufferage" => Box::new(Sufferage::new(RiskMode::Secure)),
        "stga" => Box::new(
            Stga::new(StgaParams {
                ga: GaParams::default()
                    .with_population(24)
                    .with_generations(12)
                    .with_seed(seed),
                ..StgaParams::default()
            })
            .expect("valid STGA params"),
        ),
        other => panic!("unknown scheduler {other}"),
    }
}

const POLICIES: [BatchPolicy; 3] = [
    BatchPolicy::Periodic,
    BatchPolicy::CountTriggered(8),
    BatchPolicy::Hybrid(6),
];

/// Replays `jobs` through a daemon (each job tagged with an explicit
/// shard, or untagged when `shards` is `None`), drains, and returns the
/// aggregated schedule, the per-shard schedules, and the per-shard +
/// aggregated metrics.
fn replay(
    daemon: &Daemon,
    jobs: &[(Option<usize>, Job)],
    n_shards: usize,
) -> (Vec<Placed>, Vec<Vec<Placed>>, Vec<Response>, Response) {
    let mut client = Client::connect(daemon.addr()).expect("client connects");
    for (shard, job) in jobs {
        match client
            .send(&Request::Submit {
                jobs: vec![job.clone()],
                shard: *shard,
                tenant: None,
            })
            .expect("submit frame")
        {
            Response::Accepted { jobs: 1, .. } => {}
            other => panic!("submit rejected: {other:?}"),
        }
    }
    match client.send(&Request::Drain).expect("drain frame") {
        Response::Drained { .. } => {}
        other => panic!("drain failed: {other:?}"),
    }
    let aggregated = match client
        .send(&Request::Query {
            what: QueryWhat::Schedule,
            shard: None,
        })
        .expect("query frame")
    {
        Response::Schedule { assignments } => assignments,
        other => panic!("query failed: {other:?}"),
    };
    let mut per_shard = Vec::new();
    for k in 0..n_shards {
        match client
            .send(&Request::Query {
                what: QueryWhat::Schedule,
                shard: Some(k),
            })
            .expect("per-shard query")
        {
            Response::Schedule { assignments } => per_shard.push(assignments),
            other => panic!("per-shard query failed: {other:?}"),
        }
    }
    let mut shard_metrics = Vec::new();
    for k in 0..n_shards {
        shard_metrics.push(
            client
                .send(&Request::Query {
                    what: QueryWhat::Metrics,
                    shard: Some(k),
                })
                .expect("per-shard metrics"),
        );
    }
    let agg_metrics = client
        .send(&Request::Query {
            what: QueryWhat::Metrics,
            shard: None,
        })
        .expect("aggregated metrics");
    match client.send(&Request::Shutdown).expect("shutdown frame") {
        Response::Bye => {}
        other => panic!("shutdown failed: {other:?}"),
    }
    (aggregated, per_shard, shard_metrics, agg_metrics)
}

// ---------------------------------------------------------------------
// Claim 1: a 1-shard daemon ≡ the single-session daemon ≡ the engine.
// ---------------------------------------------------------------------

fn check_one_shard_is_the_engine(scheduler: &str) {
    for (i, policy) in POLICIES.into_iter().enumerate() {
        let n_jobs = if scheduler == "stga" { 48 } else { 60 };
        let (jobs, grid) = workload(n_jobs, 50 + i as u64);
        let config = sim_config(policy).with_timeline();

        // The reference: the in-process discrete-event engine.
        let mut engine_sched = build_scheduler(scheduler, 9);
        let engine_out =
            simulate(&jobs, &grid, engine_sched.as_mut(), &config).expect("engine run drains");
        let timeline = engine_out.timeline.as_ref().expect("timeline recorded");
        assert!(timeline.spans().iter().all(|s| !s.failed));

        // Side A: the PR 4 path — one session, no explicit plan.
        let session =
            OnlineSession::new(grid.clone(), build_scheduler(scheduler, 9), &config).unwrap();
        let daemon_a =
            Daemon::spawn(session, "127.0.0.1:0", DaemonOptions::default()).expect("daemon binds");
        let untagged: Vec<(Option<usize>, Job)> = jobs.iter().map(|j| (None, j.clone())).collect();
        let (schedule_a, per_shard_a, _, _) = replay(&daemon_a, &untagged, 1);

        // Side B: the sharded path with an explicit 1-shard plan.
        let plan = ShardPlan::contiguous(&grid, 1).unwrap();
        let sub = plan.subgrid(&grid, 0).unwrap();
        let session = OnlineSession::new(sub, build_scheduler(scheduler, 9), &config).unwrap();
        let daemon_b = Daemon::spawn_sharded(
            grid.clone(),
            plan,
            vec![ShardSpec::new(session)],
            "127.0.0.1:0",
            DaemonOptions::default(),
        )
        .expect("sharded daemon binds");
        let tagged: Vec<(Option<usize>, Job)> = jobs.iter().map(|j| (Some(0), j.clone())).collect();
        let (schedule_b, _, _, _) = replay(&daemon_b, &tagged, 1);

        // Engine ≡ daemon A ≡ daemon B, dispatch for dispatch.
        assert_eq!(
            schedule_a.len(),
            timeline.len(),
            "{scheduler}/{policy:?}: daemon committed {} assignments, engine dispatched {}",
            schedule_a.len(),
            timeline.len()
        );
        for (d, (p, s)) in schedule_a.iter().zip(timeline.spans().iter()).enumerate() {
            assert_eq!(p.job, s.job, "{scheduler}/{policy:?} dispatch {d}: job");
            assert_eq!(p.site, s.site, "{scheduler}/{policy:?} dispatch {d}: site");
            assert_eq!(
                p.width, s.width,
                "{scheduler}/{policy:?} dispatch {d}: width"
            );
            assert_eq!(
                p.start, s.start,
                "{scheduler}/{policy:?} dispatch {d}: start"
            );
            assert_eq!(p.end, s.end, "{scheduler}/{policy:?} dispatch {d}: end");
        }
        assert_eq!(
            schedule_a, schedule_b,
            "{scheduler}/{policy:?}: 1-shard daemon diverged from the single-session daemon"
        );
        // The aggregated view of one shard is that shard's view.
        assert_eq!(per_shard_a.len(), 1);
        assert_eq!(per_shard_a[0], schedule_a);

        daemon_a.join();
        daemon_b.join();
    }
}

#[test]
fn one_shard_mct_is_bit_identical_to_the_engine() {
    check_one_shard_is_the_engine("mct");
}

#[test]
fn one_shard_minmin_is_bit_identical_to_the_engine() {
    check_one_shard_is_the_engine("minmin");
}

#[test]
fn one_shard_sufferage_is_bit_identical_to_the_engine() {
    check_one_shard_is_the_engine("sufferage");
}

#[test]
fn one_shard_stga_is_bit_identical_to_the_engine() {
    check_one_shard_is_the_engine("stga");
}

// ---------------------------------------------------------------------
// Claim 2: an N-shard run ≡ N independent single-shard runs.
// ---------------------------------------------------------------------

/// Deterministically assigns each job to one of the shards it is
/// eligible on (by id, round-robin over the candidates).
fn assign_shards(jobs: &[Job], grid: &Grid, plan: &ShardPlan) -> Vec<(Option<usize>, Job)> {
    jobs.iter()
        .map(|j| {
            let eligible = plan.eligible_shards(grid, j);
            assert!(!eligible.is_empty(), "job {} fits nowhere", j.id);
            let shard = eligible[j.id.0 as usize % eligible.len()];
            (Some(shard), j.clone())
        })
        .collect()
}

fn check_n_shards_equal_n_solo_runs(scheduler: &str, n_shards: usize) {
    for (i, policy) in POLICIES.into_iter().enumerate() {
        let n_jobs = if scheduler == "stga" { 48 } else { 60 };
        let (jobs, grid) = workload(n_jobs, 60 + i as u64);
        let config = sim_config(policy);
        let plan = ShardPlan::contiguous(&grid, n_shards).unwrap();
        let tagged = assign_shards(&jobs, &grid, &plan);

        // The N-shard run: one daemon, jobs explicitly routed.
        let shards: Vec<ShardSpec> = (0..n_shards)
            .map(|k| {
                let sub = plan.subgrid(&grid, k).unwrap();
                ShardSpec::new(
                    OnlineSession::new(sub, build_scheduler(scheduler, 9), &config).unwrap(),
                )
            })
            .collect();
        let daemon = Daemon::spawn_sharded(
            grid.clone(),
            plan.clone(),
            shards,
            "127.0.0.1:0",
            DaemonOptions::default(),
        )
        .expect("sharded daemon binds");
        let (aggregated, per_shard, shard_metrics, agg_metrics) =
            replay(&daemon, &tagged, n_shards);
        daemon.join();

        // The N solo runs: an independent single-shard daemon per
        // subgrid, fed exactly the jobs routed to that shard.
        for (k, shard_schedule) in per_shard.iter().enumerate() {
            let sub = plan.subgrid(&grid, k).unwrap();
            let solo_jobs: Vec<(Option<usize>, Job)> = tagged
                .iter()
                .filter(|(s, _)| *s == Some(k))
                .map(|(_, j)| (None, j.clone()))
                .collect();
            let session =
                OnlineSession::new(sub.clone(), build_scheduler(scheduler, 9), &config).unwrap();
            let solo = Daemon::spawn(session, "127.0.0.1:0", DaemonOptions::default())
                .expect("solo daemon binds");
            let (solo_schedule, _, _, _) = replay(&solo, &solo_jobs, 1);
            solo.join();

            // The solo daemon reports subgrid-local site ids; translate
            // to global for the comparison.
            let translated: Vec<Placed> = solo_schedule
                .iter()
                .map(|p| Placed {
                    site: plan.to_global(k, p.site),
                    ..*p
                })
                .collect();
            assert_eq!(
                *shard_schedule, translated,
                "{scheduler}/{policy:?}: shard {k} of the {n_shards}-shard run diverged from \
                 its solo replay"
            );
        }

        // The aggregated schedule is the shard-order concatenation.
        let concat: Vec<Placed> = per_shard.iter().flatten().copied().collect();
        assert_eq!(aggregated, concat, "{scheduler}/{policy:?}: aggregation");
        assert_eq!(aggregated.len(), jobs.len());

        // Aggregated metrics are the per-shard sums (counters) / maxima
        // (clocks).
        let per: Vec<_> = shard_metrics
            .iter()
            .map(|r| match r {
                Response::Metrics { metrics } => metrics.clone(),
                other => panic!("metrics query failed: {other:?}"),
            })
            .collect();
        let Response::Metrics { metrics: agg } = agg_metrics else {
            panic!("aggregated metrics query failed");
        };
        assert_eq!(
            agg.jobs_submitted,
            per.iter().map(|m| m.jobs_submitted).sum::<usize>()
        );
        assert_eq!(
            agg.jobs_scheduled,
            per.iter().map(|m| m.jobs_scheduled).sum::<usize>()
        );
        assert_eq!(agg.rounds, per.iter().map(|m| m.rounds).sum::<usize>());
        assert_eq!(agg.pending, 0);
        assert_eq!(agg.jobs_submitted, jobs.len());
        assert_eq!(
            agg.max_completion,
            per.iter()
                .map(|m| m.max_completion)
                .fold(Time::ZERO, Time::max)
        );
    }
}

#[test]
fn two_shard_mct_equals_two_solo_runs() {
    check_n_shards_equal_n_solo_runs("mct", 2);
}

#[test]
fn two_shard_minmin_equals_two_solo_runs() {
    check_n_shards_equal_n_solo_runs("minmin", 2);
}

#[test]
fn two_shard_sufferage_equals_two_solo_runs() {
    check_n_shards_equal_n_solo_runs("sufferage", 2);
}

#[test]
fn two_shard_stga_equals_two_solo_runs() {
    check_n_shards_equal_n_solo_runs("stga", 2);
}

#[test]
fn four_shard_minmin_equals_four_solo_runs() {
    check_n_shards_equal_n_solo_runs("minmin", 4);
}
